// Tour of the inflating elevator K_v (Section 7 of the paper): runs the
// core chase and prints per-step sizes and treewidth bounds, illustrating
// Corollary 1 — no core-chase sequence for K_v is treewidth-bounded —
// although the KB has a universal model of treewidth 1 (the ceiling chain
// I^v*, Definition 11).
#include <cstdio>

#include "core/chase.h"
#include "hom/matcher.h"
#include "kb/examples.h"
#include "tw/treewidth.h"

int main() {
  using namespace twchase;

  ElevatorWorld world;
  std::printf("Inflating elevator KB (Definition 9):\n%s\n",
              world.kb().ToString().c_str());

  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = 60;  // the coring cost grows steeply; see bench_fig3
  auto run = RunChase(world.kb(), options);
  if (!run.ok()) {
    std::printf("core chase failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const Derivation& d = run->derivation;
  std::printf("core chase: %zu steps, terminated=%d\n", run->steps,
              run->terminated);
  std::printf("%5s %6s %6s %6s\n", "step", "|F_i|", "tw_lb", "tw_ub");
  int max_lb = -1;
  for (size_t i = 0; i < d.size(); i += 10) {
    TreewidthResult tw = ComputeTreewidth(d.Instance(i));
    max_lb = std::max(max_lb, tw.lower_bound);
    std::printf("%5zu %6zu %6d %6d\n", i, d.Instance(i).size(), tw.lower_bound,
                tw.upper_bound);
  }
  TreewidthResult final_tw = ComputeTreewidth(d.Last());
  std::printf("final: |F| = %zu, tw in [%d, %d]\n", d.Last().size(),
              final_tw.lower_bound, final_tw.upper_bound);

  // Every chase element is universal for K_v, so it must map into the
  // treewidth-1 universal model I^v* (ceiling prefix).
  AtomSet ceiling = world.CeilingPrefix(200);
  std::printf("last chase element maps into I^v* prefix: %d (expected 1)\n",
              ExistsHomomorphism(d.Last(), ceiling) ? 1 : 0);
  std::printf("tw(I^v* prefix) = %d (paper: 1)\n",
              ComputeTreewidth(world.CeilingPrefix(30)).upper_bound);
  return 0;
}
