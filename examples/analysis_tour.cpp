// Static-analysis tour: runs the syntactic classifiers (weak acyclicity,
// guardedness, ...) over a gallery of rulesets and contrasts their verdicts
// with the empirical chase behaviour — the static/empirical interplay
// behind Figure 1's class landscape.
#include <cstdio>

#include "core/chase.h"
#include "core/measures.h"
#include "kb/analysis.h"
#include "kb/examples.h"

namespace {

void Row(const char* name, const twchase::KnowledgeBase& kb,
         size_t budget) {
  using namespace twchase;
  RulesetAnalysis analysis = AnalyzeRuleset(kb.rules);
  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = budget;
  auto run = RunChase(kb, options);
  const char* behaviour = "?";
  if (run.ok()) {
    behaviour = run->terminated ? "terminates" : "runs forever";
  }
  std::printf("%-26s %-34s -> core chase %s\n", name,
              analysis.Summary().c_str(), behaviour);
  if (analysis.ImpliesTermination() && run.ok() && !run->terminated) {
    std::printf("  !! static analysis promised termination — budget too small?\n");
  }
}

}  // namespace

int main() {
  using namespace twchase;
  std::printf("%-26s %-34s\n", "ruleset", "static classes");
  Row("transitive closure", MakeTransitiveClosure(3), 200);
  Row("weakly-acyclic pipeline", MakeWeaklyAcyclicPipeline(3), 200);
  Row("guarded chain", MakeGuardedChain(2), 40);
  Row("bts-not-fes", MakeBtsNotFes(), 40);
  Row("fes-not-bts", MakeFesNotBts(), 200);
  StaircaseWorld staircase;
  Row("steepening staircase", staircase.kb(), 40);
  ElevatorWorld elevator;
  Row("inflating elevator", elevator.kb(), 40);
  std::printf(
      "\nNote how both paper counterexamples escape every syntactic class —\n"
      "their decidability needs the paper's core-bts machinery, not syntax.\n");
  return 0;
}
