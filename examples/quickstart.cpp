// Quickstart: parse a knowledge base from text, run the chase, answer
// Boolean conjunctive queries, and inspect the structural measures the
// paper is about.
#include <cstdio>

#include "core/chase.h"
#include "core/entailment.h"
#include "hom/answers.h"
#include "hom/matcher.h"
#include "parser/parser.h"
#include "parser/printer.h"
#include "tw/treewidth.h"

int main() {
  using namespace twchase;

  // A small program: employees, a management hierarchy that must be headed
  // somewhere (an existential rule), and queries.
  const char* text = R"(
    % facts
    works(alice, widgets). works(bob, widgets). works(carol, gizmos).

    % every department has a head, who works in it
    [head]  heads(H, D), works(H, D) :- works(X, D).
    % heads manage everyone in their department
    [mgmt]  manages(H, X) :- heads(H, D), works(X, D).

    ? :- manages(M, alice).
    ? :- manages(M, M).
    ? :- manages(M, dave).
    ?(W, D) :- manages(M, W), works(W, D).
  )";

  auto program = ParseProgram(text);
  if (!program.ok()) {
    std::printf("parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed program:\n%s\n",
              PrintProgram(program->kb, program->queries).c_str());

  // Run the core chase: it terminates here and yields the smallest
  // universal model, which decides every CQ.
  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = 200;
  auto run = RunChase(program->kb, options);
  if (!run.ok()) {
    std::printf("chase error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const AtomSet& model = run->derivation.Last();
  std::printf("core chase terminated: %s after %zu steps\n",
              run->terminated ? "yes" : "no", run->steps);
  std::printf("universal model (%zu atoms): %s\n\n", model.size(),
              model.ToString(*program->kb.vocab).c_str());

  TreewidthResult tw = ComputeTreewidth(model);
  std::printf("treewidth of the universal model: [%d, %d]\n\n", tw.lower_bound,
              tw.upper_bound);

  for (size_t q = 0; q < program->queries.size(); ++q) {
    const ParsedQuery& query = program->queries[q];
    std::printf("query %zu: %s", q + 1,
                PrintQuery(query, *program->kb.vocab).c_str());
    if (query.answer_vars.empty()) {
      bool entailed = ExistsHomomorphism(query.atoms, model);
      std::printf("  =>  %s\n", entailed ? "entailed" : "not entailed");
    } else {
      // Certain answers: ground tuples over the universal model.
      AnswerOptions answer_options;
      answer_options.ground_only = true;
      auto answers =
          AnswerQuery(model, query.atoms, query.answer_vars, answer_options);
      std::printf("  =>  %zu certain answer(s):", answers.size());
      for (const auto& tuple : answers) {
        std::printf(" (");
        for (size_t i = 0; i < tuple.size(); ++i) {
          std::printf("%s%s", i ? ", " : "",
                      program->kb.vocab->TermName(tuple[i]).c_str());
        }
        std::printf(")");
      }
      std::printf("\n");
    }
  }
  return 0;
}
