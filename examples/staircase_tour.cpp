// Tour of the steepening staircase K_h (Section 6 of the paper): runs the
// core chase and the restricted chase side by side and prints, per step,
// the instance size and certified treewidth. Shows the paper's headline
// contrast: the core-chase sequence stays treewidth-bounded by 2 while the
// natural aggregation of any chase grows n×n grids (unbounded treewidth);
// the robust aggregation recovers a treewidth-1 finitely universal model
// (the infinite column Ỹ^h).
#include <cstdio>

#include "core/chase.h"
#include "core/robust.h"
#include "hom/isomorphism.h"
#include "kb/examples.h"
#include "tw/grid.h"
#include "tw/treewidth.h"

int main() {
  using namespace twchase;

  StaircaseWorld world;
  std::printf("Steepening staircase KB (Definition 7):\n%s\n",
              world.kb().ToString().c_str());

  ChaseOptions core_options;
  core_options.variant = ChaseVariant::kCore;
  core_options.limits.max_steps = 60;
  auto core_run = RunChase(world.kb(), core_options);
  if (!core_run.ok()) {
    std::printf("core chase failed: %s\n", core_run.status().ToString().c_str());
    return 1;
  }

  std::printf("core chase: %zu steps, terminated=%d\n", core_run->steps,
              core_run->terminated);
  std::printf("%5s %6s %4s %s\n", "step", "|F_i|", "tw", "rule");
  const Derivation& d = core_run->derivation;
  int max_tw = -1;
  for (size_t i = 0; i < d.size(); ++i) {
    TreewidthResult tw = ComputeTreewidth(d.Instance(i));
    max_tw = std::max(max_tw, tw.upper_bound);
    std::printf("%5zu %6zu %4d %s\n", i, d.Instance(i).size(), tw.upper_bound,
                d.step(i).rule_label.c_str());
  }
  std::printf("max treewidth along core chase: %d (paper: uniformly ≤ 2)\n\n",
              max_tw);

  AtomSet natural = d.NaturalAggregation();
  std::printf("natural aggregation D*: %zu atoms, contains grid up to %d\n",
              natural.size(), GridLowerBound(natural, 6));

  RobustAggregator agg = RobustAggregator::FromDerivation(d);
  const AtomSet& robust = agg.Aggregate();
  TreewidthResult robust_tw = ComputeTreewidth(robust);
  std::printf("robust aggregation D⊛: %zu atoms, tw ≤ %d\n", robust.size(),
              robust_tw.upper_bound);
  for (int h = 1; h <= 40; ++h) {
    if (AreIsomorphic(robust, world.InfiniteColumnPrefix(h))) {
      std::printf("D⊛ is isomorphic to the height-%d column prefix of Ỹ^h\n", h);
      break;
    }
  }
  std::printf("\nrobust per-step stats (|G_i|, |U_i|, renamed, stable):\n");
  for (size_t i = 0; i < agg.stats().size(); ++i) {
    const RobustStepStats& s = agg.stats()[i];
    std::printf("  %3zu: G=%3zu U=%3zu renamed=%2zu stable=%3zu\n", i, s.g_size,
                s.union_size, s.renamed_variables, s.stable_variables);
  }
  return 0;
}
