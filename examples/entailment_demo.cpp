// Entailment demo: the paper's decidability machinery in action on rulesets
// from the different classes of Figure 1.
//   * fes ruleset: the core chase terminates and decides everything exactly;
//   * bts-not-fes ruleset: the chase never stops — positive queries are
//     still detected on prefixes (Proposition 1), negatives are certified by
//     a finite counter-model search (the implementable stand-in for
//     Theorem 1's treewidth-bounded model search).
#include <cstdio>

#include "core/entailment.h"
#include "kb/examples.h"
#include "parser/parser.h"
#include "parser/printer.h"

namespace {

void Decide(const twchase::KnowledgeBase& kb, const std::string& query_text) {
  using namespace twchase;
  auto program = ParseProgram("? :- " + query_text + ".", kb.vocab);
  if (!program.ok()) {
    std::printf("  bad query: %s\n", program.status().ToString().c_str());
    return;
  }
  CounterModelOptions cm;
  cm.max_extra_elements = 2;
  EntailmentResult result =
      CombinedEntailment(kb, program->queries[0].atoms, 60, cm);
  std::printf("  K |= %-28s  ->  %-12s (via %s, %zu chase steps)\n",
              (query_text + " ?").c_str(), EntailmentVerdictName(result.verdict),
              result.method.c_str(), result.chase_steps);
}

}  // namespace

int main() {
  using namespace twchase;

  {
    std::printf("fes-not-bts KB (core chase terminates):\n");
    auto kb = MakeFesNotBts();
    std::printf("%s", kb.ToString().c_str());
    Decide(kb, "r(a, a)");
    Decide(kb, "r(X, X)");
    Decide(kb, "r(c, X), r(X, Y)");
    Decide(kb, "r(b, b), r(b, a)");
  }

  {
    std::printf("\nbts-not-fes KB (chase never terminates):\n");
    auto kb = MakeBtsNotFes();
    std::printf("%s", kb.ToString().c_str());
    Decide(kb, "r(a, X)");
    Decide(kb, "r(X, Y), r(Y, Z), r(Z, W)");
    Decide(kb, "r(X, X)");
    Decide(kb, "r(X, a)");
  }

  {
    std::printf("\ndatalog transitive closure (fes and bts):\n");
    auto kb = MakeTransitiveClosure(4);
    Decide(kb, "t(n0, n4)");
    Decide(kb, "t(n4, n0)");
  }
  return 0;
}
