// Fuzz entry point for the text-format parser (src/parser/).
//
// Contract under test: ParseProgram must return a Status for ANY byte
// sequence — never crash, never abort, never trip ASan/UBSan. The parser is
// the one component that consumes fully untrusted input (program files from
// the CLI, checkpoint text via ParseCheckpoint's own guards), so it gets a
// fuzz harness rather than example-based tests alone.
//
// Built two ways (see fuzz/CMakeLists.txt):
//   * with clang: a real libFuzzer target (-fsanitize=fuzzer);
//   * with gcc (no libFuzzer): linked against the standalone driver in
//     standalone_driver.cc, which feeds deterministic seeded-random and
//     grammar-aware inputs through this same function.
#include <cstddef>
#include <cstdint>
#include <string>

#include "parser/lexer.h"
#include "parser/parser.h"
#include "parser/printer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  auto tokens = twchase::Tokenize(text);
  (void)tokens;
  auto program = twchase::ParseProgram(text);
  if (program.ok()) {
    // Exercise the printing path on accepted inputs: printing a parsed
    // program must also be total.
    for (const auto& query : program->queries) {
      (void)twchase::PrintQuery(query, *program->kb.vocab);
    }
    (void)program->kb.ToString();
  } else {
    // Error rendering must be total too (it embeds input fragments).
    (void)program.status().ToString();
  }
  return 0;
}
