// Fuzz entry point for the crash-recovery parsers: the checkpoint format
// (plain and sealed) and the job-store manifest WAL.
//
// Contract under test: everything the daemon reads back from disk after a
// crash is untrusted — a power cut can leave torn tails, a failing disk can
// flip bits. ParseCheckpoint, ParseSealedCheckpoint and
// JobStore::ReplayManifest must return structured errors (or a truncated
// valid prefix) for ANY byte sequence — never crash, never abort, never
// trip ASan/UBSan, never allocate absurdly from hostile counts.
//
// Built two ways (see fuzz/CMakeLists.txt):
//   * with clang: a real libFuzzer target (-fsanitize=fuzzer);
//   * with gcc (no libFuzzer): linked against the standalone driver, which
//     replays and mutates the seed corpus in fuzz/corpus/recovery/ (real
//     sealed checkpoints and framed manifests, plus torn/truncated/
//     bit-flipped variants) through this same function.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "service/job_store.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);

  auto plain = twchase::ParseCheckpoint(text);
  if (plain.ok()) {
    // Accepted checkpoints must survive the canonical round-trip.
    (void)twchase::SerializeCheckpoint(*plain);
  } else {
    (void)plain.status().ToString();
  }

  auto sealed = twchase::ParseSealedCheckpoint(text);
  if (sealed.ok()) {
    (void)twchase::SerializeCheckpointSealed(*sealed);
  } else {
    (void)sealed.status().ToString();
  }

  std::vector<twchase::RecoveredJob> jobs;
  twchase::JobStore::ReplayStats stats =
      twchase::JobStore::ReplayManifest(text, &jobs);
  // The replayed prefix never extends past the input.
  if (stats.valid_bytes > size) __builtin_trap();
  return 0;
}
