// Standalone driver for fuzz targets when libFuzzer is unavailable (gcc
// builds: the toolchain has no -fsanitize=fuzzer runtime). Feeds the
// LLVMFuzzerTestOneInput entry point with a deterministic, seeded stream of
// inputs: pure random bytes, grammar-aware program fragments, and byte-level
// mutations of valid programs. Not coverage-guided — it is a smoke harness
// that catches crashes/aborts/sanitizer reports on the undirected
// neighborhood of the grammar, which is where hand-written parsers break.
//
// Accepts a subset of libFuzzer's flag syntax so callers (tools/check.sh)
// can invoke either build identically:
//   parser_fuzzer [-max_total_time=SECONDS] [-seed=N] [corpus-dir ...]
// Positional directory arguments are seed corpora, as with libFuzzer: every
// file is replayed once up front, then byte-level mutations of corpus
// entries join the input mix. Unknown -flags are ignored.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// Fragments of the twchase program grammar plus near-miss junk; random
// concatenations explore the parser's state machine far faster than raw
// bytes alone.
const char* const kFragments[] = {
    "p(a, b).",  "e(X, Y)",   "[r1] ",     "q(Z) :- ",  ":- ",
    "? :- ",     "?(X) :- ",  "p(",        ")",         ",",
    ".",         "\n",        " ",         "% comment", "p(a",
    "X",         "abc_def",   "0123",      "[",         "]",
    "p(a, b) :- q(b, a).",    "?",         "p()",       "p(,)",
    "p(a).q(b).",             "\t",        "\xff\xfe",  "p(\"x\")",
    "r(X,Y,Z,W,V,U,T,S).",    "[l] p(X) :- ",          "p(a, b",
};

std::string GrammarSoup(std::mt19937_64& rng) {
  std::uniform_int_distribution<size_t> pick(
      0, sizeof(kFragments) / sizeof(kFragments[0]) - 1);
  std::uniform_int_distribution<int> len(0, 40);
  std::string out;
  int pieces = len(rng);
  for (int i = 0; i < pieces; ++i) out += kFragments[pick(rng)];
  return out;
}

std::string RandomBytes(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> len(0, 512);
  std::uniform_int_distribution<int> byte(0, 255);
  std::string out;
  int n = len(rng);
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(static_cast<char>(byte(rng)));
  return out;
}

// Loads every regular file in `dir` (non-recursive) as a corpus entry.
void LoadCorpusDir(const std::string& dir, std::vector<std::string>* corpus) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (dirent* entry = ::readdir(handle)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::ifstream in(dir + "/" + name, std::ios::binary);
    if (!in) continue;
    std::ostringstream content;
    content << in.rdbuf();
    corpus->push_back(content.str());
  }
  ::closedir(handle);
}

// A corpus entry with 1–8 random byte edits (overwrite/erase/insert) —
// the torn/truncated/bit-flipped neighborhood of real on-disk artifacts.
std::string MutatedCorpusEntry(std::mt19937_64& rng,
                               const std::vector<std::string>& corpus) {
  std::uniform_int_distribution<size_t> pick(0, corpus.size() - 1);
  std::string base = corpus[pick(rng)];
  std::uniform_int_distribution<int> mutations(1, 8);
  std::uniform_int_distribution<int> byte(0, 255);
  int count = mutations(rng);
  for (int i = 0; i < count && !base.empty(); ++i) {
    std::uniform_int_distribution<size_t> pos(0, base.size() - 1);
    switch (rng() % 4) {
      case 0: base[pos(rng)] = static_cast<char>(byte(rng)); break;
      case 1: base.erase(pos(rng), 1); break;
      case 2: base.resize(pos(rng)); break;  // torn tail
      default:
        base.insert(pos(rng), 1, static_cast<char>(byte(rng)));
        break;
    }
  }
  return base;
}

std::string MutatedProgram(std::mt19937_64& rng) {
  std::string base =
      "s(a). e(a, b).\n"
      "[step] e(X, Y), s(Y) :- s(X).\n"
      "[base] t(X, Y) :- e(X, Y).\n"
      "?(X) :- t(a, X).\n";
  std::uniform_int_distribution<int> mutations(1, 8);
  std::uniform_int_distribution<int> byte(0, 255);
  int count = mutations(rng);
  for (int i = 0; i < count && !base.empty(); ++i) {
    std::uniform_int_distribution<size_t> pos(0, base.size() - 1);
    switch (rng() % 3) {
      case 0: base[pos(rng)] = static_cast<char>(byte(rng)); break;
      case 1: base.erase(pos(rng), 1); break;
      default:
        base.insert(pos(rng), 1, static_cast<char>(byte(rng)));
        break;
    }
  }
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seconds = 5;
  uint64_t seed = 1;
  std::vector<std::string> corpus;
  for (int i = 1; i < argc; ++i) {
    uint64_t value = 0;
    if (std::sscanf(argv[i], "-max_total_time=%llu",
                    reinterpret_cast<unsigned long long*>(&value)) == 1) {
      seconds = value;
    } else if (std::sscanf(argv[i], "-seed=%llu",
                           reinterpret_cast<unsigned long long*>(&value)) ==
               1) {
      seed = value;
    } else if (argv[i][0] != '-') {
      LoadCorpusDir(argv[i], &corpus);
    }
  }

  // Every corpus entry runs once unmutated, as libFuzzer would.
  for (const std::string& entry : corpus) {
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(entry.data()),
                           entry.size());
  }

  std::mt19937_64 rng(seed);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  uint64_t iterations = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    std::string input;
    if (!corpus.empty() && iterations % 2 == 0) {
      input = MutatedCorpusEntry(rng, corpus);
    } else {
      switch (iterations % 3) {
        case 0: input = GrammarSoup(rng); break;
        case 1: input = RandomBytes(rng); break;
        default: input = MutatedProgram(rng); break;
      }
    }
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
    ++iterations;
  }
  std::printf("standalone fuzz driver: %llu inputs, seed %llu, no crashes\n",
              static_cast<unsigned long long>(iterations),
              static_cast<unsigned long long>(seed));
  return 0;
}
