// Standalone driver for fuzz targets when libFuzzer is unavailable (gcc
// builds: the toolchain has no -fsanitize=fuzzer runtime). Feeds the
// LLVMFuzzerTestOneInput entry point with a deterministic, seeded stream of
// inputs: pure random bytes, grammar-aware program fragments, and byte-level
// mutations of valid programs. Not coverage-guided — it is a smoke harness
// that catches crashes/aborts/sanitizer reports on the undirected
// neighborhood of the grammar, which is where hand-written parsers break.
//
// Accepts a subset of libFuzzer's flag syntax so callers (tools/check.sh)
// can invoke either build identically:
//   parser_fuzzer [-max_total_time=SECONDS] [-seed=N]
// Unknown -flags and positional arguments are ignored.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// Fragments of the twchase program grammar plus near-miss junk; random
// concatenations explore the parser's state machine far faster than raw
// bytes alone.
const char* const kFragments[] = {
    "p(a, b).",  "e(X, Y)",   "[r1] ",     "q(Z) :- ",  ":- ",
    "? :- ",     "?(X) :- ",  "p(",        ")",         ",",
    ".",         "\n",        " ",         "% comment", "p(a",
    "X",         "abc_def",   "0123",      "[",         "]",
    "p(a, b) :- q(b, a).",    "?",         "p()",       "p(,)",
    "p(a).q(b).",             "\t",        "\xff\xfe",  "p(\"x\")",
    "r(X,Y,Z,W,V,U,T,S).",    "[l] p(X) :- ",          "p(a, b",
};

std::string GrammarSoup(std::mt19937_64& rng) {
  std::uniform_int_distribution<size_t> pick(
      0, sizeof(kFragments) / sizeof(kFragments[0]) - 1);
  std::uniform_int_distribution<int> len(0, 40);
  std::string out;
  int pieces = len(rng);
  for (int i = 0; i < pieces; ++i) out += kFragments[pick(rng)];
  return out;
}

std::string RandomBytes(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> len(0, 512);
  std::uniform_int_distribution<int> byte(0, 255);
  std::string out;
  int n = len(rng);
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(static_cast<char>(byte(rng)));
  return out;
}

std::string MutatedProgram(std::mt19937_64& rng) {
  std::string base =
      "s(a). e(a, b).\n"
      "[step] e(X, Y), s(Y) :- s(X).\n"
      "[base] t(X, Y) :- e(X, Y).\n"
      "?(X) :- t(a, X).\n";
  std::uniform_int_distribution<int> mutations(1, 8);
  std::uniform_int_distribution<int> byte(0, 255);
  int count = mutations(rng);
  for (int i = 0; i < count && !base.empty(); ++i) {
    std::uniform_int_distribution<size_t> pos(0, base.size() - 1);
    switch (rng() % 3) {
      case 0: base[pos(rng)] = static_cast<char>(byte(rng)); break;
      case 1: base.erase(pos(rng), 1); break;
      default:
        base.insert(pos(rng), 1, static_cast<char>(byte(rng)));
        break;
    }
  }
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seconds = 5;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    uint64_t value = 0;
    if (std::sscanf(argv[i], "-max_total_time=%llu",
                    reinterpret_cast<unsigned long long*>(&value)) == 1) {
      seconds = value;
    } else if (std::sscanf(argv[i], "-seed=%llu",
                           reinterpret_cast<unsigned long long*>(&value)) ==
               1) {
      seed = value;
    }
  }

  std::mt19937_64 rng(seed);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  uint64_t iterations = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    std::string input;
    switch (iterations % 3) {
      case 0: input = GrammarSoup(rng); break;
      case 1: input = RandomBytes(rng); break;
      default: input = MutatedProgram(rng); break;
    }
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
    ++iterations;
  }
  std::printf("standalone fuzz driver: %llu inputs, seed %llu, no crashes\n",
              static_cast<unsigned long long>(iterations),
              static_cast<unsigned long long>(seed));
  return 0;
}
