// FIG5/6 — reproduces the robust-sequence construction of Figures 5–6 and
// the Section 8 worked example as measured series on the staircase's core
// chase:
//   |G_i|     size of the robust sequence element (isomorphic to F_i);
//   |U_i|     forwarded union — the finite prefix of D⊛;
//   renamed   variables moved by π_i (bounded per variable by its rank —
//             Proposition 10);
//   stable    variables of U_i unchanged for at least one step.
// Afterwards: the natural-vs-robust aggregation contrast (Propositions 5
// vs 11–12) and the bookkeeping overhead of the robust construction.
#include <cstdio>

#include "core/chase.h"
#include "core/robust.h"
#include "hom/isomorphism.h"
#include "kb/examples.h"
#include "tw/grid.h"
#include "tw/treewidth.h"
#include "util/stopwatch.h"

int main() {
  using namespace twchase;
  StaircaseWorld world;

  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = 60;
  auto run = RunChase(world.kb(), options);
  if (!run.ok()) {
    std::printf("chase failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const Derivation& d = run->derivation;

  Stopwatch robust_watch;
  RobustAggregator agg = RobustAggregator::FromDerivation(d);
  double robust_seconds = robust_watch.ElapsedSeconds();

  std::printf("FIG5/6: robust sequence along the staircase core chase\n");
  std::printf("%5s %8s %8s %9s %8s\n", "step", "|G_i|", "|U_i|", "renamed",
              "stable");
  const auto& stats = agg.stats();
  for (size_t i = 0; i < stats.size(); i += 6) {
    std::printf("%5zu %8zu %8zu %9zu %8zu\n", i, stats[i].g_size,
                stats[i].union_size, stats[i].renamed_variables,
                stats[i].stable_variables);
  }

  Stopwatch natural_watch;
  AtomSet natural = d.NaturalAggregation();
  double natural_seconds = natural_watch.ElapsedSeconds();

  TreewidthResult natural_tw = ComputeTreewidth(natural);
  TreewidthResult robust_tw = ComputeTreewidth(agg.Aggregate());
  int natural_grid = GridLowerBound(natural, 6);

  std::printf("\naggregation comparison (the paper's central contrast):\n");
  std::printf("%-24s %8s %14s %10s\n", "aggregation", "atoms", "treewidth",
              "time");
  std::printf("%-24s %8zu %9s>=%-3d %9.3fs\n", "natural D* (Prop. 1/5)",
              natural.size(), "", std::max(natural_tw.lower_bound, natural_grid),
              natural_seconds);
  std::printf("%-24s %8zu %10s<=%-3d %9.3fs\n", "robust D~ (Prop. 11/12)",
              agg.Aggregate().size(), "", robust_tw.upper_bound,
              robust_seconds);

  // The robust aggregate cut at a collapse is a column prefix of Ỹ^h.
  for (int h = 1; h <= 40; ++h) {
    RobustAggregator cut = RobustAggregator::FromDerivation(d, 49);
    if (AreIsomorphic(cut.Aggregate(), world.InfiniteColumnPrefix(h))) {
      std::printf(
          "\nrobust aggregate at the last collapse ~ column prefix of height "
          "%d\n(the finitely universal model Ỹ^h of Section 8)\n",
          h);
      break;
    }
  }
  return 0;
}
