// ENG — engine microbenchmarks (google-benchmark): the substrate costs
// underlying every figure. Not from the paper; included so readers can
// judge where the core chase's time goes (spoiler: core computation).
#include <benchmark/benchmark.h>

#include "core/chase.h"
#include "hom/core.h"
#include "hom/matcher.h"
#include "kb/examples.h"
#include "kb/generators.h"
#include "tw/exact.h"
#include "tw/grid.h"
#include "tw/heuristics.h"
#include "tw/treewidth.h"
#include "util/random.h"

namespace twchase {
namespace {

void BM_HomPathIntoGrid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Vocabulary vocab;
  AtomSet grid = MakeGridInstance(&vocab, "h", "v", n, n);
  AtomSet path = MakePathInstance(&vocab, "h", n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExistsHomomorphism(path, grid));
  }
}
BENCHMARK(BM_HomPathIntoGrid)->Arg(4)->Arg(8)->Arg(12);

void BM_HomRandomSelfJoin(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  Rng rng(42);
  Vocabulary vocab;
  AtomSet instance =
      MakeRandomBinaryInstance(&vocab, "e", terms, terms * 2, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExistsHomomorphism(instance, instance));
  }
}
BENCHMARK(BM_HomRandomSelfJoin)->Arg(16)->Arg(32)->Arg(64);

void BM_CoreComputationRedundant(benchmark::State& state) {
  int redundancy = static_cast<int>(state.range(0));
  Vocabulary vocab;
  AtomSet instance = MakeRedundantInstance(&vocab, "e", 5, redundancy);
  for (auto _ : state) {
    CoreResult result = ComputeCore(instance);
    benchmark::DoNotOptimize(result.core.size());
  }
  state.counters["atoms"] = static_cast<double>(instance.size());
}
BENCHMARK(BM_CoreComputationRedundant)->Arg(2)->Arg(6)->Arg(12);

void BM_CoreVerifyStaircaseStep(benchmark::State& state) {
  // The all-variables UNSAT verification on a staircase step (a core).
  StaircaseWorld world;
  AtomSet step = world.Step(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CoreResult result = ComputeCore(step);
    benchmark::DoNotOptimize(result.core.size());
  }
}
BENCHMARK(BM_CoreVerifyStaircaseStep)->Arg(3)->Arg(6)->Arg(9);

void BM_ExactTreewidthGrid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = Graph::Grid(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactTreewidth(g).value());
  }
}
BENCHMARK(BM_ExactTreewidthGrid)->Arg(3)->Arg(4);

void BM_MinFillGrid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = Graph::Grid(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HeuristicUpperBound(g, EliminationHeuristic::kMinFill));
  }
}
BENCHMARK(BM_MinFillGrid)->Arg(4)->Arg(8)->Arg(16);

void BM_GridDetection(benchmark::State& state) {
  StaircaseWorld world;
  AtomSet prefix = world.UniversalModelPrefix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GridLowerBound(prefix, 4));
  }
}
BENCHMARK(BM_GridDetection)->Arg(4)->Arg(6)->Arg(8);

void BM_ChaseVariant(benchmark::State& state) {
  ChaseVariant variant = static_cast<ChaseVariant>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto kb = MakeTransitiveClosure(6);
    state.ResumeTiming();
    ChaseOptions options;
    options.variant = variant;
    options.max_steps = 500;
    options.keep_snapshots = false;
    auto run = RunChase(kb, options);
    benchmark::DoNotOptimize(run->steps);
  }
}
BENCHMARK(BM_ChaseVariant)
    ->Arg(static_cast<int>(ChaseVariant::kOblivious))
    ->Arg(static_cast<int>(ChaseVariant::kSemiOblivious))
    ->Arg(static_cast<int>(ChaseVariant::kRestricted))
    ->Arg(static_cast<int>(ChaseVariant::kCore));

void BM_StaircaseCoreChase(benchmark::State& state) {
  size_t steps = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    StaircaseWorld world;
    state.ResumeTiming();
    ChaseOptions options;
    options.variant = ChaseVariant::kCore;
    options.max_steps = steps;
    options.keep_snapshots = false;
    auto run = RunChase(world.kb(), options);
    benchmark::DoNotOptimize(run->steps);
  }
}
BENCHMARK(BM_StaircaseCoreChase)->Arg(15)->Arg(30)->Arg(45);

}  // namespace
}  // namespace twchase

BENCHMARK_MAIN();
