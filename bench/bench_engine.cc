// ENG — engine benchmarks.
//
// Default mode: the delta-evaluation sweep. Runs every chase workload twice
// (semi-naive delta trigger generation ON and OFF — identical runs by
// construction, see tests/delta_differential_test.cc) and writes the
// machine-readable comparison to BENCH_engine.json in the working directory:
// per workload the rounds, steps, trigger counts, wall milliseconds and the
// peak instance size, plus the OFF/ON speedup. A second section sweeps
// --threads over the parallel trigger-evaluation path (1/2/4/hardware
// concurrency), verifies sequential-vs-parallel parity per workload, and
// records per-thread-count wall times, speedups and the parallel stats.
//
// A third section sweeps the homomorphism-matching backend (columnar
// join-based vs legacy per-atom backtracking) over trigger-heavy random
// workloads, verifies backend parity, and records per-backend wall times,
// speedups and the chase.match.* counters. A fourth section runs the
// large-instance family (scaled transitive closure and a wide guarded
// chain, each ≥100k atoms) columnar-only under a governor memory budget.
// A fifth section sweeps the execution planner (--plan off/on) over the
// core-chase workloads, verifies bit-parity, and records the planner stats
// (reliance edges, strata, dormancy skips, still-core certificates) — the
// staircase-core row backs the planner regression gate in tools/check.sh.
// A sixth section measures daemon throughput: an in-process ChaseDaemon
// serving identical core-chase jobs over real HTTP at 1, 4 and 8 concurrent
// tenants, reporting jobs/sec (submit-to-terminal) per tenant count and
// verifying every job's final instance hash agrees.
// A seventh section measures the termination-analysis preflight: wall time
// and verdict per witness program (the paper's worlds plus twgen-generated
// programs of every labeled class), failing on any misclassification — the
// cost of --variant=auto is this sweep's headline number.
//
// `--micro` mode: the google-benchmark microbenchmarks of the substrate
// costs underlying every figure (homomorphism search, core computation,
// treewidth). Extra arguments are passed through to google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/generator.h"
#include "analysis/preflight.h"
#include "core/chase.h"
#include "hom/core.h"
#include "parser/parser.h"
#include "hom/matcher.h"
#include "obs/metrics.h"
#include "kb/examples.h"
#include "kb/generators.h"
#include "kb/knowledge_base.h"
#include "service/daemon.h"
#include "service/http.h"
#include "service/json.h"
#include "service/wire.h"
#include "util/governor.h"
#include "tw/exact.h"
#include "tw/grid.h"
#include "tw/heuristics.h"
#include "tw/treewidth.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace twchase {
namespace {

void BM_HomPathIntoGrid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Vocabulary vocab;
  AtomSet grid = MakeGridInstance(&vocab, "h", "v", n, n);
  AtomSet path = MakePathInstance(&vocab, "h", n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExistsHomomorphism(path, grid));
  }
}
BENCHMARK(BM_HomPathIntoGrid)->Arg(4)->Arg(8)->Arg(12);

void BM_HomRandomSelfJoin(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  Rng rng(42);
  Vocabulary vocab;
  AtomSet instance =
      MakeRandomBinaryInstance(&vocab, "e", terms, terms * 2, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExistsHomomorphism(instance, instance));
  }
}
BENCHMARK(BM_HomRandomSelfJoin)->Arg(16)->Arg(32)->Arg(64);

void BM_CoreComputationRedundant(benchmark::State& state) {
  int redundancy = static_cast<int>(state.range(0));
  Vocabulary vocab;
  AtomSet instance = MakeRedundantInstance(&vocab, "e", 5, redundancy);
  for (auto _ : state) {
    CoreResult result = ComputeCore(instance);
    benchmark::DoNotOptimize(result.core.size());
  }
  state.counters["atoms"] = static_cast<double>(instance.size());
}
BENCHMARK(BM_CoreComputationRedundant)->Arg(2)->Arg(6)->Arg(12);

void BM_CoreVerifyStaircaseStep(benchmark::State& state) {
  // The all-variables UNSAT verification on a staircase step (a core).
  StaircaseWorld world;
  AtomSet step = world.Step(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CoreResult result = ComputeCore(step);
    benchmark::DoNotOptimize(result.core.size());
  }
}
BENCHMARK(BM_CoreVerifyStaircaseStep)->Arg(3)->Arg(6)->Arg(9);

void BM_ExactTreewidthGrid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = Graph::Grid(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactTreewidth(g).value());
  }
}
BENCHMARK(BM_ExactTreewidthGrid)->Arg(3)->Arg(4);

void BM_MinFillGrid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = Graph::Grid(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HeuristicUpperBound(g, EliminationHeuristic::kMinFill));
  }
}
BENCHMARK(BM_MinFillGrid)->Arg(4)->Arg(8)->Arg(16);

void BM_GridDetection(benchmark::State& state) {
  StaircaseWorld world;
  AtomSet prefix = world.UniversalModelPrefix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GridLowerBound(prefix, 4));
  }
}
BENCHMARK(BM_GridDetection)->Arg(4)->Arg(6)->Arg(8);

void BM_ChaseVariant(benchmark::State& state) {
  ChaseVariant variant = static_cast<ChaseVariant>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto kb = MakeTransitiveClosure(6);
    state.ResumeTiming();
    ChaseOptions options;
    options.variant = variant;
    options.limits.max_steps = 500;
    options.keep_snapshots = false;
    auto run = RunChase(kb, options);
    benchmark::DoNotOptimize(run->steps);
  }
}
BENCHMARK(BM_ChaseVariant)
    ->Arg(static_cast<int>(ChaseVariant::kOblivious))
    ->Arg(static_cast<int>(ChaseVariant::kSemiOblivious))
    ->Arg(static_cast<int>(ChaseVariant::kRestricted))
    ->Arg(static_cast<int>(ChaseVariant::kCore));

void BM_StaircaseCoreChase(benchmark::State& state) {
  size_t steps = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    StaircaseWorld world;
    state.ResumeTiming();
    ChaseOptions options;
    options.variant = ChaseVariant::kCore;
    options.limits.max_steps = steps;
    options.keep_snapshots = false;
    auto run = RunChase(world.kb(), options);
    benchmark::DoNotOptimize(run->steps);
  }
}
BENCHMARK(BM_StaircaseCoreChase)->Arg(15)->Arg(30)->Arg(45);

// ---------------------------------------------------------------------------
// Delta-evaluation sweep (default mode).

struct SweepWorkload {
  std::string name;
  ChaseVariant variant;
  size_t max_steps;
  std::function<KnowledgeBase()> make_kb;  // fresh KB per run (nulls are minted
                                           // into the KB's vocabulary)
};

struct SweepMeasurement {
  double wall_ms = 0;
  ChaseResult result;
};

SweepMeasurement MeasureChase(const SweepWorkload& workload, bool delta_on,
                              int repetitions, Histogram* phase_ms,
                              size_t threads = 1) {
  SweepMeasurement best;
  for (int rep = 0; rep < repetitions; ++rep) {
    KnowledgeBase kb = workload.make_kb();
    ChaseOptions options;
    options.variant = workload.variant;
    options.limits.max_steps = workload.max_steps;
    options.keep_snapshots = false;
    options.delta.enabled = delta_on;
    options.parallel.threads = threads;
    Stopwatch watch;
    auto run = RunChase(kb, options);
    double ms = watch.ElapsedMillis();
    if (phase_ms != nullptr) phase_ms->Observe(ms);
    if (!run.ok()) {
      std::fprintf(stderr, "workload %s failed: %s\n", workload.name.c_str(),
                   run.status().message().c_str());
      continue;
    }
    if (rep == 0 || ms < best.wall_ms) {
      best.wall_ms = ms;
      best.result = std::move(*run);
    }
  }
  return best;
}

void AppendSide(std::string* json, const char* key,
                const SweepMeasurement& m) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"rounds\": %zu, \"steps\": %zu, "
                "\"terminated\": %s, \"wall_ms\": %.3f, "
                "\"triggers_found\": %zu, \"triggers_considered\": %zu, "
                "\"full_enumerations\": %zu, \"seed_probes\": %zu, "
                "\"matches_invalidated\": %zu, \"peak_atoms\": %zu, "
                "\"final_atoms\": %zu}",
                key, m.result.rounds, m.result.steps,
                m.result.terminated ? "true" : "false", m.wall_ms,
                m.result.stats.triggers_found,
                m.result.stats.triggers_considered,
                m.result.stats.full_enumerations, m.result.stats.seed_probes,
                m.result.stats.matches_invalidated,
                m.result.stats.peak_instance_size,
                m.result.derivation.Last().size());
  *json += buffer;
}

// Sweeps --threads over the parallel trigger-evaluation path and returns
// the "thread_sweep" JSON object (empty string on parity violation). Every
// thread count must reproduce the threads=1 run exactly — same steps,
// rounds and final instance — so the sweep doubles as a coarse determinism
// check on real workloads. Note: speedup is bounded by the host; on a
// single-core container every parallel count is pure overhead, which the
// recorded hardware_concurrency makes explicit.
std::string RunThreadSweep(MetricsRegistry* registry) {
  std::vector<SweepWorkload> workloads;
  workloads.push_back({"transitive-closure-12", ChaseVariant::kRestricted,
                       2000, [] { return MakeTransitiveClosure(12); }});
  workloads.push_back({"staircase-restricted", ChaseVariant::kRestricted, 120,
                       [] { return StaircaseWorld().kb(); }});
  workloads.push_back({"elevator-core", ChaseVariant::kCore, 60,
                       [] { return ElevatorWorld().kb(); }});

  size_t hw = ThreadPool::HardwareConcurrency();
  std::vector<size_t> counts = {1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) counts.push_back(hw);

  std::string json = "  \"thread_sweep\": {\n";
  json += "    \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "    \"workloads\": [\n";
  std::printf("\n%-26s %-14s %8s %10s %10s %8s\n", "workload", "variant",
              "threads", "wall ms", "speedup", "tasks");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const SweepWorkload& workload = workloads[i];
    json += "      {\n        \"name\": \"" + workload.name + "\",\n";
    json += "        \"variant\": \"";
    json += ChaseVariantName(workload.variant);
    json += "\",\n        \"by_threads\": [\n";
    SweepMeasurement baseline;
    for (size_t t = 0; t < counts.size(); ++t) {
      size_t threads = counts[t];
      SweepMeasurement m = MeasureChase(
          workload, /*delta_on=*/true, 3,
          registry->GetHistogram("phase." + workload.name + ".threads" +
                                 std::to_string(threads) + ".wall_ms"),
          threads);
      if (threads == 1) {
        baseline = m;
      } else if (m.result.steps != baseline.result.steps ||
                 m.result.rounds != baseline.result.rounds ||
                 !(m.result.derivation.Last() ==
                   baseline.result.derivation.Last())) {
        std::fprintf(stderr,
                     "PARITY VIOLATION on %s: threads=%zu diverges from "
                     "sequential\n",
                     workload.name.c_str(), threads);
        return "";
      }
      double speedup = m.wall_ms > 0 ? baseline.wall_ms / m.wall_ms : 0;
      std::printf("%-26s %-14s %8zu %9.2f %7.2fx %8zu\n",
                  workload.name.c_str(), ChaseVariantName(workload.variant),
                  threads, m.wall_ms, speedup, m.result.stats.parallel_tasks);
      char buffer[512];
      std::snprintf(buffer, sizeof(buffer),
                    "          {\"threads\": %zu, \"wall_ms\": %.3f, "
                    "\"speedup_vs_sequential\": %.2f, \"steps\": %zu, "
                    "\"parallel_rounds\": %zu, \"parallel_tasks\": %zu, "
                    "\"parallel_eval_ms\": %.3f, \"parallel_merge_ms\": %.3f, "
                    "\"max_imbalance\": %zu}",
                    threads, m.wall_ms,
                    m.wall_ms > 0 ? baseline.wall_ms / m.wall_ms : 0.0,
                    m.result.steps, m.result.stats.parallel_rounds,
                    m.result.stats.parallel_tasks,
                    m.result.stats.parallel_eval_ms,
                    m.result.stats.parallel_merge_ms,
                    m.result.stats.parallel_max_imbalance);
      json += buffer;
      json += (t + 1 < counts.size()) ? ",\n" : "\n";
    }
    json += "        ]\n";
    json += (i + 1 < workloads.size()) ? "      },\n" : "      }\n";
  }
  json += "    ]\n  }";
  return json;
}

// ---------------------------------------------------------------------------
// Backend sweep and large-instance family.

// Dense random digraph with the triangle-closure rule: the body is a
// three-way self-join of e, so trigger enumeration dominates the run and
// the matching backend is the variable under test.
KnowledgeBase MakeDenseTriangles(int nodes, int edges, uint64_t seed) {
  KbBuilder b;
  Term x = b.V("X"), y = b.V("Y"), z = b.V("Z");
  Rng rng(seed);
  auto node = [&](int64_t i) { return b.C("n" + std::to_string(i)); };
  for (int i = 0; i < edges; ++i) {
    b.Fact("e", {node(rng.Uniform(0, nodes - 1)),
                 node(rng.Uniform(0, nodes - 1))});
  }
  b.AddRule("tri", {b.A("e", {x, y}), b.A("e", {y, z}), b.A("e", {x, z})},
            {b.A("tri", {x, z})});
  return b.Build();
}

// Wide-tuple self-join over a ternary relation: each candidate check walks
// three argument positions, so the per-candidate cost gap between columnar
// integer compares and legacy term unification is at its widest.
KnowledgeBase MakeWideJoin(int nodes, int facts, uint64_t seed) {
  KbBuilder b;
  Term x = b.V("X"), y = b.V("Y"), z = b.V("Z"), w = b.V("W");
  Rng rng(seed);
  auto node = [&](int64_t i) { return b.C("n" + std::to_string(i)); };
  for (int i = 0; i < facts; ++i) {
    b.Fact("r", {node(rng.Uniform(0, nodes - 1)),
                 node(rng.Uniform(0, nodes - 1)),
                 node(rng.Uniform(0, nodes - 1))});
  }
  b.AddRule("wj", {b.A("r", {x, y, z}), b.A("r", {z, y, w})},
            {b.A("j", {x, w})});
  return b.Build();
}

// Transitive closure of a dense random digraph. Recursive (t feeds its own
// body), so unlike the join workloads above most wall time goes to trigger
// revalidation and application rather than enumeration — kept in the sweep
// as the honest Amdahl baseline for the backend comparison.
KnowledgeBase MakeDenseTc(int nodes, int edges, uint64_t seed) {
  KbBuilder b;
  Term x = b.V("X"), y = b.V("Y"), z = b.V("Z");
  Rng rng(seed);
  auto node = [&](int64_t i) { return b.C("n" + std::to_string(i)); };
  for (int i = 0; i < edges; ++i) {
    b.Fact("e", {node(rng.Uniform(0, nodes - 1)),
                 node(rng.Uniform(0, nodes - 1))});
  }
  b.AddRule("base", {b.A("e", {x, y})}, {b.A("t", {x, y})});
  b.AddRule("step", {b.A("e", {x, y}), b.A("t", {y, z})}, {b.A("t", {x, z})});
  return b.Build();
}

// `seeds` independent chains advanced by a 3-cycle of existential rules:
// every round appends one fresh-null atom per chain, growing the instance
// past 100k atoms in a few dozen rounds without the instance-squared trigger
// growth of transitive closure.
KnowledgeBase MakeWideGuardedChain(int seeds, int cycle) {
  KbBuilder b;
  Term x = b.V("X"), y = b.V("Y");
  for (int i = 0; i < seeds; ++i) {
    b.Fact("r0", {b.C("a" + std::to_string(i)), b.C("b" + std::to_string(i))});
  }
  for (int i = 0; i < cycle; ++i) {
    std::string from = "r" + std::to_string(i);
    std::string to = "r" + std::to_string((i + 1) % cycle);
    b.AddRule(from + "-" + to, {b.A(from, {x, y})},
              {b.A(to, {y, b.V("Z" + std::to_string(i))})});
  }
  return b.Build();
}

SweepMeasurement MeasureWithBackend(const SweepWorkload& workload,
                                    MatchBackend backend, int repetitions,
                                    Histogram* phase_ms) {
  MatchBackend previous = CurrentMatchBackend();
  SetMatchBackend(backend);
  SweepMeasurement m =
      MeasureChase(workload, /*delta_on=*/true, repetitions, phase_ms);
  SetMatchBackend(previous);
  return m;
}

void AppendBackendSide(std::string* json, const char* key,
                       const SweepMeasurement& m) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"wall_ms\": %.3f, \"steps\": %zu, "
                "\"rounds\": %zu, \"peak_atoms\": %zu, "
                "\"index_probes\": %llu, \"column_scans\": %llu, "
                "\"join_fallbacks\": %llu, \"index_builds\": %llu, "
                "\"index_build_bytes\": %llu}",
                key, m.wall_ms, m.result.steps, m.result.rounds,
                m.result.stats.peak_instance_size,
                static_cast<unsigned long long>(
                    m.result.stats.match_index_probes),
                static_cast<unsigned long long>(
                    m.result.stats.match_column_scans),
                static_cast<unsigned long long>(
                    m.result.stats.match_join_fallbacks),
                static_cast<unsigned long long>(
                    m.result.stats.match_index_builds),
                static_cast<unsigned long long>(
                    m.result.stats.match_index_build_bytes));
  *json += buffer;
}

// Sweeps the matching backend over trigger-heavy workloads and returns the
// "backend_sweep" JSON object (empty string on parity violation). Both
// backends must produce the same run — the storage-equivalence suite pins
// bit-identity; this is the coarse re-check on bench-scale inputs.
std::string RunBackendSweep(MetricsRegistry* registry) {
  std::vector<SweepWorkload> workloads;
  workloads.push_back({"triangles-dense-400", ChaseVariant::kRestricted,
                       2000000, [] { return MakeDenseTriangles(400, 32000, 19); }});
  workloads.push_back({"wide-join-80", ChaseVariant::kRestricted, 2000000,
                       [] { return MakeWideJoin(80, 40000, 17); }});
  workloads.push_back({"transitive-closure-dense-200", ChaseVariant::kRestricted,
                       2000000, [] { return MakeDenseTc(200, 1200, 7); }});

  std::string json = "  \"backend_sweep\": {\n    \"workloads\": [\n";
  std::printf("\n%-30s %10s %10s %10s\n", "workload", "legacy ms",
              "columnar", "speedup");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const SweepWorkload& workload = workloads[i];
    SweepMeasurement legacy = MeasureWithBackend(
        workload, MatchBackend::kLegacy, 2,
        registry->GetHistogram("phase." + workload.name + ".legacy.wall_ms"));
    SweepMeasurement columnar = MeasureWithBackend(
        workload, MatchBackend::kColumnar, 2,
        registry->GetHistogram("phase." + workload.name + ".columnar.wall_ms"));
    if (legacy.result.steps != columnar.result.steps ||
        legacy.result.rounds != columnar.result.rounds ||
        !(legacy.result.derivation.Last() ==
          columnar.result.derivation.Last())) {
      std::fprintf(stderr, "PARITY VIOLATION on %s: backends disagree\n",
                   workload.name.c_str());
      return "";
    }
    double speedup =
        columnar.wall_ms > 0 ? legacy.wall_ms / columnar.wall_ms : 0;
    std::printf("%-30s %9.2f %9.2f %9.2fx\n", workload.name.c_str(),
                legacy.wall_ms, columnar.wall_ms, speedup);
    json += "      {\n        \"name\": \"" + workload.name + "\",\n";
    json += "        \"variant\": \"";
    json += ChaseVariantName(workload.variant);
    json += "\",\n";
    AppendBackendSide(&json, "legacy", legacy);
    json += ",\n";
    AppendBackendSide(&json, "columnar", columnar);
    char buffer[80];
    std::snprintf(buffer, sizeof(buffer),
                  ",\n      \"speedup_columnar_vs_legacy\": %.2f\n", speedup);
    json += buffer;
    json += (i + 1 < workloads.size()) ? "      },\n" : "      }\n";
  }
  json += "    ]\n  }";
  return json;
}

// Runs the ≥100k-atom family columnar-only under a governor memory budget
// and returns the "large_instance" JSON object (empty string when a run
// fails or trips the budget — completing inside it is the acceptance bar).
std::string RunLargeInstanceSweep(MetricsRegistry* registry) {
  constexpr size_t kBudgetBytes = 1536ull * 1024 * 1024;
  std::vector<SweepWorkload> workloads;
  workloads.push_back({"transitive-closure-450", ChaseVariant::kRestricted,
                       2000000, [] { return MakeTransitiveClosure(450); }});
  workloads.push_back({"guarded-chain-wide-2600", ChaseVariant::kRestricted,
                       110000, [] { return MakeWideGuardedChain(2600, 3); }});

  MatchBackend previous = CurrentMatchBackend();
  SetMatchBackend(MatchBackend::kColumnar);
  std::string json = "  \"large_instance\": {\n";
  json += "    \"memory_budget_bytes\": " + std::to_string(kBudgetBytes) +
          ",\n    \"workloads\": [\n";
  std::printf("\n%-30s %10s %10s %10s %14s\n", "workload", "wall ms", "steps",
              "peak atoms", "stop");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const SweepWorkload& workload = workloads[i];
    KnowledgeBase kb = workload.make_kb();
    ChaseOptions options;
    options.variant = workload.variant;
    options.limits.max_steps = workload.max_steps;
    options.limits.memory_budget_bytes = kBudgetBytes;
    options.keep_snapshots = false;
    Stopwatch watch;
    auto run = RunChase(kb, options);
    double wall_ms = watch.ElapsedMillis();
    registry->GetHistogram("phase." + workload.name + ".wall_ms")
        ->Observe(wall_ms);
    if (!run.ok() || run->stop_reason == StopReason::kMemoryBudget) {
      std::fprintf(stderr, "large-instance workload %s %s\n",
                   workload.name.c_str(),
                   run.ok() ? "tripped the memory budget" : "failed");
      SetMatchBackend(previous);
      return "";
    }
    std::printf("%-30s %9.2f %10zu %10zu %14s\n", workload.name.c_str(),
                wall_ms, run->steps, run->stats.peak_instance_size,
                StopReasonName(run->stop_reason));
    char buffer[640];
    std::snprintf(
        buffer, sizeof(buffer),
        "      {\"name\": \"%s\", \"variant\": \"%s\", \"wall_ms\": %.3f, "
        "\"steps\": %zu, \"rounds\": %zu, \"peak_atoms\": %zu, "
        "\"final_atoms\": %zu, \"stop_reason\": \"%s\", "
        "\"index_probes\": %llu, \"index_builds\": %llu, "
        "\"index_build_bytes\": %llu}",
        workload.name.c_str(), ChaseVariantName(workload.variant), wall_ms,
        run->steps, run->rounds, run->stats.peak_instance_size,
        run->derivation.Last().size(), StopReasonName(run->stop_reason),
        static_cast<unsigned long long>(run->stats.match_index_probes),
        static_cast<unsigned long long>(run->stats.match_index_builds),
        static_cast<unsigned long long>(run->stats.match_index_build_bytes));
    json += buffer;
    json += (i + 1 < workloads.size()) ? ",\n" : "\n";
  }
  SetMatchBackend(previous);
  json += "    ]\n  }";
  return json;
}

// ---------------------------------------------------------------------------
// Execution-planner sweep.

// Runs the core-chase workloads with the planner off and on and returns the
// "plan_sweep" JSON object (empty string on parity violation). The planner's
// contract is bit-identity — dormant-rule skips are provably empty
// enumerations and still-core certificates replace zero-fold ComputeCore
// calls — so the off/on pair must be the same run, and the speedup column is
// pure saved work (mostly fold searches on the core variant).
std::string RunPlanSweep(MetricsRegistry* registry) {
  std::vector<SweepWorkload> workloads;
  workloads.push_back({"staircase-core", ChaseVariant::kCore, 45,
                       [] { return StaircaseWorld().kb(); }});
  workloads.push_back({"elevator-core", ChaseVariant::kCore, 60,
                       [] { return ElevatorWorld().kb(); }});
  workloads.push_back({"staircase-restricted", ChaseVariant::kRestricted, 120,
                       [] { return StaircaseWorld().kb(); }});

  auto measure = [&](const SweepWorkload& workload, bool plan_on) {
    SweepMeasurement best;
    for (int rep = 0; rep < 3; ++rep) {
      KnowledgeBase kb = workload.make_kb();
      ChaseOptions options;
      options.variant = workload.variant;
      options.limits.max_steps = workload.max_steps;
      options.keep_snapshots = false;
      options.plan.enabled = plan_on;
      Stopwatch watch;
      auto run = RunChase(kb, options);
      double ms = watch.ElapsedMillis();
      registry
          ->GetHistogram("phase." + workload.name + ".plan_" +
                         (plan_on ? "on" : "off") + ".wall_ms")
          ->Observe(ms);
      if (!run.ok()) {
        std::fprintf(stderr, "workload %s failed: %s\n", workload.name.c_str(),
                     run.status().message().c_str());
        continue;
      }
      if (rep == 0 || ms < best.wall_ms) {
        best.wall_ms = ms;
        best.result = std::move(*run);
      }
    }
    return best;
  };

  std::string json = "  \"plan_sweep\": {\n    \"workloads\": [\n";
  std::printf("\n%-26s %-14s %10s %10s %10s %10s\n", "workload", "variant",
              "off ms", "on ms", "speedup", "certified");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const SweepWorkload& workload = workloads[i];
    SweepMeasurement off = measure(workload, /*plan_on=*/false);
    SweepMeasurement on = measure(workload, /*plan_on=*/true);
    if (on.result.steps != off.result.steps ||
        on.result.rounds != off.result.rounds ||
        !(on.result.derivation.Last() == off.result.derivation.Last())) {
      std::fprintf(stderr, "PARITY VIOLATION on %s: plan on/off disagree\n",
                   workload.name.c_str());
      return "";
    }
    double speedup = on.wall_ms > 0 ? off.wall_ms / on.wall_ms : 0;
    std::printf("%-26s %-14s %9.2f %9.2f %9.2fx %10zu\n",
                workload.name.c_str(), ChaseVariantName(workload.variant),
                off.wall_ms, on.wall_ms, speedup,
                on.result.stats.plan_core_certified);
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "      {\"name\": \"%s\", \"variant\": \"%s\", \"steps\": %zu,\n"
        "       \"plan_off\": {\"wall_ms\": %.3f, \"core_full\": %zu},\n"
        "       \"plan_on\": {\"wall_ms\": %.3f, \"core_full\": %zu,\n"
        "        \"reliance_edges\": %zu, \"strata\": %zu, "
        "\"dormant_rules\": %zu,\n"
        "        \"enumerations_skipped\": %zu, \"probes_skipped\": %zu,\n"
        "        \"core_proofs\": %zu, \"core_certified\": %zu},\n"
        "       \"speedup\": %.2f}",
        workload.name.c_str(), ChaseVariantName(workload.variant),
        on.result.steps, off.wall_ms, off.result.stats.core_full, on.wall_ms,
        on.result.stats.core_full, on.result.stats.plan_reliance_edges,
        on.result.stats.plan_strata, on.result.stats.plan_dormant_rules,
        on.result.stats.plan_enumerations_skipped,
        on.result.stats.plan_probes_skipped, on.result.stats.plan_core_proofs,
        on.result.stats.plan_core_certified, speedup);
    json += buffer;
    json += (i + 1 < workloads.size()) ? ",\n" : "\n";
  }
  json += "    ]\n  }";
  return json;
}

// ---------------------------------------------------------------------------
// Service sweep.

// Measures daemon job throughput over real HTTP: an in-process ChaseDaemon
// (4 chase workers, loopback HTTP) serves 6 identical staircase core-chase
// jobs per tenant at 1, 4 and 8 concurrent tenants; the row records the
// wall time from the first submission to the last terminal poll and the
// resulting jobs/sec. Every job's final instance hash must agree — the jobs
// are the same program under the same options, so a divergent hash means
// the concurrent service path perturbed a run. Returns the "service_sweep"
// JSON object (empty string on any failure).
std::string RunServiceSweep(MetricsRegistry* registry) {
  constexpr const char* kProgram = R"(
f(X00), h(X00, X00).
[Rh1] h(X, Y), v(X, Xp), h(Xp, Yp), v(Y, Yp), c(Yp) :- h(X, X).
[Rh2] c(Yp), h(X, Y), v(Y, Yp) :- h(X, X), v(X, Xp), h(Xp, Xp), h(Xp, Yp).
[Rh3] f(Y), h(Y, Y) :- f(X), h(X, X), h(X, Y).
[Rh4] h(Xp, Xp) :- h(X, X), v(X, Xp), c(Xp).
? :- f(X), v(X, Y), c(Y).
)";
  constexpr size_t kJobsPerTenant = 6;

  ChaseOptions chase;
  chase.variant = ChaseVariant::kCore;
  chase.limits.max_steps = 45;

  std::string json = "  \"service_sweep\": {\n    \"rows\": [\n";
  std::printf("\n%-26s %8s %10s %12s\n", "service", "jobs", "wall ms",
              "jobs/sec");
  const size_t tenant_counts[] = {1, 4, 8};
  const size_t num_rows = sizeof(tenant_counts) / sizeof(tenant_counts[0]);
  for (size_t row = 0; row < num_rows; ++row) {
    const size_t tenants = tenant_counts[row];
    DaemonOptions options;
    options.workers = 4;
    options.per_tenant_quota = kJobsPerTenant;
    options.http_threads = 4;
    ChaseDaemon daemon(options);
    if (Status started = daemon.Start(); !started.ok()) {
      std::fprintf(stderr, "service sweep: daemon start failed: %s\n",
                   started.message().c_str());
      return "";
    }
    auto fetch = [&](const std::string& method, const std::string& target,
                     const std::string& body) {
      return HttpFetch("127.0.0.1", daemon.port(), method, target, body);
    };

    Json request = Json::Object();
    request.Set("schema_version", Json::Number(uint64_t{kWireSchemaVersion}));
    request.Set("program", Json::String(kProgram));
    request.Set("options", ChaseOptionsToJson(chase));

    Stopwatch watch;
    std::vector<std::string> ids;
    for (size_t t = 0; t < tenants; ++t) {
      request.Set("tenant", Json::String("tenant-" + std::to_string(t)));
      for (size_t j = 0; j < kJobsPerTenant; ++j) {
        auto response = fetch("POST", "/v1/jobs", request.Dump());
        if (!response.ok() || response->status != 202) {
          std::fprintf(stderr, "service sweep: submit failed (HTTP %d)\n",
                       response.ok() ? response->status : -1);
          return "";
        }
        auto body = Json::Parse(response->body);
        if (!body.ok()) return "";
        ids.push_back(body->Get("job").Get("id").string_value());
      }
    }
    std::string expected_hash;
    for (const std::string& id : ids) {
      while (true) {
        auto response = fetch("GET", "/v1/jobs/" + id, "");
        if (!response.ok()) return "";
        auto body = Json::Parse(response->body);
        if (!body.ok()) return "";
        const std::string state = body->Get("state").string_value();
        if (state == "done") break;
        if (state == "failed" || state == "cancelled") {
          std::fprintf(stderr, "service sweep: job %s ended %s\n", id.c_str(),
                       state.c_str());
          return "";
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      auto result = fetch("GET", "/v1/jobs/" + id + "/result", "");
      if (!result.ok() || result->status != 200) return "";
      auto body = Json::Parse(result->body);
      if (!body.ok()) return "";
      const std::string hash = body->Get("instance_hash").string_value();
      if (expected_hash.empty()) expected_hash = hash;
      if (hash != expected_hash) {
        std::fprintf(stderr,
                     "PARITY VIOLATION in service sweep: job %s hash %s != "
                     "%s\n",
                     id.c_str(), hash.c_str(), expected_hash.c_str());
        return "";
      }
    }
    const double wall_ms = watch.ElapsedMillis();
    daemon.Stop();
    if (daemon.InFlightJobs() != 0) {
      std::fprintf(stderr, "service sweep: %zu jobs leaked past Stop()\n",
                   daemon.InFlightJobs());
      return "";
    }
    const double jobs_per_sec =
        wall_ms > 0 ? 1000.0 * static_cast<double>(ids.size()) / wall_ms : 0;
    registry
        ->GetHistogram("service.sweep.tenants_" + std::to_string(tenants) +
                       ".wall_ms")
        ->Observe(wall_ms);
    const std::string label = std::to_string(tenants) + "-tenant daemon";
    std::printf("%-26s %8zu %9.2f %11.2f\n", label.c_str(), ids.size(),
                wall_ms, jobs_per_sec);
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "      {\"tenants\": %zu, \"jobs\": %zu, \"wall_ms\": %.3f, "
                  "\"jobs_per_sec\": %.2f}",
                  tenants, ids.size(), wall_ms, jobs_per_sec);
    json += buffer;
    json += (row + 1 < num_rows) ? ",\n" : "\n";
  }
  json += "    ]\n  }";
  return json;
}

// ---------------------------------------------------------------------------
// Preflight sweep.

// Measures RunPreflight wall time and verdict per witness program: the
// paper's worlds (staircase → core-bts, elevator → unknown), the class
// witnesses from kb/examples.h, and one twgen program per labeled class.
// Fails (returns "") on any verdict that contradicts the known class — a
// wrong verdict here means --variant=auto would mislead users. Returns the
// "preflight_sweep" JSON object.
std::string RunPreflightSweep(MetricsRegistry* registry) {
  struct Row {
    std::string name;
    KnowledgeBase kb;
    // The verdicts this program may legally receive (label taxonomy is not
    // the verdict lattice: e.g. a guarded fes program may be seen as fes).
    std::vector<TerminationClass> allowed;
  };
  auto generated = [](GeneratedClass label, uint64_t seed) {
    GeneratorOptions options;
    options.label = label;
    options.seed = seed;
    auto parsed = ParseProgram(GenerateProgram(options).text);
    return parsed.ok() ? parsed->kb : KnowledgeBase{};
  };
  std::vector<Row> rows;
  rows.push_back({"weakly-acyclic-pipeline", MakeWeaklyAcyclicPipeline(6),
                  {TerminationClass::kFes}});
  rows.push_back({"transitive-closure-8", MakeTransitiveClosure(8),
                  {TerminationClass::kFes}});
  rows.push_back({"guarded-chain", MakeGuardedChain(3),
                  {TerminationClass::kBts}});
  rows.push_back({"bts-not-fes", MakeBtsNotFes(), {TerminationClass::kBts}});
  rows.push_back({"fes-not-bts", MakeFesNotBts(), {TerminationClass::kFes}});
  rows.push_back({"staircase", StaircaseWorld().kb(),
                  {TerminationClass::kCoreBts}});
  rows.push_back({"elevator", ElevatorWorld().kb(),
                  {TerminationClass::kUnknown}});
  rows.push_back({"twgen-fes", generated(GeneratedClass::kFes, 5),
                  {TerminationClass::kFes}});
  rows.push_back({"twgen-bts", generated(GeneratedClass::kBts, 5),
                  {TerminationClass::kFes, TerminationClass::kBts}});
  rows.push_back({"twgen-core-bts", generated(GeneratedClass::kCoreBts, 5),
                  {TerminationClass::kBts, TerminationClass::kCoreBts,
                   TerminationClass::kUnknown}});
  rows.push_back(
      {"twgen-non-terminating",
       generated(GeneratedClass::kNonTerminating, 5),
       {TerminationClass::kBts, TerminationClass::kCoreBts,
        TerminationClass::kUnknown}});

  std::string json = "  \"preflight_sweep\": {\n    \"rows\": [\n";
  std::printf("\n%-26s %-10s %-14s %10s\n", "preflight", "verdict", "variant",
              "wall ms");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    Stopwatch watch;
    PreflightReport report = RunPreflight(row.kb);
    const double wall_ms = watch.ElapsedSeconds() * 1000.0;
    bool legal = false;
    for (TerminationClass allowed : row.allowed) {
      if (report.verdict == allowed) legal = true;
    }
    if (!legal) {
      std::fprintf(stderr,
                   "PREFLIGHT MISCLASSIFICATION on %s: verdict %s\n",
                   row.name.c_str(), TerminationClassName(report.verdict));
      return "";
    }
    registry->GetHistogram("preflight." + row.name + ".wall_ms")
        ->Observe(wall_ms);
    std::printf("%-26s %-10s %-14s %9.2f\n", row.name.c_str(),
                TerminationClassName(report.verdict),
                ChaseVariantName(report.recommended_variant), wall_ms);
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "      {\"name\": \"%s\", \"verdict\": \"%s\", "
                  "\"variant\": \"%s\", \"wall_ms\": %.3f}",
                  row.name.c_str(), TerminationClassName(report.verdict),
                  ChaseVariantName(report.recommended_variant), wall_ms);
    json += buffer;
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "    ]\n  }";
  return json;
}

int RunDeltaSweep(const char* output_path) {
  std::vector<SweepWorkload> workloads;
  workloads.push_back({"transitive-closure-12", ChaseVariant::kRestricted,
                       2000, [] { return MakeTransitiveClosure(12); }});
  workloads.push_back({"guarded-chain-oblivious", ChaseVariant::kOblivious,
                       400, [] { return MakeGuardedChain(3); }});
  workloads.push_back({"bts-not-fes-oblivious", ChaseVariant::kOblivious, 300,
                       [] { return MakeBtsNotFes(); }});
  workloads.push_back({"pipeline-semi-oblivious", ChaseVariant::kSemiOblivious,
                       600, [] { return MakeWeaklyAcyclicPipeline(40); }});
  workloads.push_back({"staircase-restricted", ChaseVariant::kRestricted, 120,
                       [] { return StaircaseWorld().kb(); }});
  workloads.push_back({"staircase-core", ChaseVariant::kCore, 45,
                       [] { return StaircaseWorld().kb(); }});
  workloads.push_back({"elevator-core", ChaseVariant::kCore, 60,
                       [] { return ElevatorWorld().kb(); }});

  // Per-phase wall times (one observation per repetition, so min is the
  // reported best) go into a registry and are embedded into the artifact
  // under "metrics". The measured runs themselves carry no observer.
  MetricsRegistry registry;
  std::string json = "{\n  \"benchmark\": \"delta_evaluation_sweep\",\n"
                     "  \"workloads\": [\n";
  std::printf("%-26s %-14s %8s %10s %10s %8s\n", "workload", "variant",
              "steps", "off ms", "on ms", "speedup");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const SweepWorkload& workload = workloads[i];
    SweepMeasurement off = MeasureChase(
        workload, /*delta_on=*/false, 3,
        registry.GetHistogram("phase." + workload.name + ".off.wall_ms"));
    SweepMeasurement on = MeasureChase(
        workload, /*delta_on=*/true, 3,
        registry.GetHistogram("phase." + workload.name + ".on.wall_ms"));
    // The two runs must be the same run; anything else is an engine bug.
    if (on.result.steps != off.result.steps ||
        on.result.rounds != off.result.rounds ||
        !(on.result.derivation.Last() == off.result.derivation.Last())) {
      std::fprintf(stderr, "PARITY VIOLATION on %s: delta on/off disagree\n",
                   workload.name.c_str());
      return 1;
    }
    double speedup = on.wall_ms > 0 ? off.wall_ms / on.wall_ms : 0;
    std::printf("%-26s %-14s %8zu %9.2f %9.2f %7.2fx\n", workload.name.c_str(),
                ChaseVariantName(workload.variant), on.result.steps,
                off.wall_ms, on.wall_ms, speedup);
    json += "    {\n      \"name\": \"" + workload.name + "\",\n";
    json += "      \"variant\": \"";
    json += ChaseVariantName(workload.variant);
    json += "\",\n";
    AppendSide(&json, "delta_off", off);
    json += ",\n";
    AppendSide(&json, "delta_on", on);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), ",\n      \"speedup\": %.2f\n",
                  speedup);
    json += buffer;
    json += (i + 1 < workloads.size()) ? "    },\n" : "    }\n";
  }
  json += "  ],\n";
  std::string thread_sweep = RunThreadSweep(&registry);
  if (thread_sweep.empty()) return 1;
  json += thread_sweep + ",\n";
  std::string backend_sweep = RunBackendSweep(&registry);
  if (backend_sweep.empty()) return 1;
  json += backend_sweep + ",\n";
  std::string large_instance = RunLargeInstanceSweep(&registry);
  if (large_instance.empty()) return 1;
  json += large_instance + ",\n";
  std::string plan_sweep = RunPlanSweep(&registry);
  if (plan_sweep.empty()) return 1;
  json += plan_sweep + ",\n";
  std::string service_sweep = RunServiceSweep(&registry);
  if (service_sweep.empty()) return 1;
  json += service_sweep + ",\n";
  std::string preflight_sweep = RunPreflightSweep(&registry);
  if (preflight_sweep.empty()) return 1;
  json += preflight_sweep + ",\n";
  json += "  \"metrics\": " + registry.ToJson(2) + "\n}\n";

  if (FILE* out = std::fopen(output_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("\nwrote %s\n", output_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", output_path);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace twchase

int main(int argc, char** argv) {
  bool micro = false;
  const char* output_path = "BENCH_engine.json";
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) {
      micro = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!micro) return twchase::RunDeltaSweep(output_path);
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
