// ABL — ablation benches for the design choices DESIGN.md calls out:
//   (a) singular-fold pre-pass in core computation (on/off);
//   (b) identity-first candidate ordering in the homomorphism search
//       (on/off), measured on the fold searches that dominate the chase;
//   (c) coring spacing (core_every 1/3/6) on the elevator: cost versus the
//       treewidth the budget reaches;
//   (d) chase-variant cost ladder on one KB (oblivious → core);
//   (e) trigger keys: packed binding words versus the decimal-string keys
//       the engine used before (identity + deterministic order for the
//       scheduler);
//   (f) incremental core maintenance versus full recomputation in the core
//       chase.
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/chase.h"
#include "core/measures.h"
#include "core/trigger.h"
#include "core/trigger_key.h"
#include "hom/core.h"
#include "hom/endomorphism.h"
#include "hom/matcher.h"
#include "kb/examples.h"
#include "kb/generators.h"
#include "tw/treewidth.h"
#include "util/stopwatch.h"

namespace {

// The decimal-string sort key the chase used before packed keys — kept here
// verbatim as the ablation baseline.
std::string LegacyStringKey(const twchase::Substitution& match) {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (const auto& [var, term] : match.map()) {
    entries.emplace_back(var.raw(), term.raw());
  }
  std::sort(entries.begin(), entries.end());
  std::string key;
  for (const auto& [a, b] : entries) {
    key += std::to_string(a);
    key += ',';
    key += std::to_string(b);
    key += ';';
  }
  return key;
}

}  // namespace

int main() {
  using namespace twchase;
  setvbuf(stdout, nullptr, _IOLBF, 0);

  std::printf("ABL (a): core computation with/without singular-fold pre-pass\n");
  std::printf("%-28s %14s %14s\n", "instance", "prepass on", "prepass off");
  {
    struct Case {
      const char* name;
      AtomSet atoms;
    };
    Vocabulary vocab;
    StaircaseWorld staircase;
    std::vector<Case> cases;
    // Kept small: without the pre-pass the general fold search must prove
    // redundancy by exhaustive backtracking, which blows up quickly — that
    // blow-up is the finding.
    cases.push_back({"redundant cycle (r=3)",
                     MakeRedundantInstance(&vocab, "e", 4, 3)});
    cases.push_back({"staircase step S_6", staircase.Step(6)});
    cases.push_back({"grid 3x3", MakeGridInstance(&vocab, "h", "v", 3, 3)});
    for (auto& c : cases) {
      CoreOptions on, off;
      off.singular_prepass = false;
      Stopwatch w1;
      size_t size_on = ComputeCore(c.atoms, on).core.size();
      double t1 = w1.ElapsedMillis();
      Stopwatch w2;
      size_t size_off = ComputeCore(c.atoms, off).core.size();
      double t2 = w2.ElapsedMillis();
      std::printf("%-28s %11.2fms %11.2fms  (cores: %zu/%zu)\n", c.name, t1, t2,
                  size_on, size_off);
    }
  }

  std::printf(
      "\nABL (b): fold search with/without identity-first ordering\n"
      "(all-variables fold verification on an elevator chase element)\n");
  {
    ElevatorWorld world;
    ChaseOptions chase_options;
    chase_options.variant = ChaseVariant::kCore;
    chase_options.limits.max_steps = 35;
    chase_options.keep_snapshots = false;
    auto run = RunChase(world.kb(), chase_options);
    if (run.ok()) {
      const AtomSet& instance = run->derivation.Last();
      std::printf("  instance: %zu atoms, %zu variables\n", instance.size(),
                  instance.Variables().size());
      for (bool identity_first : {true, false}) {
        Stopwatch w;
        int folds = 0;
        for (Term var : instance.Variables()) {
          HomOptions options;
          options.limit = 1;
          options.forbidden_image_term = var;
          options.identity_first = identity_first;
          if (FindHomomorphism(instance, instance, options).has_value()) {
            ++folds;
          }
        }
        std::printf("  identity-first=%d: %7.2fms (%d foldable vars)\n",
                    identity_first, w.ElapsedMillis(), folds);
      }
    }
  }

  std::printf("\nABL (c): elevator core chase, coring spacing vs cost/reach\n");
  std::printf("%12s %10s %8s %10s\n", "core_every", "steps", "time", "tw reach");
  for (size_t spacing : {1u, 3u, 6u}) {
    ElevatorWorld world;
    ChaseOptions options;
    options.variant = ChaseVariant::kCore;
    options.core.core_every = spacing;
    options.limits.max_steps = 60;
    Stopwatch w;
    auto run = RunChase(world.kb(), options);
    if (!run.ok()) continue;
    int max_tw = -1;
    for (size_t i = 0; i < run->derivation.size(); i += 5) {
      max_tw = std::max(
          max_tw, ComputeTreewidth(run->derivation.Instance(i)).upper_bound);
    }
    std::printf("%12zu %10zu %7.2fs %10d\n", spacing, run->steps,
                w.ElapsedSeconds(), max_tw);
  }

  std::printf("\nABL (d): chase-variant cost ladder (fes-not-bts KB)\n");
  std::printf("%-16s %8s %8s %10s %8s\n", "variant", "steps", "term", "|result|",
              "time");
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted, ChaseVariant::kFrugal, ChaseVariant::kCore}) {
    auto kb = MakeFesNotBts();
    ChaseOptions options;
    options.variant = variant;
    options.limits.max_steps = 300;
    options.keep_snapshots = false;
    Stopwatch w;
    auto run = RunChase(kb, options);
    if (!run.ok()) continue;
    std::printf("%-16s %8zu %8s %10zu %7.2fs\n", ChaseVariantName(variant),
                run->steps, run->terminated ? "yes" : "no",
                run->derivation.Last().size(), w.ElapsedSeconds());
  }

  std::printf("\nABL (e): trigger keys — packed words vs legacy decimal strings\n");
  {
    // Real match population: all triggers of the transitive-closure rules on
    // the chased instance — the workload the round snapshot keys every round.
    auto kb = MakeTransitiveClosure(14);
    ChaseOptions chase_options;
    chase_options.limits.max_steps = 5000;
    chase_options.keep_snapshots = false;
    auto run = RunChase(kb, chase_options);
    std::vector<Substitution> matches;
    if (run.ok()) {
      const AtomSet& instance = run->derivation.Last();
      for (int r = 0; r < static_cast<int>(kb.rules.size()); ++r) {
        for (Trigger& tr : FindTriggers(kb.rules[r], r, instance)) {
          matches.push_back(std::move(tr.match));
        }
      }
    }
    std::printf("  %zu matches\n", matches.size());
    const int kReps = 20;
    {
      Stopwatch w;
      size_t dedup = 0, order_checksum = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        std::unordered_set<std::string> keys;
        std::vector<std::string> sort_keys;
        sort_keys.reserve(matches.size());
        for (const Substitution& m : matches) {
          std::string key = LegacyStringKey(m);
          keys.insert(key);
          sort_keys.push_back(std::move(key));
        }
        std::sort(sort_keys.begin(), sort_keys.end());
        dedup = keys.size();
        order_checksum = sort_keys.empty() ? 0 : sort_keys.front().size();
      }
      std::printf("  legacy strings: %7.2fms (%zu distinct, checksum %zu)\n",
                  w.ElapsedMillis(), dedup, order_checksum);
    }
    {
      Stopwatch w;
      size_t dedup = 0, order_checksum = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        std::unordered_set<PackedBindings, PackedBindingsHash> keys;
        std::vector<PackedBindings> sort_keys;
        sort_keys.reserve(matches.size());
        for (const Substitution& m : matches) {
          PackedBindings key = PackedBindings::FromMatch(m);
          keys.insert(key);
          sort_keys.push_back(std::move(key));
        }
        std::sort(sort_keys.begin(), sort_keys.end(),
                  PackedBindings::LegacyLess);
        dedup = keys.size();
        order_checksum =
            sort_keys.empty() ? 0 : sort_keys.front().words().size();
      }
      std::printf("  packed words:   %7.2fms (%zu distinct, checksum %zu)\n",
                  w.ElapsedMillis(), dedup, order_checksum);
    }
  }

  std::printf("\nABL (f): core chase — incremental core maintenance vs full\n");
  std::printf("%-22s %12s %8s %8s %12s %10s\n", "workload", "mode", "steps",
              "time", "incremental", "fallbacks");
  {
    struct CoreCase {
      const char* name;
      bool elevator;
      size_t max_steps;
    };
    for (const CoreCase& c :
         {CoreCase{"staircase-core", false, 45},
          CoreCase{"elevator-core", true, 60}}) {
      for (bool incremental : {false, true}) {
        ChaseOptions options;
        options.variant = ChaseVariant::kCore;
        options.limits.max_steps = c.max_steps;
        options.keep_snapshots = false;
        options.core.incremental_core = incremental;
        Stopwatch w;
        StaircaseWorld staircase;
        ElevatorWorld elevator;
        auto run = RunChase(c.elevator ? elevator.kb() : staircase.kb(),
                            options);
        if (!run.ok()) continue;
        std::printf("%-22s %12s %8zu %7.2fs %12zu %10zu\n", c.name,
                    incremental ? "incremental" : "full", run->steps,
                    w.ElapsedSeconds(), run->stats.core_incremental,
                    run->stats.core_fallbacks);
      }
    }
  }
  return 0;
}
