// FIG2 — reproduces Figure 2 and the Section 6 narrative of the steepening
// staircase K_h as measured series:
//   column 1: per-step size of the core-chase element F_i;
//   column 2: certified treewidth of F_i — uniformly ≤ 2 (Proposition 4);
//   column 3: largest n×n grid contained in the natural aggregation prefix
//             D*_i — grows without bound (Proposition 5's engine);
//   column 4: treewidth lower bound of D*_i.
// The paper proves tw(F_i) ≤ 2 for all i while every universal model of K_h
// has infinite treewidth; the measured series shows exactly this divergence.
#include <algorithm>
#include <cstdio>

#include "core/chase.h"
#include "kb/examples.h"
#include "tw/grid.h"
#include "tw/treewidth.h"
#include "util/stopwatch.h"

int main() {
  using namespace twchase;
  StaircaseWorld world;

  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = 70;
  Stopwatch sw;
  auto run = RunChase(world.kb(), options);
  if (!run.ok()) {
    std::printf("chase failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  double chase_seconds = sw.ElapsedSeconds();
  const Derivation& d = run->derivation;

  std::printf("FIG2: steepening staircase, core chase (%zu steps, %.2fs)\n",
              run->steps, chase_seconds);
  std::printf("%5s %8s %10s %12s %10s\n", "step", "|F_i|", "tw(F_i)",
              "grid(D*_i)", "twlb(D*_i)");

  AtomSet natural;
  int max_tw = -1;
  for (size_t i = 0; i < d.size(); ++i) {
    natural.InsertAll(d.Instance(i));
    if (i % 7 != 0 && i + 1 != d.size()) continue;
    TreewidthResult tw = ComputeTreewidth(d.Instance(i));
    int grid = GridLowerBound(natural, 6);
    TreewidthResult agg_tw = ComputeTreewidth(natural);
    max_tw = std::max(max_tw, tw.upper_bound);
    std::printf("%5zu %8zu %10d %9dx%-3d %10d\n", i, d.Instance(i).size(),
                tw.upper_bound, grid, grid,
                std::max(agg_tw.lower_bound, grid));
  }
  std::printf(
      "\nmax tw along the core-chase sequence: %d (paper: uniform bound 2)\n"
      "natural aggregation D*: %zu atoms, unbounded grid growth\n",
      max_tw, natural.size());

  // The closed-form model prefixes behave identically (Definition 8).
  std::printf("\nclosed-form I^h prefixes (Definition 8):\n");
  std::printf("%8s %8s %10s %10s\n", "columns", "atoms", "grid", "tw_lb");
  for (int k = 2; k <= 8; k += 2) {
    AtomSet prefix = world.UniversalModelPrefix(k);
    int grid = GridLowerBound(prefix, 6);
    std::printf("%8d %8zu %7dx%-3d %10d\n", k, prefix.size(), grid, grid, grid);
  }
  return 0;
}
