// FIG1 — reproduces the class-membership picture of Figure 1 (the Venn
// diagram of decidable classes) as an empirical matrix: for each example
// ruleset, does the core chase terminate (fes evidence), is the restricted
// chase treewidth-bounded on the run (bts evidence), and is the core chase
// treewidth-bounded (core-bts evidence, Definition 17)?
//
// Expected shape (the paper's placement):
//   transitive-closure   : fes, bts, core-bts (terminates, width ~constant)
//   fes-not-bts          : fes (terminates), restricted chase grows
//   bts-not-fes          : not fes, restricted & core chase width 1
//   steepening-staircase : not fes, NOT bts (rc width grows), core-bts
//                          (cc uniformly ≤ 2) — the paper's key separation
//   inflating-elevator   : not fes, not bts, NOT core-bts (cc width grows
//                          without recurring bound, Corollary 1)
#include <cstdio>

#include "core/classes.h"
#include "kb/analysis.h"
#include "kb/examples.h"
#include "util/stopwatch.h"

int main() {
  using namespace twchase;
  std::printf("FIG1: empirical class membership (budgeted semi-decisions)\n");
  std::printf(
      "%-22s | %-10s | %-22s | %-22s | %s\n", "ruleset", "fes?",
      "bts evidence (rc tw)", "core-bts evidence (cc tw)", "static analysis");
  std::printf(
      "%-22s | %-10s | %-22s | %-22s |\n", "", "(cc term.)",
      "max / tail-min / term", "max / tail-min");

  struct Entry {
    const char* name;
    KnowledgeBase kb;
    size_t budget;
  };
  StaircaseWorld staircase;
  ElevatorWorld elevator;
  std::vector<Entry> entries;
  entries.push_back({"transitive-closure", MakeTransitiveClosure(4), 80});
  entries.push_back({"wa-pipeline", MakeWeaklyAcyclicPipeline(3), 80});
  entries.push_back({"guarded-chain", MakeGuardedChain(2), 50});
  entries.push_back({"fes-not-bts", MakeFesNotBts(), 80});
  entries.push_back({"bts-not-fes", MakeBtsNotFes(), 60});
  entries.push_back({"steepening-staircase", staircase.kb(), 50});
  entries.push_back({"inflating-elevator", elevator.kb(), 45});

  for (auto& entry : entries) {
    ClassificationOptions options;
    options.max_steps = entry.budget;
    options.tail_window = 8;
    Stopwatch sw;
    ClassificationReport report = ClassifyKb(entry.kb, options);
    RulesetAnalysis analysis = AnalyzeRuleset(entry.kb.rules);
    std::printf(
        "%-22s | %-10s | %4d / %4d / %-8s | %4d / %4d   (%5.2fs) | %s\n",
        entry.name, report.core_chase_terminated ? "yes" : "no",
        report.restricted_tw.uniform_bound,
        report.restricted_tw.recurring_estimate,
        report.restricted_terminated ? "term" : "no-term",
        report.core_tw.uniform_bound, report.core_tw.recurring_estimate,
        sw.ElapsedSeconds(), analysis.Summary().c_str());
  }
  std::printf(
      "\nreading: staircase has bounded cc (core-bts) but unbounded rc;\n"
      "elevator has unbounded cc although a width-1 universal model exists.\n");
  return 0;
}
