// TAB1 — reproduces Table 1: the rule-application schedule that builds step
// S^h_k from column C^h_k in the staircase's core chase. The paper's
// schedule per column k is: R^h_1 once (opens the next column's top), R^h_2
// k times (top to bottom), R^h_3 once (floor propagation), R^h_4 k+1 times
// (loops bottom to top) — 2k+3 applications — after which the core
// computation retracts S^h_k onto C^h_{k+1}.
#include <cstdio>
#include <map>
#include <string>

#include "core/chase.h"
#include "hom/isomorphism.h"
#include "kb/examples.h"

int main() {
  using namespace twchase;
  StaircaseWorld world;

  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = 90;
  auto run = RunChase(world.kb(), options);
  if (!run.ok()) {
    std::printf("chase failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const Derivation& d = run->derivation;

  // Collapse points: local minima of |F_i| (the retraction onto a column).
  std::vector<size_t> collapses;
  for (size_t i = 1; i + 1 < d.size(); ++i) {
    if (d.step(i).instance_size < d.step(i - 1).instance_size) {
      collapses.push_back(i);
    }
  }

  std::printf("TAB1: rule applications per staircase step (paper: 1, k, 1, "
              "k+1; total 2k+3)\n");
  std::printf("%4s %6s %6s %6s %6s %8s %14s\n", "k", "Rh1", "Rh2", "Rh3",
              "Rh4", "total", "collapses to");
  for (size_t c = 0; c + 1 < collapses.size(); ++c) {
    int k = static_cast<int>(c) + 1;
    std::map<std::string, int> counts;
    for (size_t i = collapses[c] + 1; i <= collapses[c + 1]; ++i) {
      counts[d.step(i).rule_label]++;
    }
    const AtomSet& landing = d.Instance(collapses[c + 1]);
    bool is_column = AreIsomorphic(landing, world.Column(k + 1));
    std::printf("%4d %6d %6d %6d %6d %8zu %11s%-3d%s\n", k, counts["Rh1"],
                counts["Rh2"], counts["Rh3"], counts["Rh4"],
                collapses[c + 1] - collapses[c], "C^h_", k + 1,
                is_column ? "" : "  (NOT a column!)");
  }
  std::printf("\n(Each segment k spends 1 + k + 1 + (k+1) = 2k+3 rule "
              "applications,\nmatching Table 1's derivation of S^h_k from "
              "C^h_k.)\n");
  return 0;
}
