// FIG3/4 — reproduces Figures 3–4 and Section 7: the inflating elevator K_v
// has a treewidth-1 universal model (the ceiling chain I^v*, Definition 11),
// yet every core-chase sequence's treewidth grows beyond any bound
// (Proposition 8, Corollary 1). Series reported:
//   (a) per-step |F_i| and certified treewidth interval of the core chase
//       (coring every 3 applications — the paper allows any finite spacing);
//   (b) the closed-form growing cores I^v_n (Definition 12): size, core-ness
//       and the ⌊n/3⌋+1 grid witness of Proposition 8(2);
//   (c) the ceiling model I^v*: treewidth 1, receives every chase element.
#include <cstdio>

#include "core/chase.h"
#include "hom/core.h"
#include "hom/matcher.h"
#include "kb/examples.h"
#include "tw/grid.h"
#include "tw/treewidth.h"
#include "util/stopwatch.h"

int main() {
  using namespace twchase;
  ElevatorWorld world;

  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.core.core_every = 3;
  options.limits.max_steps = 100;
  Stopwatch sw;
  auto run = RunChase(world.kb(), options);
  if (!run.ok()) {
    std::printf("chase failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const Derivation& d = run->derivation;
  std::printf(
      "FIG3/4 (a): inflating elevator, core chase (%zu steps, %.1fs, coring "
      "every 3)\n",
      run->steps, sw.ElapsedSeconds());
  std::printf("%5s %8s %8s %8s\n", "step", "|F_i|", "tw_lb", "tw_ub");
  for (size_t i = 0; i < d.size(); i += 10) {
    TreewidthResult tw = ComputeTreewidth(d.Instance(i));
    std::printf("%5zu %8zu %8d %8d\n", i, d.Instance(i).size(), tw.lower_bound,
                tw.upper_bound);
  }
  TreewidthResult last_tw = ComputeTreewidth(d.Last());
  std::printf("%5s %8zu %8d %8d  <- grows with the budget (Corollary 1)\n",
              "last", d.Last().size(), last_tw.lower_bound,
              last_tw.upper_bound);

  std::printf(
      "\nFIG3/4 (b): the obstruction cores I^v_n (Definition 12, "
      "Proposition 8)\n");
  std::printf("%4s %8s %6s %12s %14s\n", "n", "atoms", "core?", "grid found",
              "paper: >=n/3+1");
  for (int n = 1; n <= 7; ++n) {
    AtomSet obstruction = world.CoreObstruction(n);
    int expected = n / 3 + 1;
    int grid = GridLowerBound(obstruction, expected + 1);
    std::printf("%4d %8zu %6s %12d %14d\n", n, obstruction.size(),
                IsCore(obstruction) ? "yes" : "NO", grid, expected);
  }

  std::printf("\nFIG3/4 (c): the ceiling universal model I^v*\n");
  AtomSet ceiling = world.CeilingPrefix(150);
  TreewidthResult ceiling_tw = ComputeTreewidth(world.CeilingPrefix(40));
  std::printf("  tw(I^v*) = %d (paper: 1)\n", ceiling_tw.upper_bound);
  std::printf("  last chase element maps into I^v*: %s (universality)\n",
              ExistsHomomorphism(d.Last(), ceiling) ? "yes" : "NO");
  std::printf(
      "\nreading: a width-1 universal model exists, yet the core chase's own "
      "width climbs\n%d -> %d within the budget and provably beyond any "
      "bound.\n",
      1, last_tw.upper_bound);
  return 0;
}
