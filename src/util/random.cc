#include "util/random.h"

#include "util/status.h"

namespace twchase {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  TWCHASE_CHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

}  // namespace twchase
