#include "util/job_scheduler.h"

#include <algorithm>

namespace twchase {

const char* JobOutcomeName(PreemptibleJob::Outcome outcome) {
  switch (outcome) {
    case PreemptibleJob::Outcome::kCompleted: return "completed";
    case PreemptibleJob::Outcome::kPaused: return "paused";
    case PreemptibleJob::Outcome::kFailed: return "failed";
  }
  return "unknown";
}

JobScheduler::JobScheduler(const Options& options) : options_(options) {}

JobScheduler::~JobScheduler() { Stop(); }

Status JobScheduler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::FailedPrecondition("scheduler already started");
    started_ = true;
    shutdown_ = false;
  }
  size_t workers = std::max<size_t>(1, options_.workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options_.preempt_after_ms.has_value()) {
    monitor_ = std::thread([this] { MonitorLoop(); });
  }
  return Status::OK();
}

void JobScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    shutdown_ = true;
    // Every in-flight job is told to stop; cancelled segments return
    // terminally, so the workers drain the whole queue before exiting.
    for (const auto& entry : queue_) entry->job->RequestCancel();
    for (const auto& entry : running_) entry->job->RequestCancel();
  }
  work_ready_.notify_all();
  monitor_wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (monitor_.joinable()) monitor_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

Status JobScheduler::Submit(const std::string& tenant,
                            std::shared_ptr<PreemptibleJob> job,
                            FinishCallback done) {
  if (tenant.empty()) return Status::InvalidArgument("tenant must be non-empty");
  if (job == nullptr) return Status::InvalidArgument("job must be non-null");
  auto entry = std::make_shared<Entry>();
  entry->tenant = tenant;
  entry->job = std::move(job);
  entry->done = std::move(done);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || shutdown_) {
      return Status::FailedPrecondition("scheduler is not running");
    }
    size_t& in_flight = in_flight_[tenant];
    if (in_flight >= options_.per_tenant_quota) {
      ++stats_.rejected;
      return Status::ResourceExhausted(
          "tenant '" + tenant + "' has " + std::to_string(in_flight) +
          " jobs in flight (quota " +
          std::to_string(options_.per_tenant_quota) + ")");
    }
    ++in_flight;
    ++stats_.admitted;
    queue_.push_back(std::move(entry));
  }
  work_ready_.notify_one();
  return Status::OK();
}

size_t JobScheduler::TenantInFlight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = in_flight_.find(tenant);
  return it == in_flight_.end() ? 0 : it->second;
}

size_t JobScheduler::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [tenant, count] : in_flight_) total += count;
  return total;
}

JobScheduler::Stats JobScheduler::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.queued_now = queue_.size();
  stats.running_now = running_.size();
  return stats;
}

void JobScheduler::WorkerLoop() {
  while (true) {
    std::shared_ptr<Entry> entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // On shutdown the queue is still drained: every queued job was
      // cancelled, so its one remaining segment returns immediately and the
      // FinishCallback contract (exactly once per admitted job) holds.
      if (queue_.empty()) return;
      entry = queue_.front();
      queue_.pop_front();
      entry->segment_start = std::chrono::steady_clock::now();
      entry->pause_sent = false;
      running_.push_back(entry);
    }

    PreemptibleJob::Outcome outcome = entry->job->RunSegment();

    bool terminal = outcome != PreemptibleJob::Outcome::kPaused;
    FinishCallback done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), entry));
      if (!terminal) {
        ++stats_.preemptions;
        ++entry->pause_count;
        // Back of the queue, slot retained: round-robin progress without
        // re-admission.
        queue_.push_back(entry);
      } else {
        if (outcome == PreemptibleJob::Outcome::kFailed) {
          ++stats_.failed;
        } else {
          ++stats_.completed;
        }
        size_t& in_flight = in_flight_[entry->tenant];
        if (in_flight > 0) --in_flight;
        done = std::move(entry->done);
      }
    }
    if (!terminal) {
      work_ready_.notify_one();
    } else if (done) {
      done(outcome);
    }
  }
}

void JobScheduler::MonitorLoop() {
  const auto threshold = std::chrono::milliseconds(*options_.preempt_after_ms);
  // Poll at a fraction of the threshold so preemption latency stays
  // proportional to the configured horizon, floored for CPU sanity.
  const auto poll = std::max(std::chrono::milliseconds(5), threshold / 4);
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    // Dedicated cv: waiting on work_ready_ here would let the monitor eat a
    // Submit's notify_one and leave every worker asleep over a queued job.
    monitor_wake_.wait_for(lock, poll);
    if (shutdown_) return;
    if (queue_.empty()) continue;  // nobody waiting: let long jobs run
    auto now = std::chrono::steady_clock::now();
    for (const auto& entry : running_) {
      // Exponential per-job backoff: every preemption costs the next
      // segment a replay of the whole prefix, so a job that keeps getting
      // paused earns a doubled threshold each time. Without this a slow
      // host (or sanitizer build) can livelock a job whose replay alone
      // exceeds the base threshold — it would be re-paused before making
      // any progress past its own checkpoint.
      const auto job_threshold =
          threshold * (uint64_t{1} << std::min<uint32_t>(entry->pause_count, 10));
      if (!entry->pause_sent && now - entry->segment_start >= job_threshold) {
        entry->pause_sent = true;
        entry->job->RequestPause();
      }
    }
  }
}

}  // namespace twchase
