#include "util/fs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/fault.h"

namespace twchase {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Maps an injected filesystem fault to the Status a real kernel failure
// would produce, so callers exercise exactly the organic error paths.
Status InjectedFsError(FaultAction action, const std::string& what) {
  switch (action) {
    case FaultAction::kNoSpace:
      return Status::ResourceExhausted(what +
                                       ": no space left on device (injected)");
    case FaultAction::kShortWrite:
    case FaultAction::kIoError:
    default:
      return Status::Internal(what + ": input/output error (injected)");
  }
}

// Splits "dir/name" into its directory, "." when there is no slash.
std::string DirnameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

uint32_t CrcTableAt(size_t i) {
  // Computed once, lazily; the table is tiny and the init is branch-free.
  static const auto table = [] {
    struct Table { uint32_t entry[256]; } t{};
    for (uint32_t n = 0; n < 256; ++n) {
      uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t.entry[n] = c;
    }
    return t;
  }();
  return table.entry[i];
}

Status WriteRaw(int fd, const char* data, size_t size,
                const std::string& what) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC) {
        return Status::ResourceExhausted(Errno(what));
      }
      return Status::Internal(Errno(what));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = CrcTableAt((crc ^ byte) & 0xFFu) ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status FsWriteAll(int fd, std::string_view data, const std::string& what) {
  FaultAction action;
  if (PollFsFault(FaultSite::kFsWrite, &action)) {
    if (action == FaultAction::kShortWrite && !data.empty()) {
      // Persist a torn prefix, then report the failure the caller would
      // see if the process died mid-write and a monitor surfaced it.
      size_t half = data.size() / 2;
      (void)WriteRaw(fd, data.data(), half, what);
    }
    return InjectedFsError(action, what);
  }
  return WriteRaw(fd, data.data(), data.size(), what);
}

Status FsFsync(int fd, const std::string& what) {
  FaultAction action;
  if (PollFsFault(FaultSite::kFsFsync, &action)) {
    return InjectedFsError(action, "fsync " + what);
  }
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    return Status::Internal(Errno("fsync " + what));
  }
  return Status::OK();
}

Status FsRename(const std::string& from, const std::string& to) {
  FaultAction action;
  if (PollFsFault(FaultSite::kFsRename, &action)) {
    // Crash-before-rename: the temp file stays, the target is untouched.
    return InjectedFsError(action, "rename " + from + " -> " + to);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal(Errno("rename " + from + " -> " + to));
  }
  return Status::OK();
}

Status FsSyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(Errno("open dir " + dir));
  }
  Status synced = FsFsync(fd, "dir " + dir);
  ::close(fd);
  return synced;
}

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    struct stat st{};
    if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::FailedPrecondition(dir + ": exists and is not a directory");
  }
  return Status::Internal(Errno("mkdir " + dir));
}

Status ReadFileToString(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path + ": no such file");
    return Status::Internal(Errno("open " + path));
  }
  out->clear();
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status failed = Status::Internal(Errno("read " + path));
      ::close(fd);
      return failed;
    }
    if (n == 0) break;
    out->append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

Status WriteFileDurable(const std::string& path, std::string_view content) {
  const std::string temp = path + ".tmp";
  int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(Errno("open " + temp));
  }
  Status st = FsWriteAll(fd, content, temp);
  if (st.ok()) st = FsFsync(fd, temp);
  ::close(fd);
  if (st.ok()) st = FsRename(temp, path);
  if (!st.ok()) {
    ::unlink(temp.c_str());
    return st;
  }
  return FsSyncDir(DirnameOf(path));
}

Status RemoveFileDurable(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(Errno("unlink " + path));
  }
  return FsSyncDir(DirnameOf(path));
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace twchase
