// JobScheduler: a shared worker pool running many preemptible jobs with
// per-tenant admission control — the execution substrate of the chase
// daemon (src/service/), kept in util/ because nothing in it knows about
// chases: it schedules anything implementing PreemptibleJob.
//
// Model: a job is a sequence of cooperative SEGMENTS. A worker calls
// RunSegment(), which blocks until the job either finishes (kCompleted /
// kFailed) or honours a pause request and stops at an internal consistent
// boundary (kPaused). A paused job goes to the back of the queue and a
// later RunSegment() continues it — for a chase job that means checkpoint
// on pause, replay-resume on the next segment, which the engine guarantees
// is bit-identical to an uninterrupted run. The job keeps its admission
// slot across pauses (preemption must never cause its own tenant a 429).
//
// Admission: Submit admits at most `per_tenant_quota` in-flight (queued,
// running or paused-requeued) jobs per tenant and rejects the rest with
// ResourceExhausted, which the daemon maps to HTTP 429. Rejection never
// perturbs admitted jobs.
//
// Preemption: an optional monitor thread watches running segments; when
// jobs are waiting in the queue and a segment has run longer than
// `preempt_after_ms`, the job is asked to pause, freeing its worker for the
// queue. Cancellation needs no scheduler API — callers request it on the
// job itself, whose next segment returns terminally and frees the slot.
#ifndef TWCHASE_UTIL_JOB_SCHEDULER_H_
#define TWCHASE_UTIL_JOB_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace twchase {

/// A unit of schedulable, pausable work. Implementations must make
/// RequestPause/RequestCancel safe to call from any thread while a segment
/// runs; RunSegment is only ever called by one worker at a time.
class PreemptibleJob {
 public:
  enum class Outcome {
    kCompleted,  // terminal: done (including cancelled or budget-stopped)
    kPaused,     // honoured a pause request; call RunSegment again to resume
    kFailed,     // terminal: the job errored; it records its own status
  };

  virtual ~PreemptibleJob() = default;

  /// Runs until the next stop boundary on the calling worker thread.
  virtual Outcome RunSegment() = 0;

  /// Asks the current segment to stop pausably at its next boundary.
  /// Harmless when the job is not running (the request may be consumed by
  /// the next segment or ignored by a terminal one).
  virtual void RequestPause() = 0;

  /// Asks the job to stop for good; the next (or current) segment returns
  /// a terminal outcome.
  virtual void RequestCancel() = 0;
};

const char* JobOutcomeName(PreemptibleJob::Outcome outcome);

class JobScheduler {
 public:
  struct Options {
    /// Worker threads executing segments.
    size_t workers = 4;

    /// Max in-flight jobs per tenant; Submit beyond it is ResourceExhausted.
    size_t per_tenant_quota = 4;

    /// Preempt a running segment once it has run this long AND other jobs
    /// are queued. nullopt disables the monitor (jobs run to completion).
    /// The effective threshold doubles with every pause a job has already
    /// taken (capped at x1024) — resuming replays the job's whole prefix,
    /// so repeated preemption must back off or a job whose replay alone
    /// exceeds the base threshold would never progress.
    std::optional<uint64_t> preempt_after_ms;
  };

  /// Counters for the fleet metrics endpoint; monotone over the scheduler's
  /// lifetime except the instantaneous queue/running gauges.
  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t preemptions = 0;  // segments that returned kPaused
    size_t queued_now = 0;
    size_t running_now = 0;
  };

  /// Called exactly once per admitted job, on a worker thread, after its
  /// terminal segment; never with kPaused.
  using FinishCallback = std::function<void(PreemptibleJob::Outcome)>;

  explicit JobScheduler(const Options& options);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Spawns workers and (if configured) the preemption monitor.
  Status Start();

  /// Cancels every in-flight job, drains the queue and joins all threads.
  /// Pending FinishCallbacks still fire (with the terminal outcome of the
  /// cancelled segment). Idempotent.
  void Stop();

  /// Admits `job` under `tenant`'s quota and queues it. The scheduler
  /// shares ownership until the terminal segment returns.
  Status Submit(const std::string& tenant, std::shared_ptr<PreemptibleJob> job,
                FinishCallback done);

  /// In-flight (queued + running + paused-requeued) jobs of one tenant.
  size_t TenantInFlight(const std::string& tenant) const;

  /// Total in-flight jobs — the daemon's shutdown leak check.
  size_t InFlight() const;

  Stats GetStats() const;

  const Options& options() const { return options_; }

 private:
  struct Entry {
    std::string tenant;
    std::shared_ptr<PreemptibleJob> job;
    FinishCallback done;
    std::chrono::steady_clock::time_point segment_start{};
    bool pause_sent = false;    // one pause request per segment
    uint32_t pause_count = 0;   // doubles the preempt threshold (backoff)
  };

  void WorkerLoop();
  void MonitorLoop();

  const Options options_;

  mutable std::mutex mu_;
  // Only workers wait on work_ready_ — the monitor has its own cv so a
  // Submit/requeue notify_one can never be consumed by the monitor while a
  // worker sleeps (which would strand a queued job until the next Submit).
  std::condition_variable work_ready_;
  std::condition_variable monitor_wake_;
  std::deque<std::shared_ptr<Entry>> queue_;          // guarded by mu_
  std::vector<std::shared_ptr<Entry>> running_;       // guarded by mu_
  std::unordered_map<std::string, size_t> in_flight_; // guarded by mu_
  Stats stats_;                                       // guarded by mu_
  bool shutdown_ = false;                             // guarded by mu_
  bool started_ = false;                              // guarded by mu_

  std::vector<std::thread> workers_;
  std::thread monitor_;
};

}  // namespace twchase

#endif  // TWCHASE_UTIL_JOB_SCHEDULER_H_
