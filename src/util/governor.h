// Resource governance: wall-clock deadlines, memory budgets and cooperative
// cancellation for the long-running procedures of the engine (chase rounds,
// homomorphism search, core computation, entailment, treewidth).
//
// The paper's central objects are chases that provably never terminate
// (the inflating elevator's core-chase sequences grow without bound), so
// budget exhaustion is a first-class, *recoverable* outcome, never a failure:
// a governed procedure polls ShouldStop() at cheap, well-chosen boundaries
// and, once the governor trips, unwinds to the nearest consistent state —
// the chase to the last committed derivation step (from which a checkpoint
// can be written, see core/checkpoint.h), a search to "no result within
// budget". Nothing throws and nothing aborts mid-mutation.
//
// Plumbing is ambient: RunChase (and tests, and the CLI) install a governor
// for the current thread with a GovernorScope; the lower layers poll
// CurrentGovernor() without any signature changes. Governors nest — a child
// governor also honours its parent's cancellation and deadline, so a
// deadline installed around CombinedEntailment interrupts the chase runs
// *and* the counter-model search inside it.
//
// CAUTION for poll sites: a search interrupted mid-way returns "nothing
// found so far", which is NOT evidence of non-existence. Any caller that
// draws a conclusion from an absence (trigger satisfied? instance a core?)
// must re-check governor->stopped() before committing state.
#ifndef TWCHASE_UTIL_GOVERNOR_H_
#define TWCHASE_UTIL_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "util/fault.h"

namespace twchase {

/// Why a governed run stopped. kFixpoint is the only "terminated" outcome;
/// every other reason leaves a consistent, resumable prefix behind.
enum class StopReason {
  kFixpoint = 0,       // no active trigger remained: a genuine model
  kStepBudget,         // limits.max_steps rule applications performed
  kInstanceSizeGuard,  // limits.max_instance_size exceeded
  kDeadline,           // limits.deadline_ms of wall clock elapsed
  kMemoryBudget,       // limits.memory_budget_bytes estimate exceeded
  kCancelled,          // external CancelToken fired (or injected fault)
};

const char* StopReasonName(StopReason reason);

/// Cooperative cancellation handle. Default-constructed tokens are inert
/// (never cancelled, cost one null check); Create() makes a real shared
/// flag. Copies share the flag; RequestCancel is thread-safe, so another
/// thread (a signal handler trampoline, an RPC deadline) can cancel a
/// running chase.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken Create();

  /// No-op on an inert token.
  void RequestCancel() const;

  bool cancel_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  bool valid() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The budget slice of ChaseOptions::LimitOptions that the governor
/// enforces (steps and instance size stay in the chase's own loop, where
/// the counters live).
struct ResourceLimits {
  /// Wall-clock budget in milliseconds, measured from governor construction.
  /// nullopt = unlimited; 0 = already expired (the first boundary check
  /// stops the run before any work is committed).
  std::optional<uint64_t> deadline_ms;

  /// Budget on the engine's *estimated* resident bytes (instance + retained
  /// derivation), as reported via NoteMemoryUsage. 0 = unlimited. The
  /// estimate is an undercount of true RSS (indexes and allocator slack are
  /// approximated), so treat the budget as a soft guardrail, not an rlimit.
  size_t memory_budget_bytes = 0;

  /// External cancellation. Inert by default.
  CancelToken cancel;
};

/// One run's budget enforcement. Construction snapshots the deadline; every
/// governed boundary calls ShouldStop(site), which latches the first
/// exhausted budget as the stop reason. Also the delivery point for
/// deterministic fault injection (util/fault.h): an armed FaultInjector
/// fires at an exact (site, visit) pair and is reported as the injected
/// reason, so tests can prove the consistency invariant at any chosen
/// boundary.
class ResourceGovernor {
 public:
  /// `parent` defaults to the governor ambient at construction, so nested
  /// runs inherit outer cancellation/deadlines. Pass nullptr to detach.
  explicit ResourceGovernor(const ResourceLimits& limits);
  ResourceGovernor(const ResourceLimits& limits, ResourceGovernor* parent);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Cooperative checkpoint. Returns true once any budget is exhausted (and
  /// keeps returning true: the decision latches). Cheap on the happy path:
  /// a counter bump, a relaxed atomic load, and a clock read every
  /// kClockPollStride visits.
  bool ShouldStop(FaultSite site);

  /// True iff a previous ShouldStop latched.
  bool stopped() const { return stopped_; }

  /// The latched reason; meaningful only when stopped().
  StopReason reason() const { return reason_; }

  /// Updates the memory estimate checked by the next ShouldStop.
  void NoteMemoryUsage(size_t bytes) { memory_estimate_ = bytes; }

  /// The estimate last noted (workers seed their own governors from it).
  size_t memory_estimate() const { return memory_estimate_; }

  /// The limits this governor enforces. Worker governors of the parallel
  /// trigger-evaluation subsystem are derived from these: same (thread-safe)
  /// cancel token, same memory budget, and the *remaining* slice of the
  /// deadline.
  const ResourceLimits& limits() const { return limits_; }

  /// Milliseconds of deadline budget left: nullopt when the governor has no
  /// deadline, 0 when it already expired. Used to derive worker-governor
  /// deadlines that expire at the same wall-clock instant as this one.
  std::optional<uint64_t> RemainingDeadlineMs() const;

  /// Adopts a stop latched by another governor (a worker's, in the parallel
  /// evaluation path — ResourceGovernor itself is not thread-safe, so each
  /// worker polls its own detached governor and the main thread folds the
  /// first worker stop back in here, after the workers joined). No-op when
  /// already stopped.
  void AdoptStop(StopReason reason) { Latch(reason); }

  /// True when the stop was caused by an injected fault (tests use this to
  /// distinguish injected from organic exhaustion; the chase emits an
  /// observer event for it).
  bool fault_fired() const { return fault_fired_; }
  FaultSite fault_site() const { return fault_site_; }
  uint64_t fault_visit() const { return fault_visit_; }

  /// Passive probe: checks this governor's (and its ancestors') cancel
  /// token and deadline without counting a visit or consulting the fault
  /// injector. Used by parents from within child polls.
  bool CheckPassive();

 private:
  void Latch(StopReason reason) {
    if (!stopped_) {
      stopped_ = true;
      reason_ = reason;
    }
  }

  static constexpr uint64_t kClockPollStride = 256;

  ResourceLimits limits_;
  ResourceGovernor* parent_ = nullptr;
  std::chrono::steady_clock::time_point deadline_at_{};
  bool has_deadline_ = false;
  bool stopped_ = false;
  StopReason reason_ = StopReason::kFixpoint;
  size_t memory_estimate_ = 0;
  uint64_t visits_ = 0;
  bool fault_fired_ = false;
  FaultSite fault_site_ = FaultSite::kTriggerBoundary;
  uint64_t fault_visit_ = 0;
};

/// The governor ambient on this thread, or nullptr. Poll sites use the
/// two helpers below instead of touching this directly.
ResourceGovernor* CurrentGovernor();

/// Installs `governor` as the thread's ambient governor for the scope.
class GovernorScope {
 public:
  explicit GovernorScope(ResourceGovernor* governor);
  ~GovernorScope();

  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  ResourceGovernor* previous_;
};

/// Suspends ambient polls for the scope: GovernorPoll returns false and
/// consumes no fault-injection visits. Wrapped around regions that mutate
/// state and cannot be rolled back (a trigger application with its frugal
/// fold, an incremental core update) so that interruption can only land on
/// boundaries from which a consistent checkpoint exists.
class GovernorAtomicSection {
 public:
  GovernorAtomicSection();
  ~GovernorAtomicSection();

  GovernorAtomicSection(const GovernorAtomicSection&) = delete;
  GovernorAtomicSection& operator=(const GovernorAtomicSection&) = delete;
};

/// Ambient poll: ShouldStop on the current governor, false when no governor
/// is installed or an atomic section is open.
bool GovernorPoll(FaultSite site);

/// Ambient probe without side effects (no visit counted): true iff an
/// installed governor has already latched a stop.
bool GovernorStopped();

}  // namespace twchase

#endif  // TWCHASE_UTIL_GOVERNOR_H_
