// Deterministic RNG wrapper used by property tests and workload generators.
// A fixed seed makes derivations and random instances reproducible run-to-run.
#ifndef TWCHASE_UTIL_RANDOM_H_
#define TWCHASE_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace twchase {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace twchase

#endif  // TWCHASE_UTIL_RANDOM_H_
