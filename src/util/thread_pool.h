// A fixed pool of worker threads for the parallel trigger-evaluation
// subsystem (core/parallel.h). The pool spawns `threads - 1` background
// workers once and keeps them parked on a condition variable between
// dispatches; the calling thread always participates as worker 0, so a
// pool of size 1 never spawns anything and RunOnAllWorkers degenerates to
// a plain function call.
//
// The pool is deliberately *not* a task queue: one dispatch runs one
// function once per worker, and the callers (ParallelTriggerEval) own the
// task-claiming protocol — an atomic cursor over a task array whose results
// land in per-task slots, so the merge order never depends on scheduling.
// That split keeps determinism concerns out of this file entirely: nothing
// here affects which results are produced, only who produces them.
#ifndef TWCHASE_UTIL_THREAD_POOL_H_
#define TWCHASE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace twchase {

class ThreadPool {
 public:
  /// Total worker count, calling thread included: a pool of `threads`
  /// spawns `threads - 1` background threads. `threads == 0` is treated
  /// as 1 (sequential).
  explicit ThreadPool(size_t threads);

  /// Joins all background workers. Must not be called while a dispatch is
  /// in flight (RunOnAllWorkers blocks until every worker returned, so
  /// normal destruction is safe).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count, calling thread included.
  size_t threads() const { return workers_.size() + 1; }

  /// Runs fn(worker_index) once on every worker — background workers get
  /// indices 1..threads()-1, the calling thread runs fn(0) — and blocks
  /// until all invocations returned. fn must not throw (the engine is
  /// exception-free; a CHECK abort inside a worker aborts the process).
  void RunOnAllWorkers(const std::function<void(size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(size_t)>* job_ = nullptr;  // guarded by mu_
  uint64_t generation_ = 0;                           // guarded by mu_
  size_t in_flight_ = 0;                              // guarded by mu_
  bool shutdown_ = false;                             // guarded by mu_
};

}  // namespace twchase

#endif  // TWCHASE_UTIL_THREAD_POOL_H_
