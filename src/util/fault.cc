#include "util/fault.h"

#include <mutex>

namespace twchase {
namespace {

thread_local FaultInjector* g_injector = nullptr;

std::mutex g_fs_injector_mu;
FaultInjector* g_fs_injector = nullptr;

// splitmix64: tiny, well-mixed, and reproducible across platforms.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kTriggerBoundary: return "trigger-boundary";
    case FaultSite::kRoundBoundary: return "round-boundary";
    case FaultSite::kHomNode: return "hom-node";
    case FaultSite::kCoreFold: return "core-fold";
    case FaultSite::kEntailmentRound: return "entailment-round";
    case FaultSite::kTreewidthNode: return "treewidth-node";
    case FaultSite::kFsWrite: return "fs-write";
    case FaultSite::kFsFsync: return "fs-fsync";
    case FaultSite::kFsRename: return "fs-rename";
  }
  return "unknown";
}

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kCancel: return "cancel";
    case FaultAction::kAllocationFailure: return "allocation-failure";
    case FaultAction::kShortWrite: return "short-write";
    case FaultAction::kIoError: return "io-error";
    case FaultAction::kNoSpace: return "no-space";
  }
  return "unknown";
}

void FaultInjector::Arm(FaultSite site, uint64_t visit, FaultAction action) {
  armed_.push_back(Armed{site, visit, action});
}

FaultInjector FaultInjector::FromSeed(uint64_t seed, uint64_t max_visit) {
  FaultInjector injector;
  if (max_visit == 0) max_visit = 1;
  uint64_t h0 = Mix(seed);
  uint64_t h1 = Mix(h0);
  uint64_t h2 = Mix(h1);
  auto site = static_cast<FaultSite>(h0 % kNumEngineFaultSites);
  auto action = static_cast<FaultAction>(h1 % 2);
  uint64_t visit = 1 + h2 % max_visit;
  injector.Arm(site, visit, action);
  return injector;
}

bool FaultInjector::Poll(FaultSite site, FaultAction* action) {
  uint64_t visit = ++visits_[static_cast<size_t>(site)];
  for (Armed& fault : armed_) {
    if (!fault.fired && fault.site == site && fault.visit == visit) {
      fault.fired = true;
      ++fired_count_;
      *action = fault.action;
      return true;
    }
  }
  return false;
}

FaultInjector* CurrentFaultInjector() { return g_injector; }

void SetGlobalFsFaultInjector(FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(g_fs_injector_mu);
  g_fs_injector = injector;
}

bool PollFsFault(FaultSite site, FaultAction* action) {
  if (g_injector != nullptr) return g_injector->Poll(site, action);
  std::lock_guard<std::mutex> lock(g_fs_injector_mu);
  if (g_fs_injector == nullptr) return false;
  return g_fs_injector->Poll(site, action);
}

FaultInjectorScope::FaultInjectorScope(FaultInjector* injector)
    : previous_(g_injector) {
  g_injector = injector;
}

FaultInjectorScope::~FaultInjectorScope() { g_injector = previous_; }

}  // namespace twchase
