#include "util/thread_pool.h"

namespace twchase {

ThreadPool::ThreadPool(size_t threads) {
  size_t spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::RunOnAllWorkers(const std::function<void(size_t)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    in_flight_ = workers_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [&] { return in_flight_ == 0; });
  job_ = nullptr;
}

size_t ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace twchase
