// Status / StatusOr: exception-free error handling in the style of
// Arrow/RocksDB. All fallible public APIs in twchase return Status or
// StatusOr<T>; CHECK-style macros are reserved for internal invariants.
#ifndef TWCHASE_UTIL_STATUS_H_
#define TWCHASE_UTIL_STATUS_H_

#include <cstddef>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace twchase {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Never holds both.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT: implicit
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT: implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieBecauseCheckFailed(const char* file, int line,
                                        const char* expr, const std::string& msg);
}  // namespace internal_status

/// Annotates the current thread with "where the engine is" so that a CHECK
/// failure deep in a multi-hour run prints an actionable post-mortem line
/// ("during core chase, step 48211") instead of a bare expression. Scopes
/// nest; the innermost is reported. `step` may be null (phase-only) or
/// point at a live counter owned by the caller — it is read only at crash
/// time, so the annotation costs two thread-local stores.
class ScopedCrashContext {
 public:
  ScopedCrashContext(const char* phase, const size_t* step);
  ~ScopedCrashContext();

  ScopedCrashContext(const ScopedCrashContext&) = delete;
  ScopedCrashContext& operator=(const ScopedCrashContext&) = delete;

 private:
  const char* previous_phase_;
  const size_t* previous_step_;
};

// Internal invariant checks. These abort: they guard programmer errors, not
// user input (user input errors travel through Status).
#define TWCHASE_CHECK(expr)                                                     \
  do {                                                                          \
    if (!(expr)) {                                                              \
      ::twchase::internal_status::DieBecauseCheckFailed(__FILE__, __LINE__,     \
                                                        #expr, "");            \
    }                                                                           \
  } while (0)

#define TWCHASE_CHECK_MSG(expr, msg)                                            \
  do {                                                                          \
    if (!(expr)) {                                                              \
      ::twchase::internal_status::DieBecauseCheckFailed(__FILE__, __LINE__,     \
                                                        #expr, (msg));         \
    }                                                                           \
  } while (0)

#define TWCHASE_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::twchase::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace twchase

#endif  // TWCHASE_UTIL_STATUS_H_
