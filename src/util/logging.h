// Minimal leveled logging to stderr. Intended for diagnostics from long chase
// runs; quiet (kWarning) by default so tests and benches stay readable.
#ifndef TWCHASE_UTIL_LOGGING_H_
#define TWCHASE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace twchase {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global threshold: messages below this level are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define TWCHASE_LOG(level)                                                   \
  if (static_cast<int>(::twchase::LogLevel::k##level) >=                     \
      static_cast<int>(::twchase::GetLogLevel()))                            \
  ::twchase::internal_logging::LogMessage(::twchase::LogLevel::k##level,     \
                                          __FILE__, __LINE__)                \
      .stream()

}  // namespace twchase

#endif  // TWCHASE_UTIL_LOGGING_H_
