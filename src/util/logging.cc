#include "util/logging.h"

#include <cstdio>

namespace twchase {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal_logging
}  // namespace twchase
