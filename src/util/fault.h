// Deterministic fault injection for robustness testing.
//
// A FaultInjector is armed with (site, visit, action) triples — "on the
// third homomorphism-search node, fail an allocation" — or seeded so a
// pseudo-random but reproducible schedule is derived from a single integer.
// The ResourceGovernor (util/governor.h) consults the ambient injector on
// every unmasked poll; a firing fault latches the governor with the stop
// reason the action simulates (kCancelled for an injected cancellation,
// kMemoryBudget for an injected allocation failure), which exercises
// exactly the code paths organic exhaustion would.
//
// Injection is observer-visible: the chase emits a FaultInjectedEvent when
// a run stops on a fired fault, so test assertions and the JSONL event log
// can tell injected stops from organic ones.
//
// The injector is inert unless explicitly installed with a
// FaultInjectorScope — production builds carry only a thread-local pointer
// check per poll.
#ifndef TWCHASE_UTIL_FAULT_H_
#define TWCHASE_UTIL_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace twchase {

/// Where a governed procedure polls. Sites identify boundary *kinds*; the
/// visit counter (per site, maintained by the injector) identifies the
/// exact boundary instance within a run.
enum class FaultSite {
  kTriggerBoundary = 0,  // chase.cc: before committing one trigger decision
  kRoundBoundary,        // chase.cc: top of a chase round
  kHomNode,              // hom/matcher.cc: one search-tree node expansion
  kCoreFold,             // hom/core.cc: between folding iterations
  kEntailmentRound,      // core/entailment.cc: between dovetail rounds
  kTreewidthNode,        // tw/: between DP blocks / elimination steps
  kFsWrite,              // util/fs.cc: before one write(2) of durable bytes
  kFsFsync,              // util/fs.cc: before one fsync(2)
  kFsRename,             // util/fs.cc: before one atomic rename(2)
};

/// Engine-side sites polled through the ResourceGovernor. FromSeed draws
/// only from these so existing seeded schedules stay stable as
/// filesystem sites are appended.
constexpr size_t kNumEngineFaultSites = 6;

constexpr size_t kNumFaultSites = 9;

const char* FaultSiteName(FaultSite site);

/// What an injected fault simulates. The first two target engine sites;
/// the filesystem actions target kFs* sites and simulate the classic
/// torn-write failure modes.
enum class FaultAction {
  kCancel = 0,         // as if CancelToken::RequestCancel had been called
  kAllocationFailure,  // as if the memory budget had been exhausted
  kShortWrite,         // write(2) persists a prefix, then the process "dies"
  kIoError,            // write/fsync/rename fails with EIO, nothing persisted
  kNoSpace,            // write fails with ENOSPC, nothing persisted
};

const char* FaultActionName(FaultAction action);

/// Deterministic schedule of faults. Visits are 1-based and counted per
/// site: Arm(kTriggerBoundary, 3, kCancel) fires on the third unmasked
/// trigger-boundary poll. Each armed fault fires at most once.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Arms one fault at an exact (site, visit) pair.
  void Arm(FaultSite site, uint64_t visit, FaultAction action);

  /// Derives a single-fault schedule from `seed`: the seed is hashed
  /// (splitmix64) into a site, an action, and a visit in [1, max_visit].
  /// The same seed always yields the same schedule, so a failing seed in
  /// a test log reproduces exactly.
  static FaultInjector FromSeed(uint64_t seed, uint64_t max_visit);

  /// Called by the governor on every unmasked poll of `site`. Increments
  /// the site's visit counter and returns true (filling *action) when an
  /// armed fault fires on this visit.
  bool Poll(FaultSite site, FaultAction* action);

  /// Visits observed so far at `site` (for test assertions).
  uint64_t visits(FaultSite site) const {
    return visits_[static_cast<size_t>(site)];
  }

  /// Number of armed faults that have fired.
  size_t fired_count() const { return fired_count_; }

 private:
  struct Armed {
    FaultSite site;
    uint64_t visit;
    FaultAction action;
    bool fired = false;
  };

  std::vector<Armed> armed_;
  uint64_t visits_[kNumFaultSites] = {};
  size_t fired_count_ = 0;
};

/// The injector ambient on this thread, or nullptr.
FaultInjector* CurrentFaultInjector();

/// Installs a process-global injector consulted (under a mutex) by
/// filesystem fault polls when no thread-local injector is ambient.
/// Daemon-level tests need this: persistence runs on scheduler worker and
/// HTTP handler threads the test cannot wrap in a FaultInjectorScope.
/// Pass nullptr to uninstall. Not for engine sites.
void SetGlobalFsFaultInjector(FaultInjector* injector);

/// Polls `site` against the thread-local injector if present, else the
/// global fs injector (serialized). Returns true and fills *action when a
/// fault fires. Only util/fs.cc should call this.
bool PollFsFault(FaultSite site, FaultAction* action);

/// Installs `injector` as the thread's ambient injector for the scope.
class FaultInjectorScope {
 public:
  explicit FaultInjectorScope(FaultInjector* injector);
  ~FaultInjectorScope();

  FaultInjectorScope(const FaultInjectorScope&) = delete;
  FaultInjectorScope& operator=(const FaultInjectorScope&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace twchase

#endif  // TWCHASE_UTIL_FAULT_H_
