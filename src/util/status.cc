#include "util/status.h"

#include <cstdio>

namespace twchase {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieBecauseCheckFailed(const char* file, int line, const char* expr,
                           const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_status
}  // namespace twchase
