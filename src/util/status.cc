#include "util/status.h"

#include <cstdio>

namespace twchase {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace {

// Crash-context annotations (see ScopedCrashContext). Plain thread-locals:
// read only on the abort path, written on scope entry/exit.
thread_local const char* g_crash_phase = nullptr;
thread_local const size_t* g_crash_step = nullptr;

}  // namespace

ScopedCrashContext::ScopedCrashContext(const char* phase, const size_t* step)
    : previous_phase_(g_crash_phase), previous_step_(g_crash_step) {
  g_crash_phase = phase;
  g_crash_step = step;
}

ScopedCrashContext::~ScopedCrashContext() {
  g_crash_phase = previous_phase_;
  g_crash_step = previous_step_;
}

namespace internal_status {

void DieBecauseCheckFailed(const char* file, int line, const char* expr,
                           const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  if (g_crash_phase != nullptr) {
    if (g_crash_step != nullptr) {
      std::fprintf(stderr, "  while: %s, step %zu\n", g_crash_phase,
                   *g_crash_step);
    } else {
      std::fprintf(stderr, "  while: %s\n", g_crash_phase);
    }
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_status
}  // namespace twchase
