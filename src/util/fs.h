// Crash-safe filesystem primitives for the durable job store.
//
// Every byte the daemon persists flows through this file, which gives the
// fault-injection harness a single choke point: FsWriteAll / FsFsync /
// FsRename poll the ambient FaultInjector (util/fault.h) at the kFsWrite /
// kFsFsync / kFsRename sites before touching the kernel, so tests can
// simulate a short write, an EIO, an ENOSPC, or a crash-before-rename at
// any persistence step and assert recovery.
//
// Durability discipline (the classic one):
//   WriteFileDurable = write temp file → fsync(temp) → rename(temp, final)
//                      → fsync(directory)
// A reader therefore sees either the old complete file or the new complete
// file, never a torn mixture — provided the on-disk format also carries a
// checksum so a torn *append* (manifest WAL) is detectable.
//
// All functions are POSIX-only, return Status, and never throw.
#ifndef TWCHASE_UTIL_FS_H_
#define TWCHASE_UTIL_FS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace twchase {

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) over `data`.
/// Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(std::string_view data);

/// Writes all of `data` to `fd`, retrying partial writes. Polls the
/// kFsWrite fault site once per call; an injected kShortWrite persists
/// roughly half the bytes before failing, so on-disk state after the
/// "crash" is a torn prefix exactly as a real power cut would leave it.
/// `what` names the destination for error messages.
Status FsWriteAll(int fd, std::string_view data, const std::string& what);

/// fsync(fd), with the kFsFsync fault site polled first.
Status FsFsync(int fd, const std::string& what);

/// rename(from, to), with the kFsRename fault site polled first. An
/// injected fault leaves the temp file in place and the target untouched —
/// the crash-before-rename window.
Status FsRename(const std::string& from, const std::string& to);

/// Opens `dir`, fsyncs it, closes it. Makes a preceding rename durable.
Status FsSyncDir(const std::string& dir);

/// mkdir -p for a single level: creates `dir` if absent; ok if it already
/// exists as a directory.
Status EnsureDirectory(const std::string& dir);

/// Reads the whole file into *out. NotFound if the file does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

/// Atomically replaces `path` with `content` using the temp → fsync →
/// rename → dir-fsync discipline. The temp file lives next to `path`
/// (same directory, ".tmp" suffix) so the rename never crosses a
/// filesystem. On any failure the temp file is unlinked and `path` is
/// left as it was.
Status WriteFileDurable(const std::string& path, std::string_view content);

/// unlink(path) followed by a directory fsync. Ok if already absent.
Status RemoveFileDurable(const std::string& path);

/// True if `path` exists (any file type).
bool FileExists(const std::string& path);

}  // namespace twchase

#endif  // TWCHASE_UTIL_FS_H_
