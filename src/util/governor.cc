#include "util/governor.h"

namespace twchase {
namespace {

thread_local ResourceGovernor* g_governor = nullptr;
thread_local int g_mask_depth = 0;

}  // namespace

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kFixpoint: return "fixpoint";
    case StopReason::kStepBudget: return "step-budget";
    case StopReason::kInstanceSizeGuard: return "instance-size-guard";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kMemoryBudget: return "memory-budget";
    case StopReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

CancelToken CancelToken::Create() {
  CancelToken token;
  token.flag_ = std::make_shared<std::atomic<bool>>(false);
  return token;
}

void CancelToken::RequestCancel() const {
  if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
}

ResourceGovernor::ResourceGovernor(const ResourceLimits& limits)
    : ResourceGovernor(limits, CurrentGovernor()) {}

ResourceGovernor::ResourceGovernor(const ResourceLimits& limits,
                                   ResourceGovernor* parent)
    : limits_(limits), parent_(parent) {
  if (limits_.deadline_ms.has_value()) {
    has_deadline_ = true;
    deadline_at_ = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(*limits_.deadline_ms);
  }
}

std::optional<uint64_t> ResourceGovernor::RemainingDeadlineMs() const {
  if (!has_deadline_) return std::nullopt;
  auto now = std::chrono::steady_clock::now();
  if (now >= deadline_at_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline_at_ - now)
          .count());
}

bool ResourceGovernor::CheckPassive() {
  if (stopped_) return true;
  if (limits_.cancel.cancel_requested()) {
    Latch(StopReason::kCancelled);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_at_) {
    Latch(StopReason::kDeadline);
    return true;
  }
  if (parent_ != nullptr && parent_->CheckPassive()) {
    // Inherit the outer stop verbatim: an outer deadline stops the inner
    // run "because of a deadline" even if the inner run has none.
    Latch(parent_->reason());
    return true;
  }
  return false;
}

bool ResourceGovernor::ShouldStop(FaultSite site) {
  if (stopped_) return true;
  ++visits_;

  if (FaultInjector* injector = CurrentFaultInjector()) {
    FaultAction action;
    if (injector->Poll(site, &action)) {
      fault_fired_ = true;
      fault_site_ = site;
      fault_visit_ = injector->visits(site);
      Latch(action == FaultAction::kAllocationFailure
                ? StopReason::kMemoryBudget
                : StopReason::kCancelled);
      return true;
    }
  }

  if (limits_.cancel.cancel_requested()) {
    Latch(StopReason::kCancelled);
    return true;
  }
  if (limits_.memory_budget_bytes > 0 &&
      memory_estimate_ > limits_.memory_budget_bytes) {
    Latch(StopReason::kMemoryBudget);
    return true;
  }
  // The clock read is the only non-trivial cost here; amortize it. The
  // first visit always reads so a deadline of 0ms (already expired at
  // construction) stops before any work happens.
  bool poll_clock = has_deadline_ && (visits_ == 1 || visits_ % kClockPollStride == 0);
  if (poll_clock && std::chrono::steady_clock::now() >= deadline_at_) {
    Latch(StopReason::kDeadline);
    return true;
  }
  if (parent_ != nullptr && parent_->CheckPassive()) {
    Latch(parent_->reason());
    return true;
  }
  return false;
}

ResourceGovernor* CurrentGovernor() { return g_governor; }

GovernorScope::GovernorScope(ResourceGovernor* governor)
    : previous_(g_governor) {
  g_governor = governor;
}

GovernorScope::~GovernorScope() { g_governor = previous_; }

GovernorAtomicSection::GovernorAtomicSection() { ++g_mask_depth; }

GovernorAtomicSection::~GovernorAtomicSection() { --g_mask_depth; }

bool GovernorPoll(FaultSite site) {
  if (g_governor == nullptr || g_mask_depth > 0) return false;
  return g_governor->ShouldStop(site);
}

bool GovernorStopped() {
  return g_governor != nullptr && g_governor->stopped();
}

}  // namespace twchase
