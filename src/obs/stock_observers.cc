#include "obs/stock_observers.h"

#include <string>

#include "tw/treewidth.h"
#include "util/status.h"

namespace twchase {

// --------------------------------------------------------------------------
// TraceObserver. The format mirrors the historical trace.cc line for line;
// tests/trace_dot_test.cc pins it.

void TraceObserver::AppendInstance(const AtomSet* instance) {
  if (options_.print_instances && instance != nullptr) {
    text_ += "    " + instance->ToString(*vocab_) + "\n";
  }
}

void TraceObserver::OnRunBegin(const RunBeginEvent& event) {
  ++elements_seen_;
  if (options_.max_steps != 0 && elements_printed_ >= options_.max_steps) {
    return;
  }
  ++elements_printed_;
  text_ += "F_0 = initial";
  const Substitution* sigma = event.initial_simplification;
  if (sigma != nullptr && !sigma->empty() && !sigma->IsIdentity()) {
    text_ += ", cored via " + sigma->ToString(*vocab_);
  }
  text_ += " -> |F| = " + std::to_string(event.initial_size) + "\n";
  AppendInstance(event.instance);
}

void TraceObserver::OnTriggerApplied(const TriggerAppliedEvent& event) {
  ++elements_seen_;
  if (options_.max_steps != 0 && elements_printed_ >= options_.max_steps) {
    return;
  }
  ++elements_printed_;
  text_ += "F_" + std::to_string(event.step) + " = ";
  if (event.rule_label != nullptr && !event.rule_label->empty()) {
    text_ += *event.rule_label;
  } else {
    text_ += "rule#" + std::to_string(event.rule_index);
  }
  text_ += " @ " + event.match->ToString(*vocab_);
  text_ += " +" + std::to_string(event.added_atoms) + " atoms";
  const Substitution* sigma = event.simplification;
  if (sigma != nullptr && !sigma->empty() && !sigma->IsIdentity()) {
    text_ += ", simplified " + sigma->ToString(*vocab_);
  }
  text_ += " -> |F| = " + std::to_string(event.instance_size) + "\n";
  AppendInstance(event.instance);
}

void TraceObserver::OnRunEnd(const RunEndEvent& event) {
  (void)event;
  if (elements_seen_ > elements_printed_) {
    text_ += "... (" + std::to_string(elements_seen_ - elements_printed_) +
             " more steps)\n";
  }
}

// --------------------------------------------------------------------------
// MeasuresObserver.

void MeasuresObserver::Record(size_t instance_size, const AtomSet* instance) {
  switch (measure_) {
    case Measure::kSize:
      series_.push_back(static_cast<int>(instance_size));
      break;
    case Measure::kTreewidthUpper:
    case Measure::kTreewidthLower: {
      TWCHASE_CHECK_MSG(instance != nullptr,
                        "treewidth measures need instance snapshots");
      TreewidthResult tw = ComputeTreewidth(*instance, tw_options_);
      series_.push_back(measure_ == Measure::kTreewidthUpper ? tw.upper_bound
                                                             : tw.lower_bound);
      break;
    }
  }
}

void MeasuresObserver::OnRunBegin(const RunBeginEvent& event) {
  Record(event.initial_size, event.instance);
}

void MeasuresObserver::OnTriggerApplied(const TriggerAppliedEvent& event) {
  Record(event.instance_size, event.instance);
}

// --------------------------------------------------------------------------
// MetricsObserver.

MetricsObserver::MetricsObserver(MetricsRegistry* registry,
                                 const MetricsObserverOptions& options)
    : registry_(registry), options_(options) {
  considered_ = registry_->GetCounter("chase.triggers.considered");
  applied_ = registry_->GetCounter("chase.triggers.applied");
  retired_ = registry_->GetCounter("chase.triggers.retired");
  delta_repairs_ = registry_->GetCounter("chase.delta.repairs");
  delta_inserted_ = registry_->GetCounter("chase.delta.inserted");
  delta_erased_ = registry_->GetCounter("chase.delta.erased");
  delta_invalidated_ = registry_->GetCounter("chase.delta.invalidated");
  delta_seed_probes_ = registry_->GetCounter("chase.delta.seed_probes");
  core_retractions_ = registry_->GetCounter("chase.core.retractions");
  core_folds_ = registry_->GetCounter("chase.core.folds");
  core_fallbacks_ = registry_->GetCounter("chase.core.fallbacks");
  parallel_rounds_ = registry_->GetCounter("chase.parallel.rounds");
  parallel_tasks_ = registry_->GetCounter("chase.parallel.tasks");
  match_index_probes_ = registry_->GetCounter("chase.match.index_probes");
  match_column_scans_ = registry_->GetCounter("chase.match.column_scans");
  match_join_fallbacks_ = registry_->GetCounter("chase.match.join_fallbacks");
  match_index_builds_ = registry_->GetCounter("chase.match.index_builds");
  match_index_build_bytes_ =
      registry_->GetCounter("chase.match.index_build_bytes");
  plan_enumerations_skipped_ =
      registry_->GetCounter("chase.plan.enumerations_skipped");
  plan_probes_skipped_ = registry_->GetCounter("chase.plan.probes_skipped");
  plan_core_proofs_ = registry_->GetCounter("chase.plan.core_proofs");
  plan_core_certified_ = registry_->GetCounter("chase.plan.core_certified");
  round_ = registry_->GetGauge("chase.round");
  instance_size_ = registry_->GetGauge("chase.instance.size");
  parallel_threads_ = registry_->GetGauge("chase.parallel.threads");
  parallel_workers_used_ = registry_->GetGauge("chase.parallel.workers_used");
  parallel_max_imbalance_ = registry_->GetGauge("chase.parallel.max_imbalance");
  plan_reliance_edges_ = registry_->GetGauge("chase.plan.reliance_edges");
  plan_strata_ = registry_->GetGauge("chase.plan.strata");
  plan_dormant_rules_ = registry_->GetGauge("chase.plan.dormant_rules");
  plan_active_strata_ = registry_->GetGauge("chase.plan.active_strata");
  if (options_.treewidth_upper) {
    treewidth_upper_ = registry_->GetGauge("chase.treewidth.upper");
  }
  round_pending_ = registry_->GetHistogram("chase.round.pending");
  step_added_atoms_ = registry_->GetHistogram("chase.step.added_atoms");
  parallel_eval_ms_ = registry_->GetHistogram("chase.parallel.eval_ms");
  parallel_merge_ms_ = registry_->GetHistogram("chase.parallel.merge_ms");
}

void MetricsObserver::UpdatePerStepGauges(size_t step, size_t instance_size,
                                          const AtomSet* instance) {
  instance_size_->Set(static_cast<double>(instance_size));
  if (treewidth_upper_ != nullptr) {
    TWCHASE_CHECK_MSG(instance != nullptr,
                      "treewidth gauge needs instance payloads");
    treewidth_upper_->Set(static_cast<double>(
        ComputeTreewidth(*instance, options_.tw).upper_bound));
  }
  registry_->EmitRow(options_.sink, step);
}

void MetricsObserver::OnRunBegin(const RunBeginEvent& event) {
  UpdatePerStepGauges(0, event.initial_size, event.instance);
}

void MetricsObserver::OnRoundBegin(const RoundBeginEvent& event) {
  round_->Set(static_cast<double>(event.round));
  round_pending_->Observe(static_cast<double>(event.pending_triggers));
}

void MetricsObserver::OnDeltaRepair(const DeltaRepairEvent& event) {
  delta_repairs_->Increment();
  delta_inserted_->Increment(event.inserted_atoms);
  delta_erased_->Increment(event.erased_atoms);
  delta_invalidated_->Increment(event.matches_invalidated);
  delta_seed_probes_->Increment(event.seed_probes);
}

void MetricsObserver::OnTriggerConsidered(const TriggerConsideredEvent&) {
  considered_->Increment();
}

void MetricsObserver::OnTriggerApplied(const TriggerAppliedEvent& event) {
  applied_->Increment();
  step_added_atoms_->Observe(static_cast<double>(event.added_atoms));
  UpdatePerStepGauges(event.step, event.instance_size, event.instance);
}

void MetricsObserver::OnTriggerRetired(const TriggerRetiredEvent&) {
  retired_->Increment();
}

void MetricsObserver::OnCoreRetraction(const CoreRetractionEvent& event) {
  core_retractions_->Increment();
  core_folds_->Increment(event.folds);
  if (event.fell_back) core_fallbacks_->Increment();
}

void MetricsObserver::OnParallelRound(const ParallelRoundEvent& event) {
  parallel_rounds_->Increment();
  parallel_tasks_->Increment(event.tasks);
  parallel_threads_->Set(static_cast<double>(event.threads));
  parallel_workers_used_->Set(static_cast<double>(event.workers_used));
  parallel_max_imbalance_->Set(static_cast<double>(event.max_imbalance));
  parallel_eval_ms_->Observe(event.eval_ms);
  parallel_merge_ms_->Observe(event.merge_ms);
}

void MetricsObserver::OnMatchPlan(const MatchPlanEvent& event) {
  match_index_probes_->Increment(event.index_probes);
  match_column_scans_->Increment(event.column_scans);
  match_join_fallbacks_->Increment(event.join_fallbacks);
  match_index_builds_->Increment(event.index_builds);
  match_index_build_bytes_->Increment(event.index_build_bytes);
}

void MetricsObserver::OnPlan(const PlanEvent& event) {
  plan_reliance_edges_->Set(static_cast<double>(event.reliance_edges));
  plan_strata_->Set(static_cast<double>(event.strata));
  plan_dormant_rules_->Set(static_cast<double>(event.dormant_rules));
  plan_active_strata_->Set(static_cast<double>(event.active_strata));
  plan_enumerations_skipped_->Increment(event.enumerations_skipped);
  plan_probes_skipped_->Increment(event.probes_skipped);
  plan_core_proofs_->Increment(event.core_proofs);
  plan_core_certified_->Increment(event.core_certified);
}

void MetricsObserver::OnPhase(const PhaseEvent& event) {
  registry_->GetHistogram(std::string("phase.") + event.name + ".wall_ms")
      ->Observe(event.wall_ms);
}

// --------------------------------------------------------------------------
// EventLogObserver.

namespace {

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* Bool(bool b) { return b ? "true" : "false"; }

}  // namespace

void EventLogObserver::OnRunBegin(const RunBeginEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"run_begin\", \"variant\": \""
        << ChaseVariantName(event.variant)
        << "\", \"rules\": " << event.rule_count
        << ", \"initial_size\": " << event.initial_size << "}\n";
}

void EventLogObserver::OnRoundBegin(const RoundBeginEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"round_begin\", \"round\": " << event.round
        << ", \"pending\": " << event.pending_triggers
        << ", \"size\": " << event.instance_size << "}\n";
}

void EventLogObserver::OnDeltaRepair(const DeltaRepairEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"delta_repair\", \"round\": " << event.round
        << ", \"inserted\": " << event.inserted_atoms
        << ", \"erased\": " << event.erased_atoms
        << ", \"invalidated\": " << event.matches_invalidated
        << ", \"seed_probes\": " << event.seed_probes
        << ", \"matches_added\": " << event.matches_added << "}\n";
}

void EventLogObserver::OnTriggerConsidered(
    const TriggerConsideredEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"trigger_considered\", \"round\": " << event.round
        << ", \"rule\": " << event.rule_index << "}\n";
}

void EventLogObserver::OnTriggerApplied(const TriggerAppliedEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"trigger_applied\", \"step\": " << event.step
        << ", \"round\": " << event.round << ", \"rule\": " << event.rule_index;
  if (event.rule_label != nullptr && !event.rule_label->empty()) {
    *out_ << ", \"label\": \"" << Escape(*event.rule_label) << "\"";
  }
  *out_ << ", \"added\": " << event.added_atoms
        << ", \"size\": " << event.instance_size << "}\n";
}

void EventLogObserver::OnTriggerRetired(const TriggerRetiredEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"trigger_retired\", \"round\": " << event.round
        << ", \"rule\": " << event.rule_index << ", \"reason\": \""
        << TriggerRetireReasonName(event.reason) << "\"}\n";
}

void EventLogObserver::OnCoreRetraction(const CoreRetractionEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"core_retraction\", \"step\": " << event.step
        << ", \"folds\": " << event.folds
        << ", \"incremental\": " << Bool(event.incremental)
        << ", \"fell_back\": " << Bool(event.fell_back)
        << ", \"before\": " << event.size_before
        << ", \"after\": " << event.size_after << "}\n";
}

void EventLogObserver::OnParallelRound(const ParallelRoundEvent& event) {
  // Skipped by default: this event exists only at --threads > 1, and the
  // event-stream bit-identity oracle compares logs across thread counts.
  if (out_ == nullptr || !log_parallel_events_) return;
  *out_ << "{\"event\": \"parallel_round\", \"round\": " << event.round
        << ", \"threads\": " << event.threads
        << ", \"sections\": " << event.sections
        << ", \"tasks\": " << event.tasks
        << ", \"workers_used\": " << event.workers_used
        << ", \"max_imbalance\": " << event.max_imbalance
        << ", \"eval_ms\": " << FormatMetricNumber(event.eval_ms)
        << ", \"merge_ms\": " << FormatMetricNumber(event.merge_ms) << "}\n";
}

void EventLogObserver::OnMatchPlan(const MatchPlanEvent& event) {
  // Skipped by default: this event only fires on the columnar matching
  // backend, and the event-stream bit-identity oracle compares logs
  // between the columnar and legacy backends.
  if (out_ == nullptr || !log_match_events_) return;
  *out_ << "{\"event\": \"match_plan\", \"round\": " << event.round
        << ", \"index_probes\": " << event.index_probes
        << ", \"column_scans\": " << event.column_scans
        << ", \"join_fallbacks\": " << event.join_fallbacks
        << ", \"index_builds\": " << event.index_builds
        << ", \"index_build_bytes\": " << event.index_build_bytes << "}\n";
}

void EventLogObserver::OnPlan(const PlanEvent& event) {
  // Skipped by default: this event only fires with --plan=on, and the
  // event-stream bit-identity oracle compares logs across plan on/off.
  if (out_ == nullptr || !log_plan_events_) return;
  *out_ << "{\"event\": \"plan\", \"round\": " << event.round
        << ", \"rules\": " << event.rules
        << ", \"reliance_edges\": " << event.reliance_edges
        << ", \"strata\": " << event.strata
        << ", \"dormant_rules\": " << event.dormant_rules
        << ", \"active_strata\": " << event.active_strata
        << ", \"enumerations_skipped\": " << event.enumerations_skipped
        << ", \"probes_skipped\": " << event.probes_skipped
        << ", \"core_proofs\": " << event.core_proofs
        << ", \"core_certified\": " << event.core_certified << "}\n";
}

void EventLogObserver::OnRoundEnd(const RoundEndEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"round_end\", \"round\": " << event.round
        << ", \"steps\": " << event.steps_in_round
        << ", \"size\": " << event.instance_size
        << ", \"progressed\": " << Bool(event.progressed) << "}\n";
}

void EventLogObserver::OnRobustRename(const RobustRenameEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"robust_rename\", \"step\": " << event.step
        << ", \"renamed\": " << event.renamed_variables
        << ", \"stable\": " << event.stable_variables
        << ", \"g_size\": " << event.g_size
        << ", \"union_size\": " << event.union_size << "}\n";
}

void EventLogObserver::OnPhase(const PhaseEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"phase\", \"name\": \"" << Escape(event.name)
        << "\", \"wall_ms\": " << FormatMetricNumber(event.wall_ms)
        << ", \"chase_steps\": " << event.chase_steps << "}\n";
}

void EventLogObserver::OnFaultInjected(const FaultInjectedEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"fault_injected\", \"site\": \""
        << FaultSiteName(event.site) << "\", \"visit\": " << event.visit
        << ", \"simulated\": \"" << StopReasonName(event.simulated)
        << "\"}\n";
}

void EventLogObserver::OnRunEnd(const RunEndEvent& event) {
  if (out_ == nullptr) return;
  *out_ << "{\"event\": \"run_end\", \"steps\": " << event.steps
        << ", \"rounds\": " << event.rounds
        << ", \"terminated\": " << Bool(event.terminated)
        << ", \"size_guard\": " << Bool(event.size_guard_tripped)
        << ", \"stop_reason\": \"" << StopReasonName(event.stop_reason)
        << "\", \"final_size\": " << event.final_size << "}\n";
}

}  // namespace twchase
