#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "util/status.h"

namespace twchase {

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next_thread{0};
  thread_local size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : sum_ / count_;
}

void Histogram::Merge(const Histogram& other) {
  // Snapshot `other` under its own lock first: the two locks are never
  // held together, so Merge can never deadlock (a histogram is not merged
  // into itself).
  size_t other_count;
  double other_sum, other_min, other_max;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    other_count = other.count_;
    other_sum = other.sum_;
    other_min = other.min_;
    other_max = other.max_;
  }
  if (other_count == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || other_min < min_) min_ = other_min;
  if (count_ == 0 || other_max > max_) max_ = other_max;
  count_ += other_count;
  sum_ += other_sum;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      Kind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    TWCHASE_CHECK_MSG(entry.kind == kind,
                      "metric '" + name + "' registered under another kind");
    return &entry;
  }
  index_.emplace(name, entries_.size());
  Entry entry;
  entry.name = name;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return &entries_.back();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return FindOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return FindOrCreate(name, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return FindOrCreate(name, Kind::kHistogram)->histogram.get();
}

std::vector<MetricColumn> MetricsRegistry::SnapshotColumns() const {
  std::vector<MetricColumn> columns;
  columns.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        columns.push_back(
            {entry.name, static_cast<double>(entry.counter->value())});
        break;
      case Kind::kGauge:
        columns.push_back({entry.name, entry.gauge->value()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        columns.push_back(
            {entry.name + ".count", static_cast<double>(h.count())});
        columns.push_back({entry.name + ".sum", h.sum()});
        columns.push_back({entry.name + ".min", h.min()});
        columns.push_back({entry.name + ".max", h.max()});
        break;
      }
    }
  }
  return columns;
}

void MetricsRegistry::EmitRow(MetricsSink* sink, size_t step) const {
  if (sink == nullptr) return;
  sink->Row(step, SnapshotColumns());
}

std::string FormatMetricNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

namespace {

// Metric names are dotted identifiers we mint ourselves, but escape anyway
// so a stray quote can never produce invalid JSON.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToJson(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const Entry& entry : entries_) {
    std::string* group = &counters;
    std::string rendered = "\"" + JsonEscape(entry.name) + "\": ";
    switch (entry.kind) {
      case Kind::kCounter:
        group = &counters;
        rendered +=
            FormatMetricNumber(static_cast<double>(entry.counter->value()));
        break;
      case Kind::kGauge:
        group = &gauges;
        rendered += FormatMetricNumber(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        group = &histograms;
        const Histogram& h = *entry.histogram;
        rendered += "{\"count\": " +
                    FormatMetricNumber(static_cast<double>(h.count())) +
                    ", \"sum\": " + FormatMetricNumber(h.sum()) +
                    ", \"min\": " + FormatMetricNumber(h.min()) +
                    ", \"max\": " + FormatMetricNumber(h.max()) +
                    ", \"mean\": " + FormatMetricNumber(h.mean()) + "}";
        break;
      }
    }
    if (!group->empty()) *group += ",\n";
    *group += pad + "    " + rendered;
  }
  std::string out = "{\n";
  auto append_group = [&](const char* key, const std::string& body,
                          bool last) {
    out += pad + "  \"" + key + "\": {";
    if (!body.empty()) out += "\n" + body + "\n" + pad + "  ";
    out += "}";
    if (!last) out += ",";
    out += "\n";
  };
  append_group("counters", counters, false);
  append_group("gauges", gauges, false);
  append_group("histograms", histograms, true);
  out += pad + "}";
  return out;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const Entry& entry : other.entries_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        // Register even a zero counter so the fleet column set is the
        // union of every job's, stable across merges.
        Counter* mine = GetCounter(entry.name);
        uint64_t value = entry.counter->value();
        if (value != 0) mine->Increment(value);
        break;
      }
      case Kind::kGauge:
        GetGauge(entry.name)->Set(entry.gauge->value());
        break;
      case Kind::kHistogram:
        GetHistogram(entry.name)->Merge(*entry.histogram);
        break;
    }
  }
}

void JsonlSink::Row(size_t step, const std::vector<MetricColumn>& columns) {
  if (out_ == nullptr) return;
  *out_ << "{\"step\": " << step;
  for (const MetricColumn& column : columns) {
    *out_ << ", \"" << JsonEscape(column.name)
          << "\": " << FormatMetricNumber(column.value);
  }
  *out_ << "}\n";
}

void CsvSink::Row(size_t step, const std::vector<MetricColumn>& columns) {
  if (out_ == nullptr) return;
  if (!header_written_) {
    *out_ << "step";
    for (const MetricColumn& column : columns) *out_ << "," << column.name;
    *out_ << "\n";
    header_written_ = true;
    header_columns_ = columns.size();
  }
  TWCHASE_CHECK_MSG(columns.size() == header_columns_,
                    "metrics column set changed after the CSV header; "
                    "register all instruments before the first row");
  *out_ << step;
  for (const MetricColumn& column : columns) {
    *out_ << "," << FormatMetricNumber(column.value);
  }
  *out_ << "\n";
}

}  // namespace twchase
