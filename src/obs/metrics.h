// MetricsRegistry: named counters, gauges and summary histograms with
// deterministic (registration-order) iteration, plus row-oriented sinks.
//
// Two consumption modes:
//   * Snapshot — ToJson() renders every instrument once (benches embed this
//     into their BENCH_*.json artifacts).
//   * Series — EmitRow(sink, step) appends one row with the current value of
//     every instrument; JsonlSink writes one JSON object per line (the CLI's
//     --metrics-out), CsvSink writes a header plus comma-separated rows.
//     Histograms expand into .count/.sum/.min/.max columns so rows stay
//     flat. The column set is fixed at the first row: register every
//     instrument before emitting (stock observers do this in their
//     constructors).
//
// Instruments are plain (non-atomic) — the engine is single-threaded by
// design (DESIGN.md §7 non-goals) and pointer-stable: Counter/Gauge/
// Histogram pointers remain valid for the registry's lifetime.
#ifndef TWCHASE_OBS_METRICS_H_
#define TWCHASE_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace twchase {

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Summary histogram: count/sum/min/max (no buckets — enough for the
/// per-phase timing and per-step distribution series the benches report).
class Histogram {
 public:
  void Observe(double value);
  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }

 private:
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// One flat (column, value) pair of a metrics row.
struct MetricColumn {
  std::string name;
  double value = 0;
};

/// Receives one row per EmitRow call. Column order and names are identical
/// across the rows of one registry.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void Row(size_t step, const std::vector<MetricColumn>& columns) = 0;
};

class MetricsRegistry {
 public:
  /// Get-or-create by name. The returned pointer is stable. A name may be
  /// registered under one instrument kind only.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Flattens every instrument into columns, registration order.
  std::vector<MetricColumn> SnapshotColumns() const;

  /// Appends one row with the current value of every instrument.
  void EmitRow(MetricsSink* sink, size_t step) const;

  /// Renders all instruments as one JSON object, grouped by kind:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..}}}. `indent` shifts
  /// every line for embedding into an enclosing document.
  std::string ToJson(int indent = 0) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, Kind kind);

  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t> index_;
};

/// Renders a double the way our JSON artifacts expect: integral values
/// without a fraction ("42"), others with up to 6 significant decimals.
std::string FormatMetricNumber(double value);

/// One JSON object per row, one row per line:
/// {"step":3,"chase.instance.size":14,...}
class JsonlSink : public MetricsSink {
 public:
  explicit JsonlSink(std::ostream* out) : out_(out) {}
  void Row(size_t step, const std::vector<MetricColumn>& columns) override;

 private:
  std::ostream* out_;
};

/// Header row ("step,<col>,..."), then one comma-separated row per call.
/// The header is written lazily at the first row and the column set is
/// checked to stay identical afterwards.
class CsvSink : public MetricsSink {
 public:
  explicit CsvSink(std::ostream* out) : out_(out) {}
  void Row(size_t step, const std::vector<MetricColumn>& columns) override;

 private:
  std::ostream* out_;
  size_t header_columns_ = 0;
  bool header_written_ = false;
};

}  // namespace twchase

#endif  // TWCHASE_OBS_METRICS_H_
