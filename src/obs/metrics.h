// MetricsRegistry: named counters, gauges and summary histograms with
// deterministic (registration-order) iteration, plus row-oriented sinks.
//
// Two consumption modes:
//   * Snapshot — ToJson() renders every instrument once (benches embed this
//     into their BENCH_*.json artifacts).
//   * Series — EmitRow(sink, step) appends one row with the current value of
//     every instrument; JsonlSink writes one JSON object per line (the CLI's
//     --metrics-out), CsvSink writes a header plus comma-separated rows.
//     Histograms expand into .count/.sum/.min/.max columns so rows stay
//     flat. The column set is fixed at the first row: register every
//     instrument before emitting (stock observers do this in their
//     constructors).
//
// Instruments are thread-safe since the parallel trigger-evaluation
// subsystem (core/parallel.h) let worker threads into the engine: counters
// are sharded over cache-line-aligned atomic cells (one relaxed fetch_add
// on the calling thread's shard per Increment, merge-on-read), gauges are a
// single atomic, histograms take a mutex (they are observed from the main
// thread at phase granularity, never on a hot path). *Registration* is not:
// GetCounter/GetGauge/GetHistogram and the render/emit paths must stay on
// one thread — stock observers register everything in their constructors,
// before any worker exists. Pointers remain stable for the registry's
// lifetime.
#ifndef TWCHASE_OBS_METRICS_H_
#define TWCHASE_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace twchase {

/// Monotone counter, safe for concurrent Increment from any number of
/// threads. Sharded: each thread is hashed onto one of kShards cache-line
/// aligned cells, so concurrent increments from different threads do not
/// contend (no CAS loop, no shared cache line); value() folds the shards.
/// value() is safe concurrently with increments but, like any merge-on-read
/// scheme, yields a momentary snapshot — exact once the writers joined.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// The calling thread's shard: threads are numbered on first use and
  /// folded mod kShards, so a thread always hits the same cell.
  static size_t ShardIndex();

  Shard shards_[kShards];
};

/// Last-write-wins gauge; Set and value are single atomic accesses.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Summary histogram: count/sum/min/max (no buckets — enough for the
/// per-phase timing and per-step distribution series the benches report).
/// Mutex-guarded: observations happen at phase/round granularity, where a
/// lock is noise; min/max updates do not decompose into atomics anyway.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);
  size_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double mean() const;

  /// Folds `other`'s summary into this one, as if every observation of
  /// `other` had been Observed here (count/sum add, min/max widen).
  void Merge(const Histogram& other);

 private:
  mutable std::mutex mu_;
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// One flat (column, value) pair of a metrics row.
struct MetricColumn {
  std::string name;
  double value = 0;
};

/// Receives one row per EmitRow call. Column order and names are identical
/// across the rows of one registry.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void Row(size_t step, const std::vector<MetricColumn>& columns) = 0;
};

class MetricsRegistry {
 public:
  /// Get-or-create by name. The returned pointer is stable. A name may be
  /// registered under one instrument kind only.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Flattens every instrument into columns, registration order.
  std::vector<MetricColumn> SnapshotColumns() const;

  /// Appends one row with the current value of every instrument.
  void EmitRow(MetricsSink* sink, size_t step) const;

  /// Renders all instruments as one JSON object, grouped by kind:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..}}}. `indent` shifts
  /// every line for embedding into an enclosing document.
  std::string ToJson(int indent = 0) const;

  /// Folds every instrument of `other` into this registry, get-or-creating
  /// by name: counters add, gauges take `other`'s last value, histograms
  /// merge summaries. The fleet-aggregation primitive of the chase daemon
  /// (each finished job's per-run registry is folded into one fleet
  /// registry). Registration is still single-threaded: callers serialize
  /// MergeFrom with every other registration/render of *this* registry
  /// (the daemon holds its fleet-metrics mutex); `other` may no longer be
  /// written to concurrently.
  void MergeFrom(const MetricsRegistry& other);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, Kind kind);

  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t> index_;
};

/// Renders a double the way our JSON artifacts expect: integral values
/// without a fraction ("42"), others with up to 6 significant decimals.
std::string FormatMetricNumber(double value);

/// One JSON object per row, one row per line:
/// {"step":3,"chase.instance.size":14,...}
class JsonlSink : public MetricsSink {
 public:
  explicit JsonlSink(std::ostream* out) : out_(out) {}
  void Row(size_t step, const std::vector<MetricColumn>& columns) override;

 private:
  std::ostream* out_;
};

/// Header row ("step,<col>,..."), then one comma-separated row per call.
/// The header is written lazily at the first row and the column set is
/// checked to stay identical afterwards.
class CsvSink : public MetricsSink {
 public:
  explicit CsvSink(std::ostream* out) : out_(out) {}
  void Row(size_t step, const std::vector<MetricColumn>& columns) override;

 private:
  std::ostream* out_;
  size_t header_columns_ = 0;
  bool header_written_ = false;
};

}  // namespace twchase

#endif  // TWCHASE_OBS_METRICS_H_
