// Stock ChaseObserver implementations — the built-in consumers of the event
// stream. These are what the CLI's --trace / --measures / --metrics-out /
// --events-out surfaces are made of; they also serve as reference
// implementations for custom observers.
//
//   * TraceObserver    — renders the human-readable derivation trace
//                        (byte-identical to the historical trace.cc format).
//   * MeasuresObserver — collects a per-step measure series (|F_i| or
//                        certified treewidth bounds), the engine behind
//                        MeasureSeries.
//   * MetricsObserver  — folds events into a MetricsRegistry and optionally
//                        emits one metrics row per derivation step.
//   * EventLogObserver — writes every event as one JSON object per line
//                        (the --events-out stream).
#ifndef TWCHASE_OBS_STOCK_OBSERVERS_H_
#define TWCHASE_OBS_STOCK_OBSERVERS_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/measures.h"
#include "core/trace.h"
#include "obs/metrics.h"
#include "obs/observer.h"

namespace twchase {

/// Builds the trace text incrementally from run events. When attached to a
/// live core chase with round-end coring, the per-step simplifications are
/// rendered as emitted (before any round-end amendment); the post-hoc
/// DerivationTrace replay shows the amended derivation.
class TraceObserver : public ChaseObserver {
 public:
  explicit TraceObserver(const Vocabulary* vocab,
                         const TraceOptions& options = {})
      : vocab_(vocab), options_(options) {}

  void OnRunBegin(const RunBeginEvent& event) override;
  void OnTriggerApplied(const TriggerAppliedEvent& event) override;
  void OnRunEnd(const RunEndEvent& event) override;

  const std::string& text() const { return text_; }

 private:
  void AppendInstance(const AtomSet* instance);

  const Vocabulary* vocab_;
  TraceOptions options_;
  std::string text_;
  size_t elements_seen_ = 0;
  size_t elements_printed_ = 0;
};

/// Per-step series of one measure. Treewidth measures need instance
/// payloads (live runs always have them; replays need snapshots).
class MeasuresObserver : public ChaseObserver {
 public:
  explicit MeasuresObserver(Measure measure,
                            const TreewidthOptions& tw_options = {})
      : measure_(measure), tw_options_(tw_options) {}

  void OnRunBegin(const RunBeginEvent& event) override;
  void OnTriggerApplied(const TriggerAppliedEvent& event) override;

  const std::vector<int>& series() const { return series_; }

 private:
  void Record(size_t instance_size, const AtomSet* instance);

  Measure measure_;
  TreewidthOptions tw_options_;
  std::vector<int> series_;
};

struct MetricsObserverOptions {
  /// Also maintain a chase.treewidth.upper gauge per step (runs the
  /// treewidth solver on every F_i — as costly as --measures).
  bool treewidth_upper = false;
  TreewidthOptions tw;

  /// When set, one row per derivation step (step 0 = F_0) is emitted with
  /// the current value of every instrument.
  MetricsSink* sink = nullptr;
};

/// Folds the event stream into counters/gauges/histograms. All instruments
/// are registered up front (constructor), so sink rows have a stable column
/// set from the first row. Instrument names:
///   counters   chase.triggers.{considered,applied,retired}
///              chase.delta.{repairs,inserted,erased,invalidated,seed_probes}
///              chase.core.{retractions,folds,fallbacks}
///              chase.parallel.{rounds,tasks}
///              chase.match.{index_probes,column_scans,join_fallbacks}
///              chase.match.{index_builds,index_build_bytes}
///              chase.plan.{enumerations_skipped,probes_skipped}
///              chase.plan.{core_proofs,core_certified}
///   gauges     chase.round, chase.instance.size
///              chase.parallel.{threads,workers_used,max_imbalance}
///              chase.plan.{reliance_edges,strata,dormant_rules}
///              chase.plan.active_strata
///              chase.treewidth.upper (treewidth_upper only)
///   histograms chase.round.pending, chase.step.added_atoms
///              chase.parallel.{eval_ms,merge_ms}
/// The chase.parallel.* instruments stay zero on sequential runs, the
/// chase.match.* instruments stay zero on the legacy matching backend and
/// the chase.plan.* instruments stay zero with --plan=off; all are always
/// registered so the column set does not depend on --threads, the backend
/// or the planner.
class MetricsObserver : public ChaseObserver {
 public:
  MetricsObserver(MetricsRegistry* registry,
                  const MetricsObserverOptions& options = {});

  void OnRunBegin(const RunBeginEvent& event) override;
  void OnRoundBegin(const RoundBeginEvent& event) override;
  void OnDeltaRepair(const DeltaRepairEvent& event) override;
  void OnTriggerConsidered(const TriggerConsideredEvent& event) override;
  void OnTriggerApplied(const TriggerAppliedEvent& event) override;
  void OnTriggerRetired(const TriggerRetiredEvent& event) override;
  void OnCoreRetraction(const CoreRetractionEvent& event) override;
  void OnParallelRound(const ParallelRoundEvent& event) override;
  void OnMatchPlan(const MatchPlanEvent& event) override;
  void OnPlan(const PlanEvent& event) override;
  void OnPhase(const PhaseEvent& event) override;

 private:
  void UpdatePerStepGauges(size_t step, size_t instance_size,
                           const AtomSet* instance);

  MetricsRegistry* registry_;
  MetricsObserverOptions options_;
  Counter* considered_;
  Counter* applied_;
  Counter* retired_;
  Counter* delta_repairs_;
  Counter* delta_inserted_;
  Counter* delta_erased_;
  Counter* delta_invalidated_;
  Counter* delta_seed_probes_;
  Counter* core_retractions_;
  Counter* core_folds_;
  Counter* core_fallbacks_;
  Counter* parallel_rounds_;
  Counter* parallel_tasks_;
  Counter* match_index_probes_;
  Counter* match_column_scans_;
  Counter* match_join_fallbacks_;
  Counter* match_index_builds_;
  Counter* match_index_build_bytes_;
  Counter* plan_enumerations_skipped_;
  Counter* plan_probes_skipped_;
  Counter* plan_core_proofs_;
  Counter* plan_core_certified_;
  Gauge* round_;
  Gauge* instance_size_;
  Gauge* parallel_threads_;
  Gauge* parallel_workers_used_;
  Gauge* parallel_max_imbalance_;
  Gauge* plan_reliance_edges_;
  Gauge* plan_strata_;
  Gauge* plan_dormant_rules_;
  Gauge* plan_active_strata_;
  Gauge* treewidth_upper_ = nullptr;
  Histogram* round_pending_;
  Histogram* step_added_atoms_;
  Histogram* parallel_eval_ms_;
  Histogram* parallel_merge_ms_;
};

/// Serialises every event as one JSON object per line, e.g.
///   {"event": "round_begin", "round": 1, "pending": 5, "size": 4}
/// The stream is append-only and flush-free; callers own the ostream.
///
/// ParallelRoundEvent is SKIPPED unless log_parallel_events is set: the
/// event only fires at --threads > 1 and carries wall-clock payloads, so
/// logging it by default would break the bit-identity of event streams
/// across thread counts (the oracle tests/parallel_chase_test.cc relies
/// on). MatchPlanEvent is likewise SKIPPED unless log_match_events is set:
/// it only fires on the columnar matching backend, and logging it by
/// default would break the bit-identity of event streams across backends
/// (the oracle tests/storage_equivalence_test.cc relies on). PlanEvent is
/// likewise SKIPPED unless log_plan_events is set: it only fires with
/// --plan=on, and logging it by default would break the bit-identity of
/// event streams across plan on/off (the oracle
/// tests/plan_differential_test.cc relies on). Opt in for interactive
/// debugging only.
class EventLogObserver : public ChaseObserver {
 public:
  explicit EventLogObserver(std::ostream* out, bool log_parallel_events = false,
                            bool log_match_events = false,
                            bool log_plan_events = false)
      : out_(out),
        log_parallel_events_(log_parallel_events),
        log_match_events_(log_match_events),
        log_plan_events_(log_plan_events) {}

  void OnRunBegin(const RunBeginEvent& event) override;
  void OnRoundBegin(const RoundBeginEvent& event) override;
  void OnDeltaRepair(const DeltaRepairEvent& event) override;
  void OnTriggerConsidered(const TriggerConsideredEvent& event) override;
  void OnTriggerApplied(const TriggerAppliedEvent& event) override;
  void OnTriggerRetired(const TriggerRetiredEvent& event) override;
  void OnCoreRetraction(const CoreRetractionEvent& event) override;
  void OnParallelRound(const ParallelRoundEvent& event) override;
  void OnMatchPlan(const MatchPlanEvent& event) override;
  void OnPlan(const PlanEvent& event) override;
  void OnRoundEnd(const RoundEndEvent& event) override;
  void OnRobustRename(const RobustRenameEvent& event) override;
  void OnPhase(const PhaseEvent& event) override;
  void OnFaultInjected(const FaultInjectedEvent& event) override;
  void OnRunEnd(const RunEndEvent& event) override;

 private:
  std::ostream* out_;
  bool log_parallel_events_;
  bool log_match_events_;
  bool log_plan_events_;
};

}  // namespace twchase

#endif  // TWCHASE_OBS_STOCK_OBSERVERS_H_
