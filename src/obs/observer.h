// Structured observability for chase runs (the single supported API for
// watching a run). The engine emits typed events through a ChaseObserver
// attached via ChaseOptions::observer: scheduler round boundaries, the fate
// of every trigger (considered / applied / retired), core retractions with
// fold counts, semi-naive delta repairs, robust-aggregation renames and
// named phases of composite procedures (entailment, benches).
//
// Contract: observers are strictly read-only taps. All event payloads are
// const views into engine state that are valid only for the duration of the
// callback; an observer must never mutate the run (runs with and without
// observers are bit-identical, enforced by tests/observer_test.cc). With no
// observer attached (the default) every emission site is a single untaken
// branch — zero overhead.
//
// Stock observers (trace, measures, metrics, JSONL event log) live in
// obs/stock_observers.h; a recorded Derivation can be re-fed through any
// observer with ReplayDerivation, which is how the post-hoc --trace and
// --measures paths share this one code path with live runs.
#ifndef TWCHASE_OBS_OBSERVER_H_
#define TWCHASE_OBS_OBSERVER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/chase.h"
#include "core/derivation.h"
#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

/// Run started. Emitted after the initial coring (if any), so initial_size
/// is |F_0| as recorded in the derivation.
struct RunBeginEvent {
  ChaseVariant variant = ChaseVariant::kRestricted;
  size_t rule_count = 0;
  size_t initial_size = 0;

  /// σ_0 (the initial coring retraction; identity-or-empty otherwise).
  const Substitution* initial_simplification = nullptr;

  /// F_0. Null in snapshot-less replays.
  const AtomSet* instance = nullptr;
};

/// A scheduler round snapshotted and ordered its triggers. Emitted after the
/// round's delta repair (if any), so pending_triggers is the exact number of
/// matches the round will consider.
struct RoundBeginEvent {
  size_t round = 0;  // 1-based
  size_t pending_triggers = 0;
  size_t instance_size = 0;
};

/// Semi-naive repair of the stored match sets from the atoms inserted and
/// erased since the previous round (delta evaluation only; the priming
/// enumeration does not count as a repair).
struct DeltaRepairEvent {
  size_t round = 0;
  size_t inserted_atoms = 0;
  size_t erased_atoms = 0;
  size_t matches_invalidated = 0;
  size_t seed_probes = 0;
  size_t matches_added = 0;
};

/// Why a stored match left the match set for good.
enum class TriggerRetireReason {
  kApplied,      // consumed by its own application (monotone variants)
  kDuplicate,    // (semi-)oblivious: application key already applied
  kSatisfied,    // restricted: satisfied in a monotone run, stays satisfied
  kInvalidated,  // delta repair: an atom of the match image was erased
};

const char* TriggerRetireReasonName(TriggerRetireReason reason);

/// A pending trigger's activeness is about to be checked.
struct TriggerConsideredEvent {
  size_t round = 0;
  int rule_index = -1;
};

/// A trigger was applied; the derivation grew by one step. Pointer payloads
/// alias the recorded DerivationStep and the live instance.
struct TriggerAppliedEvent {
  size_t step = 0;  // derivation index of the new element F_step (1-based)
  size_t round = 0;
  int rule_index = -1;
  const std::string* rule_label = nullptr;
  const Substitution* match = nullptr;
  const Substitution* simplification = nullptr;
  size_t added_atoms = 0;
  size_t instance_size = 0;  // |F_step| after the simplification

  /// F_step. Null in snapshot-less replays.
  const AtomSet* instance = nullptr;
};

/// A stored match was retired from the delta-maintained match set.
struct TriggerRetiredEvent {
  size_t round = 0;
  int rule_index = -1;
  TriggerRetireReason reason = TriggerRetireReason::kApplied;
};

/// A core retraction ran (initial coring, per-application, or round-end).
struct CoreRetractionEvent {
  /// Derivation step the retraction belongs to (0 = initial coring).
  size_t step = 0;

  /// Fold operations performed (singular + general; counted inside
  /// hom/core.cc, not derivable from the final retraction).
  size_t folds = 0;

  bool incremental = false;
  bool fell_back = false;  // incremental update fell back to a full core
  size_t size_before = 0;
  size_t size_after = 0;
};

/// A round's match establishment ran on the parallel evaluation path
/// (ChaseOptions::parallel.threads > 1). Pure telemetry: the same run at
/// threads == 1 emits no such event but is otherwise bit-identical, so the
/// stock EventLogObserver skips it unless explicitly opted in — event
/// streams stay comparable across thread counts.
struct ParallelRoundEvent {
  size_t round = 0;          // 1-based
  size_t threads = 0;        // pool size, calling thread included
  size_t sections = 0;       // parallel sections this round (<= 3)
  size_t tasks = 0;          // probes dispatched, summed over sections
  size_t workers_used = 0;   // max workers that ran >= 1 task in a section
  size_t max_imbalance = 0;  // worst (max - min) per-worker task share
  double eval_ms = 0;        // wall time inside the sections
  double merge_ms = 0;       // wall time of the deterministic merges
};

/// Match-phase plan telemetry for one scheduler round: how the homomorphism
/// searches of the round resolved their candidate enumerations. Counter
/// fields are deltas since the previous event, summed over every search the
/// round ran (establishment, delta probes, application, coring), at any
/// thread count. Pure telemetry: the legacy per-atom backend emits no such
/// event but is otherwise bit-identical, so the stock EventLogObserver skips
/// it unless explicitly opted in — event streams stay comparable across
/// backends and thread counts.
struct MatchPlanEvent {
  size_t round = 0;               // 1-based
  uint64_t index_probes = 0;      // sorted-column EqualRange lookups
  uint64_t column_scans = 0;      // full-segment scans (no bound position)
  uint64_t join_fallbacks = 0;    // per-atom fallbacks (injective/mixed/...)
  uint64_t index_builds = 0;      // lazy column-index (re)builds
  uint64_t index_build_bytes = 0; // bytes of sorted rows written by builds
};

/// Execution-planner telemetry (src/plan/; ChaseOptions::plan). Emitted once
/// at run begin with the static plan shape (round == 0) and once per round in
/// which the planner pruned or proved something. Pure telemetry: a plan-off
/// run emits no such event but is otherwise bit-identical, so the stock
/// EventLogObserver skips it unless explicitly opted in — event streams stay
/// comparable across plan on/off.
struct PlanEvent {
  size_t round = 0;            // 0 = static summary at run begin
  size_t rules = 0;            // program size (static fields repeat per event)
  size_t reliance_edges = 0;   // positive-reliance edges
  size_t strata = 0;           // SCC-condensation strata
  size_t dormant_rules = 0;    // rules that can never match
  size_t active_strata = 0;    // strata touched by this round's insertions
  size_t enumerations_skipped = 0;  // dormant full enumerations pruned
  size_t probes_skipped = 0;   // dormant seeded probes pruned (this round)
  size_t core_proofs = 0;      // still-core proofs attempted (this round)
  size_t core_certified = 0;   // ... that certified and skipped a ComputeCore
};

/// A scheduler round finished (after round-end coring and match retirement).
struct RoundEndEvent {
  size_t round = 0;
  size_t steps_in_round = 0;
  size_t instance_size = 0;
  bool progressed = false;
};

/// One robust-aggregation step: π_i renamed `renamed_variables` variables of
/// the running union (Proposition 10 bounds how often this can happen per
/// variable; `stable_variables` is the stabilisation series of Section 8).
struct RobustRenameEvent {
  size_t step = 0;  // aggregator step index; 0 = Begin
  size_t renamed_variables = 0;
  size_t stable_variables = 0;
  size_t g_size = 0;
  size_t union_size = 0;
};

/// A named phase of a composite procedure completed (entailment
/// sub-procedures, bench phases).
struct PhaseEvent {
  const char* name = "";
  double wall_ms = 0;
  size_t chase_steps = 0;
};

/// An injected fault (util/fault.h) stopped the run at a governed boundary.
/// Emitted once, just before the corresponding OnRunEnd, so event logs can
/// tell injected stops from organic exhaustion.
struct FaultInjectedEvent {
  FaultSite site = FaultSite::kTriggerBoundary;
  uint64_t visit = 0;  // 1-based unmasked poll count at `site` when it fired
  StopReason simulated = StopReason::kCancelled;
};

/// Run finished (fixpoint, budget exhausted, size guard, deadline, memory
/// budget or cancellation — see stop_reason).
struct RunEndEvent {
  size_t steps = 0;
  size_t rounds = 0;
  bool terminated = false;
  bool size_guard_tripped = false;
  size_t final_size = 0;
  StopReason stop_reason = StopReason::kFixpoint;
};

/// Event sink interface. Every hook has an empty default so observers
/// override only what they consume.
class ChaseObserver {
 public:
  virtual ~ChaseObserver() = default;

  virtual void OnRunBegin(const RunBeginEvent& event) { (void)event; }
  virtual void OnRoundBegin(const RoundBeginEvent& event) { (void)event; }
  virtual void OnDeltaRepair(const DeltaRepairEvent& event) { (void)event; }
  virtual void OnTriggerConsidered(const TriggerConsideredEvent& event) {
    (void)event;
  }
  virtual void OnTriggerApplied(const TriggerAppliedEvent& event) {
    (void)event;
  }
  virtual void OnTriggerRetired(const TriggerRetiredEvent& event) {
    (void)event;
  }
  virtual void OnCoreRetraction(const CoreRetractionEvent& event) {
    (void)event;
  }
  virtual void OnParallelRound(const ParallelRoundEvent& event) {
    (void)event;
  }
  virtual void OnMatchPlan(const MatchPlanEvent& event) { (void)event; }
  virtual void OnPlan(const PlanEvent& event) { (void)event; }
  virtual void OnRoundEnd(const RoundEndEvent& event) { (void)event; }
  virtual void OnRobustRename(const RobustRenameEvent& event) { (void)event; }
  virtual void OnPhase(const PhaseEvent& event) { (void)event; }
  virtual void OnFaultInjected(const FaultInjectedEvent& event) {
    (void)event;
  }
  virtual void OnRunEnd(const RunEndEvent& event) { (void)event; }
};

/// Fans every event out to a list of observers, in attachment order.
/// Non-owning; attached observers must outlive the list.
class ObserverList : public ChaseObserver {
 public:
  void Add(ChaseObserver* observer);
  bool empty() const { return observers_.empty(); }
  size_t size() const { return observers_.size(); }

  void OnRunBegin(const RunBeginEvent& event) override;
  void OnRoundBegin(const RoundBeginEvent& event) override;
  void OnDeltaRepair(const DeltaRepairEvent& event) override;
  void OnTriggerConsidered(const TriggerConsideredEvent& event) override;
  void OnTriggerApplied(const TriggerAppliedEvent& event) override;
  void OnTriggerRetired(const TriggerRetiredEvent& event) override;
  void OnCoreRetraction(const CoreRetractionEvent& event) override;
  void OnParallelRound(const ParallelRoundEvent& event) override;
  void OnMatchPlan(const MatchPlanEvent& event) override;
  void OnPlan(const PlanEvent& event) override;
  void OnRoundEnd(const RoundEndEvent& event) override;
  void OnRobustRename(const RobustRenameEvent& event) override;
  void OnPhase(const PhaseEvent& event) override;
  void OnFaultInjected(const FaultInjectedEvent& event) override;
  void OnRunEnd(const RunEndEvent& event) override;

 private:
  std::vector<ChaseObserver*> observers_;
};

/// Re-feeds a recorded derivation through an observer as a synthetic run:
/// OnRunBegin for F_0, one OnTriggerApplied per step (instance pointers set
/// when the derivation keeps snapshots), then OnRunEnd. Round-level and
/// engine-internal events (delta repairs, retirements, corings) are not
/// reconstructible from a Derivation and are not emitted. This is the shared
/// code path behind the post-hoc DerivationTrace and MeasureSeries.
void ReplayDerivation(const Derivation& derivation, ChaseVariant variant,
                      ChaseObserver* observer);

}  // namespace twchase

#endif  // TWCHASE_OBS_OBSERVER_H_
