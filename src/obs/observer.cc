#include "obs/observer.h"

namespace twchase {

const char* TriggerRetireReasonName(TriggerRetireReason reason) {
  switch (reason) {
    case TriggerRetireReason::kApplied:
      return "applied";
    case TriggerRetireReason::kDuplicate:
      return "duplicate";
    case TriggerRetireReason::kSatisfied:
      return "satisfied";
    case TriggerRetireReason::kInvalidated:
      return "invalidated";
  }
  return "unknown";
}

void ObserverList::Add(ChaseObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

void ObserverList::OnRunBegin(const RunBeginEvent& event) {
  for (ChaseObserver* o : observers_) o->OnRunBegin(event);
}
void ObserverList::OnRoundBegin(const RoundBeginEvent& event) {
  for (ChaseObserver* o : observers_) o->OnRoundBegin(event);
}
void ObserverList::OnDeltaRepair(const DeltaRepairEvent& event) {
  for (ChaseObserver* o : observers_) o->OnDeltaRepair(event);
}
void ObserverList::OnTriggerConsidered(const TriggerConsideredEvent& event) {
  for (ChaseObserver* o : observers_) o->OnTriggerConsidered(event);
}
void ObserverList::OnTriggerApplied(const TriggerAppliedEvent& event) {
  for (ChaseObserver* o : observers_) o->OnTriggerApplied(event);
}
void ObserverList::OnTriggerRetired(const TriggerRetiredEvent& event) {
  for (ChaseObserver* o : observers_) o->OnTriggerRetired(event);
}
void ObserverList::OnCoreRetraction(const CoreRetractionEvent& event) {
  for (ChaseObserver* o : observers_) o->OnCoreRetraction(event);
}
void ObserverList::OnParallelRound(const ParallelRoundEvent& event) {
  for (ChaseObserver* o : observers_) o->OnParallelRound(event);
}
void ObserverList::OnMatchPlan(const MatchPlanEvent& event) {
  for (ChaseObserver* o : observers_) o->OnMatchPlan(event);
}
void ObserverList::OnPlan(const PlanEvent& event) {
  for (ChaseObserver* o : observers_) o->OnPlan(event);
}
void ObserverList::OnRoundEnd(const RoundEndEvent& event) {
  for (ChaseObserver* o : observers_) o->OnRoundEnd(event);
}
void ObserverList::OnRobustRename(const RobustRenameEvent& event) {
  for (ChaseObserver* o : observers_) o->OnRobustRename(event);
}
void ObserverList::OnPhase(const PhaseEvent& event) {
  for (ChaseObserver* o : observers_) o->OnPhase(event);
}
void ObserverList::OnFaultInjected(const FaultInjectedEvent& event) {
  for (ChaseObserver* o : observers_) o->OnFaultInjected(event);
}
void ObserverList::OnRunEnd(const RunEndEvent& event) {
  for (ChaseObserver* o : observers_) o->OnRunEnd(event);
}

void ReplayDerivation(const Derivation& derivation, ChaseVariant variant,
                      ChaseObserver* observer) {
  if (observer == nullptr || derivation.empty()) return;
  const bool snapshots = derivation.keeps_snapshots();

  RunBeginEvent begin;
  begin.variant = variant;
  begin.initial_size = derivation.step(0).instance_size;
  begin.initial_simplification = &derivation.step(0).simplification;
  if (snapshots) begin.instance = &derivation.Instance(0);
  observer->OnRunBegin(begin);

  for (size_t i = 1; i < derivation.size(); ++i) {
    const DerivationStep& step = derivation.step(i);
    TriggerAppliedEvent applied;
    applied.step = i;
    applied.rule_index = step.rule_index;
    applied.rule_label = &step.rule_label;
    applied.match = &step.match;
    applied.simplification = &step.simplification;
    applied.added_atoms = step.added_atoms.size();
    applied.instance_size = step.instance_size;
    if (snapshots) applied.instance = &derivation.Instance(i);
    observer->OnTriggerApplied(applied);
  }

  RunEndEvent end;
  end.steps = derivation.size() - 1;
  end.final_size = derivation.Last().size();
  observer->OnRunEnd(end);
}

}  // namespace twchase
