#include "model/substitution.h"

#include <algorithm>

#include "util/status.h"

namespace twchase {

void Substitution::Bind(Term var, Term term) {
  TWCHASE_CHECK_MSG(var.is_variable(), "substitutions map variables only");
  map_[var] = term;
}

void Substitution::Unbind(Term var) { map_.erase(var); }

std::optional<Term> Substitution::Lookup(Term var) const {
  auto it = map_.find(var);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

Term Substitution::Apply(Term t) const {
  if (!t.is_variable()) return t;
  auto it = map_.find(t);
  return it == map_.end() ? t : it->second;
}

Atom Substitution::Apply(const Atom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.arity());
  for (Term t : atom.args()) args.push_back(Apply(t));
  return Atom(atom.predicate(), std::move(args));
}

AtomSet Substitution::Apply(const AtomSet& atoms) const {
  AtomSet out;
  atoms.ForEach([&](const Atom& atom) { out.Insert(Apply(atom)); });
  return out;
}

std::vector<Term> Substitution::Domain() const {
  std::vector<Term> out;
  out.reserve(map_.size());
  for (const auto& [var, term] : map_) out.push_back(var);
  return out;
}

bool Substitution::IsIdentity() const {
  return std::all_of(map_.begin(), map_.end(),
                     [](const auto& kv) { return kv.first == kv.second; });
}

Substitution Substitution::Compose(const Substitution& outer,
                                   const Substitution& inner) {
  Substitution out;
  for (const auto& [var, term] : inner.map_) {
    out.map_[var] = outer.Apply(term);
  }
  for (const auto& [var, term] : outer.map_) {
    if (!out.map_.contains(var)) out.map_[var] = term;
  }
  return out;
}

bool Substitution::CompatibleWith(const Substitution& other) const {
  const Substitution& small = map_.size() <= other.map_.size() ? *this : other;
  const Substitution& big = map_.size() <= other.map_.size() ? other : *this;
  for (const auto& [var, term] : small.map_) {
    auto binding = big.Lookup(var);
    if (binding.has_value() && *binding != term) return false;
  }
  return true;
}

bool Substitution::IsEndomorphismOf(const AtomSet& atoms) const {
  bool ok = true;
  atoms.ForEach([&](const Atom& atom) {
    if (ok && !atoms.Contains(Apply(atom))) ok = false;
  });
  return ok;
}

bool Substitution::IsRetractionOf(const AtomSet& atoms) const {
  if (!IsEndomorphismOf(atoms)) return false;
  // Identity on the image: every term in some σ(at) must be a fixpoint.
  bool ok = true;
  atoms.ForEach([&](const Atom& atom) {
    if (!ok) return;
    for (Term t : atom.args()) {
      Term image = Apply(t);
      if (Apply(image) != image) {
        ok = false;
        return;
      }
    }
  });
  return ok;
}

Substitution Substitution::RestrictTo(const std::vector<Term>& vars) const {
  Substitution out;
  for (Term v : vars) {
    auto it = map_.find(v);
    if (it != map_.end()) out.map_.emplace(it->first, it->second);
  }
  return out;
}

Substitution Substitution::Inverse() const {
  Substitution out;
  for (const auto& [var, term] : map_) {
    if (var == term) continue;
    TWCHASE_CHECK_MSG(term.is_variable(), "Inverse: image contains a constant");
    TWCHASE_CHECK_MSG(!out.map_.contains(term), "Inverse: not injective");
    out.map_.emplace(term, var);
  }
  return out;
}

std::vector<Term> Substitution::Preimage(Term t) const {
  std::vector<Term> out;
  for (const auto& [var, term] : map_) {
    if (term == t) out.push_back(var);
  }
  if (t.is_variable()) {
    auto it = map_.find(t);
    if (it == map_.end() || it->second == t) {
      if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
    }
  }
  return out;
}

std::string Substitution::ToString(const Vocabulary& vocab) const {
  // Sort for deterministic output.
  std::vector<std::pair<Term, Term>> entries(map_.begin(), map_.end());
  std::sort(entries.begin(), entries.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : entries) {
    if (!first) out += ", ";
    first = false;
    out += vocab.TermName(var) + " -> " + vocab.TermName(term);
  }
  out += "}";
  return out;
}

}  // namespace twchase
