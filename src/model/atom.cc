#include "model/atom.h"

#include <algorithm>

namespace twchase {

bool Atom::HasVariables() const {
  return std::any_of(args_.begin(), args_.end(),
                     [](Term t) { return t.is_variable(); });
}

std::vector<Term> Atom::DistinctTerms() const {
  std::vector<Term> out;
  out.reserve(args_.size());
  for (Term t : args_) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

size_t Atom::Hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ predicate_;
  for (Term t : args_) {
    h ^= TermHash()(t) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<size_t>(h);
}

std::string Atom::ToString(const Vocabulary& vocab) const {
  std::string out = vocab.predicate(predicate_).name;
  out += '(';
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += vocab.TermName(args_[i]);
  }
  out += ')';
  return out;
}

std::string Atom::DebugString() const {
  std::string out = "p" + std::to_string(predicate_) + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ",";
    out += args_[i].DebugString();
  }
  out += ')';
  return out;
}

}  // namespace twchase
