// Predicate symbols and the Vocabulary: the interner that owns every name in
// a knowledge base (predicates, constants, named variables) and mints fresh
// variables (labelled nulls) during the chase. All algorithms work on ids;
// the Vocabulary is only needed at the I/O boundary and when creating terms.
#ifndef TWCHASE_MODEL_PREDICATE_H_
#define TWCHASE_MODEL_PREDICATE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/term.h"
#include "util/status.h"

namespace twchase {

using PredicateId = uint32_t;

struct PredicateInfo {
  std::string name;
  uint32_t arity = 0;
};

class Vocabulary {
 public:
  Vocabulary() = default;

  // Vocabulary handles are shared via pointer; copying one would silently
  // fork the intern tables.
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;

  /// Interns a predicate. Re-declaring with a different arity is an error.
  StatusOr<PredicateId> AddPredicate(const std::string& name, uint32_t arity);

  /// Interns a predicate; aborts on arity clash (for programmatic builders).
  PredicateId MustPredicate(const std::string& name, uint32_t arity);

  /// Looks up a predicate by name.
  StatusOr<PredicateId> FindPredicate(const std::string& name) const;

  const PredicateInfo& predicate(PredicateId id) const {
    TWCHASE_CHECK(id < predicates_.size());
    return predicates_[id];
  }
  size_t num_predicates() const { return predicates_.size(); }

  /// Interns a constant.
  Term Constant(const std::string& name);

  /// Interns a named variable (used by the parser and example builders).
  Term NamedVariable(const std::string& name);

  /// Mints a fresh variable never used before (a labelled null). The name is
  /// generated and registered so the variable can be printed.
  Term FreshVariable();

  /// Fresh variable whose generated name embeds a hint (e.g. the existential
  /// variable it instantiates), for readable traces.
  Term FreshVariable(const std::string& hint);

  const std::string& TermName(Term t) const;
  size_t num_variables() const { return variable_names_.size(); }
  size_t num_constants() const { return constant_names_.size(); }

 private:
  std::vector<PredicateInfo> predicates_;
  std::unordered_map<std::string, PredicateId> predicate_index_;
  std::vector<std::string> constant_names_;
  std::unordered_map<std::string, uint32_t> constant_index_;
  std::vector<std::string> variable_names_;
  std::unordered_map<std::string, uint32_t> variable_index_;
};

}  // namespace twchase

#endif  // TWCHASE_MODEL_PREDICATE_H_
