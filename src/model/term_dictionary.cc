#include "model/term_dictionary.h"

#include <algorithm>

namespace twchase {

TermId TermDictionary::Intern(Term term) {
  std::vector<TermId>& table = term.is_variable() ? vars_ : consts_;
  uint32_t index = term.index();
  if (index >= table.size()) table.resize(index + 1, kNoId);
  TermId& slot = table[index];
  if (slot != kNoId) return slot;
  if (size_ % kBlockSize == 0) {
    blocks_.push_back(std::make_unique<Term[]>(kBlockSize));
  }
  blocks_[size_ / kBlockSize][size_ % kBlockSize] = term;
  slot = static_cast<TermId>(size_++);
  return slot;
}

void TermDictionary::CopyFrom(const TermDictionary& other) {
  consts_ = other.consts_;
  vars_ = other.vars_;
  size_ = other.size_;
  blocks_.clear();
  blocks_.reserve(other.blocks_.size());
  for (const auto& block : other.blocks_) {
    auto copy = std::make_unique<Term[]>(kBlockSize);
    std::copy(block.get(), block.get() + kBlockSize, copy.get());
    blocks_.push_back(std::move(copy));
  }
}

}  // namespace twchase
