#include "model/column_segment.h"

#include <algorithm>

namespace twchase {

ColumnSegment::ColumnSegment(uint32_t arity)
    : arity_(arity),
      cols_(arity),
      indexes_(std::make_unique<ColumnIndex[]>(arity)) {}

ColumnSegment::ColumnSegment(const ColumnSegment& other)
    : arity_(other.arity_),
      slots_(other.slots_),
      cols_(other.cols_),
      indexes_(std::make_unique<ColumnIndex[]>(other.arity_)) {
  // Indexes are not copied: a copy is a snapshot (derivation history,
  // checkpoint verification) that is rarely probed, so it rebuilds lazily.
}

void ColumnSegment::Append(uint32_t slot, const TermId* args) {
  slots_.push_back(slot);
  for (uint32_t c = 0; c < arity_; ++c) {
    cols_[c].push_back(args[c]);
    // Plain transition: mutation never races a probe (single-writer
    // discipline of the owning AtomSet). The new row joins the unmerged
    // tail [built_rows, rows()); the sorted prefix stays in place.
    indexes_[c].ready.store(false, std::memory_order_relaxed);
  }
}

void ColumnSegment::BuildIndex(uint32_t col, IndexBuildStats* build) const {
  ColumnIndex& index = indexes_[col];
  std::lock_guard<std::mutex> lock(index.mu);
  if (index.ready.load(std::memory_order_relaxed)) return;  // raced builder
  const std::vector<TermId>& values = cols_[col];
  size_t bytes_before = index.sorted_rows.capacity() * sizeof(uint32_t);
  size_t merge_from = index.sorted_rows.size();
  for (size_t row = merge_from; row < values.size(); ++row) {
    index.sorted_rows.push_back(static_cast<uint32_t>(row));
  }
  auto by_value_then_row = [&values](uint32_t a, uint32_t b) {
    return values[a] != values[b] ? values[a] < values[b] : a < b;
  };
  std::sort(index.sorted_rows.begin() + merge_from, index.sorted_rows.end(),
            by_value_then_row);
  std::inplace_merge(index.sorted_rows.begin(),
                     index.sorted_rows.begin() + merge_from,
                     index.sorted_rows.end(), by_value_then_row);
  // Release: a probe that acquire-loads the new built_rows also sees the
  // merged sorted_rows contents without taking the mutex.
  index.built_rows.store(values.size(), std::memory_order_release);
  size_t bytes_after = index.sorted_rows.capacity() * sizeof(uint32_t);
  index_bytes_.fetch_add(bytes_after - bytes_before,
                         std::memory_order_relaxed);
  index_builds_.fetch_add(1, std::memory_order_relaxed);
  if (build != nullptr) {
    ++build->builds;
    build->bytes += index.sorted_rows.size() * sizeof(uint32_t);
  }
  index.ready.store(true, std::memory_order_release);
}

ColumnSegment::ProbeResult ColumnSegment::EqualRange(
    uint32_t col, TermId id, IndexBuildStats* build) const {
  ColumnIndex& index = indexes_[col];
  // Merge only when the tail has outgrown the threshold: merging on every
  // append would make the apply-probe-apply loop of a chase round quadratic.
  // Rows and built_rows are fixed between mutations, so every probe of a
  // parallel phase computes the same decision — at most one build per
  // (column, phase), at any thread count.
  if (!index.ready.load(std::memory_order_acquire) &&
      rows() - index.built_rows.load(std::memory_order_acquire) >
          kTailMergeThreshold) {
    BuildIndex(col, build);
  }
  size_t built = index.built_rows.load(std::memory_order_acquire);
  const std::vector<TermId>& values = cols_[col];
  auto lo = std::lower_bound(
      index.sorted_rows.begin(), index.sorted_rows.end(), id,
      [&values](uint32_t row, TermId value) { return values[row] < value; });
  auto hi = std::upper_bound(
      lo, index.sorted_rows.end(), id,
      [&values](TermId value, uint32_t row) { return value < values[row]; });
  const uint32_t* base = index.sorted_rows.data();
  return ProbeResult{base + (lo - index.sorted_rows.begin()),
                     base + (hi - index.sorted_rows.begin()),
                     static_cast<uint32_t>(built),
                     static_cast<uint32_t>(rows())};
}

}  // namespace twchase
