// AtomSet: a finite instance — a deduplicated set of atoms with secondary
// indexes used by the homomorphism engine and the chase:
//   * by predicate: all atoms with a given predicate symbol;
//   * by term: all atoms mentioning a given term.
// Storage is slot-based with tombstones so postings stay valid across erases;
// postings are filtered on read and compacted when the dead fraction grows.
//
// Columnar layer: every term is interned into a TermDictionary of dense
// 32-bit ids, per-term postings and live counters are flat vectors indexed
// by those ids, and each predicate's atoms are mirrored into a ColumnSegment
// (arguments stored column-wise with lazily sorted position indexes). The
// join-based matcher (hom/matcher.cc) probes the segments directly through
// the accessors below; the row/slot order of a segment equals posting order,
// which is what keeps the two matching paths bit-identical. Public API and
// insertion-order iteration are unchanged from the pre-columnar AtomSet.
//
// Delta hooks: a generation counter stamps every successful mutation, and an
// opt-in delta journal records inserted/erased atoms until drained — the
// chase's semi-naive trigger generation consumes it to evaluate rules against
// the change set instead of the whole instance. The journal stores atom
// values, not slots, so tombstone compaction never invalidates it.
#ifndef TWCHASE_MODEL_ATOM_SET_H_
#define TWCHASE_MODEL_ATOM_SET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/atom.h"
#include "model/column_segment.h"
#include "model/term.h"
#include "model/term_dictionary.h"

namespace twchase {

class AtomSet {
 public:
  using Slot = uint32_t;

  AtomSet() = default;

  AtomSet(const AtomSet& other);
  AtomSet& operator=(const AtomSet& other);
  AtomSet(AtomSet&&) = default;
  AtomSet& operator=(AtomSet&&) = default;

  /// Inserts an atom; returns false if it was already present.
  bool Insert(const Atom& atom);
  bool Insert(Atom&& atom);

  /// Removes an atom; returns false if it was absent.
  bool Erase(const Atom& atom);

  bool Contains(const Atom& atom) const;

  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Snapshot of the live atoms, in insertion order of their slots.
  std::vector<Atom> Atoms() const;

  /// Calls fn(atom) for each live atom. fn must not mutate this set.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Slot s = 0; s < slots_.size(); ++s) {
      if (alive_[s]) fn(slots_[s]);
    }
  }

  /// Live atoms with the given predicate.
  std::vector<const Atom*> ByPredicate(PredicateId predicate) const;

  /// Live atoms mentioning the given term.
  std::vector<const Atom*> ByTerm(Term term) const;

  /// Number of live atoms with the given predicate / mentioning the given
  /// term. O(1): counters are maintained on insert and erase (hot path of
  /// the homomorphism search's candidate selection).
  size_t CountByPredicate(PredicateId predicate) const;
  size_t CountByTerm(Term term) const;

  /// Distinct terms occurring in live atoms.
  std::vector<Term> Terms() const;

  /// Distinct variables occurring in live atoms.
  std::vector<Term> Variables() const;

  bool ContainsTerm(Term term) const;

  /// Set-level equality (same atoms, any insertion order).
  friend bool operator==(const AtomSet& a, const AtomSet& b);

  /// True if every live atom of this set is in `other`.
  bool IsSubsetOf(const AtomSet& other) const;

  /// Union in place: inserts all atoms of `other`.
  void InsertAll(const AtomSet& other);

  std::string ToString(const Vocabulary& vocab) const;

  /// Builds a set from a list (deduplicating).
  static AtomSet FromAtoms(const std::vector<Atom>& atoms);

  /// Mutation stamp: incremented on every successful Insert and Erase (not
  /// on compaction, which preserves contents). Lets incremental consumers
  /// assert they have not missed a change.
  uint64_t generation() const { return generation_; }

  /// Atoms inserted into / erased from the set since the last drain.
  struct Delta {
    std::vector<Atom> inserted;
    std::vector<Atom> erased;
    bool empty() const { return inserted.empty() && erased.empty(); }
  };

  /// Starts journaling mutations. Off by default (zero overhead); enabling
  /// is idempotent and keeps any entries already recorded.
  void EnableDeltaJournal() { journal_enabled_ = true; }
  bool delta_journal_enabled() const { return journal_enabled_; }

  /// Returns and clears the journal. Entries appear in mutation order; an
  /// atom erased and re-inserted appears in both lists.
  Delta DrainDelta();

  /// Appends a journal entry without mutating the set. Used by bulk rebuild
  /// operations (e.g. applying a retraction via a fresh set) that replace
  /// contents wholesale and report the net changes themselves. No-ops when
  /// the journal is disabled.
  void NoteExternalInsert(const Atom& atom);
  void NoteExternalErase(const Atom& atom);

  /// Introspection for compaction tests.
  size_t dead_slots() const { return dead_count_; }
  size_t compactions() const { return compactions_; }

  /// Order-independent content hash of the live atoms: equal sets hash
  /// equal regardless of insertion history, and the value is stable across
  /// processes (plain FNV-1a over term ids, no std::hash). Used by the
  /// checkpoint layer to cross-check a resumed instance.
  uint64_t ContentHash() const;

  /// Rough estimate of resident bytes: slot storage, index entries, the
  /// term dictionary and the columnar segments including any lazily built
  /// column indexes. O(#predicates) per call, so memory-budget polls can
  /// read it per step. An estimate, not an allocator hook: allocator slack
  /// and hash-table load factors are folded into fixed per-slot/per-argument
  /// constants. Tombstoned slots count until compaction reclaims them.
  size_t ApproxMemoryBytes() const;

  // ----- Columnar accessors (hom/matcher.cc join path). ------------------

  /// The dictionary interning every term this set has ever stored.
  const TermDictionary& dictionary() const { return dict_; }

  /// The predicate's column segment, or null when the predicate was never
  /// inserted or has been observed at more than one arity (the matcher then
  /// falls back to the posting-based path).
  const ColumnSegment* SegmentFor(PredicateId predicate) const;

  bool SlotAlive(Slot slot) const { return alive_[slot] != 0; }
  const Atom& SlotAtom(Slot slot) const { return slots_[slot]; }

  /// Raw posting lists (ascending slots, tombstones included — callers
  /// filter through SlotAlive). Null when the term/predicate is unknown.
  /// Exposed so the join path can reproduce the legacy candidate head
  /// without materialising a filtered vector.
  const std::vector<Slot>* TermPostingSlots(Term term) const;
  const std::vector<Slot>* PredicatePostingSlots(PredicateId predicate) const;

 private:
  void MaybeCompact();
  void CompactPostings();
  void IndexNewAtom(const Atom& atom, Slot slot);

  std::vector<Atom> slots_;
  std::vector<uint8_t> alive_;
  std::unordered_map<Atom, Slot, AtomHash> index_;
  std::unordered_map<PredicateId, std::vector<Slot>> by_predicate_;
  std::unordered_map<PredicateId, size_t> live_by_predicate_;
  // Term-keyed tables are flat vectors indexed by dictionary id.
  std::vector<std::vector<Slot>> term_postings_;
  std::vector<size_t> live_by_term_;
  TermDictionary dict_;
  std::unordered_map<PredicateId, std::unique_ptr<ColumnSegment>> segments_;
  std::unordered_set<PredicateId> mixed_arity_;  // sticky, survives compaction
  std::vector<TermId> scratch_ids_;              // Insert's per-row id buffer
  size_t live_count_ = 0;
  size_t dead_count_ = 0;
  uint64_t generation_ = 0;
  size_t compactions_ = 0;
  size_t slot_args_ = 0;  // total argument count over all slots, dead included
  bool journal_enabled_ = false;
  Delta journal_;
};

}  // namespace twchase

#endif  // TWCHASE_MODEL_ATOM_SET_H_
