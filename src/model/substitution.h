// Substitutions: finite maps from variables to terms, with the σ⁺ extension
// semantics of the paper (identity outside the domain). Also provides the
// composition σ' • σ (apply σ first, then σ') and retraction checks.
#ifndef TWCHASE_MODEL_SUBSTITUTION_H_
#define TWCHASE_MODEL_SUBSTITUTION_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/atom.h"
#include "model/atom_set.h"
#include "model/term.h"

namespace twchase {

class Substitution {
 public:
  Substitution() = default;

  /// Binds variable `var` to `term`, overwriting any previous binding.
  void Bind(Term var, Term term);

  /// Removes the binding of `var` if present (used by backtracking search).
  void Unbind(Term var);

  /// Binding of `var`, or nullopt if unbound.
  std::optional<Term> Lookup(Term var) const;

  /// σ⁺(t): the binding if t is a bound variable, t itself otherwise.
  Term Apply(Term t) const;

  Atom Apply(const Atom& atom) const;

  /// σ(A) = {σ(at) | at ∈ A}. May shrink the set (atoms can collide).
  AtomSet Apply(const AtomSet& atoms) const;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Domain variables in unspecified order.
  std::vector<Term> Domain() const;

  const std::unordered_map<Term, Term, TermHash>& map() const { return map_; }

  /// True if no binding moves its variable (σ⁺ is the identity everywhere).
  bool IsIdentity() const;

  /// Composition per the paper: (outer • inner)(X) = outer⁺(inner⁺(X)), with
  /// domain dom(inner) ∪ dom(outer).
  static Substitution Compose(const Substitution& outer,
                              const Substitution& inner);

  /// Two substitutions are compatible if they agree on shared variables.
  bool CompatibleWith(const Substitution& other) const;

  /// True if σ is an endomorphism of A (σ(A) ⊆ A).
  bool IsEndomorphismOf(const AtomSet& atoms) const;

  /// True if σ is a retraction of A: an endomorphism that is the identity on
  /// every term of its image σ(A).
  bool IsRetractionOf(const AtomSet& atoms) const;

  /// Restriction of the substitution to the given variables.
  Substitution RestrictTo(const std::vector<Term>& vars) const;

  /// Inverse of an injective variable-to-variable substitution (as used for
  /// the isomorphisms ρ_i of the robust sequence). Aborts if a binding maps
  /// to a constant or two variables share an image. Identity bindings are
  /// dropped (they invert to themselves).
  Substitution Inverse() const;

  /// Inverse image σ⁻¹(t): all domain variables mapped to t, plus t itself if
  /// t is a variable not moved away by σ (σ⁺ fixes it).
  std::vector<Term> Preimage(Term t) const;

  std::string ToString(const Vocabulary& vocab) const;

  friend bool operator==(const Substitution& a, const Substitution& b) {
    return a.map_ == b.map_;
  }

 private:
  std::unordered_map<Term, Term, TermHash> map_;
};

}  // namespace twchase

#endif  // TWCHASE_MODEL_SUBSTITUTION_H_
