#include "model/predicate.h"

namespace twchase {

StatusOr<PredicateId> Vocabulary::AddPredicate(const std::string& name,
                                               uint32_t arity) {
  auto it = predicate_index_.find(name);
  if (it != predicate_index_.end()) {
    if (predicates_[it->second].arity != arity) {
      return Status::InvalidArgument(
          "predicate '" + name + "' re-declared with arity " +
          std::to_string(arity) + " (was " +
          std::to_string(predicates_[it->second].arity) + ")");
    }
    return it->second;
  }
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(PredicateInfo{name, arity});
  predicate_index_.emplace(name, id);
  return id;
}

PredicateId Vocabulary::MustPredicate(const std::string& name, uint32_t arity) {
  auto result = AddPredicate(name, arity);
  TWCHASE_CHECK_MSG(result.ok(), result.status().ToString());
  return result.value();
}

StatusOr<PredicateId> Vocabulary::FindPredicate(const std::string& name) const {
  auto it = predicate_index_.find(name);
  if (it == predicate_index_.end()) {
    return Status::NotFound("predicate '" + name + "' not declared");
  }
  return it->second;
}

Term Vocabulary::Constant(const std::string& name) {
  auto it = constant_index_.find(name);
  if (it != constant_index_.end()) return Term::Constant(it->second);
  uint32_t index = static_cast<uint32_t>(constant_names_.size());
  constant_names_.push_back(name);
  constant_index_.emplace(name, index);
  return Term::Constant(index);
}

Term Vocabulary::NamedVariable(const std::string& name) {
  auto it = variable_index_.find(name);
  if (it != variable_index_.end()) return Term::Variable(it->second);
  uint32_t index = static_cast<uint32_t>(variable_names_.size());
  variable_names_.push_back(name);
  variable_index_.emplace(name, index);
  return Term::Variable(index);
}

Term Vocabulary::FreshVariable() {
  uint32_t index = static_cast<uint32_t>(variable_names_.size());
  std::string name = "_N" + std::to_string(index);
  variable_names_.push_back(name);
  variable_index_.emplace(std::move(name), index);
  return Term::Variable(index);
}

Term Vocabulary::FreshVariable(const std::string& hint) {
  uint32_t index = static_cast<uint32_t>(variable_names_.size());
  std::string name = "_" + hint + "_" + std::to_string(index);
  // Generated names may collide with user names in pathological cases; keep
  // the id authoritative and only best-effort register the name.
  if (variable_index_.contains(name)) {
    name = "_N" + std::to_string(index);
  }
  variable_names_.push_back(name);
  variable_index_.emplace(std::move(name), index);
  return Term::Variable(index);
}

const std::string& Vocabulary::TermName(Term t) const {
  if (t.is_variable()) {
    TWCHASE_CHECK(t.index() < variable_names_.size());
    return variable_names_[t.index()];
  }
  TWCHASE_CHECK(t.index() < constant_names_.size());
  return constant_names_[t.index()];
}

}  // namespace twchase
