// Terms are 32-bit interned handles: either a constant or a variable
// (variables double as the labelled nulls of instances, as in the paper,
// which conflates nulls and query variables — they are the same logical
// notion). The numeric index of a variable is its creation order and serves
// as the total order rank(X) required by the robust renaming (Definition 14).
#ifndef TWCHASE_MODEL_TERM_H_
#define TWCHASE_MODEL_TERM_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace twchase {

class Term {
 public:
  Term() : raw_(0) {}

  static Term Constant(uint32_t index) { return Term(index & ~kVarBit); }
  static Term Variable(uint32_t index) { return Term(index | kVarBit); }

  bool is_variable() const { return (raw_ & kVarBit) != 0; }
  bool is_constant() const { return !is_variable(); }

  /// Index into the vocabulary's constant or variable table.
  uint32_t index() const { return raw_ & ~kVarBit; }

  uint32_t raw() const { return raw_; }

  /// Variable rank for the robust renaming's total order <_X: earlier-created
  /// variables are smaller. Only meaningful between two variables.
  uint32_t rank() const { return index(); }

  friend bool operator==(Term a, Term b) { return a.raw_ == b.raw_; }
  friend auto operator<=>(Term a, Term b) { return a.raw_ <=> b.raw_; }

  /// Debug rendering without a vocabulary: "c<i>" / "X<i>".
  std::string DebugString() const;

 private:
  explicit Term(uint32_t raw) : raw_(raw) {}

  static constexpr uint32_t kVarBit = 0x80000000u;

  uint32_t raw_;
};

struct TermHash {
  size_t operator()(Term t) const {
    // splitmix-style scramble of the raw id.
    uint64_t x = t.raw();
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace twchase

template <>
struct std::hash<twchase::Term> {
  size_t operator()(twchase::Term t) const {
    return twchase::TermHash()(t);
  }
};

#endif  // TWCHASE_MODEL_TERM_H_
