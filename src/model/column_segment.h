// ColumnSegment: the per-predicate columnar store behind AtomSet. Each live
// (and tombstoned) slot of a predicate is one row; the arguments are stored
// column-wise as dense TermIds, so a join probe touches one contiguous
// vector instead of chasing Atom objects. Per column, a sorted position
// index (rows ordered by (value, row)) is maintained lazily: appended rows
// accumulate in an unsorted tail that probes scan linearly, and the tail is
// merged into the sorted prefix only once it outgrows a small threshold —
// merging on every append would make the apply-probe-apply loop of a chase
// round quadratic in the segment. Erases never invalidate the index because
// readers filter rows through the owning AtomSet's liveness bitmap.
//
// Rows are appended in slot-insertion order and row ranks order exactly as
// slot ranks, so an EqualRange probe enumerates candidates in the same
// relative order as the legacy posting lists — the property the matcher's
// bit-identity argument rests on (see hom/matcher.cc and DESIGN.md §9).
//
// Thread-safety: Append follows the owning AtomSet's single-writer
// discipline and must not race with probes. Concurrent EqualRange calls on a
// shared const segment are safe: the lazy index build is guarded by a
// per-column mutex with an acquire/release ready flag, so parallel
// homomorphism searches (core/parallel.h) can race to a column's first probe
// and exactly one of them builds.
#ifndef TWCHASE_MODEL_COLUMN_SEGMENT_H_
#define TWCHASE_MODEL_COLUMN_SEGMENT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "model/term_dictionary.h"

namespace twchase {

/// Telemetry of one probe: whether it (re)built the column index, and the
/// resident bytes of the build. Counted by the caller (the matcher folds it
/// into the ambient MatchCounters), not here — the model layer stays free of
/// observability dependencies.
struct IndexBuildStats {
  size_t builds = 0;
  size_t bytes = 0;
};

class ColumnSegment {
 public:
  explicit ColumnSegment(uint32_t arity);

  ColumnSegment(const ColumnSegment& other);
  ColumnSegment& operator=(const ColumnSegment&) = delete;

  /// Appends one row. `slot` is the owning AtomSet's slot of the atom and
  /// `args` its argument ids (args.size() == arity(), enforced by the
  /// caller; a predicate observed with a different arity is routed to a
  /// fresh mixed-arity marker instead, see AtomSet). The new row joins each
  /// column's unsorted tail; probes absorb it either by scanning the tail
  /// or, once the tail outgrows kTailMergeThreshold, by merging.
  void Append(uint32_t slot, const TermId* args);

  uint32_t arity() const { return arity_; }
  size_t rows() const { return slots_.size(); }

  /// The owning AtomSet's slot of row `row`.
  uint32_t slot(size_t row) const { return slots_[row]; }

  /// The id stored at (row, col).
  TermId cell(size_t row, uint32_t col) const { return cols_[col][row]; }

  /// Rows whose column `col` holds `id`, in two parts the caller visits in
  /// order: [begin, end) are matching rows from the sorted prefix
  /// (ascending), and [tail_begin, tail_end) are the unmerged tail rows,
  /// which the caller filters by `cell(row, col) == id` itself. Tail rows
  /// are strictly greater than every sorted row, so the combined
  /// enumeration stays ascending (hence ascending slots). When the tail
  /// has outgrown kTailMergeThreshold the call merges it first (reported
  /// through `build`, may be null) and the tail part comes back empty.
  struct ProbeResult {
    const uint32_t* begin = nullptr;
    const uint32_t* end = nullptr;
    uint32_t tail_begin = 0;
    uint32_t tail_end = 0;
  };
  ProbeResult EqualRange(uint32_t col, TermId id, IndexBuildStats* build) const;

  /// Tail rows a probe tolerates scanning linearly before it pays for a
  /// merge. Bounds per-probe tail work by a constant while amortising the
  /// O(rows) merge over that many appends.
  static constexpr size_t kTailMergeThreshold = 16;

  /// Column-data bytes plus index bytes. A function of content only:
  /// sizes, not capacities, and indexes charged at full materialisation
  /// (one uint32_t per row per column) whether or not the lazy build has
  /// run yet. The governed estimate must be deterministic in the
  /// instance's content — independent of probe schedules, thread counts
  /// and snapshot copies (which drop built indexes) — and the index charge
  /// is the upper bound the resident bytes converge to on first probe.
  size_t ApproxMemoryBytes() const {
    return cols_.size() * slots_.size() * sizeof(TermId) +
           slots_.size() * sizeof(uint32_t) +
           cols_.size() * slots_.size() * sizeof(uint32_t);
  }

  /// Bytes of sorted index rows actually resident right now (telemetry; an
  /// atomic snapshot, readable while probes build concurrently).
  size_t IndexBytes() const {
    return index_bytes_.load(std::memory_order_relaxed);
  }

  /// Number of full or incremental index (re)builds performed, for tests.
  size_t index_builds() const {
    return index_builds_.load(std::memory_order_relaxed);
  }

 private:
  // One lazily sorted position index per column. `sorted_rows` holds rows
  // [0, built_rows) ordered by (value, row); rows [built_rows, rows()) are
  // the unmerged tail that probes scan linearly. `ready` is true while the
  // tail is empty. Append stores false (no probe can race a mutation, so a
  // plain transition is enough); BuildIndex release-stores `built_rows`
  // after the merge so a probe that acquire-loads the new value also sees
  // the merged `sorted_rows` contents — any probe that instead loads the
  // pre-merge value computes an over-threshold tail and serialises on the
  // build mutex, so no probe ever reads `sorted_rows` mid-merge.
  struct ColumnIndex {
    std::mutex mu;
    std::atomic<bool> ready{false};
    std::vector<uint32_t> sorted_rows;
    std::atomic<size_t> built_rows{0};
  };

  void BuildIndex(uint32_t col, IndexBuildStats* build) const;

  uint32_t arity_;
  std::vector<uint32_t> slots_;            // row -> AtomSet slot
  std::vector<std::vector<TermId>> cols_;  // [arity][rows]
  std::unique_ptr<ColumnIndex[]> indexes_;  // [arity]
  mutable std::atomic<size_t> index_bytes_{0};
  mutable std::atomic<size_t> index_builds_{0};
};

}  // namespace twchase

#endif  // TWCHASE_MODEL_COLUMN_SEGMENT_H_
