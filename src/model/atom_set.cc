#include "model/atom_set.h"

#include <algorithm>

#include "util/status.h"

namespace twchase {

AtomSet::AtomSet(const AtomSet& other)
    : slots_(other.slots_),
      alive_(other.alive_),
      index_(other.index_),
      by_predicate_(other.by_predicate_),
      live_by_predicate_(other.live_by_predicate_),
      term_postings_(other.term_postings_),
      live_by_term_(other.live_by_term_),
      dict_(other.dict_),
      mixed_arity_(other.mixed_arity_),
      live_count_(other.live_count_),
      dead_count_(other.dead_count_),
      generation_(other.generation_),
      compactions_(other.compactions_),
      slot_args_(other.slot_args_),
      journal_enabled_(other.journal_enabled_),
      journal_(other.journal_) {
  segments_.reserve(other.segments_.size());
  for (const auto& [pred, segment] : other.segments_) {
    segments_.emplace(pred, std::make_unique<ColumnSegment>(*segment));
  }
}

AtomSet& AtomSet::operator=(const AtomSet& other) {
  if (this != &other) *this = AtomSet(other);
  return *this;
}

// Indexes a freshly stored atom at `slot`: predicate posting, per-term
// postings/counters (dictionary-id keyed) and the predicate's column
// segment. Shared by Insert and the compaction rebuild.
void AtomSet::IndexNewAtom(const Atom& atom, Slot slot) {
  by_predicate_[atom.predicate()].push_back(slot);
  ++live_by_predicate_[atom.predicate()];
  for (Term t : atom.DistinctTerms()) {
    TermId id = dict_.Intern(t);
    if (id >= term_postings_.size()) {
      term_postings_.resize(id + 1);
      live_by_term_.resize(id + 1, 0);
    }
    term_postings_[id].push_back(slot);
    ++live_by_term_[id];
  }
  const uint32_t arity = static_cast<uint32_t>(atom.args().size());
  auto [it, created] = segments_.try_emplace(atom.predicate(), nullptr);
  if (created) {
    it->second = std::make_unique<ColumnSegment>(arity);
  } else if (it->second->arity() != arity) {
    mixed_arity_.insert(atom.predicate());
  }
  if (!mixed_arity_.contains(atom.predicate())) {
    scratch_ids_.clear();
    for (Term t : atom.args()) scratch_ids_.push_back(dict_.Intern(t));
    it->second->Append(slot, scratch_ids_.data());
  }
}

bool AtomSet::Insert(const Atom& atom) { return Insert(Atom(atom)); }

bool AtomSet::Insert(Atom&& atom) {
  auto it = index_.find(atom);
  if (it != index_.end()) return false;
  Slot slot = static_cast<Slot>(slots_.size());
  IndexNewAtom(atom, slot);
  index_.emplace(atom, slot);
  if (journal_enabled_) journal_.inserted.push_back(atom);
  slot_args_ += atom.args().size();
  slots_.push_back(std::move(atom));
  alive_.push_back(1);
  ++live_count_;
  ++generation_;
  return true;
}

bool AtomSet::Erase(const Atom& atom) {
  auto it = index_.find(atom);
  if (it == index_.end()) return false;
  Slot slot = it->second;
  TWCHASE_CHECK(alive_[slot]);
  alive_[slot] = 0;
  --live_by_predicate_[atom.predicate()];
  for (Term t : slots_[slot].DistinctTerms()) {
    --live_by_term_[dict_.Find(t)];
  }
  index_.erase(it);
  if (journal_enabled_) journal_.erased.push_back(slots_[slot]);
  --live_count_;
  ++dead_count_;
  ++generation_;
  MaybeCompact();
  return true;
}

AtomSet::Delta AtomSet::DrainDelta() {
  Delta out = std::move(journal_);
  journal_ = Delta{};
  return out;
}

void AtomSet::NoteExternalInsert(const Atom& atom) {
  if (journal_enabled_) journal_.inserted.push_back(atom);
}

void AtomSet::NoteExternalErase(const Atom& atom) {
  if (journal_enabled_) journal_.erased.push_back(atom);
}

bool AtomSet::Contains(const Atom& atom) const { return index_.contains(atom); }

std::vector<Atom> AtomSet::Atoms() const {
  std::vector<Atom> out;
  out.reserve(live_count_);
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (alive_[s]) out.push_back(slots_[s]);
  }
  return out;
}

std::vector<const Atom*> AtomSet::ByPredicate(PredicateId predicate) const {
  std::vector<const Atom*> out;
  auto it = by_predicate_.find(predicate);
  if (it == by_predicate_.end()) return out;
  out.reserve(it->second.size());
  for (Slot s : it->second) {
    if (alive_[s]) out.push_back(&slots_[s]);
  }
  return out;
}

std::vector<const Atom*> AtomSet::ByTerm(Term term) const {
  std::vector<const Atom*> out;
  const std::vector<Slot>* posting = TermPostingSlots(term);
  if (posting == nullptr) return out;
  out.reserve(posting->size());
  for (Slot s : *posting) {
    if (alive_[s]) out.push_back(&slots_[s]);
  }
  return out;
}

size_t AtomSet::CountByPredicate(PredicateId predicate) const {
  auto it = live_by_predicate_.find(predicate);
  return it == live_by_predicate_.end() ? 0 : it->second;
}

size_t AtomSet::CountByTerm(Term term) const {
  TermId id = dict_.Find(term);
  return id == TermDictionary::kNoId ? 0 : live_by_term_[id];
}

const ColumnSegment* AtomSet::SegmentFor(PredicateId predicate) const {
  if (mixed_arity_.contains(predicate)) return nullptr;
  auto it = segments_.find(predicate);
  return it == segments_.end() ? nullptr : it->second.get();
}

const std::vector<AtomSet::Slot>* AtomSet::TermPostingSlots(Term term) const {
  TermId id = dict_.Find(term);
  if (id == TermDictionary::kNoId) return nullptr;
  return &term_postings_[id];
}

const std::vector<AtomSet::Slot>* AtomSet::PredicatePostingSlots(
    PredicateId predicate) const {
  auto it = by_predicate_.find(predicate);
  return it == by_predicate_.end() ? nullptr : &it->second;
}

std::vector<Term> AtomSet::Terms() const {
  std::vector<Term> out;
  std::unordered_set<Term, TermHash> seen;
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (!alive_[s]) continue;
    for (Term t : slots_[s].args()) {
      if (seen.insert(t).second) out.push_back(t);
    }
  }
  return out;
}

std::vector<Term> AtomSet::Variables() const {
  std::vector<Term> out;
  for (Term t : Terms()) {
    if (t.is_variable()) out.push_back(t);
  }
  return out;
}

bool AtomSet::ContainsTerm(Term term) const { return CountByTerm(term) > 0; }

bool operator==(const AtomSet& a, const AtomSet& b) {
  if (a.live_count_ != b.live_count_) return false;
  for (AtomSet::Slot s = 0; s < a.slots_.size(); ++s) {
    if (a.alive_[s] && !b.Contains(a.slots_[s])) return false;
  }
  return true;
}

bool AtomSet::IsSubsetOf(const AtomSet& other) const {
  if (live_count_ > other.live_count_) return false;
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (alive_[s] && !other.Contains(slots_[s])) return false;
  }
  return true;
}

void AtomSet::InsertAll(const AtomSet& other) {
  other.ForEach([this](const Atom& atom) { Insert(atom); });
}

std::string AtomSet::ToString(const Vocabulary& vocab) const {
  std::string out = "{";
  bool first = true;
  for (const Atom& atom : Atoms()) {
    if (!first) out += ", ";
    first = false;
    out += atom.ToString(vocab);
  }
  out += "}";
  return out;
}

AtomSet AtomSet::FromAtoms(const std::vector<Atom>& atoms) {
  AtomSet out;
  for (const Atom& atom : atoms) out.Insert(atom);
  return out;
}

uint64_t AtomSet::ContentHash() const {
  // Commutative combine (sum) of per-atom FNV-1a hashes: insertion order
  // and tombstone layout do not affect the value.
  uint64_t total = 0;
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (!alive_[s]) continue;
    const Atom& atom = slots_[s];
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    auto mix = [&h](uint64_t value) {
      h ^= value;
      h *= 1099511628211ull;  // FNV prime
    };
    mix(static_cast<uint64_t>(atom.predicate()));
    for (Term t : atom.args()) mix(static_cast<uint64_t>(t.raw()) + 1);
    total += h;
  }
  return total;
}

size_t AtomSet::ApproxMemoryBytes() const {
  // Per slot: the Atom object, its dedup-index entry, one predicate posting
  // and the hash-map node overheads; per argument: the stored Term plus its
  // per-term posting and live counter. The constants bake in typical
  // libstdc++ node and vector growth overheads. On top of that, the columnar
  // layer is charged explicitly: dictionary tables plus per-segment column
  // data and resident sorted indexes (lazily built, so this estimate grows
  // when the matcher first probes a column — the governor sees what the
  // allocator sees).
  constexpr size_t kPerSlotBytes = 96;
  constexpr size_t kPerArgBytes = 24;
  size_t bytes = slots_.size() * kPerSlotBytes + slot_args_ * kPerArgBytes;
  bytes += dict_.ApproxMemoryBytes();
  for (const auto& [pred, segment] : segments_) {
    (void)pred;
    bytes += segment->ApproxMemoryBytes();
  }
  return bytes;
}

void AtomSet::MaybeCompact() {
  // Compact when at least half the slots are tombstones and the set is not
  // tiny; keeps postings from degenerating in long core-chase runs where the
  // simplification erases most atoms every step.
  if (dead_count_ >= 64 && dead_count_ >= live_count_) CompactPostings();
}

void AtomSet::CompactPostings() {
  std::vector<Atom> new_slots;
  new_slots.reserve(live_count_);
  slot_args_ = 0;
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (alive_[s]) {
      slot_args_ += slots_[s].args().size();
      new_slots.push_back(std::move(slots_[s]));
    }
  }
  slots_ = std::move(new_slots);
  alive_.assign(slots_.size(), 1);
  dead_count_ = 0;
  ++compactions_;
  index_.clear();
  by_predicate_.clear();
  live_by_predicate_.clear();
  for (std::vector<Slot>& posting : term_postings_) posting.clear();
  std::fill(live_by_term_.begin(), live_by_term_.end(), 0);
  // Segments are rebuilt in the new slot order; the dictionary is kept
  // (append-only ids), and so is the sticky mixed-arity set.
  segments_.clear();
  for (Slot s = 0; s < slots_.size(); ++s) {
    const Atom& atom = slots_[s];
    IndexNewAtom(atom, s);
    index_.emplace(atom, s);
  }
}

}  // namespace twchase
