#include "model/atom_set.h"

#include <algorithm>

#include "util/status.h"

namespace twchase {

bool AtomSet::Insert(const Atom& atom) { return Insert(Atom(atom)); }

bool AtomSet::Insert(Atom&& atom) {
  auto it = index_.find(atom);
  if (it != index_.end()) return false;
  Slot slot = static_cast<Slot>(slots_.size());
  by_predicate_[atom.predicate()].push_back(slot);
  ++live_by_predicate_[atom.predicate()];
  for (Term t : atom.DistinctTerms()) {
    by_term_[t].push_back(slot);
    ++live_by_term_[t];
  }
  index_.emplace(atom, slot);
  if (journal_enabled_) journal_.inserted.push_back(atom);
  slot_args_ += atom.args().size();
  slots_.push_back(std::move(atom));
  alive_.push_back(1);
  ++live_count_;
  ++generation_;
  return true;
}

bool AtomSet::Erase(const Atom& atom) {
  auto it = index_.find(atom);
  if (it == index_.end()) return false;
  Slot slot = it->second;
  TWCHASE_CHECK(alive_[slot]);
  alive_[slot] = 0;
  --live_by_predicate_[atom.predicate()];
  for (Term t : slots_[slot].DistinctTerms()) {
    --live_by_term_[t];
  }
  index_.erase(it);
  if (journal_enabled_) journal_.erased.push_back(slots_[slot]);
  --live_count_;
  ++dead_count_;
  ++generation_;
  MaybeCompact();
  return true;
}

AtomSet::Delta AtomSet::DrainDelta() {
  Delta out = std::move(journal_);
  journal_ = Delta{};
  return out;
}

void AtomSet::NoteExternalInsert(const Atom& atom) {
  if (journal_enabled_) journal_.inserted.push_back(atom);
}

void AtomSet::NoteExternalErase(const Atom& atom) {
  if (journal_enabled_) journal_.erased.push_back(atom);
}

bool AtomSet::Contains(const Atom& atom) const { return index_.contains(atom); }

std::vector<Atom> AtomSet::Atoms() const {
  std::vector<Atom> out;
  out.reserve(live_count_);
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (alive_[s]) out.push_back(slots_[s]);
  }
  return out;
}

std::vector<const Atom*> AtomSet::ByPredicate(PredicateId predicate) const {
  std::vector<const Atom*> out;
  auto it = by_predicate_.find(predicate);
  if (it == by_predicate_.end()) return out;
  out.reserve(it->second.size());
  for (Slot s : it->second) {
    if (alive_[s]) out.push_back(&slots_[s]);
  }
  return out;
}

std::vector<const Atom*> AtomSet::ByTerm(Term term) const {
  std::vector<const Atom*> out;
  auto it = by_term_.find(term);
  if (it == by_term_.end()) return out;
  out.reserve(it->second.size());
  for (Slot s : it->second) {
    if (alive_[s]) out.push_back(&slots_[s]);
  }
  return out;
}

size_t AtomSet::CountByPredicate(PredicateId predicate) const {
  auto it = live_by_predicate_.find(predicate);
  return it == live_by_predicate_.end() ? 0 : it->second;
}

size_t AtomSet::CountByTerm(Term term) const {
  auto it = live_by_term_.find(term);
  return it == live_by_term_.end() ? 0 : it->second;
}

std::vector<Term> AtomSet::Terms() const {
  std::vector<Term> out;
  std::unordered_set<Term, TermHash> seen;
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (!alive_[s]) continue;
    for (Term t : slots_[s].args()) {
      if (seen.insert(t).second) out.push_back(t);
    }
  }
  return out;
}

std::vector<Term> AtomSet::Variables() const {
  std::vector<Term> out;
  for (Term t : Terms()) {
    if (t.is_variable()) out.push_back(t);
  }
  return out;
}

bool AtomSet::ContainsTerm(Term term) const { return CountByTerm(term) > 0; }

bool operator==(const AtomSet& a, const AtomSet& b) {
  if (a.live_count_ != b.live_count_) return false;
  for (AtomSet::Slot s = 0; s < a.slots_.size(); ++s) {
    if (a.alive_[s] && !b.Contains(a.slots_[s])) return false;
  }
  return true;
}

bool AtomSet::IsSubsetOf(const AtomSet& other) const {
  if (live_count_ > other.live_count_) return false;
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (alive_[s] && !other.Contains(slots_[s])) return false;
  }
  return true;
}

void AtomSet::InsertAll(const AtomSet& other) {
  other.ForEach([this](const Atom& atom) { Insert(atom); });
}

std::string AtomSet::ToString(const Vocabulary& vocab) const {
  std::string out = "{";
  bool first = true;
  for (const Atom& atom : Atoms()) {
    if (!first) out += ", ";
    first = false;
    out += atom.ToString(vocab);
  }
  out += "}";
  return out;
}

AtomSet AtomSet::FromAtoms(const std::vector<Atom>& atoms) {
  AtomSet out;
  for (const Atom& atom : atoms) out.Insert(atom);
  return out;
}

uint64_t AtomSet::ContentHash() const {
  // Commutative combine (sum) of per-atom FNV-1a hashes: insertion order
  // and tombstone layout do not affect the value.
  uint64_t total = 0;
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (!alive_[s]) continue;
    const Atom& atom = slots_[s];
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    auto mix = [&h](uint64_t value) {
      h ^= value;
      h *= 1099511628211ull;  // FNV prime
    };
    mix(static_cast<uint64_t>(atom.predicate()));
    for (Term t : atom.args()) mix(static_cast<uint64_t>(t.raw()) + 1);
    total += h;
  }
  return total;
}

size_t AtomSet::ApproxMemoryBytes() const {
  // Per slot: the Atom object, its dedup-index entry, one predicate posting
  // and the hash-map node overheads; per argument: the stored Term plus its
  // per-term posting and live counter. The constants bake in typical
  // libstdc++ node and vector growth overheads.
  constexpr size_t kPerSlotBytes = 96;
  constexpr size_t kPerArgBytes = 24;
  return slots_.size() * kPerSlotBytes + slot_args_ * kPerArgBytes;
}

void AtomSet::MaybeCompact() {
  // Compact when at least half the slots are tombstones and the set is not
  // tiny; keeps postings from degenerating in long core-chase runs where the
  // simplification erases most atoms every step.
  if (dead_count_ >= 64 && dead_count_ >= live_count_) CompactPostings();
}

void AtomSet::CompactPostings() {
  std::vector<Atom> new_slots;
  new_slots.reserve(live_count_);
  slot_args_ = 0;
  for (Slot s = 0; s < slots_.size(); ++s) {
    if (alive_[s]) {
      slot_args_ += slots_[s].args().size();
      new_slots.push_back(std::move(slots_[s]));
    }
  }
  slots_ = std::move(new_slots);
  alive_.assign(slots_.size(), 1);
  dead_count_ = 0;
  ++compactions_;
  index_.clear();
  by_predicate_.clear();
  by_term_.clear();
  live_by_predicate_.clear();
  live_by_term_.clear();
  for (Slot s = 0; s < slots_.size(); ++s) {
    const Atom& atom = slots_[s];
    index_.emplace(atom, s);
    by_predicate_[atom.predicate()].push_back(s);
    ++live_by_predicate_[atom.predicate()];
    for (Term t : atom.DistinctTerms()) {
      by_term_[t].push_back(s);
      ++live_by_term_[t];
    }
  }
}

}  // namespace twchase
