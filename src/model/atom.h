// Atoms: a predicate applied to a tuple of terms. Value type with cheap
// hashing; the argument vector is small (typical arity 1–3).
#ifndef TWCHASE_MODEL_ATOM_H_
#define TWCHASE_MODEL_ATOM_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/predicate.h"
#include "model/term.h"

namespace twchase {

class Atom {
 public:
  Atom() = default;
  Atom(PredicateId predicate, std::vector<Term> args)
      : predicate_(predicate), args_(std::move(args)) {}

  PredicateId predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  uint32_t arity() const { return static_cast<uint32_t>(args_.size()); }
  Term arg(size_t i) const { return args_[i]; }

  /// True if any argument is a variable.
  bool HasVariables() const;

  /// Distinct terms of the atom, in first-occurrence order.
  std::vector<Term> DistinctTerms() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate_ == b.predicate_ && a.args_ == b.args_;
  }
  friend auto operator<=>(const Atom& a, const Atom& b) {
    if (auto c = a.predicate_ <=> b.predicate_; c != 0) return c;
    return a.args_ <=> b.args_;
  }

  size_t Hash() const;

  /// Rendering with vocabulary names, e.g. "h(X0, X1)".
  std::string ToString(const Vocabulary& vocab) const;

  /// Rendering with raw ids, for diagnostics without a vocabulary.
  std::string DebugString() const;

 private:
  PredicateId predicate_ = 0;
  std::vector<Term> args_;
};

struct AtomHash {
  size_t operator()(const Atom& atom) const { return atom.Hash(); }
};

}  // namespace twchase

#endif  // TWCHASE_MODEL_ATOM_H_
