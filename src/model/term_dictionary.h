// TermDictionary: interns Term handles to dense 32-bit ids for the columnar
// storage layer. Terms themselves are already interned by the Vocabulary,
// but their raw ids are sparse across the constant/variable spaces and
// unbounded (fresh nulls keep minting); the dictionary renumbers exactly the
// terms that occur in one AtomSet into a dense, append-only id space so that
// column cells are comparable with a single integer compare and per-term
// tables (postings, live counters) can be flat vectors instead of hash maps.
//
// Ids are append-only and never recycled: once a term is interned its id is
// stable for the lifetime of the dictionary (compaction of the owning
// AtomSet keeps the dictionary, so column rebuilds reuse the same ids). The
// reverse table is block-allocated in fixed-size chunks, so Term lookups by
// id never move under an append — following VLog's block-allocated chase
// rows — and growing the dictionary never invalidates concurrent readers of
// already-interned entries.
//
// Thread-safety: Intern is a mutation and follows the owning AtomSet's
// single-writer discipline; const lookups (Find, term, size) are safe to
// call concurrently with each other but not with Intern.
#ifndef TWCHASE_MODEL_TERM_DICTIONARY_H_
#define TWCHASE_MODEL_TERM_DICTIONARY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "model/term.h"

namespace twchase {

using TermId = uint32_t;

class TermDictionary {
 public:
  /// Sentinel for "not interned". Never returned by Intern.
  static constexpr TermId kNoId = 0xFFFFFFFFu;

  TermDictionary() = default;

  TermDictionary(const TermDictionary& other) { CopyFrom(other); }
  TermDictionary& operator=(const TermDictionary& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  TermDictionary(TermDictionary&&) = default;
  TermDictionary& operator=(TermDictionary&&) = default;

  /// Returns the id of `term`, interning it first if necessary.
  TermId Intern(Term term);

  /// Returns the id of `term`, or kNoId if it was never interned.
  TermId Find(Term term) const {
    const std::vector<TermId>& table = term.is_variable() ? vars_ : consts_;
    uint32_t index = term.index();
    return index < table.size() ? table[index] : kNoId;
  }

  /// The term with the given id. Precondition: id < size().
  Term term(TermId id) const {
    return blocks_[id / kBlockSize][id % kBlockSize];
  }

  /// Number of interned terms; ids are exactly [0, size()).
  size_t size() const { return size_; }

  /// Estimated resident bytes (forward tables plus reverse blocks). A
  /// function of content only — sizes, not capacities — so an instance and
  /// its copies report the same estimate (the governor's memory-accounting
  /// tests compare the two).
  size_t ApproxMemoryBytes() const {
    return (consts_.size() + vars_.size()) * sizeof(TermId) +
           blocks_.size() * kBlockSize * sizeof(Term);
  }

 private:
  static constexpr size_t kBlockSize = 4096;

  void CopyFrom(const TermDictionary& other);

  // Forward maps Term::index() -> TermId, one per term kind. Sized to the
  // largest index seen, which is dense in practice: vocabulary constants are
  // numbered from zero and chase nulls are minted sequentially.
  std::vector<TermId> consts_;
  std::vector<TermId> vars_;

  // Reverse map TermId -> Term in fixed blocks: appends never move
  // previously interned entries.
  std::vector<std::unique_ptr<Term[]>> blocks_;
  size_t size_ = 0;
};

}  // namespace twchase

#endif  // TWCHASE_MODEL_TERM_DICTIONARY_H_
