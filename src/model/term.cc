#include "model/term.h"

namespace twchase {

std::string Term::DebugString() const {
  return (is_variable() ? "X" : "c") + std::to_string(index());
}

}  // namespace twchase
