#include "service/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace twchase {
namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 64 * 1024 * 1024;
constexpr int kSocketTimeoutSeconds = 10;

using Clock = std::chrono::steady_clock;

/// No-deadline sentinel (HttpFetch manages its own socket timeouts).
constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

/// Re-arms the socket's recv/send timeout with whatever remains of the
/// connection's absolute deadline. False once the deadline has passed —
/// the per-syscall timeout alone would let a dribbling client (one byte
/// per timeout window, each recv succeeding) hold the connection forever.
bool ArmSocketDeadline(int fd, Clock::time_point deadline) {
  if (deadline == kNoDeadline) return true;
  auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
      deadline - Clock::now());
  if (remaining.count() <= 0) return false;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(remaining.count() / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(remaining.count() % 1000000);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return true;
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

void SetSocketTimeout(int fd) {
  struct timeval tv;
  tv.tv_sec = kSocketTimeoutSeconds;
  tv.tv_usec = 0;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Reads until the terminator appears in `buffer` or the size cap is hit.
/// Anything past the terminator stays in `buffer` (start of the body).
bool ReadUntilHeaderEnd(int fd, std::string* buffer,
                        Clock::time_point deadline = kNoDeadline) {
  char chunk[4096];
  while (buffer->find("\r\n\r\n") == std::string::npos) {
    if (buffer->size() > kMaxHeaderBytes) return false;
    if (!ArmSocketDeadline(fd, deadline)) return false;
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return true;
}

bool ReadExact(int fd, std::string* buffer, size_t total,
               Clock::time_point deadline = kNoDeadline) {
  char chunk[8192];
  while (buffer->size() < total) {
    size_t want = std::min(sizeof(chunk), total - buffer->size());
    if (!ArmSocketDeadline(fd, deadline)) return false;
    ssize_t n = recv(fd, chunk, want, 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return true;
}

bool SendAll(int fd, const std::string& data,
             Clock::time_point deadline = kNoDeadline) {
  size_t sent = 0;
  while (sent < data.size()) {
    if (!ArmSocketDeadline(fd, deadline)) return false;
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Parses the request head (request line + headers) from `head` and, using
/// Content-Length, how many body bytes follow. Returns false on malformed
/// input.
bool ParseRequestHead(const std::string& head, HttpRequest* request,
                      size_t* content_length) {
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string request_line = head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return false;
  request->method = request_line.substr(0, sp1);
  request->target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/') {
    return false;
  }

  *content_length = 0;
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    if (eol == pos) break;  // blank line
    const std::string line = head.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    std::string name = ToLower(Trim(line.substr(0, colon)));
    std::string value = Trim(line.substr(colon + 1));
    if (name == "content-length") {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || parsed > kMaxBodyBytes) {
        return false;
      }
      *content_length = static_cast<size_t>(parsed);
    }
    request->headers.emplace_back(std::move(name), std::move(value));
    pos = eol + 2;
  }
  return true;
}

std::string RenderResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

std::string HttpRequest::path() const {
  size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::query() const {
  size_t q = target.find('?');
  return q == std::string::npos ? "" : target.substr(q + 1);
}

std::string HttpRequest::Header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return "";
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port, HttpHandler handler,
                         size_t handler_threads, uint64_t io_timeout_ms) {
  if (running_) return Status::FailedPrecondition("server already running");
  handler_ = std::move(handler);
  io_timeout_ms_ = io_timeout_ms;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        Status::Internal(std::string("bind 127.0.0.1:") +
                         std::to_string(port) + ": " + std::strerror(errno));
    close(fd);
    return status;
  }
  if (listen(fd, 64) != 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_.store(fd);
  shutdown_ = false;
  running_ = true;
  if (handler_threads == 0) handler_threads = 1;
  for (size_t i = 0; i < handler_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    shutdown_ = true;
  }
  // Closing the listener makes accept() fail, unblocking the accept thread
  // (shutdown() first, so an accept() blocked on the old fd returns before
  // the descriptor number can be reused).
  if (int fd = listen_fd_.exchange(-1); fd >= 0) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  queue_ready_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : pending_fds_) close(fd);
  pending_fds_.clear();
  running_ = false;
}

void HttpServer::AcceptLoop() {
  while (true) {
    int listener = listen_fd_.load();
    if (listener < 0) return;  // Stop() already closed it
    int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener gone
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        close(fd);
        return;
      }
      pending_fds_.push_back(fd);
    }
    queue_ready_.notify_one();
  }
}

void HttpServer::HandlerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_ready_.wait(lock, [this] { return shutdown_ || !pending_fds_.empty(); });
      if (!pending_fds_.empty()) {
        fd = pending_fds_.front();
        pending_fds_.erase(pending_fds_.begin());
      } else if (shutdown_) {
        return;
      }
    }
    if (fd >= 0) HandleConnection(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  SetSocketTimeout(fd);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // One absolute deadline for the whole exchange.
  Clock::time_point deadline =
      io_timeout_ms_ == 0
          ? kNoDeadline
          : Clock::now() + std::chrono::milliseconds(io_timeout_ms_);

  std::string buffer;
  HttpResponse response;
  HttpRequest request;
  bool parsed = false;
  if (ReadUntilHeaderEnd(fd, &buffer, deadline)) {
    size_t header_end = buffer.find("\r\n\r\n");
    size_t content_length = 0;
    if (ParseRequestHead(buffer.substr(0, header_end + 2), &request,
                         &content_length)) {
      request.body = buffer.substr(header_end + 4);
      if (request.body.size() <= content_length &&
          ReadExact(fd, &request.body, content_length, deadline)) {
        request.body.resize(content_length);
        parsed = true;
      }
    }
  }
  if (parsed) {
    response = handler_(request);
  } else {
    response.status = 400;
    response.body = "{\"error\":{\"message\":\"malformed HTTP request\"}}";
  }
  SendAll(fd, RenderResponse(response), deadline);
  shutdown(fd, SHUT_RDWR);
  close(fd);
}

StatusOr<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 uint64_t timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("invalid IPv4 host: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal("connect " + host + ":" +
                                     std::to_string(port) + ": " +
                                     std::strerror(errno));
    close(fd);
    return status;
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + ":" + std::to_string(port) + "\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!SendAll(fd, request)) {
    close(fd);
    return Status::Internal("send failed");
  }

  std::string buffer;
  if (!ReadUntilHeaderEnd(fd, &buffer)) {
    close(fd);
    return Status::Internal("response header read failed");
  }
  size_t header_end = buffer.find("\r\n\r\n");
  const std::string head = buffer.substr(0, header_end);
  HttpResponse response;
  // Status line: HTTP/1.1 NNN Text
  size_t sp = head.find(' ');
  if (sp == std::string::npos || head.size() < sp + 4) {
    close(fd);
    return Status::Internal("malformed response status line");
  }
  response.status = std::atoi(head.c_str() + sp + 1);
  size_t content_length = std::string::npos;
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos && pos + 2 < head.size()) {
    size_t eol = head.find("\r\n", pos + 2);
    const std::string line =
        head.substr(pos + 2, (eol == std::string::npos ? head.size() : eol) -
                                 pos - 2);
    size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = ToLower(Trim(line.substr(0, colon)));
      std::string value = Trim(line.substr(colon + 1));
      if (name == "content-length") {
        content_length = static_cast<size_t>(
            std::strtoull(value.c_str(), nullptr, 10));
      } else if (name == "content-type") {
        response.content_type = value;
      }
    }
    pos = eol;
  }
  response.body = buffer.substr(header_end + 4);
  if (content_length != std::string::npos) {
    if (content_length > kMaxBodyBytes ||
        !ReadExact(fd, &response.body, content_length)) {
      close(fd);
      return Status::Internal("response body read failed");
    }
    response.body.resize(content_length);
  } else {
    // No Content-Length: read to EOF (the server always sends one, but be
    // liberal for debugging against other tools).
    char chunk[8192];
    ssize_t n;
    while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      response.body.append(chunk, static_cast<size_t>(n));
    }
  }
  close(fd);
  return response;
}

}  // namespace twchase
