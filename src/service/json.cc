#include "service/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace twchase {
namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos));
  }

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos >= text.size()) return Error("unexpected end of input");
    char c = text[pos];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': return ParseString(out);
      case 't':
      case 'f': return ParseBool(out);
      case 'n': return ParseNull(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, const char* what) {
    if (text.substr(pos, word.size()) != word) {
      return Error(std::string("invalid ") + what);
    }
    pos += word.size();
    return Status::OK();
  }

  Status ParseNull(Json* out) {
    TWCHASE_RETURN_IF_ERROR(ParseLiteral("null", "literal"));
    *out = Json::Null();
    return Status::OK();
  }

  Status ParseBool(Json* out) {
    if (text[pos] == 't') {
      TWCHASE_RETURN_IF_ERROR(ParseLiteral("true", "literal"));
      *out = Json::Bool(true);
    } else {
      TWCHASE_RETURN_IF_ERROR(ParseLiteral("false", "literal"));
      *out = Json::Bool(false);
    }
    return Status::OK();
  }

  Status ParseNumber(Json* out) {
    size_t start = pos;
    if (Consume('-')) {
    }
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return Error("invalid value");
    std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      pos = start;
      return Error("invalid number");
    }
    *out = Json::Number(value);
    return Status::OK();
  }

  Status ParseString(Json* out) {
    std::string value;
    TWCHASE_RETURN_IF_ERROR(ParseStringBody(&value));
    *out = Json::String(std::move(value));
    return Status::OK();
  }

  Status ParseStringBody(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (true) {
      if (pos >= text.size()) return Error("unterminated string");
      char c = text[pos++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) return Error("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return Error("invalid \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences — the service only transports program
          // text and identifiers, which are ASCII in practice).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Error("invalid escape");
      }
    }
  }

  Status ParseArray(Json* out, int depth) {
    Consume('[');
    *out = Json::Array();
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json item;
      TWCHASE_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->Append(std::move(item));
      SkipSpace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(Json* out, int depth) {
    Consume('{');
    *out = Json::Object();
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      TWCHASE_RETURN_IF_ERROR(ParseStringBody(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      Json value;
      TWCHASE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }
};

const Json& NullJson() {
  static const Json* kNull = new Json();
  return *kNull;
}

}  // namespace

Json Json::Bool(bool value) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = value;
  return j;
}

Json Json::Number(double value) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = value;
  return j;
}

Json Json::String(std::string value) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

StatusOr<Json> Json::Parse(std::string_view text) {
  Parser parser{text};
  Json value;
  TWCHASE_RETURN_IF_ERROR(parser.ParseValue(&value, 0));
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    return parser.Error("trailing characters after document");
  }
  return value;
}

void Json::Append(Json value) {
  TWCHASE_CHECK_MSG(type_ == Type::kArray, "Append on non-array Json");
  items_.push_back(std::move(value));
}

bool Json::Has(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return true;
  }
  return false;
}

const Json& Json::Get(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return value;
  }
  return NullJson();
}

void Json::Set(std::string_view key, Json value) {
  TWCHASE_CHECK_MSG(type_ == Type::kObject, "Set on non-object Json");
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline_indent = [&](int levels) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent + 2 * levels), ' ');
  };
  switch (type_) {
    case Type::kNull: *out += "null"; return;
    case Type::kBool: *out += bool_ ? "true" : "false"; return;
    case Type::kNumber: {
      double rounded = std::nearbyint(number_);
      char buffer[40];
      if (rounded == number_ && std::fabs(number_) < 9.0e15) {
        std::snprintf(buffer, sizeof(buffer), "%.0f", number_);
      } else {
        std::snprintf(buffer, sizeof(buffer), "%.6g", number_);
      }
      *out += buffer;
      return;
    }
    case Type::kString:
      out->push_back('"');
      *out += JsonEscape(string_);
      out->push_back('"');
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      newline_indent(depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(depth + 1);
        out->push_back('"');
        *out += JsonEscape(members_[i].first);
        *out += pretty ? "\": " : "\":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline_indent(depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace twchase
