#include "service/daemon.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/preflight.h"
#include "core/checkpoint.h"
#include "core/session.h"
#include "hom/answers.h"
#include "hom/matcher.h"
#include "obs/observer.h"
#include "obs/stock_observers.h"
#include "parser/parser.h"
#include "parser/printer.h"
#include "util/stopwatch.h"

namespace twchase {
namespace {

std::string Sprintf(const char* format, ...) {
  // Sized exactly: the result text is diffed byte-for-byte against the
  // CLI's (untruncated) printf output, so a fixed buffer would silently
  // diverge on long query lines.
  va_list args;
  va_start(args, format);
  va_list measure;
  va_copy(measure, args);
  int needed = std::vsnprintf(nullptr, 0, format, measure);
  va_end(measure);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(&out[0], out.size(), format, args);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args);
  return out;
}

HttpResponse JsonResponse(int status, const Json& body) {
  HttpResponse response;
  response.status = status;
  response.body = body.Dump() + "\n";
  return response;
}

HttpResponse StatusResponse(const Status& status,
                            const std::vector<FieldError>& fields = {}) {
  return JsonResponse(HttpStatusForStatus(status), ErrorJson(status, fields));
}

// Inverse of StatusCodeName, for rehydrating persisted structured errors.
StatusCode StatusCodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kOutOfRange, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace

/// One chase job: a program run as a sequence of scheduler segments. Every
/// segment re-parses the program text (a resume needs the vocabulary in
/// start state) and Start()s or Resume()s a fresh ChaseSession; preemption
/// turns the paused session into a serialized checkpoint carried to the
/// next segment. All cross-thread state (the live session pointer for
/// Pause/Cancel, the rendered result for the HTTP handlers) sits behind
/// one mutex; the chase itself runs outside it.
class ChaseDaemon::ChaseJob : public PreemptibleJob {
 public:
  ChaseJob(std::string id, JobRequest request, ChaseDaemon* daemon)
      : id_(std::move(id)), request_(std::move(request)), daemon_(daemon) {
    // Preemption needs the resume log; forcing it on changes memory, never
    // results. The incremental core cannot record one (Validate rejects the
    // combination), so such jobs simply run each segment to completion.
    preemptible_ = !request_.options.core.incremental_core;
  }

  /// Rehydrates a job that finished before a restart: the retained outcome
  /// (terminal result or structured error) is served again, no segment
  /// ever runs.
  static std::shared_ptr<ChaseJob> Recovered(ChaseDaemon* daemon,
                                             const RecoveredJob& record) {
    auto job = std::make_shared<ChaseJob>(record.id, record.request, daemon);
    std::lock_guard<std::mutex> lock(job->mu_);
    job->state_ = record.terminal_state;
    if (record.terminal_state == "failed") {
      job->error_ = Status(StatusCodeFromName(record.error_code),
                           record.error_message);
    } else {
      job->result_ = record.result;
      job->has_result_ = true;
    }
    return job;
  }

  const std::string& id() const { return id_; }
  const std::string& tenant() const { return request_.tenant; }

  std::string state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  bool terminal() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_ == "done" || state_ == "cancelled" || state_ == "failed";
  }

  /// Startup-recovery failure: records the structured error. The caller
  /// appends the durable failed record itself (the persist hook is not
  /// used, to keep recovery's write in one place).
  void MarkUnrecoverable(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    error_ = status;
    state_ = "failed";
  }

  /// Replaces the first segment's resume source with the recovered
  /// snapshot. Only before Submit (no concurrent segment yet).
  void SeedResumeCheckpoint(std::string checkpoint_text) {
    request_.resume_checkpoint = std::move(checkpoint_text);
  }

  /// Seeds an auto-variant resolution made outside the job (startup
  /// recovery resolves against the re-parsed program before re-admission).
  /// Only before Submit (no concurrent segment yet).
  void SeedResolvedPreflight(const ChaseOptions& resolved,
                             std::string summary) {
    request_.options = resolved;
    preflight_summary_ = std::move(summary);
  }

  Outcome RunSegment() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      state_ = "running";
      ++segments_;
    }
    Stopwatch stopwatch;

    // Fresh parse: term ids and the null counter must be in start state for
    // both Start and Resume (the checkpoint fingerprint pins the text).
    auto program = ParseProgram(request_.program);
    if (!program.ok()) {
      return Terminal(Status::Internal("program re-parse failed: " +
                                       program.status().message()));
    }

    // --variant=auto: resolve once, on the first segment, and pin the
    // decision into the job's options — every later segment (and the
    // checkpoint fingerprint, which folds the verdict) must see the same
    // resolution rather than re-running the preflight.
    if (request_.options.preflight.auto_variant &&
        !request_.options.preflight.resolved) {
      ChaseOptions resolved = request_.options;
      auto report =
          ResolveAutoVariant(program->kb, PreflightOptions{}, &resolved);
      if (!report.ok()) return Terminal(report.status());
      std::lock_guard<std::mutex> lock(mu_);
      request_.options = resolved;
      preflight_summary_ = report->Summary();
    }

    ChaseOptions options = request_.options;
    if (preemptible_) options.resume.record_log = true;

    std::ostringstream events;
    ObserverList observers;
    std::optional<EventLogObserver> event_log;
    if (request_.capture_events) {
      event_log.emplace(&events);
      observers.Add(&*event_log);
      options.observer = &observers;
    }

    auto session = ChaseSession::Create(program->kb, options);
    if (!session.ok()) return Terminal(session.status());

    // The segment's resume source: our own pause checkpoint wins over the
    // caller-supplied one (which only seeds the first segment).
    std::string checkpoint_text;
    {
      std::lock_guard<std::mutex> lock(mu_);
      live_session_ = session->get();
      checkpoint_text = saved_checkpoint_.empty() ? request_.resume_checkpoint
                                                  : saved_checkpoint_;
      if (cancel_requested_) live_session_->Cancel();
    }

    Status run = Status::OK();
    if (checkpoint_text.empty()) {
      run = (*session)->Start();
    } else {
      auto checkpoint = ParseCheckpoint(checkpoint_text);
      if (!checkpoint.ok()) {
        // Already holding mu_: Terminal() would re-lock and deadlock.
        std::lock_guard<std::mutex> lock(mu_);
        live_session_ = nullptr;
        return TerminalLocked(checkpoint.status());
      }
      run = (*session)->Resume(*checkpoint);
    }

    std::lock_guard<std::mutex> lock(mu_);
    live_session_ = nullptr;
    elapsed_seconds_ += stopwatch.ElapsedSeconds();
    if (!run.ok()) return TerminalLocked(run);

    if ((*session)->state() == ChaseSession::State::kPaused) {
      auto checkpoint = (*session)->Checkpoint();
      if (!checkpoint.ok()) return TerminalLocked(checkpoint.status());
      saved_checkpoint_ = SerializeCheckpoint(*checkpoint);
      state_ = "paused";
      // Every preemption boundary is a durability boundary: a SIGKILL
      // after this line resumes from exactly here.
      daemon_->PersistSnapshot(id_, SerializeCheckpointSealed(*checkpoint));
      return Outcome::kPaused;
    }

    if ((*session)->stop_reason() == StopReason::kCancelled &&
        preemptible_ && daemon_->WantShutdownSnapshot()) {
      // Graceful shutdown cancelled this run, not a client: snapshot the
      // stopped prefix instead of recording a cancelled terminal, so the
      // restarted daemon re-admits and resumes it. The session is
      // kDone-with-log, which Checkpoint() accepts.
      auto checkpoint = (*session)->Checkpoint();
      if (checkpoint.ok()) {
        saved_checkpoint_ = SerializeCheckpoint(*checkpoint);
        daemon_->PersistSnapshot(id_,
                                 SerializeCheckpointSealed(*checkpoint));
        state_ = "paused";
        return Outcome::kCompleted;  // drains the scheduler slot cleanly
      }
      // Checkpoint unavailable: fall through to the cancelled terminal.
    }

    if (request_.capture_events) last_events_ = events.str();
    RenderResultLocked(**session, *program);
    state_ = (*session)->stop_reason() == StopReason::kCancelled
                 ? "cancelled"
                 : "done";
    result_.Set("state", Json::String(state_));
    FoldMetricsLocked();
    daemon_->PersistTerminal(id_, state_, result_);
    return Outcome::kCompleted;
  }

  void RequestPause() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!preemptible_ || live_session_ == nullptr) return;
    // FailedPrecondition cannot happen: the session records a log iff
    // preemptible_, and pausing a finished session is a no-op.
    (void)live_session_->Pause();
  }

  void RequestCancel() override {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_requested_ = true;
    if (live_session_ != nullptr) live_session_->Cancel();
  }

  Json StatusJson() const {
    std::lock_guard<std::mutex> lock(mu_);
    Json json = Json::Object();
    json.Set("schema_version", Json::Number(uint64_t{kWireSchemaVersion}));
    json.Set("id", Json::String(id_));
    json.Set("tenant", Json::String(request_.tenant));
    json.Set("state", Json::String(state_));
    json.Set("segments", Json::Number(segments_));
    json.Set("cancel_requested", Json::Bool(cancel_requested_));
    if (request_.options.preflight.auto_variant) {
      json.Set("preflight", PreflightJsonLocked());
    }
    if (state_ == "failed") {
      json.Set("error", Json::String(error_.ToString()));
    }
    return json;
  }

  /// FailedPrecondition while the job is still in flight.
  StatusOr<Json> ResultJson() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == "failed") {
      return ErrorJson(error_);
    }
    if (!has_result_) {
      return Status::FailedPrecondition("job " + id_ + " is " + state_ +
                                        "; the result exists once it is "
                                        "done or cancelled");
    }
    return result_;
  }

  bool failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_ == "failed";
  }

 private:
  /// Marks the job failed; both overloads return kFailed for RunSegment.
  Outcome Terminal(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    return TerminalLocked(status);
  }
  Outcome TerminalLocked(const Status& status) {
    error_ = status;
    state_ = "failed";
    daemon_->PersistFailed(id_, status);
    return Outcome::kFailed;
  }

  /// Renders the terminal payload. Holds mu_; the program (and its
  /// vocabulary, which the printed atoms reference) is alive only for this
  /// call, so everything is rendered to strings now.
  void RenderResultLocked(ChaseSession& session, const ParsedProgram& program);
  void FoldMetricsLocked();

  /// The --variant=auto provenance payload for status and result bodies.
  Json PreflightJsonLocked() const {
    Json preflight = Json::Object();
    preflight.Set("resolved", Json::Bool(request_.options.preflight.resolved));
    if (request_.options.preflight.resolved) {
      preflight.Set("variant",
                    Json::String(ChaseVariantName(request_.options.variant)));
      preflight.Set("verdict",
                    Json::String(TerminationClassName(
                        static_cast<TerminationClass>(
                            request_.options.preflight.verdict))));
      if (!preflight_summary_.empty()) {
        preflight.Set("summary", Json::String(preflight_summary_));
      }
    }
    return preflight;
  }

  mutable std::mutex mu_;
  const std::string id_;
  JobRequest request_;
  ChaseDaemon* daemon_;
  bool preemptible_ = false;

  std::string state_ = "queued";  // queued|running|paused|done|cancelled|failed
  bool cancel_requested_ = false;
  uint64_t segments_ = 0;
  double elapsed_seconds_ = 0;
  std::string saved_checkpoint_;
  std::string last_events_;
  std::string preflight_summary_;
  ChaseSession* live_session_ = nullptr;

  Status error_;
  Json result_;
  bool has_result_ = false;
};

void ChaseDaemon::ChaseJob::RenderResultLocked(ChaseSession& session,
                                               const ParsedProgram& program) {
  const ChaseResult& run = session.Result();
  const KnowledgeBase& kb = program.kb;
  const AtomSet& instance = run.derivation.Last();

  // CLI-identical text first — the smoke gate diffs this against the CLI's
  // stdout (timings normalized), so every byte matters.
  std::string text;
  text += Sprintf("program: %zu facts, %zu rules, %zu queries\n",
                  kb.facts.size(), kb.rules.size(), program.queries.size());
  if (request_.options.preflight.auto_variant &&
      !preflight_summary_.empty()) {
    // Mirrors the CLI's --variant=auto output (the smoke gate diffs auto
    // jobs too; explicit-variant jobs never print this line).
    text += Sprintf("preflight: %s\n", preflight_summary_.c_str());
  }
  text += Sprintf(
      "%s chase: %zu steps in %zu rounds, %.3fs, stop: %s; |result| = %zu\n",
      ChaseVariantName(request_.options.variant), run.steps, run.rounds,
      elapsed_seconds_, StopReasonName(run.stop_reason), instance.size());

  Json queries = Json::Array();
  for (size_t q = 0; q < program.queries.size(); ++q) {
    const ParsedQuery& query = program.queries[q];
    Json entry = Json::Object();
    entry.Set("query", Json::String(PrintQuery(query, *kb.vocab)));
    if (query.answer_vars.empty()) {
      bool entailed = ExistsHomomorphism(query.atoms, instance);
      const char* certainty =
          run.terminated ? "" : (entailed ? "" : " (within budget)");
      text += Sprintf("query %zu: %-40s -> %s%s\n", q + 1,
                      PrintQuery(query, *kb.vocab).c_str(),
                      entailed ? "entailed" : "not entailed", certainty);
      entry.Set("entailed", Json::Bool(entailed));
      entry.Set("certain", Json::Bool(run.terminated || entailed));
    } else {
      AnswerOptions answer_options;
      answer_options.ground_only = true;
      auto answers = AnswerQuery(instance, query.atoms, query.answer_vars,
                                 answer_options);
      text += Sprintf("query %zu: %-40s -> %zu certain answer(s)\n", q + 1,
                      PrintQuery(query, *kb.vocab).c_str(), answers.size());
      Json tuples = Json::Array();
      for (const auto& tuple : answers) {
        text += "    (";
        Json rendered = Json::Array();
        for (size_t i = 0; i < tuple.size(); ++i) {
          if (i > 0) text += ", ";
          text += kb.vocab->TermName(tuple[i]);
          rendered.Append(Json::String(kb.vocab->TermName(tuple[i])));
        }
        text += ")\n";
        tuples.Append(std::move(rendered));
      }
      entry.Set("answers", std::move(tuples));
    }
    queries.Append(std::move(entry));
  }

  result_ = Json::Object();
  result_.Set("schema_version", Json::Number(uint64_t{kWireSchemaVersion}));
  result_.Set("id", Json::String(id_));
  result_.Set("tenant", Json::String(request_.tenant));
  result_.Set("state", Json::String("done"));  // overwritten by the caller
  result_.Set("stop_reason",
              Json::String(StopReasonName(run.stop_reason)));
  result_.Set("terminated", Json::Bool(run.terminated));
  result_.Set("steps", Json::Number(uint64_t{run.steps}));
  result_.Set("rounds", Json::Number(uint64_t{run.rounds}));
  result_.Set("segments", Json::Number(segments_));
  result_.Set("elapsed_seconds", Json::Number(elapsed_seconds_));
  Json program_info = Json::Object();
  program_info.Set("facts", Json::Number(uint64_t{kb.facts.size()}));
  program_info.Set("rules", Json::Number(uint64_t{kb.rules.size()}));
  program_info.Set("queries", Json::Number(uint64_t{program.queries.size()}));
  result_.Set("program", std::move(program_info));
  result_.Set("instance_size", Json::Number(uint64_t{instance.size()}));
  // Hex string: ContentHash spans all 64 bits, which double cannot carry.
  result_.Set("instance_hash",
              Json::String(Sprintf("%016" PRIx64, instance.ContentHash())));
  result_.Set("queries", std::move(queries));
  if (request_.options.preflight.auto_variant) {
    result_.Set("preflight", PreflightJsonLocked());
  }
  result_.Set("text", Json::String(text));
  if (request_.capture_events) {
    // (Filled by RunSegment's capture; a resumed segment re-emits the full
    // stream, so the last segment's capture is the complete one.)
    result_.Set("events", Json::String(last_events_));
  }
  if (request_.return_checkpoint) {
    // Submission rejected return_checkpoint on unrecordable jobs, so the
    // run was executed with the resume log on — mirror that here.
    ChaseOptions recorded = request_.options;
    recorded.resume.record_log = true;
    result_.Set("checkpoint", Json::String(SerializeCheckpoint(
                                  MakeCheckpoint(kb, recorded, run))));
  }
  has_result_ = true;
}

void ChaseDaemon::ChaseJob::FoldMetricsLocked() {
  MetricsRegistry job_metrics;
  job_metrics.GetCounter("service.jobs.steps")
      ->Increment(static_cast<uint64_t>(result_.Get("steps").number_value()));
  job_metrics.GetCounter("service.jobs.rounds")
      ->Increment(static_cast<uint64_t>(result_.Get("rounds").number_value()));
  job_metrics.GetCounter("service.jobs.segments")->Increment(segments_);
  job_metrics.GetHistogram("service.job.steps")
      ->Observe(result_.Get("steps").number_value());
  job_metrics.GetHistogram("service.job.elapsed_seconds")
      ->Observe(elapsed_seconds_);
  job_metrics.GetHistogram("service.job.instance_size")
      ->Observe(result_.Get("instance_size").number_value());
  daemon_->FoldJobMetrics(job_metrics);
}

ChaseDaemon::ChaseDaemon(const DaemonOptions& options)
    : options_(options),
      scheduler_([&options] {
        JobScheduler::Options scheduler_options;
        scheduler_options.workers = options.workers;
        scheduler_options.per_tenant_quota = options.per_tenant_quota;
        scheduler_options.preempt_after_ms = options.preempt_after_ms;
        return scheduler_options;
      }()) {}

ChaseDaemon::~ChaseDaemon() { Stop(); }

Status ChaseDaemon::Start() {
  start_time_ = std::chrono::steady_clock::now();
  if (!options_.state_dir.empty()) {
    JobStoreOptions store_options;
    store_options.state_dir = options_.state_dir;
    auto store = JobStore::Open(store_options);
    if (store.ok()) {
      store_ = std::move(*store);
    } else {
      // Unusable state dir: degrade to the in-memory mode and say so via
      // health rather than refusing to serve.
      store_open_error_ = store.status().message();
    }
  }
  TWCHASE_RETURN_IF_ERROR(scheduler_.Start());
  if (store_ != nullptr) RecoverFromStore();
  Status http = server_.Start(
      options_.port,
      [this](const HttpRequest& request) { return Handle(request); },
      options_.http_threads, options_.http_io_timeout_ms);
  if (!http.ok()) scheduler_.Stop();
  return http;
}

void ChaseDaemon::Stop() {
  // The flag flips the meaning of the cancellations Stop() is about to
  // issue: with a healthy store, a cancelled-by-shutdown job checkpoints
  // and stays resumable instead of landing in "cancelled".
  shutting_down_.store(true);
  server_.Stop();     // no new submissions
  scheduler_.Stop();  // cancel + drain everything admitted
}

bool ChaseDaemon::WantShutdownSnapshot() const {
  return shutting_down_.load() && store_ != nullptr && store_->healthy();
}

std::string ChaseDaemon::PersistenceStatus() const {
  if (options_.state_dir.empty()) return "disabled";
  if (store_ == nullptr) return "degraded:" + store_open_error_;
  if (!store_->healthy()) return "degraded:" + store_->degraded_reason();
  return "durable";
}

void ChaseDaemon::PersistSnapshot(const std::string& id,
                                  const std::string& sealed) {
  if (store_ != nullptr) (void)store_->WriteSnapshot(id, sealed);
}

void ChaseDaemon::PersistTerminal(const std::string& id,
                                  const std::string& state,
                                  const Json& result) {
  if (store_ != nullptr) (void)store_->AppendTerminal(id, state, result);
}

void ChaseDaemon::PersistFailed(const std::string& id, const Status& error) {
  if (store_ != nullptr) {
    (void)store_->AppendFailed(id, StatusCodeName(error.code()),
                               error.message());
  }
}

void ChaseDaemon::RecoverFromStore() {
  std::vector<RecoveredJob> recovered = store_->TakeRecovered();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    // Ids never collide with anything ever admitted, even tombstoned.
    next_job_number_ = store_->max_job_number() + 1;
  }
  for (RecoveredJob& record : recovered) {
    if (record.terminal) {
      auto job = ChaseJob::Recovered(this, record);
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        jobs_.emplace(record.id, std::move(job));
      }
      OnJobFinished(record.id);  // retention applies to recovered jobs too
      continue;
    }

    // Interrupted mid-run: validate program and snapshot, then resume
    // through the front door. Anything that does not check out becomes a
    // structured, durable terminal failure — never a silent drop.
    Status unrecoverable = Status::OK();
    std::string resume_text;
    std::string preflight_summary;
    auto program = ParseProgram(record.request.program);
    if (!program.ok()) {
      unrecoverable = Status::FailedPrecondition(
          "unrecoverable after restart: program re-parse failed: " +
          program.status().message());
    } else if (ProgramFingerprint(program->kb) != record.program_fingerprint) {
      unrecoverable = Status::FailedPrecondition(
          "unrecoverable after restart: program fingerprint mismatch "
          "(manifest admit record vs re-parsed program)");
    } else {
      // The admit record stores --variant=auto unresolved; resolve it here,
      // against the re-parsed program, before any fingerprint involving the
      // options is computed. A snapshot taken under a different
      // classification then fails the fingerprint check below — resume after
      // a re-classification change is rejected, never silently continued
      // under another variant.
      if (record.request.options.preflight.auto_variant &&
          !record.request.options.preflight.resolved) {
        auto report = ResolveAutoVariant(program->kb, PreflightOptions{},
                                         &record.request.options);
        if (!report.ok()) {
          unrecoverable = Status::FailedPrecondition(
              "unrecoverable after restart: preflight resolution failed: " +
              report.status().message());
        } else {
          preflight_summary = report->Summary();
        }
      }
      std::string sealed;
      Status snapshot = unrecoverable.ok()
                            ? store_->ReadSnapshot(record.id, &sealed)
                            : Status::NotFound("preflight resolution failed");
      if (snapshot.ok()) {
        auto checkpoint = ParseSealedCheckpoint(sealed);
        if (!checkpoint.ok()) {
          unrecoverable = Status::FailedPrecondition(
              "unrecoverable after restart: checkpoint snapshot invalid: " +
              checkpoint.status().message());
        } else {
          ChaseOptions recorded = record.request.options;
          recorded.resume.record_log = true;
          if (checkpoint->program_fingerprint !=
              CheckpointFingerprint(program->kb, recorded)) {
            unrecoverable = Status::FailedPrecondition(
                "unrecoverable after restart: checkpoint fingerprint "
                "mismatch (snapshot vs program/backend configuration)");
          } else {
            resume_text = SerializeCheckpoint(*checkpoint);
          }
        }
      } else if (snapshot.code() != StatusCode::kNotFound) {
        unrecoverable = Status::FailedPrecondition(
            "unrecoverable after restart: checkpoint snapshot unreadable: " +
            snapshot.message());
      }
      // NotFound: admitted but never checkpointed — restart from the
      // original submission (including its own resume_checkpoint, if any).
    }

    auto job = std::make_shared<ChaseJob>(record.id, record.request, this);
    if (unrecoverable.ok() && !preflight_summary.empty()) {
      job->SeedResolvedPreflight(record.request.options,
                                 std::move(preflight_summary));
    }
    if (unrecoverable.ok() && !resume_text.empty()) {
      job->SeedResumeCheckpoint(std::move(resume_text));
    }
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      jobs_.emplace(record.id, job);
    }
    if (unrecoverable.ok()) {
      const std::string id = record.id;
      Status admitted = scheduler_.Submit(
          job->tenant(), job,
          [this, id](PreemptibleJob::Outcome) { OnJobFinished(id); });
      if (!admitted.ok()) {
        unrecoverable = Status::FailedPrecondition(
            "unrecoverable after restart: re-admission rejected: " +
            admitted.message());
      }
    }
    if (!unrecoverable.ok()) {
      job->MarkUnrecoverable(unrecoverable);
      (void)store_->AppendFailed(record.id,
                                 StatusCodeName(unrecoverable.code()),
                                 unrecoverable.message());
      OnJobFinished(record.id);
    }
  }
}

Json ChaseDaemon::MetricsJson() const {
  Json root = Json::Object();
  root.Set("schema_version", Json::Number(uint64_t{kWireSchemaVersion}));
  JobScheduler::Stats stats = scheduler_.GetStats();
  Json scheduler = Json::Object();
  scheduler.Set("admitted", Json::Number(stats.admitted));
  scheduler.Set("rejected", Json::Number(stats.rejected));
  scheduler.Set("completed", Json::Number(stats.completed));
  scheduler.Set("failed", Json::Number(stats.failed));
  scheduler.Set("preemptions", Json::Number(stats.preemptions));
  scheduler.Set("queued_now", Json::Number(uint64_t{stats.queued_now}));
  scheduler.Set("running_now", Json::Number(uint64_t{stats.running_now}));
  root.Set("scheduler", std::move(scheduler));
  {
    std::lock_guard<std::mutex> lock(fleet_mu_);
    // The registry renders itself; round-trip through the parser to embed
    // it as a structured member instead of a string.
    auto fleet = Json::Parse(fleet_metrics_.ToJson(0));
    root.Set("fleet", fleet.ok() ? std::move(*fleet) : Json::Object());
  }
  return root;
}

void ChaseDaemon::FoldJobMetrics(const MetricsRegistry& job_metrics) {
  std::lock_guard<std::mutex> lock(fleet_mu_);
  fleet_metrics_.MergeFrom(job_metrics);
}

void ChaseDaemon::OnJobFinished(const std::string& id) {
  // During shutdown the drain completes jobs that are really interrupted
  // (snapshot-at-cancel); evicting or tombstoning them here would destroy
  // exactly the state the restart needs.
  if (shutting_down_.load()) return;
  std::vector<std::string> evicted;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    finished_order_.push_back(id);
    if (options_.finished_job_retention != 0) {
      while (finished_order_.size() > options_.finished_job_retention) {
        // Oldest-finished first; in-flight jobs are never in
        // finished_order_, so running work is untouched. Handlers holding
        // the shared_ptr keep an evicted job alive for the duration of
        // their request.
        evicted.push_back(finished_order_.front());
        jobs_.erase(finished_order_.front());
        finished_order_.pop_front();
      }
    }
  }
  if (store_ != nullptr) {
    for (const std::string& old : evicted) (void)store_->AppendTombstone(old);
  }
}

std::shared_ptr<ChaseDaemon::ChaseJob> ChaseDaemon::FindJob(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

HttpResponse ChaseDaemon::Handle(const HttpRequest& request) {
  const std::string path = request.path();
  if (path == "/v1/healthz" && request.method == "GET") {
    return HandleHealthz();
  }
  if (path == "/v1/metrics" && request.method == "GET") {
    return JsonResponse(200, MetricsJson());
  }
  if (path == "/v1/jobs") {
    if (request.method != "POST") {
      HttpResponse response = JsonResponse(
          405, ErrorJson(Status::InvalidArgument("use POST to submit a job")));
      return response;
    }
    return HandleSubmit(request);
  }
  const std::string jobs_prefix = "/v1/jobs/";
  if (path.rfind(jobs_prefix, 0) == 0) {
    std::string rest = path.substr(jobs_prefix.size());
    const std::string result_suffix = "/result";
    bool want_result = false;
    if (rest.size() > result_suffix.size() &&
        rest.compare(rest.size() - result_suffix.size(), result_suffix.size(),
                     result_suffix) == 0) {
      want_result = true;
      rest = rest.substr(0, rest.size() - result_suffix.size());
    }
    if (rest.empty() || rest.find('/') != std::string::npos) {
      return StatusResponse(Status::NotFound("no such route: " + path));
    }
    if (want_result && request.method == "GET") return HandleJobResult(rest);
    if (!want_result && request.method == "GET") return HandleJobStatus(rest);
    if (!want_result && request.method == "DELETE") {
      return HandleJobCancel(rest);
    }
    return JsonResponse(405, ErrorJson(Status::InvalidArgument(
                                 "method " + request.method +
                                 " not supported on " + path)));
  }
  return StatusResponse(Status::NotFound("no such route: " + path));
}

HttpResponse ChaseDaemon::HandleHealthz() {
  Json body = Json::Object();
  body.Set("schema_version", Json::Number(uint64_t{kWireSchemaVersion}));
  body.Set("status", Json::String("ok"));
  uint64_t uptime = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  body.Set("uptime_seconds", Json::Number(uptime));
  body.Set("jobs_in_flight", Json::Number(uint64_t{scheduler_.InFlight()}));
  // Job counts by state across the whole retained table.
  const char* kStates[] = {"queued", "running", "paused",
                           "done",   "cancelled", "failed"};
  size_t counts[6] = {};
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (const auto& [id, job] : jobs_) {
      std::string state = job->state();
      for (size_t i = 0; i < 6; ++i) {
        if (state == kStates[i]) {
          ++counts[i];
          break;
        }
      }
    }
  }
  Json jobs = Json::Object();
  for (size_t i = 0; i < 6; ++i) {
    jobs.Set(kStates[i], Json::Number(uint64_t{counts[i]}));
  }
  body.Set("jobs", std::move(jobs));
  body.Set("persistence", Json::String(PersistenceStatus()));
  return JsonResponse(200, body);
}

HttpResponse ChaseDaemon::HandleSubmit(const HttpRequest& request) {
  auto body = Json::Parse(request.body);
  if (!body.ok()) return StatusResponse(body.status());

  JobRequest job_request;
  std::vector<FieldError> errors;
  Status parsed = JobRequestFromJson(*body, &job_request, &errors);
  if (!parsed.ok()) return StatusResponse(parsed, errors);

  // Reject inconsistent options now, as a structured 400, instead of a
  // failed job later. The message's leading field path becomes the error's
  // field entry. An unresolved --variant=auto is legal HERE (the job's
  // first segment resolves it before the engine validates again), so that
  // one check is masked for the submission-time pass.
  ChaseOptions submitted = job_request.options;
  if (submitted.preflight.auto_variant) submitted.preflight.resolved = true;
  Status valid = submitted.Validate();
  if (!valid.ok()) {
    return StatusResponse(valid, {FieldErrorFromValidate(valid, "options")});
  }
  if (job_request.return_checkpoint &&
      job_request.options.core.incremental_core) {
    Status status = Status::InvalidArgument(
        "return_checkpoint requires a recordable run "
        "(options.core.incremental_core must be false)");
    return StatusResponse(status,
                          {{"return_checkpoint", status.message()}});
  }

  // Syntax-check the program up front (the job re-parses per segment).
  auto program = ParseProgram(job_request.program);
  if (!program.ok()) {
    Status status = Status::InvalidArgument("program parse error: " +
                                            program.status().message());
    return StatusResponse(status,
                          {{"program", program.status().message()}});
  }
  if (!job_request.resume_checkpoint.empty()) {
    auto checkpoint = ParseCheckpoint(job_request.resume_checkpoint);
    if (!checkpoint.ok()) {
      return StatusResponse(
          checkpoint.status(),
          {{"resume_checkpoint", checkpoint.status().message()}});
    }
  }

  std::string id;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    id = "j-" + std::to_string(next_job_number_++);
  }
  if (store_ != nullptr) {
    // Durable before acknowledged: the admit record hits the disk before
    // the scheduler (and so the client) ever sees the job. A persistence
    // failure degrades the store; the job still runs in memory.
    (void)store_->AppendAdmit(id, job_request, ProgramFingerprint(program->kb));
  }
  auto job = std::make_shared<ChaseJob>(id, std::move(job_request), this);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.emplace(id, job);
  }

  Status admitted = scheduler_.Submit(
      job->tenant(), job,
      [this, id](PreemptibleJob::Outcome) { OnJobFinished(id); });
  if (!admitted.ok()) {
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      jobs_.erase(id);
    }
    // The admit record is already durable; without the tombstone a restart
    // would resurrect a job the client was told never got in.
    if (store_ != nullptr) (void)store_->AppendTombstone(id);
    return StatusResponse(admitted);  // quota exhaustion → 429
  }

  Json response = Json::Object();
  response.Set("schema_version", Json::Number(uint64_t{kWireSchemaVersion}));
  Json job_info = Json::Object();
  job_info.Set("id", Json::String(id));
  job_info.Set("tenant", Json::String(job->tenant()));
  job_info.Set("state", Json::String("queued"));
  response.Set("job", std::move(job_info));
  return JsonResponse(202, response);
}

HttpResponse ChaseDaemon::HandleJobStatus(const std::string& id) {
  auto job = FindJob(id);
  if (job == nullptr) {
    return StatusResponse(Status::NotFound("no such job: " + id));
  }
  return JsonResponse(200, job->StatusJson());
}

HttpResponse ChaseDaemon::HandleJobResult(const std::string& id) {
  auto job = FindJob(id);
  if (job == nullptr) {
    return StatusResponse(Status::NotFound("no such job: " + id));
  }
  auto result = job->ResultJson();
  if (!result.ok()) return StatusResponse(result.status());
  // A failed job's "result" is its error payload with the error's own code.
  if (job->failed()) {
    return JsonResponse(500, *result);
  }
  return JsonResponse(200, *result);
}

HttpResponse ChaseDaemon::HandleJobCancel(const std::string& id) {
  auto job = FindJob(id);
  if (job == nullptr) {
    return StatusResponse(Status::NotFound("no such job: " + id));
  }
  if (job->terminal()) {
    // Nothing left to cancel: DELETE on a finished job evicts its retained
    // outcome (and tombstones the durable store), after which the id
    // answers 404.
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      jobs_.erase(id);
      for (auto it = finished_order_.begin(); it != finished_order_.end();
           ++it) {
        if (*it == id) {
          finished_order_.erase(it);
          break;
        }
      }
    }
    if (store_ != nullptr) (void)store_->AppendTombstone(id);
    Json body = Json::Object();
    body.Set("schema_version", Json::Number(uint64_t{kWireSchemaVersion}));
    body.Set("id", Json::String(id));
    body.Set("deleted", Json::Bool(true));
    return JsonResponse(200, body);
  }
  job->RequestCancel();
  return JsonResponse(200, job->StatusJson());
}

}  // namespace twchase
