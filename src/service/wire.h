// The daemon's versioned wire schemas: ChaseOptions ⇄ JSON, job submission
// payloads, and structured error rendering.
//
// Schema versioning: every request and response object carries
// "schema_version"; kWireSchemaVersion is the only version this build
// speaks, and a request with a different (or missing) version is rejected
// up front with a structured 400 rather than mis-parsed. The checkpoint
// text format has its own version header (core/checkpoint.h) and rides
// inside job payloads as an opaque string.
//
// Structured errors: invalid payloads come back as
//   {"error": {"code": "InvalidArgument", "message": ...,
//              "fields": [{"path": "options.core.core_every",
//                          "message": "must be positive"}]}}
// The field path is exact — the parser threads its position through every
// descent, and ChaseOptions::Validate() messages lead with the nested field
// path (limits. / core. / ...) precisely so this layer can lift them into
// the same shape without guessing.
#ifndef TWCHASE_SERVICE_WIRE_H_
#define TWCHASE_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/chase.h"
#include "service/json.h"
#include "util/status.h"

namespace twchase {

/// The one schema version this build reads and writes.
inline constexpr uint32_t kWireSchemaVersion = 1;

/// One field-level problem of a rejected payload.
struct FieldError {
  std::string path;     // dotted, from the payload root: "options.limits.max_steps"
  std::string message;  // what is wrong with it, path not repeated
};

/// Renders `options` as the wire object: nested groups mirrored one-to-one
/// (variant, limits{...}, core{...}, delta{...}, plan{...}, parallel{...},
/// resume{...}, datalog_first, keep_snapshots). Deterministic member order;
/// limits.deadline_ms is omitted when unset. Round-trips exactly through
/// ChaseOptionsFromJson.
Json ChaseOptionsToJson(const ChaseOptions& options);

/// Parses the wire object produced by ChaseOptionsToJson back into
/// `options`, strictly: unknown keys, wrong types, non-integral or negative
/// counts are InvalidArgument with `error` filled (path rooted at
/// `path_prefix`, e.g. "options"). Absent groups/keys keep the defaults
/// already in `*options`, so a payload may be sparse. Does NOT run
/// Validate() — the daemon validates via ChaseSession::Create and lifts
/// those messages with FieldErrorFromValidate.
Status ChaseOptionsFromJson(const Json& json, const std::string& path_prefix,
                            ChaseOptions* options, FieldError* error);

/// Splits a ChaseOptions::Validate() message into a FieldError: the leading
/// dotted field path (when the message starts with one) becomes the path,
/// prefixed with `path_prefix`; otherwise the whole message lands in
/// `message` with `path_prefix` alone as the path.
FieldError FieldErrorFromValidate(const Status& status,
                                  const std::string& path_prefix);

/// "oblivious" | "semi-oblivious" (or "semi") | "restricted" | "frugal" |
/// "core" — the names ChaseVariantName prints and the CLI accepts.
bool ParseChaseVariant(const std::string& name, ChaseVariant* out);

/// One job submission, as POSTed to /v1/jobs.
struct JobRequest {
  std::string tenant;   // required, non-empty quota bucket
  std::string program;  // required, twchase program text (facts, rules, queries)
  ChaseOptions options;

  /// Resume a checkpointed run: the serialized checkpoint text (opaque at
  /// this layer, parsed by core/checkpoint.h). Empty = fresh run. The
  /// program must be the same text the checkpoint was recorded against.
  std::string resume_checkpoint;

  /// Include the full observer event stream (one JSON object per line, the
  /// CLI's --events-out format) in the job result. Off by default — the
  /// stream grows with the run; the bit-identity tests turn it on.
  bool capture_events = false;

  /// Include the serialized checkpoint of the stopped run in the result
  /// (requires options.resume.record_log, like the CLI's --checkpoint-out).
  bool return_checkpoint = false;
};

/// Renders `request` as a /v1/jobs submission body (schema_version
/// included). Exact inverse of JobRequestFromJson — the durable job store
/// persists admitted jobs in this shape so recovery re-admits them through
/// the same strict parser a client submission goes through.
Json JobRequestToJson(const JobRequest& request);

/// Parses and checks a /v1/jobs body: schema_version first, then the
/// required fields and the options group. InvalidArgument with the field
/// errors on any problem. Defaults inside `request->options` are the
/// library defaults (sequential, core variant is NOT defaulted — the wire
/// default is ChaseOptions{}'s restricted, stated in the schema).
Status JobRequestFromJson(const Json& json, JobRequest* request,
                          std::vector<FieldError>* errors);

/// The HTTP status a Status maps to: InvalidArgument→400, NotFound→404,
/// FailedPrecondition→409, ResourceExhausted→429, everything else→500.
int HttpStatusForStatus(const Status& status);

/// {"schema_version":1,"error":{"code":...,"message":...[,"fields":[...]]}}
Json ErrorJson(const Status& status, const std::vector<FieldError>& fields = {});

}  // namespace twchase

#endif  // TWCHASE_SERVICE_WIRE_H_
