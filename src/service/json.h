// A minimal, self-contained JSON value with a strict parser and a
// deterministic writer — the wire format of the chase daemon (service/).
//
// Deliberately tiny: the daemon's payloads are small, hand-shaped objects
// (job submissions, status, options), so this is a plain recursive-descent
// parser over std::string_view and a tree of tagged values, with object
// members kept in insertion order so serialized payloads are stable and
// diffable. No external dependency, no streaming, no SAX.
//
// Numbers are stored as double. Every count the service exchanges (steps,
// rounds, sizes) is far below 2^53, so round-tripping through double is
// exact; the writer prints integral doubles without a fraction.
//
// Parsing untrusted bytes never aborts: malformed input, depth bombs and
// truncated documents come back as Status (the HTTP layer maps them to 400).
#ifndef TWCHASE_SERVICE_JSON_H_
#define TWCHASE_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace twchase {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  static Json Null() { return Json(); }
  static Json Bool(bool value);
  static Json Number(double value);
  static Json Number(uint64_t value) {
    return Number(static_cast<double>(value));
  }
  static Json String(std::string value);
  static Json Array();
  static Json Object();

  /// Strict parse of one JSON document (trailing non-space input is an
  /// error). InvalidArgument with an offset-annotated message on malformed
  /// input; nesting deeper than 64 levels is rejected.
  static StatusOr<Json> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  /// Array access.
  const std::vector<Json>& items() const { return items_; }
  void Append(Json value);

  /// Object access, insertion-ordered. Get returns null for a missing key
  /// (distinguish with Has when null is a legal value).
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  bool Has(std::string_view key) const;
  const Json& Get(std::string_view key) const;
  /// Insert-or-overwrite, preserving first-insertion order.
  void Set(std::string_view key, Json value);

  /// Serialises the value. indent < 0 renders compact (one line); indent
  /// >= 0 pretty-prints with that base indentation, two spaces per level.
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes `text` as the body of a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view text);

}  // namespace twchase

#endif  // TWCHASE_SERVICE_JSON_H_
