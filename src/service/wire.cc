#include "service/wire.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <initializer_list>

namespace twchase {
namespace {

/// Strict-parse helper threading the dotted path through every descent.
/// The first problem wins: Fail stores it and every later check no-ops.
struct Reader {
  std::string path;
  FieldError* error;
  bool failed = false;

  Status Fail(const std::string& at, const std::string& message) {
    if (!failed && error != nullptr) {
      error->path = at;
      error->message = message;
    }
    failed = true;
    return Status::InvalidArgument(at + ": " + message);
  }

  std::string Join(const std::string& key) const {
    return path.empty() ? key : path + "." + key;
  }

  Status ReadBool(const Json& object, const std::string& key, bool* out) {
    if (!object.Has(key)) return Status::OK();
    const Json& value = object.Get(key);
    if (!value.is_bool()) return Fail(Join(key), "must be a boolean");
    *out = value.bool_value();
    return Status::OK();
  }

  Status ReadCount(const Json& object, const std::string& key, size_t* out) {
    if (!object.Has(key)) return Status::OK();
    const Json& value = object.Get(key);
    if (!value.is_number()) {
      return Fail(Join(key), "must be a non-negative integer");
    }
    double number = value.number_value();
    if (number < 0 || number != std::floor(number) || number > 9.0e15) {
      return Fail(Join(key), "must be a non-negative integer");
    }
    *out = static_cast<size_t>(number);
    return Status::OK();
  }

  Status ReadString(const Json& object, const std::string& key,
                    std::string* out) {
    if (!object.Has(key)) return Status::OK();
    const Json& value = object.Get(key);
    if (!value.is_string()) return Fail(Join(key), "must be a string");
    *out = value.string_value();
    return Status::OK();
  }

  /// Rejects keys outside `allowed` — a misspelt option must not be
  /// silently ignored (it would run the job with a default the caller did
  /// not ask for).
  Status CheckKeys(const Json& object,
                   std::initializer_list<const char*> allowed) {
    for (const auto& [key, value] : object.members()) {
      bool known = false;
      for (const char* name : allowed) {
        if (key == name) {
          known = true;
          break;
        }
      }
      if (!known) return Fail(Join(key), "unknown field");
    }
    return Status::OK();
  }

  Status RequireObject(const Json& object, const std::string& key,
                       const Json** out) {
    *out = nullptr;
    if (!object.Has(key)) return Status::OK();
    const Json& value = object.Get(key);
    if (!value.is_object()) return Fail(Join(key), "must be an object");
    *out = &value;
    return Status::OK();
  }
};

Status ReadOptionsInto(Reader& r, const Json& json, ChaseOptions* options) {
  if (!json.is_object()) return r.Fail(r.path, "must be an object");
  TWCHASE_RETURN_IF_ERROR(r.CheckKeys(
      json, {"variant", "datalog_first", "keep_snapshots", "limits", "core",
             "delta", "plan", "parallel", "resume", "preflight"}));

  if (json.Has("variant")) {
    const Json& value = json.Get("variant");
    // "auto" defers the choice to the termination preflight: the daemon
    // resolves it against the parsed program before the engine sees the
    // options (ChaseOptions::Validate rejects an unresolved auto).
    if (value.is_string() && value.string_value() == "auto") {
      options->preflight.auto_variant = true;
    } else if (!value.is_string() ||
               !ParseChaseVariant(value.string_value(), &options->variant)) {
      return r.Fail(r.Join("variant"),
                    "must be one of \"oblivious\", \"semi-oblivious\", "
                    "\"restricted\", \"frugal\", \"core\", \"auto\"");
    }
  }
  TWCHASE_RETURN_IF_ERROR(
      r.ReadBool(json, "datalog_first", &options->datalog_first));
  TWCHASE_RETURN_IF_ERROR(
      r.ReadBool(json, "keep_snapshots", &options->keep_snapshots));

  const std::string base = r.path;
  const Json* group = nullptr;

  TWCHASE_RETURN_IF_ERROR(r.RequireObject(json, "limits", &group));
  if (group != nullptr) {
    r.path = r.Join("limits");
    TWCHASE_RETURN_IF_ERROR(r.CheckKeys(
        *group, {"max_steps", "max_instance_size", "deadline_ms",
                 "memory_budget_bytes"}));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadCount(*group, "max_steps", &options->limits.max_steps));
    TWCHASE_RETURN_IF_ERROR(r.ReadCount(*group, "max_instance_size",
                                        &options->limits.max_instance_size));
    size_t deadline = 0;
    if (group->Has("deadline_ms")) {
      TWCHASE_RETURN_IF_ERROR(r.ReadCount(*group, "deadline_ms", &deadline));
      options->limits.deadline_ms = static_cast<uint64_t>(deadline);
    }
    TWCHASE_RETURN_IF_ERROR(r.ReadCount(*group, "memory_budget_bytes",
                                        &options->limits.memory_budget_bytes));
    r.path = base;
  }

  TWCHASE_RETURN_IF_ERROR(r.RequireObject(json, "core", &group));
  if (group != nullptr) {
    r.path = r.Join("core");
    TWCHASE_RETURN_IF_ERROR(r.CheckKeys(
        *group, {"core_every", "core_at_round_end", "core_initial",
                 "incremental_core", "dirty_radius"}));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadCount(*group, "core_every", &options->core.core_every));
    TWCHASE_RETURN_IF_ERROR(r.ReadBool(*group, "core_at_round_end",
                                       &options->core.core_at_round_end));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadBool(*group, "core_initial", &options->core.core_initial));
    TWCHASE_RETURN_IF_ERROR(r.ReadBool(*group, "incremental_core",
                                       &options->core.incremental_core));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadCount(*group, "dirty_radius", &options->core.dirty_radius));
    r.path = base;
  }

  TWCHASE_RETURN_IF_ERROR(r.RequireObject(json, "delta", &group));
  if (group != nullptr) {
    r.path = r.Join("delta");
    TWCHASE_RETURN_IF_ERROR(r.CheckKeys(*group, {"enabled"}));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadBool(*group, "enabled", &options->delta.enabled));
    r.path = base;
  }

  TWCHASE_RETURN_IF_ERROR(r.RequireObject(json, "plan", &group));
  if (group != nullptr) {
    r.path = r.Join("plan");
    TWCHASE_RETURN_IF_ERROR(
        r.CheckKeys(*group, {"enabled", "skip_dormant", "core_guard"}));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadBool(*group, "enabled", &options->plan.enabled));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadBool(*group, "skip_dormant", &options->plan.skip_dormant));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadBool(*group, "core_guard", &options->plan.core_guard));
    r.path = base;
  }

  TWCHASE_RETURN_IF_ERROR(r.RequireObject(json, "parallel", &group));
  if (group != nullptr) {
    r.path = r.Join("parallel");
    TWCHASE_RETURN_IF_ERROR(r.CheckKeys(*group, {"threads"}));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadCount(*group, "threads", &options->parallel.threads));
    r.path = base;
  }

  TWCHASE_RETURN_IF_ERROR(r.RequireObject(json, "resume", &group));
  if (group != nullptr) {
    r.path = r.Join("resume");
    TWCHASE_RETURN_IF_ERROR(r.CheckKeys(*group, {"record_log"}));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadBool(*group, "record_log", &options->resume.record_log));
    r.path = base;
  }

  // Preflight provenance group: lets an already-resolved auto decision
  // (concrete variant + verdict) round-trip, e.g. through the durable admit
  // record. Fresh submissions just say "variant": "auto" instead.
  TWCHASE_RETURN_IF_ERROR(r.RequireObject(json, "preflight", &group));
  if (group != nullptr) {
    r.path = r.Join("preflight");
    TWCHASE_RETURN_IF_ERROR(
        r.CheckKeys(*group, {"auto_variant", "resolved", "verdict"}));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadBool(*group, "auto_variant", &options->preflight.auto_variant));
    TWCHASE_RETURN_IF_ERROR(
        r.ReadBool(*group, "resolved", &options->preflight.resolved));
    size_t verdict = options->preflight.verdict;
    TWCHASE_RETURN_IF_ERROR(r.ReadCount(*group, "verdict", &verdict));
    if (verdict > 3) {
      return r.Fail(r.Join("verdict"),
                    "must be a termination class (0=unknown, 1=fes, 2=bts, "
                    "3=core-bts)");
    }
    options->preflight.verdict = static_cast<uint32_t>(verdict);
    r.path = base;
  }
  return Status::OK();
}

}  // namespace

bool ParseChaseVariant(const std::string& name, ChaseVariant* out) {
  if (name == "oblivious") *out = ChaseVariant::kOblivious;
  else if (name == "semi" || name == "semi-oblivious")
    *out = ChaseVariant::kSemiOblivious;
  else if (name == "restricted") *out = ChaseVariant::kRestricted;
  else if (name == "frugal") *out = ChaseVariant::kFrugal;
  else if (name == "core") *out = ChaseVariant::kCore;
  else return false;
  return true;
}

Json ChaseOptionsToJson(const ChaseOptions& options) {
  Json root = Json::Object();
  // An unresolved auto request serializes as "auto" (the concrete variant is
  // meaningless until the preflight runs); a resolved one serializes its
  // pinned variant with the provenance in the "preflight" group below.
  if (options.preflight.auto_variant && !options.preflight.resolved) {
    root.Set("variant", Json::String("auto"));
  } else {
    root.Set("variant", Json::String(ChaseVariantName(options.variant)));
  }
  root.Set("datalog_first", Json::Bool(options.datalog_first));
  root.Set("keep_snapshots", Json::Bool(options.keep_snapshots));

  Json limits = Json::Object();
  limits.Set("max_steps", Json::Number(uint64_t{options.limits.max_steps}));
  limits.Set("max_instance_size",
             Json::Number(uint64_t{options.limits.max_instance_size}));
  if (options.limits.deadline_ms.has_value()) {
    limits.Set("deadline_ms", Json::Number(*options.limits.deadline_ms));
  }
  limits.Set("memory_budget_bytes",
             Json::Number(uint64_t{options.limits.memory_budget_bytes}));
  root.Set("limits", std::move(limits));

  Json core = Json::Object();
  core.Set("core_every", Json::Number(uint64_t{options.core.core_every}));
  core.Set("core_at_round_end", Json::Bool(options.core.core_at_round_end));
  core.Set("core_initial", Json::Bool(options.core.core_initial));
  core.Set("incremental_core", Json::Bool(options.core.incremental_core));
  core.Set("dirty_radius", Json::Number(uint64_t{options.core.dirty_radius}));
  root.Set("core", std::move(core));

  Json delta = Json::Object();
  delta.Set("enabled", Json::Bool(options.delta.enabled));
  root.Set("delta", std::move(delta));

  Json plan = Json::Object();
  plan.Set("enabled", Json::Bool(options.plan.enabled));
  plan.Set("skip_dormant", Json::Bool(options.plan.skip_dormant));
  plan.Set("core_guard", Json::Bool(options.plan.core_guard));
  root.Set("plan", std::move(plan));

  Json parallel = Json::Object();
  parallel.Set("threads", Json::Number(uint64_t{options.parallel.threads}));
  root.Set("parallel", std::move(parallel));

  Json resume = Json::Object();
  resume.Set("record_log", Json::Bool(options.resume.record_log));
  root.Set("resume", std::move(resume));

  if (options.preflight.auto_variant) {
    Json preflight = Json::Object();
    preflight.Set("auto_variant", Json::Bool(true));
    preflight.Set("resolved", Json::Bool(options.preflight.resolved));
    preflight.Set("verdict",
                  Json::Number(uint64_t{options.preflight.verdict}));
    root.Set("preflight", std::move(preflight));
  }
  return root;
}

Status ChaseOptionsFromJson(const Json& json, const std::string& path_prefix,
                            ChaseOptions* options, FieldError* error) {
  Reader reader{path_prefix, error};
  return ReadOptionsInto(reader, json, options);
}

FieldError FieldErrorFromValidate(const Status& status,
                                  const std::string& path_prefix) {
  FieldError out;
  out.path = path_prefix;
  const std::string& message = status.message();
  // A Validate() message leads with the dotted field it concerns
  // ("core.core_every must be ...") — lift it when present.
  size_t space = message.find(' ');
  if (space != std::string::npos && space > 0) {
    const std::string head = message.substr(0, space);
    bool dotted = head.find('.') != std::string::npos;
    for (char c : head) {
      if (!(std::islower(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.')) {
        dotted = false;
        break;
      }
    }
    if (dotted) {
      out.path = path_prefix.empty() ? head : path_prefix + "." + head;
      out.message = message.substr(space + 1);
      return out;
    }
  }
  out.message = message;
  return out;
}

Json JobRequestToJson(const JobRequest& request) {
  Json root = Json::Object();
  root.Set("schema_version", Json::Number(uint64_t{kWireSchemaVersion}));
  root.Set("tenant", Json::String(request.tenant));
  root.Set("program", Json::String(request.program));
  root.Set("options", ChaseOptionsToJson(request.options));
  if (!request.resume_checkpoint.empty()) {
    root.Set("resume_checkpoint", Json::String(request.resume_checkpoint));
  }
  root.Set("capture_events", Json::Bool(request.capture_events));
  root.Set("return_checkpoint", Json::Bool(request.return_checkpoint));
  return root;
}

Status JobRequestFromJson(const Json& json, JobRequest* request,
                          std::vector<FieldError>* errors) {
  FieldError error;
  Reader reader{"", &error};
  auto fail = [&](const Status& status) {
    if (errors != nullptr) errors->push_back(error);
    return status;
  };

  if (!json.is_object()) {
    return fail(reader.Fail("", "request body must be a JSON object"));
  }
  Status keys = reader.CheckKeys(
      json, {"schema_version", "tenant", "program", "options",
             "resume_checkpoint", "capture_events", "return_checkpoint"});
  if (!keys.ok()) return fail(keys);

  if (!json.Has("schema_version")) {
    return fail(reader.Fail("schema_version", "is required"));
  }
  const Json& version = json.Get("schema_version");
  if (!version.is_number() ||
      version.number_value() !=
          static_cast<double>(kWireSchemaVersion)) {
    return fail(reader.Fail(
        "schema_version",
        "unsupported version; this server speaks version " +
            std::to_string(kWireSchemaVersion)));
  }

  Status s = reader.ReadString(json, "tenant", &request->tenant);
  if (!s.ok()) return fail(s);
  if (request->tenant.empty()) {
    return fail(reader.Fail("tenant", "is required and must be non-empty"));
  }
  s = reader.ReadString(json, "program", &request->program);
  if (!s.ok()) return fail(s);
  if (request->program.empty()) {
    return fail(reader.Fail("program", "is required and must be non-empty"));
  }
  s = reader.ReadString(json, "resume_checkpoint",
                        &request->resume_checkpoint);
  if (!s.ok()) return fail(s);
  s = reader.ReadBool(json, "capture_events", &request->capture_events);
  if (!s.ok()) return fail(s);
  s = reader.ReadBool(json, "return_checkpoint", &request->return_checkpoint);
  if (!s.ok()) return fail(s);

  if (json.Has("options")) {
    s = ChaseOptionsFromJson(json.Get("options"), "options",
                             &request->options, &error);
    if (!s.ok()) return fail(s);
  }
  return Status::OK();
}

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kFailedPrecondition: return 409;
    case StatusCode::kResourceExhausted: return 429;
    default: return 500;
  }
}

Json ErrorJson(const Status& status, const std::vector<FieldError>& fields) {
  Json root = Json::Object();
  root.Set("schema_version", Json::Number(uint64_t{kWireSchemaVersion}));
  Json error = Json::Object();
  error.Set("code", Json::String(StatusCodeName(status.code())));
  error.Set("message", Json::String(status.message()));
  if (!fields.empty()) {
    Json list = Json::Array();
    for (const FieldError& field : fields) {
      Json entry = Json::Object();
      entry.Set("path", Json::String(field.path));
      entry.Set("message", Json::String(field.message));
      list.Append(std::move(entry));
    }
    error.Set("fields", std::move(list));
  }
  root.Set("error", std::move(error));
  return root;
}

}  // namespace twchase
