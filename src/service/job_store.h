// Durable job store: the daemon's crash-safe memory.
//
// Layout of a state directory (--state-dir):
//   <dir>/manifest.wal         append-only job manifest
//   <dir>/checkpoints/<id>.ckpt  latest checkpoint snapshot per job
//
// The manifest is a WAL of framed records, one per line:
//   M1 <crc32-hex> <payload-length> <payload>\n
// where the CRC covers exactly the payload bytes. The payload is one
// compact JSON object:
//   {"type":"admit","id":"j-1","fingerprint":"<u64 hex>","job":{...}}
//   {"type":"terminal","id":"j-1","state":"done"|"cancelled","result":{...}}
//   {"type":"failed","id":"j-1","error_code":"...","error_message":"..."}
//   {"type":"tombstone","id":"j-1"}
// The "job" object is a verbatim /v1/jobs submission body, so recovery
// re-admits it through the same strict JobRequestFromJson path a live
// client goes through. Appends are fsynced before the daemon acknowledges
// the job (durable-before-acknowledged).
//
// Replay stops at the first record whose framing, CRC, or schema does not
// check out — everything after a torn tail is discarded and Open()
// truncates the file back to the valid prefix, so one torn append can
// never corrupt earlier history. Tombstones (DELETE, retention eviction)
// mark records dead; when dead records outnumber compact_min_garbage the
// manifest is rewritten atomically from the live set.
//
// Checkpoint snapshots are sealed checkpoint text (CRC/length footer,
// core/checkpoint.h) written with the write-temp → fsync → rename
// discipline, so a reader sees the previous snapshot or the new one,
// never a torn mixture. The store treats snapshot bytes as opaque.
//
// Any filesystem failure latches the store into a degraded state: further
// persistence calls return the latched error without touching the disk,
// and the daemon keeps serving from memory (reported via /v1/healthz).
// Chase results are never affected by persistence failures.
#ifndef TWCHASE_SERVICE_JOB_STORE_H_
#define TWCHASE_SERVICE_JOB_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "service/json.h"
#include "service/wire.h"
#include "util/status.h"

namespace twchase {

struct JobStoreOptions {
  std::string state_dir;

  /// Rewrite the manifest once this many dead records (tombstoned jobs'
  /// admit/terminal lines plus the tombstones themselves) accumulate.
  size_t compact_min_garbage = 64;
};

/// One job reconstructed from the manifest during Open().
struct RecoveredJob {
  std::string id;
  JobRequest request;
  uint64_t program_fingerprint = 0;

  /// True when a terminal or failed record was replayed: the job finished
  /// before the crash and only its retained outcome needs serving.
  bool terminal = false;
  std::string terminal_state;  // "done" | "cancelled" | "failed"
  Json result;                 // terminal record's result object
  std::string error_code;      // failed record's structured error
  std::string error_message;
};

class JobStore {
 public:
  /// Opens (creating if needed) the state directory, replays the manifest,
  /// and truncates any torn tail. Fails when the directory cannot be
  /// created/read — the daemon then degrades to in-memory mode.
  static StatusOr<std::unique_ptr<JobStore>> Open(
      const JobStoreOptions& options);

  ~JobStore();

  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;

  /// The jobs replayed by Open(), in admit order. Call once at startup.
  std::vector<RecoveredJob> TakeRecovered();

  /// Highest N across replayed "j-N" ids (0 when none): the daemon resumes
  /// its id sequence above every id ever admitted, so recovered and new
  /// jobs never collide.
  uint64_t max_job_number() const { return max_job_number_; }

  /// WAL appends. Each is fsynced before returning OK. Once a filesystem
  /// error latches the store degraded, they return the latched error
  /// without touching the disk.
  Status AppendAdmit(const std::string& id, const JobRequest& request,
                     uint64_t program_fingerprint);
  Status AppendTerminal(const std::string& id, const std::string& state,
                        const Json& result);
  Status AppendFailed(const std::string& id, const std::string& error_code,
                      const std::string& error_message);
  /// Tombstones `id`, removes its snapshot, and compacts the manifest when
  /// the garbage threshold is crossed.
  Status AppendTombstone(const std::string& id);

  /// Atomically replaces the job's checkpoint snapshot (opaque bytes; the
  /// daemon passes sealed checkpoint text).
  Status WriteSnapshot(const std::string& id, std::string_view sealed_text);

  /// Reads the job's snapshot. NotFound when none was ever written.
  Status ReadSnapshot(const std::string& id, std::string* out) const;

  /// False once a filesystem failure latched the store degraded.
  bool healthy() const;
  std::string degraded_reason() const;

  /// Replay statistics, exposed for tests and the recovery fuzzer.
  struct ReplayStats {
    size_t records = 0;      // well-formed records consumed
    size_t valid_bytes = 0;  // length of the valid prefix
    size_t live_jobs = 0;    // jobs alive (admitted, not tombstoned)
  };

  /// Pure replay of manifest bytes: parses records up to the first torn or
  /// malformed one, applies admits/terminals/tombstones, and (when `jobs`
  /// is non-null) returns the live set in admit order. Never crashes on
  /// hostile bytes.
  static ReplayStats ReplayManifest(std::string_view manifest,
                                    std::vector<RecoveredJob>* jobs);

 private:
  JobStore(JobStoreOptions options);

  std::string ManifestPath() const;
  std::string SnapshotPath(const std::string& id) const;
  Status AppendRecordLocked(const std::string& id, const Json& payload,
                            bool tombstone);
  Status CompactLocked();
  void LatchDegradedLocked(const Status& status);

  const JobStoreOptions options_;

  mutable std::mutex mu_;
  int manifest_fd_ = -1;
  std::vector<RecoveredJob> recovered_;
  uint64_t max_job_number_ = 0;

  // Live framed lines per job id (admit line, then terminal line if any),
  // kept for compaction; `order_` preserves admit order.
  std::map<std::string, std::vector<std::string>> live_lines_;
  std::vector<std::string> order_;
  size_t dead_records_ = 0;

  bool degraded_ = false;
  Status degraded_status_;
};

}  // namespace twchase

#endif  // TWCHASE_SERVICE_JOB_STORE_H_
