// ChaseDaemon: the multi-tenant chase service (twchased's engine room).
//
// One daemon hosts many concurrent chase jobs on a shared JobScheduler
// worker pool behind per-tenant admission control, and serves a small
// versioned HTTP+JSON API on loopback:
//
//   POST   /v1/jobs            submit a program (+options) as a job; 202
//                              with the job id, 429 when the tenant's quota
//                              is exhausted (running jobs are untouched),
//                              400 with structured field errors otherwise
//   GET    /v1/jobs/{id}        job status (state, segments, progress);
//                              404 once a finished job ages past the
//                              retention cap (DaemonOptions)
//   GET    /v1/jobs/{id}/result terminal result: stop reason, counters,
//                              CLI-identical text rendering, query answers,
//                              optional event stream and checkpoint; 409
//                              while the job is still in flight
//   DELETE /v1/jobs/{id}        in flight: request cancellation
//                              (cooperative; the job lands in "cancelled"
//                              with its prefix result). Terminal: evict the
//                              retained job and tombstone the durable store
//   GET    /v1/metrics          fleet-wide metrics: scheduler counters plus
//                              every finished job's registry folded in
//   GET    /v1/healthz          liveness: uptime, job counts by state, and
//                              persistence status (durable / degraded:<why>
//                              / disabled)
//
// Execution model: each job is a ChaseSession driven through scheduler
// SEGMENTS. Every segment re-parses the job's program text (a resumed
// session requires the vocabulary in start state) and either Start()s the
// run or Resume()s it from the checkpoint the previous segment's preemption
// produced. The preemption monitor pauses long-running jobs when others are
// queued; because resume replays the recorded log through the same engine,
// a preempted-then-resumed job is bit-identical (instance, journal, event
// stream) to an uninterrupted run — the service tests prove it.
//
// The per-job budget surface is ChaseOptions::limits (deadline, memory,
// steps), enforced by the engine's own ResourceGovernor per segment;
// cancellation arrives over the session's cancel token from any HTTP
// handler thread.
#ifndef TWCHASE_SERVICE_DAEMON_H_
#define TWCHASE_SERVICE_DAEMON_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "service/http.h"
#include "service/job_store.h"
#include "service/json.h"
#include "service/wire.h"
#include "util/job_scheduler.h"
#include "util/status.h"

namespace twchase {

struct DaemonOptions {
  /// Listen port on 127.0.0.1; 0 = ephemeral (read back via port()).
  uint16_t port = 0;

  /// Chase worker threads (concurrent running jobs).
  size_t workers = 4;

  /// Per-tenant in-flight job quota; submissions beyond it get 429.
  size_t per_tenant_quota = 4;

  /// Preempt a running job once its current segment exceeds this and other
  /// jobs are queued. nullopt = never preempt.
  std::optional<uint64_t> preempt_after_ms = 2000;

  /// HTTP handler threads (request parsing and status serving; the chase
  /// itself always runs on scheduler workers).
  size_t http_threads = 4;

  /// Terminal (done/cancelled/failed) jobs retained for status/result
  /// queries. Once more than this many have finished, the oldest-finished
  /// are evicted (their id answers 404) so a long-lived daemon's job table
  /// — result JSON, rendered text, event streams, checkpoints — stays
  /// bounded. 0 = retain forever.
  size_t finished_job_retention = 256;

  /// Durable state directory (--state-dir). When set, admitted jobs, their
  /// terminal outcomes and per-preemption checkpoint snapshots are
  /// persisted (service/job_store.h) and a restarted daemon recovers them:
  /// terminal results are served again, interrupted jobs are re-admitted
  /// and resumed from their last durable checkpoint. Empty = the
  /// historical in-memory mode, byte-for-byte unchanged behavior.
  std::string state_dir;

  /// Per-connection HTTP read/write deadline, ms (0 = no deadline). A
  /// dribbling or stalled client is disconnected once its request or
  /// response has been in flight this long.
  uint64_t http_io_timeout_ms = 10000;
};

class ChaseDaemon {
 public:
  explicit ChaseDaemon(const DaemonOptions& options);
  ~ChaseDaemon();

  ChaseDaemon(const ChaseDaemon&) = delete;
  ChaseDaemon& operator=(const ChaseDaemon&) = delete;

  /// Starts the scheduler and the HTTP server. After OK, port() is bound.
  Status Start();

  /// Stops the HTTP server (no new work), cancels and drains every
  /// in-flight job, joins all threads. Idempotent.
  void Stop();

  uint16_t port() const { return server_.port(); }

  /// Jobs still admitted to the scheduler — the shutdown leak check
  /// (after Stop() this is 0 unless a job wedged).
  size_t InFlightJobs() const { return scheduler_.InFlight(); }

  /// The /v1/metrics payload (fleet registry + scheduler counters).
  Json MetricsJson() const;

 private:
  class ChaseJob;

  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleSubmit(const HttpRequest& request);
  HttpResponse HandleJobStatus(const std::string& id);
  HttpResponse HandleJobResult(const std::string& id);
  HttpResponse HandleJobCancel(const std::string& id);

  HttpResponse HandleHealthz();

  std::shared_ptr<ChaseJob> FindJob(const std::string& id) const;

  /// Records a job's terminal segment and evicts (tombstoning when
  /// durable) the oldest finished jobs beyond the retention cap. No-op
  /// during shutdown so interrupted jobs stay resumable.
  void OnJobFinished(const std::string& id);

  /// Folds one finished job's registry into the fleet registry.
  void FoldJobMetrics(const MetricsRegistry& job_metrics);

  /// Re-admits the store's replayed jobs: terminal outcomes become
  /// queryable jobs again, interrupted jobs are fingerprint-checked and
  /// resubmitted from their last durable snapshot, anything that does not
  /// validate lands as a structured unrecoverable failure.
  void RecoverFromStore();

  /// Persistence hooks (no-ops without a healthy store; persistence
  /// failures degrade the store, never the chase result).
  void PersistSnapshot(const std::string& id, const std::string& sealed);
  void PersistTerminal(const std::string& id, const std::string& state,
                       const Json& result);
  void PersistFailed(const std::string& id, const Status& error);

  /// True while Stop() is draining AND snapshots can still be persisted —
  /// a cancelled-by-shutdown job then checkpoints instead of recording a
  /// cancelled terminal, so a restart resumes it.
  bool WantShutdownSnapshot() const;

  /// "durable" | "degraded:<reason>" | "disabled", for /v1/healthz.
  std::string PersistenceStatus() const;

  const DaemonOptions options_;
  JobScheduler scheduler_;
  HttpServer server_;
  std::unique_ptr<JobStore> store_;  // null = disabled or failed to open
  std::string store_open_error_;     // why store_ is null despite state_dir
  std::atomic<bool> shutting_down_{false};
  std::chrono::steady_clock::time_point start_time_;

  mutable std::mutex jobs_mu_;
  uint64_t next_job_number_ = 1;                              // guarded
  std::unordered_map<std::string, std::shared_ptr<ChaseJob>> jobs_;  // guarded
  std::deque<std::string> finished_order_;  // guarded by jobs_mu_, FIFO

  mutable std::mutex fleet_mu_;
  MetricsRegistry fleet_metrics_;  // guarded by fleet_mu_
};

}  // namespace twchase

#endif  // TWCHASE_SERVICE_DAEMON_H_
