#include "service/job_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "util/fs.h"

namespace twchase {
namespace {

constexpr char kManifestName[] = "manifest.wal";
constexpr char kCheckpointDir[] = "checkpoints";

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

bool ParseFingerprintHex(const std::string& hex, uint64_t* out) {
  if (hex.empty() || hex.size() > 16) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(hex.c_str(), &end, 16);
  if (errno != 0 || end != hex.c_str() + hex.size()) return false;
  *out = value;
  return true;
}

// Frames one payload as a manifest line: "M1 <crc-hex> <len> <payload>\n".
std::string FrameRecord(const std::string& payload) {
  char header[32];
  std::snprintf(header, sizeof header, "M1 %08x %zu ", Crc32(payload),
                payload.size());
  return header + payload + "\n";
}

// Parses "j-<N>" into N; 0 for anything else.
uint64_t JobNumber(const std::string& id) {
  if (id.size() < 3 || id[0] != 'j' || id[1] != '-') return 0;
  char* end = nullptr;
  errno = 0;
  unsigned long long n = std::strtoull(id.c_str() + 2, &end, 10);
  if (errno != 0 || end != id.c_str() + id.size()) return 0;
  return n;
}

struct ReplayState {
  std::vector<RecoveredJob>* jobs;
  std::map<std::string, std::vector<std::string>>* lines;
  std::vector<std::string>* order;
  size_t* dead;
  uint64_t* max_number;
};

// Finds the replayed job with `id`, or nullptr.
RecoveredJob* FindJob(std::vector<RecoveredJob>* jobs, const std::string& id) {
  if (jobs == nullptr) return nullptr;
  for (RecoveredJob& job : *jobs) {
    if (job.id == id) return &job;
  }
  return nullptr;
}

void CountDead(const ReplayState& state, size_t n) {
  if (state.dead != nullptr) *state.dead += n;
}

// Applies one CRC-valid payload. Returns false when the record's schema is
// unintelligible — replay then stops as if the tail were torn.
bool ApplyRecord(const Json& payload, const std::string& framed_line,
                 const ReplayState& state) {
  if (!payload.is_object() || !payload.Get("type").is_string() ||
      !payload.Get("id").is_string()) {
    return false;
  }
  const std::string& type = payload.Get("type").string_value();
  const std::string& id = payload.Get("id").string_value();
  if (id.empty()) return false;

  if (type == "admit") {
    if (!payload.Get("fingerprint").is_string() ||
        !payload.Has("job")) {
      return false;
    }
    uint64_t fingerprint = 0;
    if (!ParseFingerprintHex(payload.Get("fingerprint").string_value(),
                             &fingerprint)) {
      return false;
    }
    JobRequest request;
    std::vector<FieldError> errors;
    if (!JobRequestFromJson(payload.Get("job"), &request, &errors).ok()) {
      return false;
    }
    if (FindJob(state.jobs, id) != nullptr) return false;  // duplicate admit
    if (state.jobs != nullptr) {
      RecoveredJob job;
      job.id = id;
      job.request = std::move(request);
      job.program_fingerprint = fingerprint;
      state.jobs->push_back(std::move(job));
    }
    if (state.lines != nullptr) {
      (*state.lines)[id].push_back(framed_line);
      state.order->push_back(id);
    }
    if (state.max_number != nullptr) {
      *state.max_number = std::max(*state.max_number, JobNumber(id));
    }
    return true;
  }

  if (type == "terminal" || type == "failed") {
    RecoveredJob* job = FindJob(state.jobs, id);
    if (job == nullptr || job->terminal) {
      // Orphaned or duplicate terminal: tolerated garbage (a tombstone may
      // have outrun it), not a torn tail.
      CountDead(state, 1);
      return true;
    }
    if (type == "terminal") {
      if (!payload.Get("state").is_string() || !payload.Has("result")) {
        return false;
      }
      job->terminal_state = payload.Get("state").string_value();
      job->result = payload.Get("result");
    } else {
      if (!payload.Get("error_code").is_string() ||
          !payload.Get("error_message").is_string()) {
        return false;
      }
      job->terminal_state = "failed";
      job->error_code = payload.Get("error_code").string_value();
      job->error_message = payload.Get("error_message").string_value();
    }
    job->terminal = true;
    if (state.lines != nullptr) (*state.lines)[id].push_back(framed_line);
    return true;
  }

  if (type == "tombstone") {
    if (state.jobs != nullptr) {
      for (size_t i = 0; i < state.jobs->size(); ++i) {
        if ((*state.jobs)[i].id == id) {
          state.jobs->erase(state.jobs->begin() + i);
          break;
        }
      }
    }
    if (state.lines != nullptr) {
      auto it = state.lines->find(id);
      size_t killed = it == state.lines->end() ? 0 : it->second.size();
      if (it != state.lines->end()) state.lines->erase(it);
      for (size_t i = 0; i < state.order->size(); ++i) {
        if ((*state.order)[i] == id) {
          state.order->erase(state.order->begin() + i);
          break;
        }
      }
      CountDead(state, killed + 1);
    } else {
      CountDead(state, 1);
    }
    return true;
  }

  return false;  // record type from the future
}

JobStore::ReplayStats ReplayInternal(std::string_view manifest,
                                     const ReplayState& state) {
  JobStore::ReplayStats stats;
  size_t pos = 0;
  while (pos < manifest.size()) {
    size_t record_start = pos;
    // Header: "M1 " + 8 hex + ' ' + decimal length + ' '.
    if (manifest.size() - pos < 14 || manifest.compare(pos, 3, "M1 ") != 0) {
      break;
    }
    pos += 3;
    uint32_t crc = 0;
    bool ok = true;
    for (int i = 0; i < 8; ++i) {
      char c = manifest[pos + i];
      uint32_t digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
      else { ok = false; break; }
      crc = (crc << 4) | digit;
    }
    if (!ok || manifest[pos + 8] != ' ') break;
    pos += 9;
    size_t len = 0;
    size_t digits = 0;
    while (pos < manifest.size() && manifest[pos] >= '0' &&
           manifest[pos] <= '9') {
      if (len > manifest.size()) { ok = false; break; }
      len = len * 10 + static_cast<size_t>(manifest[pos] - '0');
      ++pos;
      ++digits;
    }
    if (!ok || digits == 0 || pos >= manifest.size() ||
        manifest[pos] != ' ') {
      break;
    }
    ++pos;
    if (len > manifest.size() - pos || pos + len >= manifest.size() ||
        manifest[pos + len] != '\n') {
      break;  // torn tail: payload or terminator missing
    }
    std::string_view payload = manifest.substr(pos, len);
    if (Crc32(payload) != crc) break;
    auto json = Json::Parse(payload);
    if (!json.ok()) break;
    std::string framed_line(manifest.substr(record_start,
                                            pos + len + 1 - record_start));
    if (!ApplyRecord(*json, framed_line, state)) break;
    pos += len + 1;
    ++stats.records;
    stats.valid_bytes = pos;
  }
  if (state.lines != nullptr) stats.live_jobs = state.lines->size();
  else if (state.jobs != nullptr) stats.live_jobs = state.jobs->size();
  return stats;
}

}  // namespace

JobStore::JobStore(JobStoreOptions options) : options_(std::move(options)) {}

JobStore::~JobStore() {
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
}

std::string JobStore::ManifestPath() const {
  return options_.state_dir + "/" + kManifestName;
}

std::string JobStore::SnapshotPath(const std::string& id) const {
  return options_.state_dir + "/" + kCheckpointDir + "/" + id + ".ckpt";
}

StatusOr<std::unique_ptr<JobStore>> JobStore::Open(
    const JobStoreOptions& options) {
  if (options.state_dir.empty()) {
    return Status::InvalidArgument("job store: state_dir must be non-empty");
  }
  std::unique_ptr<JobStore> store(new JobStore(options));
  TWCHASE_RETURN_IF_ERROR(EnsureDirectory(options.state_dir));
  TWCHASE_RETURN_IF_ERROR(
      EnsureDirectory(options.state_dir + "/" + kCheckpointDir));

  std::string manifest;
  Status read = ReadFileToString(store->ManifestPath(), &manifest);
  if (!read.ok() && read.code() != StatusCode::kNotFound) return read;

  ReplayState state{&store->recovered_, &store->live_lines_, &store->order_,
                    &store->dead_records_, &store->max_job_number_};
  ReplayStats stats = ReplayInternal(manifest, state);

  int fd = ::open(store->ManifestPath().c_str(),
                  O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal(std::string("open ") + store->ManifestPath() +
                            ": " + std::strerror(errno));
  }
  store->manifest_fd_ = fd;
  if (stats.valid_bytes < manifest.size()) {
    // Torn tail from a crash mid-append: discard it so the next append
    // starts a well-framed record.
    if (::ftruncate(fd, static_cast<off_t>(stats.valid_bytes)) != 0) {
      return Status::Internal(std::string("ftruncate ") +
                              store->ManifestPath() + ": " +
                              std::strerror(errno));
    }
    TWCHASE_RETURN_IF_ERROR(FsFsync(fd, kManifestName));
  }
  TWCHASE_RETURN_IF_ERROR(FsSyncDir(options.state_dir));
  return store;
}

std::vector<RecoveredJob> JobStore::TakeRecovered() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(recovered_);
}

void JobStore::LatchDegradedLocked(const Status& status) {
  if (degraded_) return;
  degraded_ = true;
  degraded_status_ = status;
}

Status JobStore::AppendRecordLocked(const std::string& id,
                                    const Json& payload, bool tombstone) {
  if (degraded_) return degraded_status_;
  std::string line = FrameRecord(payload.Dump());
  Status written = FsWriteAll(manifest_fd_, line, kManifestName);
  if (written.ok()) written = FsFsync(manifest_fd_, kManifestName);
  if (!written.ok()) {
    LatchDegradedLocked(written);
    return written;
  }
  if (tombstone) {
    auto it = live_lines_.find(id);
    size_t killed = it == live_lines_.end() ? 0 : it->second.size();
    if (it != live_lines_.end()) live_lines_.erase(it);
    for (size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == id) {
        order_.erase(order_.begin() + i);
        break;
      }
    }
    dead_records_ += killed + 1;
  } else {
    if (live_lines_.find(id) == live_lines_.end()) order_.push_back(id);
    live_lines_[id].push_back(line);
  }
  return Status::OK();
}

Status JobStore::AppendAdmit(const std::string& id, const JobRequest& request,
                             uint64_t program_fingerprint) {
  Json payload = Json::Object();
  payload.Set("type", Json::String("admit"));
  payload.Set("id", Json::String(id));
  payload.Set("fingerprint", Json::String(FingerprintHex(program_fingerprint)));
  payload.Set("job", JobRequestToJson(request));
  std::lock_guard<std::mutex> lock(mu_);
  max_job_number_ = std::max(max_job_number_, JobNumber(id));
  return AppendRecordLocked(id, payload, /*tombstone=*/false);
}

Status JobStore::AppendTerminal(const std::string& id, const std::string& state,
                                const Json& result) {
  Json payload = Json::Object();
  payload.Set("type", Json::String("terminal"));
  payload.Set("id", Json::String(id));
  payload.Set("state", Json::String(state));
  payload.Set("result", result);
  std::lock_guard<std::mutex> lock(mu_);
  return AppendRecordLocked(id, payload, /*tombstone=*/false);
}

Status JobStore::AppendFailed(const std::string& id,
                              const std::string& error_code,
                              const std::string& error_message) {
  Json payload = Json::Object();
  payload.Set("type", Json::String("failed"));
  payload.Set("id", Json::String(id));
  payload.Set("error_code", Json::String(error_code));
  payload.Set("error_message", Json::String(error_message));
  std::lock_guard<std::mutex> lock(mu_);
  return AppendRecordLocked(id, payload, /*tombstone=*/false);
}

Status JobStore::AppendTombstone(const std::string& id) {
  Json payload = Json::Object();
  payload.Set("type", Json::String("tombstone"));
  payload.Set("id", Json::String(id));
  std::lock_guard<std::mutex> lock(mu_);
  Status appended = AppendRecordLocked(id, payload, /*tombstone=*/true);
  if (!appended.ok()) return appended;
  // The snapshot is dead weight once the job is tombstoned; removal
  // failures degrade quietly (the manifest, the source of truth, is fine).
  (void)RemoveFileDurable(SnapshotPath(id));
  if (dead_records_ >= options_.compact_min_garbage) {
    return CompactLocked();
  }
  return Status::OK();
}

Status JobStore::CompactLocked() {
  std::string content;
  for (const std::string& id : order_) {
    auto it = live_lines_.find(id);
    if (it == live_lines_.end()) continue;
    for (const std::string& line : it->second) content += line;
  }
  Status written = WriteFileDurable(ManifestPath(), content);
  if (!written.ok()) {
    LatchDegradedLocked(written);
    return written;
  }
  // The old fd points at the unlinked inode; reopen the fresh manifest.
  int fd = ::open(ManifestPath().c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    Status failed = Status::Internal(std::string("reopen ") + ManifestPath() +
                                     ": " + std::strerror(errno));
    LatchDegradedLocked(failed);
    return failed;
  }
  ::close(manifest_fd_);
  manifest_fd_ = fd;
  dead_records_ = 0;
  return Status::OK();
}

Status JobStore::WriteSnapshot(const std::string& id,
                               std::string_view sealed_text) {
  std::lock_guard<std::mutex> lock(mu_);
  if (degraded_) return degraded_status_;
  Status written = WriteFileDurable(SnapshotPath(id), sealed_text);
  if (!written.ok()) LatchDegradedLocked(written);
  return written;
}

Status JobStore::ReadSnapshot(const std::string& id, std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadFileToString(SnapshotPath(id), out);
}

bool JobStore::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !degraded_;
}

std::string JobStore::degraded_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_ ? degraded_status_.message() : std::string();
}

JobStore::ReplayStats JobStore::ReplayManifest(std::string_view manifest,
                                               std::vector<RecoveredJob>* jobs) {
  std::map<std::string, std::vector<std::string>> lines;
  std::vector<std::string> order;
  size_t dead = 0;
  uint64_t max_number = 0;
  ReplayState state{jobs, &lines, &order, &dead, &max_number};
  return ReplayInternal(manifest, state);
}

}  // namespace twchase
