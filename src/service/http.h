// A tiny self-contained HTTP/1.1 server and blocking client over POSIX
// sockets — just enough protocol for the chase daemon's JSON API and its
// smoke tooling. No external dependency, no TLS, no chunked encoding:
// requests and responses carry Content-Length bodies and every connection
// serves one exchange (the server always answers `Connection: close`).
//
// Threading: Start() spawns one accept thread plus a small fixed pool of
// handler threads draining accepted connections from a queue; the
// registered handler runs on a handler thread and must be thread-safe (the
// daemon's handler is — it locks its job table). Stop() closes the
// listener, wakes the pool and joins every thread; it is safe to call from
// any thread and idempotent.
//
// Robustness: reads are bounded (header block 64 KiB, body 64 MiB) and
// every connection carries one absolute read/write deadline (io_timeout_ms,
// default 10s): the per-syscall socket timeout is re-armed with the
// remaining budget before each recv/send, so a dribbling client — one byte
// per second, each recv succeeding — is still disconnected at the
// deadline and can only park one handler thread for a bounded time, never
// wedge the daemon. Malformed requests get a 400 and the connection is
// closed.
#ifndef TWCHASE_SERVICE_HTTP_H_
#define TWCHASE_SERVICE_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "util/status.h"

namespace twchase {

struct HttpRequest {
  std::string method;  // "GET", "POST", "DELETE", ...
  std::string target;  // request target as sent, e.g. "/v1/jobs/j-3?x=1"
  std::string body;

  /// Header names lowercased at parse time; values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;

  /// Path without the query string, and the raw query string ("" if none).
  std::string path() const;
  std::string query() const;

  /// First value of `name` (lowercase), or "" when absent.
  std::string Header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

const char* HttpStatusText(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; the bound port is then
  /// port()), starts the accept thread and `handler_threads` workers.
  /// `io_timeout_ms` is the per-connection read/write deadline (0 = no
  /// deadline, historical per-recv timeout only).
  Status Start(uint16_t port, HttpHandler handler, size_t handler_threads = 4,
               uint64_t io_timeout_ms = 10000);

  /// The bound port; valid after a successful Start.
  uint16_t port() const { return port_; }

  /// Stops accepting, drains and joins. Idempotent, any thread.
  void Stop();

  bool running() const { return running_; }

 private:
  void AcceptLoop();
  void HandlerLoop();
  void HandleConnection(int fd);

  /// Atomic: Stop() closes and clears it from another thread while
  /// AcceptLoop blocks on it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  uint64_t io_timeout_ms_ = 10000;
  HttpHandler handler_;
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;

  std::mutex mu_;
  std::condition_variable queue_ready_;
  std::vector<int> pending_fds_;  // guarded by mu_
  bool shutdown_ = false;         // guarded by mu_
  bool running_ = false;
};

/// One-shot blocking client: connects, sends, reads the full response.
/// `host` is an IPv4 dotted quad (the daemon only binds loopback).
StatusOr<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "",
                                 uint64_t timeout_ms = 30000);

}  // namespace twchase

#endif  // TWCHASE_SERVICE_HTTP_H_
