#include "kb/rule.h"

#include <algorithm>

namespace twchase {

StatusOr<Rule> Rule::Create(AtomSet body, AtomSet head, std::string label) {
  if (body.empty()) {
    return Status::InvalidArgument("rule '" + label + "' has an empty body");
  }
  if (head.empty()) {
    return Status::InvalidArgument("rule '" + label + "' has an empty head");
  }
  Rule rule;
  rule.body_ = std::move(body);
  rule.head_ = std::move(head);
  rule.label_ = std::move(label);
  rule.body_and_head_ = rule.body_;
  rule.body_and_head_.InsertAll(rule.head_);
  std::vector<Term> body_vars = rule.body_.Variables();
  for (Term v : rule.head_.Variables()) {
    if (std::find(body_vars.begin(), body_vars.end(), v) != body_vars.end()) {
      rule.frontier_.push_back(v);
    } else {
      rule.existential_.push_back(v);
    }
  }
  return rule;
}

Rule Rule::Must(AtomSet body, AtomSet head, std::string label) {
  auto rule = Create(std::move(body), std::move(head), std::move(label));
  TWCHASE_CHECK_MSG(rule.ok(), rule.status().ToString());
  return std::move(rule).value();
}

std::string Rule::ToString(const Vocabulary& vocab) const {
  std::string out;
  if (!label_.empty()) out += "[" + label_ + "] ";
  bool first = true;
  for (const Atom& atom : head_.Atoms()) {
    if (!first) out += ", ";
    first = false;
    out += atom.ToString(vocab);
  }
  out += " :- ";
  first = true;
  for (const Atom& atom : body_.Atoms()) {
    if (!first) out += ", ";
    first = false;
    out += atom.ToString(vocab);
  }
  out += ".";
  return out;
}

}  // namespace twchase
