#include "kb/analysis.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace twchase {
namespace {

// Position node: predicate id and argument index, packed for hashing.
using Position = uint64_t;

Position MakePosition(PredicateId predicate, size_t index) {
  return (static_cast<uint64_t>(predicate) << 16) | static_cast<uint64_t>(index);
}

// Occurrence positions of each variable in an atomset.
std::unordered_map<Term, std::vector<Position>, TermHash> PositionsOf(
    const AtomSet& atoms) {
  std::unordered_map<Term, std::vector<Position>, TermHash> out;
  atoms.ForEach([&](const Atom& atom) {
    for (size_t i = 0; i < atom.args().size(); ++i) {
      Term t = atom.arg(i);
      if (t.is_variable()) {
        out[t].push_back(MakePosition(atom.predicate(), i));
      }
    }
  });
  return out;
}

// Tarjan SCC over the position graph, flagging SCCs that contain a special
// edge (an SCC with an internal special edge witnesses a bad cycle).
class SccSpecialCycleDetector {
 public:
  void AddEdge(Position from, Position to, bool special) {
    int u = NodeOf(from), v = NodeOf(to);
    edges_.push_back({u, v, special});
    adj_.resize(nodes_.size());
    adj_[u].push_back(static_cast<int>(edges_.size()) - 1);
  }

  // True iff some cycle passes through a special edge.
  bool HasSpecialCycle() {
    int n = static_cast<int>(nodes_.size());
    adj_.resize(n);
    index_.assign(n, -1);
    low_.assign(n, 0);
    on_stack_.assign(n, false);
    component_.assign(n, -1);
    for (int v = 0; v < n; ++v) {
      if (index_[v] == -1) Strongconnect(v);
    }
    for (const Edge& e : edges_) {
      if (e.special && component_[e.from] == component_[e.to]) return true;
    }
    return false;
  }

 private:
  struct Edge {
    int from, to;
    bool special;
  };

  int NodeOf(Position p) {
    auto [it, inserted] = node_index_.emplace(p, static_cast<int>(nodes_.size()));
    if (inserted) nodes_.push_back(p);
    return it->second;
  }

  void Strongconnect(int v) {
    // Iterative Tarjan to avoid deep recursion on large schemas.
    struct Frame {
      int v;
      size_t edge_pos;
    };
    std::vector<Frame> call_stack{{v, 0}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      int u = frame.v;
      if (frame.edge_pos == 0) {
        index_[u] = low_[u] = counter_++;
        stack_.push_back(u);
        on_stack_[u] = true;
      }
      bool descended = false;
      while (frame.edge_pos < adj_[u].size()) {
        const Edge& e = edges_[adj_[u][frame.edge_pos++]];
        if (index_[e.to] == -1) {
          call_stack.push_back({e.to, 0});
          descended = true;
          break;
        }
        if (on_stack_[e.to]) low_[u] = std::min(low_[u], index_[e.to]);
      }
      if (descended) continue;
      if (low_[u] == index_[u]) {
        while (true) {
          int w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          component_[w] = components_;
          if (w == u) break;
        }
        ++components_;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        int parent = call_stack.back().v;
        low_[parent] = std::min(low_[parent], low_[u]);
      }
    }
  }

  std::unordered_map<Position, int> node_index_;
  std::vector<Position> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> index_, low_, component_;
  std::vector<bool> on_stack_;
  std::vector<int> stack_;
  int counter_ = 0;
  int components_ = 0;
};

bool BodyHasGuard(const Rule& rule, const std::vector<Term>& vars) {
  bool found = false;
  rule.body().ForEach([&](const Atom& atom) {
    if (found) return;
    bool covers = std::all_of(vars.begin(), vars.end(), [&](Term v) {
      return std::find(atom.args().begin(), atom.args().end(), v) !=
             atom.args().end();
    });
    if (covers) found = true;
  });
  return found;
}

}  // namespace

bool IsDatalog(const std::vector<Rule>& rules) {
  return std::all_of(rules.begin(), rules.end(),
                     [](const Rule& r) { return r.IsDatalog(); });
}

bool IsLinear(const std::vector<Rule>& rules) {
  return std::all_of(rules.begin(), rules.end(),
                     [](const Rule& r) { return r.body().size() == 1; });
}

bool IsGuarded(const std::vector<Rule>& rules) {
  return std::all_of(rules.begin(), rules.end(), [](const Rule& r) {
    return BodyHasGuard(r, r.body().Variables());
  });
}

bool IsFrontierGuarded(const std::vector<Rule>& rules) {
  return std::all_of(rules.begin(), rules.end(), [](const Rule& r) {
    return BodyHasGuard(r, r.frontier());
  });
}

bool IsWeaklyAcyclic(const std::vector<Rule>& rules) {
  SccSpecialCycleDetector detector;
  bool any_edge = false;
  for (const Rule& rule : rules) {
    auto body_positions = PositionsOf(rule.body());
    auto head_positions = PositionsOf(rule.head());
    // Head positions of existential variables (special edge targets).
    std::vector<Position> existential_positions;
    for (Term z : rule.existential()) {
      auto it = head_positions.find(z);
      if (it == head_positions.end()) continue;
      existential_positions.insert(existential_positions.end(),
                                   it->second.begin(), it->second.end());
    }
    for (Term x : rule.frontier()) {
      auto bit = body_positions.find(x);
      if (bit == body_positions.end()) continue;
      auto hit = head_positions.find(x);
      for (Position from : bit->second) {
        if (hit != head_positions.end()) {
          for (Position to : hit->second) {
            detector.AddEdge(from, to, /*special=*/false);
            any_edge = true;
          }
        }
        for (Position to : existential_positions) {
          detector.AddEdge(from, to, /*special=*/true);
          any_edge = true;
        }
      }
    }
  }
  if (!any_edge) return true;
  return !detector.HasSpecialCycle();
}

bool IsJointlyAcyclic(const std::vector<Rule>& rules) {
  // Existential variables, globally indexed.
  struct Existential {
    size_t rule;
    Term var;
  };
  std::vector<Existential> existentials;
  for (size_t r = 0; r < rules.size(); ++r) {
    for (Term z : rules[r].existential()) {
      existentials.push_back({r, z});
    }
  }
  if (existentials.empty()) return true;

  // Per-rule variable position caches.
  std::vector<std::unordered_map<Term, std::vector<Position>, TermHash>>
      body_positions(rules.size()), head_positions(rules.size());
  for (size_t r = 0; r < rules.size(); ++r) {
    body_positions[r] = PositionsOf(rules[r].body());
    head_positions[r] = PositionsOf(rules[r].head());
  }

  // Move(z) fixpoints.
  auto compute_move = [&](const Existential& e) {
    std::unordered_set<Position> move;
    for (Position p : head_positions[e.rule].at(e.var)) move.insert(p);
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t r = 0; r < rules.size(); ++r) {
        for (Term x : rules[r].frontier()) {
          auto bit = body_positions[r].find(x);
          if (bit == body_positions[r].end() || bit->second.empty()) continue;
          bool all_in = std::all_of(bit->second.begin(), bit->second.end(),
                                    [&](Position p) { return move.contains(p); });
          if (!all_in) continue;
          auto hit = head_positions[r].find(x);
          if (hit == head_positions[r].end()) continue;
          for (Position p : hit->second) {
            if (move.insert(p).second) changed = true;
          }
        }
      }
    }
    return move;
  };

  std::vector<std::unordered_set<Position>> moves;
  moves.reserve(existentials.size());
  for (const Existential& e : existentials) moves.push_back(compute_move(e));

  // Dependency graph: z → z' if the rule creating z' has a frontier variable
  // whose body positions all lie in Move(z).
  size_t n = existentials.size();
  std::vector<std::vector<int>> adj(n);
  for (size_t from = 0; from < n; ++from) {
    for (size_t to = 0; to < n; ++to) {
      size_t r = existentials[to].rule;
      bool depends = false;
      for (Term x : rules[r].frontier()) {
        auto bit = body_positions[r].find(x);
        if (bit == body_positions[r].end() || bit->second.empty()) continue;
        if (std::all_of(bit->second.begin(), bit->second.end(),
                        [&](Position p) { return moves[from].contains(p); })) {
          depends = true;
          break;
        }
      }
      if (depends) adj[from].push_back(static_cast<int>(to));
    }
  }

  // Cycle detection (iterative three-color DFS).
  std::vector<int> color(n, 0);  // 0 white, 1 grey, 2 black
  for (size_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    std::vector<std::pair<int, size_t>> stack{{static_cast<int>(start), 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < adj[v].size()) {
        int w = adj[v][next++];
        if (color[w] == 1) return false;  // back edge: cycle
        if (color[w] == 0) {
          color[w] = 1;
          stack.push_back({w, 0});
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

RulesetAnalysis AnalyzeRuleset(const std::vector<Rule>& rules) {
  RulesetAnalysis out;
  out.datalog = IsDatalog(rules);
  out.linear = IsLinear(rules);
  out.guarded = IsGuarded(rules);
  out.frontier_guarded = out.guarded || IsFrontierGuarded(rules);
  out.weakly_acyclic = IsWeaklyAcyclic(rules);
  out.jointly_acyclic = out.weakly_acyclic || IsJointlyAcyclic(rules);
  return out;
}

std::string RulesetAnalysis::Summary() const {
  std::string out;
  auto add = [&out](bool flag, const char* name) {
    if (flag) {
      if (!out.empty()) out += ",";
      out += name;
    }
  };
  add(datalog, "datalog");
  add(linear, "linear");
  add(guarded, "guarded");
  add(frontier_guarded && !guarded, "frontier-guarded");
  add(weakly_acyclic, "weakly-acyclic");
  add(jointly_acyclic && !weakly_acyclic && !datalog, "jointly-acyclic");
  if (out.empty()) out = "none";
  return out;
}

}  // namespace twchase
