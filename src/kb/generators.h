// Synthetic instance generators used by property tests and the engine
// microbenchmarks: paths, cycles, grids, random binary structures, and
// instances with planted redundancy (for core-computation benchmarks).
#ifndef TWCHASE_KB_GENERATORS_H_
#define TWCHASE_KB_GENERATORS_H_

#include <memory>

#include "model/atom_set.h"
#include "model/predicate.h"
#include "util/random.h"

namespace twchase {

/// Directed path a_0 → a_1 → ... → a_n over predicate `pred` (arity 2),
/// with variable nodes.
AtomSet MakePathInstance(Vocabulary* vocab, const std::string& pred, int n);

/// Directed cycle of length n.
AtomSet MakeCycleInstance(Vocabulary* vocab, const std::string& pred, int n);

/// rows×cols grid over predicates `hpred` (horizontal) and `vpred`
/// (vertical), with variable nodes.
AtomSet MakeGridInstance(Vocabulary* vocab, const std::string& hpred,
                         const std::string& vpred, int rows, int cols);

/// Random instance: `num_terms` variables, `num_atoms` atoms over `pred`
/// (arity 2) with endpoints drawn uniformly.
AtomSet MakeRandomBinaryInstance(Vocabulary* vocab, const std::string& pred,
                                 int num_terms, int num_atoms, Rng* rng);

/// A core-sized instance blown up with `redundancy` homomorphically
/// redundant copies of each edge (each copy uses fresh variables mapping
/// onto the original edge), so its core is the original instance. Used to
/// benchmark core computation.
AtomSet MakeRedundantInstance(Vocabulary* vocab, const std::string& pred,
                              int core_cycle_len, int redundancy);

}  // namespace twchase

#endif  // TWCHASE_KB_GENERATORS_H_
