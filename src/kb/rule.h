// Existential rules B → H (tuple-generating dependencies). Variables are
// classified at construction: universal (body), frontier (body ∩ head) and
// existential (head only), per Section 2 of the paper.
#ifndef TWCHASE_KB_RULE_H_
#define TWCHASE_KB_RULE_H_

#include <string>
#include <vector>

#include "model/atom_set.h"
#include "util/status.h"

namespace twchase {

class Rule {
 public:
  /// Builds a rule; body and head must be non-empty.
  static StatusOr<Rule> Create(AtomSet body, AtomSet head, std::string label);

  /// CHECK-ing variant for programmatic builders.
  static Rule Must(AtomSet body, AtomSet head, std::string label);

  const AtomSet& body() const { return body_; }
  const AtomSet& head() const { return head_; }
  const std::string& label() const { return label_; }

  /// Variables occurring in both body and head.
  const std::vector<Term>& frontier() const { return frontier_; }

  /// Variables occurring only in the head (existentially quantified).
  const std::vector<Term>& existential() const { return existential_; }

  /// A rule with no existential variables is a datalog (full) rule; the
  /// paper's derivations prioritise them (cf. proof of Proposition 6).
  bool IsDatalog() const { return existential_.empty(); }

  /// Body ∪ head, used for trigger-satisfaction checks.
  const AtomSet& body_and_head() const { return body_and_head_; }

  std::string ToString(const Vocabulary& vocab) const;

 private:
  Rule() = default;

  AtomSet body_;
  AtomSet head_;
  AtomSet body_and_head_;
  std::string label_;
  std::vector<Term> frontier_;
  std::vector<Term> existential_;
};

}  // namespace twchase

#endif  // TWCHASE_KB_RULE_H_
