#include "kb/knowledge_base.h"

#include "hom/matcher.h"

namespace twchase {

bool KnowledgeBase::IsModel(const AtomSet& instance) const {
  if (!ExistsHomomorphism(facts, instance)) return false;
  for (const Rule& rule : rules) {
    // Every trigger (hom of body into instance) must extend to body ∪ head.
    HomOptions options;
    options.limit = 0;  // all
    for (const Substitution& match :
         FindAllHomomorphisms(rule.body(), instance, options)) {
      if (!ExistsHomomorphismExtending(rule.body_and_head(), instance, match)) {
        return false;
      }
    }
  }
  return true;
}

std::string KnowledgeBase::ToString() const {
  std::string out = "facts: " + facts.ToString(*vocab) + "\n";
  for (const Rule& rule : rules) {
    out += rule.ToString(*vocab) + "\n";
  }
  return out;
}

KbBuilder::KbBuilder() : vocab_(std::make_shared<Vocabulary>()) {}

Term KbBuilder::C(const std::string& name) { return vocab_->Constant(name); }

Term KbBuilder::V(const std::string& name) {
  return vocab_->NamedVariable(name);
}

Atom KbBuilder::A(const std::string& predicate, std::vector<Term> args) {
  PredicateId id =
      vocab_->MustPredicate(predicate, static_cast<uint32_t>(args.size()));
  return Atom(id, std::move(args));
}

KbBuilder& KbBuilder::Fact(const std::string& predicate,
                           std::vector<Term> args) {
  facts_.Insert(A(predicate, std::move(args)));
  return *this;
}

KbBuilder& KbBuilder::AddRule(const std::string& label, std::vector<Atom> body,
                              std::vector<Atom> head) {
  rules_.push_back(Rule::Must(AtomSet::FromAtoms(body), AtomSet::FromAtoms(head),
                              label));
  return *this;
}

KnowledgeBase KbBuilder::Build() {
  KnowledgeBase kb;
  kb.vocab = vocab_;
  kb.facts = facts_;
  kb.rules = rules_;
  return kb;
}

}  // namespace twchase
