// Static (syntactic) ruleset analysis: the classical sufficient conditions
// for chase termination and treewidth-boundedness that the paper's abstract
// classes generalise.
//   * weak acyclicity (Fagin, Kolaitis, Miller, Popa): no cycle through a
//     "special" edge in the position dependency graph ⇒ the (semi-)oblivious
//     chase terminates on every instance ⇒ fes;
//   * guardedness (Calì, Gottlob, Kifer): some body atom contains every
//     body variable ⇒ bts (treewidth-bounded chase);
//   * frontier-guardedness (Baget et al.): some body atom contains every
//     frontier variable ⇒ bts;
//   * linearity: single-atom bodies (a special case of guardedness);
//   * datalog: no existential variables ⇒ fes (and trivially bts for a
//     fixed instance).
// These checkers are deliberately decoupled from the chase: they power the
// FIG1 bench's "static" columns next to the empirical (chase-run) evidence.
#ifndef TWCHASE_KB_ANALYSIS_H_
#define TWCHASE_KB_ANALYSIS_H_

#include <string>
#include <vector>

#include "kb/rule.h"

namespace twchase {

struct RulesetAnalysis {
  bool datalog = false;
  bool linear = false;
  bool guarded = false;
  bool frontier_guarded = false;
  bool weakly_acyclic = false;
  bool jointly_acyclic = false;

  /// Static fes evidence: (weakly/jointly) acyclic or datalog.
  bool ImpliesTermination() const {
    return weakly_acyclic || jointly_acyclic || datalog;
  }

  /// Static bts evidence: (frontier-)guarded or datalog.
  bool ImpliesTreewidthBounded() const {
    return guarded || frontier_guarded || datalog;
  }

  std::string Summary() const;
};

/// True iff every rule has no existential variable.
bool IsDatalog(const std::vector<Rule>& rules);

/// True iff every rule body is a single atom.
bool IsLinear(const std::vector<Rule>& rules);

/// True iff every rule body has an atom containing all body variables.
bool IsGuarded(const std::vector<Rule>& rules);

/// True iff every rule body has an atom containing all frontier variables.
bool IsFrontierGuarded(const std::vector<Rule>& rules);

/// Weak acyclicity of the position dependency graph: nodes are (predicate,
/// argument position); for every rule and frontier variable x at body
/// position π, a regular edge π → π' for every head position π' of x, and a
/// special edge π → π'' for every head position π'' of an existential
/// variable. Weakly acyclic iff no cycle passes through a special edge
/// (checked via strongly connected components).
bool IsWeaklyAcyclic(const std::vector<Rule>& rules);

/// Joint acyclicity (Krötzsch & Rudolph, IJCAI'11), strictly subsuming weak
/// acyclicity. For every existential variable z, Move(z) is the least set of
/// positions containing z's head positions and closed under: if ALL body
/// positions of a frontier variable x (of any rule) lie in Move(z), add x's
/// head positions. z' depends on z if the rule creating z' has a frontier
/// variable whose body positions all lie in Move(z). Jointly acyclic iff the
/// dependency relation is acyclic; guarantees termination of the
/// semi-oblivious (hence restricted/core) chase.
bool IsJointlyAcyclic(const std::vector<Rule>& rules);

RulesetAnalysis AnalyzeRuleset(const std::vector<Rule>& rules);

}  // namespace twchase

#endif  // TWCHASE_KB_ANALYSIS_H_
