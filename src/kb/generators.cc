#include "kb/generators.h"

#include <string>

namespace twchase {
namespace {

Term Node(Vocabulary* vocab, const std::string& stem, int i) {
  return vocab->NamedVariable(stem + "_" + std::to_string(i));
}

}  // namespace

AtomSet MakePathInstance(Vocabulary* vocab, const std::string& pred, int n) {
  PredicateId p = vocab->MustPredicate(pred, 2);
  AtomSet out;
  for (int i = 0; i < n; ++i) {
    out.Insert(Atom(p, {Node(vocab, "path", i), Node(vocab, "path", i + 1)}));
  }
  return out;
}

AtomSet MakeCycleInstance(Vocabulary* vocab, const std::string& pred, int n) {
  PredicateId p = vocab->MustPredicate(pred, 2);
  AtomSet out;
  for (int i = 0; i < n; ++i) {
    out.Insert(Atom(p, {Node(vocab, "cyc", i), Node(vocab, "cyc", (i + 1) % n)}));
  }
  return out;
}

AtomSet MakeGridInstance(Vocabulary* vocab, const std::string& hpred,
                         const std::string& vpred, int rows, int cols) {
  PredicateId hp = vocab->MustPredicate(hpred, 2);
  PredicateId vp = vocab->MustPredicate(vpred, 2);
  AtomSet out;
  auto node = [&](int r, int c) {
    return vocab->NamedVariable("g_" + std::to_string(r) + "_" +
                                std::to_string(c));
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) out.Insert(Atom(hp, {node(r, c), node(r, c + 1)}));
      if (r + 1 < rows) out.Insert(Atom(vp, {node(r, c), node(r + 1, c)}));
    }
  }
  return out;
}

AtomSet MakeRandomBinaryInstance(Vocabulary* vocab, const std::string& pred,
                                 int num_terms, int num_atoms, Rng* rng) {
  PredicateId p = vocab->MustPredicate(pred, 2);
  AtomSet out;
  for (int i = 0; i < num_atoms; ++i) {
    int a = static_cast<int>(rng->Uniform(0, num_terms - 1));
    int b = static_cast<int>(rng->Uniform(0, num_terms - 1));
    out.Insert(Atom(p, {Node(vocab, "rnd", a), Node(vocab, "rnd", b)}));
  }
  return out;
}

AtomSet MakeRedundantInstance(Vocabulary* vocab, const std::string& pred,
                              int core_cycle_len, int redundancy) {
  PredicateId p = vocab->MustPredicate(pred, 2);
  AtomSet out = MakeCycleInstance(vocab, pred, core_cycle_len);
  int fresh = 0;
  for (int i = 0; i < core_cycle_len; ++i) {
    Term a = Node(vocab, "cyc", i);
    Term b = Node(vocab, "cyc", (i + 1) % core_cycle_len);
    for (int r = 0; r < redundancy; ++r) {
      // Shadow copy of the edge a→b: fresh x, y with x→y, x→b, a→y. All
      // three atoms fold onto a→b via x ↦ a, y ↦ b, so the core is the
      // original cycle.
      Term x = Node(vocab, "red", fresh++);
      Term y = Node(vocab, "red", fresh++);
      out.Insert(Atom(p, {x, y}));
      out.Insert(Atom(p, {x, b}));
      out.Insert(Atom(p, {a, y}));
    }
  }
  return out;
}

}  // namespace twchase
