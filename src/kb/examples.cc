#include "kb/examples.h"

#include <algorithm>
#include <string>

#include "util/status.h"

namespace twchase {

// ---------------------------------------------------------------------------
// Steepening staircase (Definition 7 / Figure 2).
//
//   R^h_1: h(X,X) → ∃X',Y,Y'. h(X,Y) ∧ v(X,X') ∧ h(X',Y') ∧ v(Y,Y') ∧ c(Y')
//   R^h_2: h(X,X) ∧ v(X,X') ∧ h(X',X') ∧ h(X',Y') → ∃Y. c(Y') ∧ h(X,Y) ∧ v(Y,Y')
//   R^h_3: f(X) ∧ h(X,X) ∧ h(X,Y) → f(Y) ∧ h(Y,Y)
//   R^h_4: h(X,X) ∧ v(X,X') ∧ c(X') → h(X',X')
//   F_h  = {f(X^0_0), h(X^0_0, X^0_0)}
// ---------------------------------------------------------------------------

StaircaseWorld::StaircaseWorld() {
  KbBuilder b;
  f_ = b.vocab()->MustPredicate("f", 1);
  c_ = b.vocab()->MustPredicate("c", 1);
  h_ = b.vocab()->MustPredicate("h", 2);
  v_ = b.vocab()->MustPredicate("v", 2);
  Term x = b.V("X"), xp = b.V("Xp"), y = b.V("Y"), yp = b.V("Yp");
  Term x00 = b.V("X_0_0");

  b.Fact("f", {x00});
  b.Fact("h", {x00, x00});

  b.AddRule("Rh1", {b.A("h", {x, x})},
            {b.A("h", {x, y}), b.A("v", {x, xp}), b.A("h", {xp, yp}),
             b.A("v", {y, yp}), b.A("c", {yp})});
  b.AddRule("Rh2",
            {b.A("h", {x, x}), b.A("v", {x, xp}), b.A("h", {xp, xp}),
             b.A("h", {xp, yp})},
            {b.A("c", {yp}), b.A("h", {x, y}), b.A("v", {y, yp})});
  b.AddRule("Rh3", {b.A("f", {x}), b.A("h", {x, x}), b.A("h", {x, y})},
            {b.A("f", {y}), b.A("h", {y, y})});
  b.AddRule("Rh4", {b.A("h", {x, x}), b.A("v", {x, xp}), b.A("c", {xp})},
            {b.A("h", {xp, xp})});
  kb_ = b.Build();
}

Term StaircaseWorld::X(int i, int j) {
  return kb_.vocab->NamedVariable("X_" + std::to_string(i) + "_" +
                                  std::to_string(j));
}

// Atoms of I^h (Definition 8): terms X^i_j with 0 ≤ j ≤ i + 1;
//   f(X^i_0)                         for all i
//   c(X^i_j)                         for 1 ≤ j ≤ i
//   h(X^i_j, X^{i+1}_j)              whenever both cells exist
//   h(X^i_j, X^i_j)                  for j ≤ i
//   v(X^i_j, X^i_{j+1})              whenever both cells exist
AtomSet StaircaseWorld::InducedUniversalModel(int max_col) {
  AtomSet out;
  auto valid = [max_col](int i, int j) {
    return i >= 0 && i <= max_col && j >= 0 && j <= i + 1;
  };
  for (int i = 0; i <= max_col; ++i) {
    for (int j = 0; j <= i + 1; ++j) {
      Term t = X(i, j);
      if (j == 0) out.Insert(Atom(f_, {t}));
      if (j >= 1 && j <= i) out.Insert(Atom(c_, {t}));
      if (j <= i) out.Insert(Atom(h_, {t, t}));
      if (valid(i + 1, j)) out.Insert(Atom(h_, {t, X(i + 1, j)}));
      if (valid(i, j + 1)) out.Insert(Atom(v_, {t, X(i, j + 1)}));
    }
  }
  return out;
}

AtomSet StaircaseWorld::UniversalModelPrefix(int max_col) {
  return InducedUniversalModel(max_col);
}

AtomSet StaircaseWorld::Column(int k) {
  // Induced subinstance of I^h on {X^k_j | j ≤ k}: within one column there
  // are no h-edges between distinct cells, so this is the v-path with labels
  // and self-loops.
  AtomSet out;
  for (int j = 0; j <= k; ++j) {
    Term t = X(k, j);
    if (j == 0) out.Insert(Atom(f_, {t}));
    if (j >= 1) out.Insert(Atom(c_, {t}));
    out.Insert(Atom(h_, {t, t}));
    if (j + 1 <= k) out.Insert(Atom(v_, {t, X(k, j + 1)}));
  }
  return out;
}

AtomSet StaircaseWorld::Step(int k) {
  // Induced subinstance on C_k ∪ C_{k+1} ∪ {X^k_{k+1}}.
  AtomSet out;
  auto in_set = [k](int i, int j) {
    if (i == k && j >= 0 && j <= k + 1) return true;   // C_k plus top element
    if (i == k + 1 && j >= 0 && j <= k + 1) return true;  // C_{k+1}
    return false;
  };
  for (int i = k; i <= k + 1; ++i) {
    for (int j = 0; j <= i + 1; ++j) {
      if (!in_set(i, j)) continue;
      Term t = X(i, j);
      if (j == 0) out.Insert(Atom(f_, {t}));
      if (j >= 1 && j <= i) out.Insert(Atom(c_, {t}));
      if (j <= i) out.Insert(Atom(h_, {t, t}));
      if (in_set(i + 1, j)) out.Insert(Atom(h_, {t, X(i + 1, j)}));
      if (in_set(i, j + 1)) out.Insert(Atom(v_, {t, X(i, j + 1)}));
    }
  }
  return out;
}

AtomSet StaircaseWorld::InfiniteColumnPrefix(int height) {
  // Cells Y_0 .. Y_height: f at the bottom, c above, h-loop everywhere,
  // v-path upward. Isomorphic to the robust aggregation of the core chase
  // on K_h (Section 8).
  AtomSet out;
  auto cell = [this](int j) {
    return kb_.vocab->NamedVariable("Ycol_" + std::to_string(j));
  };
  for (int j = 0; j <= height; ++j) {
    Term t = cell(j);
    if (j == 0) out.Insert(Atom(f_, {t}));
    if (j >= 1) out.Insert(Atom(c_, {t}));
    out.Insert(Atom(h_, {t, t}));
    if (j + 1 <= height) out.Insert(Atom(v_, {t, cell(j + 1)}));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Inflating elevator (Definition 9 / Figure 3).
//
//   R^v_1: c(X) ∧ h(X,Y) → ∃Y',Y''. v(Y,Y') ∧ v(Y',Y'') ∧ c(Y'')
//   R^v_2: d(X) ∧ f(X) ∧ v(X,X') → ∃Y'. h(X',Y') ∧ f(Y')
//   R^v_3: v(X,X') ∧ h(X,Y) → ∃Y'. v(Y,Y') ∧ h(X',Y')
//   R^v_4: c(X) → d(X)
//   R^v_5: v(X,X') ∧ d(X') → d(X)
//   R^v_6: h(X,Y) ∧ d(Y) ∧ f(Y) → f(X) ∧ v(X,X)
//   R^v_7: c(X) ∧ h(X,Y) ∧ v(Y,Y') ∧ f(Y') → h(X,Y')
//   F_v  = {c(X^0_0), d(X^0_0), h(X^0_0, X^1_0), f(X^1_0)}
// ---------------------------------------------------------------------------

ElevatorWorld::ElevatorWorld() {
  KbBuilder b;
  c_ = b.vocab()->MustPredicate("c", 1);
  d_ = b.vocab()->MustPredicate("d", 1);
  f_ = b.vocab()->MustPredicate("f", 1);
  h_ = b.vocab()->MustPredicate("h", 2);
  v_ = b.vocab()->MustPredicate("v", 2);
  Term x = b.V("X"), xp = b.V("Xp"), y = b.V("Y"), yp = b.V("Yp"),
       ypp = b.V("Ypp");
  Term x00 = b.V("X_0_0"), x10 = b.V("X_1_0");

  b.Fact("c", {x00});
  b.Fact("d", {x00});
  b.Fact("h", {x00, x10});
  b.Fact("f", {x10});

  b.AddRule("Rv1", {b.A("c", {x}), b.A("h", {x, y})},
            {b.A("v", {y, yp}), b.A("v", {yp, ypp}), b.A("c", {ypp})});
  b.AddRule("Rv2", {b.A("d", {x}), b.A("f", {x}), b.A("v", {x, xp})},
            {b.A("h", {xp, yp}), b.A("f", {yp})});
  b.AddRule("Rv3", {b.A("v", {x, xp}), b.A("h", {x, y})},
            {b.A("v", {y, yp}), b.A("h", {xp, yp})});
  b.AddRule("Rv4", {b.A("c", {x})}, {b.A("d", {x})});
  b.AddRule("Rv5", {b.A("v", {x, xp}), b.A("d", {xp})}, {b.A("d", {x})});
  b.AddRule("Rv6", {b.A("h", {x, y}), b.A("d", {y}), b.A("f", {y})},
            {b.A("f", {x}), b.A("v", {x, x})});
  b.AddRule("Rv7",
            {b.A("c", {x}), b.A("h", {x, y}), b.A("v", {y, yp}),
             b.A("f", {yp})},
            {b.A("h", {x, yp})});
  kb_ = b.Build();
}

Term ElevatorWorld::X(int i, int j) {
  return kb_.vocab->NamedVariable("X_" + std::to_string(i) + "_" +
                                  std::to_string(j));
}

// Atoms of I^v (Definition 10): terms X^i_j with max(0, i-1) ≤ j ≤ 2i;
//   d(X^i_j), f(X^i_j)                       for every cell
//   c(X^i_{2i})                              ceiling
//   h(X^i_j, X^{i+1}_k)                      for i ≤ j ≤ 2i and j ≤ k ≤ 2i+2
//     (the "fan": k = j is the horizontal edge; at the ceiling j = 2i the
//      fan degenerates to the diagonals h(X^i_{2i}, X^{i+1}_{2i+1}) and
//      h(X^i_{2i}, X^{i+1}_{2i+2}) listed explicitly in the paper. The fan
//      for j < 2i is forced by rule satisfaction: the R^v_3 trigger taking
//      the v-self-loop at X^i_j as its v-atom needs h(X^i_j, X^{i+1}_{j+1}),
//      and iterating yields the full fan — consistent with Definition 12's
//      removal clause, which quantifies over h(X^i_j, X^{i+1}_k), k > j.)
//   v(X^i_j, X^i_{j+1})                      within a column
//   v(X^i_j, X^i_j)                          for i ≤ j
// restricted to cells accepted by in_range(i, j).
template <typename InRange>
AtomSet ElevatorWorld::UniversalModelAtomsWhere(int max_col, InRange in_range) {
  AtomSet out;
  auto valid = [max_col, &in_range](int i, int j) {
    return i >= 0 && i <= max_col && j >= 0 && j >= i - 1 && j <= 2 * i &&
           in_range(i, j);
  };
  for (int i = 0; i <= max_col; ++i) {
    for (int j = std::max(0, i - 1); j <= 2 * i; ++j) {
      if (!valid(i, j)) continue;
      Term t = X(i, j);
      out.Insert(Atom(d_, {t}));
      out.Insert(Atom(f_, {t}));
      if (j == 2 * i) out.Insert(Atom(c_, {t}));
      if (j >= i) {
        for (int k = j; k <= 2 * i + 2; ++k) {
          if (valid(i + 1, k)) out.Insert(Atom(h_, {t, X(i + 1, k)}));
        }
        out.Insert(Atom(v_, {t, t}));
      }
      if (valid(i, j + 1)) out.Insert(Atom(v_, {t, X(i, j + 1)}));
    }
  }
  return out;
}

AtomSet ElevatorWorld::UniversalModelPrefix(int max_col) {
  return UniversalModelAtomsWhere(max_col, [](int, int) { return true; });
}

AtomSet ElevatorWorld::CeilingPrefix(int max_col) {
  return UniversalModelAtomsWhere(max_col,
                                  [](int i, int j) { return j == 2 * i; });
}

AtomSet ElevatorWorld::CoreObstruction(int n) {
  if (n <= 0) return kb_.facts;
  // Terms: the ceiling spine {X^i_{2i} | i ≤ ⌈n/2⌉} plus the box
  // {X^i_j | i ≤ n+1, j ≥ n} (cell validity i-1 ≤ j ≤ 2i applies).
  int spine_end = (n + 1) / 2;
  auto in_terms = [n, spine_end](int i, int j) {
    if (j == 2 * i && i <= spine_end) return true;
    return i <= n + 1 && j >= n;
  };
  AtomSet out = UniversalModelAtomsWhere(
      n + 1, [&](int i, int j) { return in_terms(i, j); });
  // Removals per Definition 12: v-loops and f above row n, and "diagonal"
  // h-atoms h(X^i_j, X^{i+1}_k) with k > j and k > n.
  for (int i = 0; i <= n + 1; ++i) {
    for (int j = 0; j <= 2 * i; ++j) {
      if (!in_terms(i, j)) continue;
      Term t = X(i, j);
      if (j > n) {
        out.Erase(Atom(v_, {t, t}));
        out.Erase(Atom(f_, {t}));
      }
      // Fan atoms h(X^i_j, X^{i+1}_k) with k > j and k > n.
      for (int k = j + 1; k <= 2 * i + 2; ++k) {
        if (k > n) out.Erase(Atom(h_, {t, X(i + 1, k)}));
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Class-separating rulesets (proof of Proposition 13).
// ---------------------------------------------------------------------------

KnowledgeBase MakeBtsNotFes() {
  KbBuilder b;
  Term x = b.V("X"), y = b.V("Y"), z = b.V("Z");
  b.Fact("r", {b.C("a"), b.C("b")});
  b.AddRule("grow", {b.A("r", {x, y})}, {b.A("r", {y, z})});
  return b.Build();
}

KnowledgeBase MakeFesNotBts() {
  KbBuilder b;
  Term x = b.V("X"), y = b.V("Y"), z = b.V("Z"), v = b.V("V");
  b.Fact("r", {b.C("a"), b.C("b")});
  b.Fact("r", {b.C("b"), b.C("c")});
  b.AddRule("clique",
            {b.A("r", {x, y}), b.A("r", {y, z})},
            {b.A("r", {x, x}), b.A("r", {x, z}), b.A("r", {z, v})});
  return b.Build();
}

KnowledgeBase MakeGuardedChain(int chain_predicates) {
  TWCHASE_CHECK(chain_predicates >= 1);
  KbBuilder b;
  Term x = b.V("X"), y = b.V("Y"), z = b.V("Z");
  b.Fact("r0", {b.C("a"), b.C("b")});
  for (int i = 0; i < chain_predicates; ++i) {
    std::string from = "r" + std::to_string(i);
    std::string to = "r" + std::to_string((i + 1) % chain_predicates);
    b.AddRule("chain" + std::to_string(i), {b.A(from, {x, y})},
              {b.A(to, {y, z})});
  }
  return b.Build();
}

KnowledgeBase MakeWeaklyAcyclicPipeline(int stages) {
  TWCHASE_CHECK(stages >= 1);
  KbBuilder b;
  Term x = b.V("X"), y = b.V("Y");
  b.Fact("s0", {b.C("a")});
  b.Fact("s0", {b.C("b")});
  for (int i = 0; i < stages; ++i) {
    std::string s = "s" + std::to_string(i);
    std::string r = "r" + std::to_string(i);
    std::string next = "s" + std::to_string(i + 1);
    b.AddRule("mint" + std::to_string(i), {b.A(s, {x})}, {b.A(r, {x, y})});
    b.AddRule("pass" + std::to_string(i), {b.A(r, {x, y})}, {b.A(next, {y})});
  }
  return b.Build();
}

KnowledgeBase MakeTransitiveClosure(int path_length) {
  KbBuilder b;
  Term x = b.V("X"), y = b.V("Y"), z = b.V("Z");
  for (int i = 0; i < path_length; ++i) {
    b.Fact("e", {b.C("n" + std::to_string(i)), b.C("n" + std::to_string(i + 1))});
  }
  b.AddRule("base", {b.A("e", {x, y})}, {b.A("t", {x, y})});
  b.AddRule("step", {b.A("e", {x, y}), b.A("t", {y, z})}, {b.A("t", {x, z})});
  return b.Build();
}

}  // namespace twchase
