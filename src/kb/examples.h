// The paper's example knowledge bases and their closed-form (prefix)
// models:
//   * the steepening staircase K_h (Definition 7, Figure 2) with the
//     universal model I^h (Definition 8), its columns C^h_k, steps S^h_k and
//     the infinite-column model Ỹ^h;
//   * the inflating elevator K_v (Definition 9, Figure 3) with the universal
//     models I^v and I^v* (Definitions 10–11) and the growing cores I^v_n
//     (Definition 12);
//   * the rulesets separating fes and bts (proof of Proposition 13).
// Infinite structures are exposed as prefix generators (see DESIGN.md's
// substitution table).
#ifndef TWCHASE_KB_EXAMPLES_H_
#define TWCHASE_KB_EXAMPLES_H_

#include <memory>

#include "kb/knowledge_base.h"
#include "model/atom_set.h"

namespace twchase {

/// Steepening staircase world: K_h plus generators for the structures of
/// Section 6. Coordinates follow the paper: X(i, j) is the null at column i,
/// height j; valid cells satisfy j ≤ i + 1.
class StaircaseWorld {
 public:
  StaircaseWorld();

  const KnowledgeBase& kb() const { return kb_; }
  KnowledgeBase& mutable_kb() { return kb_; }
  const std::shared_ptr<Vocabulary>& vocab() const { return kb_.vocab; }

  /// The null X^i_j (registered on first use).
  Term X(int i, int j);

  /// P^h_k: the finite part of I^h up to column k (inclusive).
  AtomSet UniversalModelPrefix(int max_col);

  /// C^h_k: the induced subinstance of I^h on column k's cells {X^k_j}_{j≤k}.
  AtomSet Column(int k);

  /// S^h_k: the induced subinstance on C_k ∪ C_{k+1} ∪ {X^k_{k+1}} — one
  /// "step" of the staircase; treewidth ≤ 2 (Proposition 4).
  AtomSet Step(int k);

  /// Height-(m+1) prefix of the infinite column Ỹ^h (cells 0..m): v-path with
  /// f at the bottom, c above, and an h-loop on every cell. Ỹ^h is a model of
  /// K_h that is finitely universal but not universal (Section 8).
  AtomSet InfiniteColumnPrefix(int height);

 private:
  /// Atoms of I^h whose terms all satisfy `in_range(i, j)`.
  AtomSet InducedUniversalModel(int max_col);

  KnowledgeBase kb_;
  PredicateId f_, c_, h_, v_;
};

/// Inflating elevator world: K_v plus generators for Section 7. Valid cells
/// satisfy i - 1 ≤ j ≤ 2i.
class ElevatorWorld {
 public:
  ElevatorWorld();

  const KnowledgeBase& kb() const { return kb_; }
  KnowledgeBase& mutable_kb() { return kb_; }
  const std::shared_ptr<Vocabulary>& vocab() const { return kb_.vocab; }

  Term X(int i, int j);

  /// I^v restricted to columns ≤ max_col (Definition 10).
  AtomSet UniversalModelPrefix(int max_col);

  /// I^v* restricted to columns ≤ max_col (Definition 11): the ceiling chain
  /// X^0_0, X^1_2, X^2_4, ... — a universal model of treewidth 1.
  AtomSet CeilingPrefix(int max_col);

  /// I^v_n (Definition 12): the growing core that every core chase sequence
  /// must eventually contain; treewidth ≥ ⌊n/3⌋ + 1 (Proposition 8).
  /// I^v_0 = F_v.
  AtomSet CoreObstruction(int n);

 private:
  template <typename InRange>
  AtomSet UniversalModelAtomsWhere(int max_col, InRange in_range);

  KnowledgeBase kb_;
  PredicateId c_, d_, f_, h_, v_;
};

/// Σ = {r(X,Y) → ∃Z. r(Y,Z)} over F = {r(a,b)}: bts (restricted chase stays a
/// path, treewidth 1) but not fes (no finite universal model).
KnowledgeBase MakeBtsNotFes();

/// Σ = {r(X,Y) ∧ r(Y,Z) → ∃V. r(X,X) ∧ r(X,Z) ∧ r(Z,V)} over
/// F = {r(a,b), r(b,c)}: fes (core chase terminates) but not bts.
KnowledgeBase MakeFesNotBts();

/// Plain datalog transitive closure over a path: terminating and treewidth-
/// bounded for every chase variant (inside fes ∩ bts).
KnowledgeBase MakeTransitiveClosure(int path_length);

/// Guarded, non-terminating ruleset with chain_predicates relations
/// r_0 … r_{k-1}: r_i(X,Y) → ∃Z r_{(i+1) mod k}(Y,Z), over r_0(a,b).
/// Guardedness ⇒ bts; every chase element stays a path (treewidth 1).
KnowledgeBase MakeGuardedChain(int chain_predicates);

/// Weakly acyclic existential "pipeline" with `stages` predicates:
/// s_i(X) → ∃Y r_i(X,Y); r_i(X,Y) → s_{i+1}(Y). No cycle through a special
/// edge, so every chase variant terminates (fes) on any instance.
KnowledgeBase MakeWeaklyAcyclicPipeline(int stages);

}  // namespace twchase

#endif  // TWCHASE_KB_EXAMPLES_H_
