// Knowledge bases K = (F, Σ): a finite instance plus a finite ruleset,
// sharing one vocabulary (used by the chase to mint fresh nulls).
#ifndef TWCHASE_KB_KNOWLEDGE_BASE_H_
#define TWCHASE_KB_KNOWLEDGE_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "kb/rule.h"
#include "model/atom_set.h"
#include "model/predicate.h"

namespace twchase {

struct KnowledgeBase {
  std::shared_ptr<Vocabulary> vocab;
  AtomSet facts;
  std::vector<Rule> rules;

  /// True if an instance I satisfies every rule (every trigger is satisfied)
  /// and facts map into I — i.e. I is a model of the KB.
  bool IsModel(const AtomSet& instance) const;

  std::string ToString() const;
};

/// Fluent builder for programmatic KBs (example gallery, tests).
class KbBuilder {
 public:
  KbBuilder();

  /// Term helpers against the KB's vocabulary.
  Term C(const std::string& name);  // constant
  Term V(const std::string& name);  // named variable

  /// Parses "pred" with explicit args; declares the predicate on first use.
  Atom A(const std::string& predicate, std::vector<Term> args);

  KbBuilder& Fact(const std::string& predicate, std::vector<Term> args);
  KbBuilder& AddRule(const std::string& label, std::vector<Atom> body,
                     std::vector<Atom> head);

  KnowledgeBase Build();

  const std::shared_ptr<Vocabulary>& vocab() const { return vocab_; }

 private:
  std::shared_ptr<Vocabulary> vocab_;
  AtomSet facts_;
  std::vector<Rule> rules_;
};

}  // namespace twchase

#endif  // TWCHASE_KB_KNOWLEDGE_BASE_H_
