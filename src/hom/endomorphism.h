// Endomorphism and retraction machinery. A retraction of A is an
// endomorphism σ that is the identity on the terms of its image σ(A)
// (the retract). Retractions are what the paper's derivations record as
// "simplifications" (Definition 1).
#ifndef TWCHASE_HOM_ENDOMORPHISM_H_
#define TWCHASE_HOM_ENDOMORPHISM_H_

#include <optional>

#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

/// Searches for an endomorphism of `atoms` whose image avoids the variable
/// `var` entirely (a "fold" eliminating var). Returns nullopt if none exists.
/// A finite atomset is a core iff no variable admits such a fold.
std::optional<Substitution> FindFoldingEndomorphism(const AtomSet& atoms,
                                                    Term var);

/// Converts an arbitrary endomorphism h of `atoms` into a retraction with the
/// same (eventual) retract: iterates h until the image terms stabilise, then
/// keeps composing until the map is the identity on its image. Terminates in
/// at most ~2·|terms| compositions (the stabilised restriction of h is a
/// permutation of the retract's terms, so some power is the identity).
/// Aborts (CHECK) if h is not an endomorphism of `atoms`.
Substitution RetractionFromEndomorphism(const AtomSet& atoms,
                                        const Substitution& endo);

/// Searches for a *proper* retraction of `atoms` (one that eliminates at
/// least one term). Returns nullopt iff `atoms` is a core.
std::optional<Substitution> FindProperRetraction(const AtomSet& atoms);

/// Folds away as many of the given variables as possible while keeping every
/// *other* term fixed (the simplification of the frugal chase: only the
/// nulls freshly introduced by a rule application may be recognised as
/// redundant). Applies the folds to *atoms and returns the accumulated
/// retraction. Preserves an enabled delta journal (see ApplyRetractionRebuild).
/// When `fold_steps` is non-null, the individual fold retractions are
/// appended in application order — replaying them one by one through
/// ApplyRetractionRebuild reproduces this call exactly, journal entries
/// included (the chase's checkpoint/resume path depends on it).
Substitution FoldVariablesKeepingRestFixed(
    AtomSet* atoms, const std::vector<Term>& candidates,
    std::vector<Substitution>* fold_steps = nullptr);

/// Applies `retraction` to *atoms in place: every atom containing a moved
/// variable is erased and its image inserted (a retraction is the identity
/// on its image's terms, so no other atom changes). Set-equal to assigning
/// retraction.Apply(*atoms), but untouched atoms keep their slots and the
/// mutations flow through Insert/Erase — so an enabled delta journal records
/// them automatically. Used by the incremental core maintenance.
void ApplyRetractionInPlace(AtomSet* atoms, const Substitution& retraction);

/// Replaces *atoms with retraction(*atoms) exactly as assignment from
/// Substitution::Apply would (identical slot order — the chase's
/// deterministic schedules depend on it), carrying an enabled delta journal
/// across the rebuild: entries journaled so far are kept and the rebuild's
/// net changes (moved atoms erased, their images inserted) are appended.
void ApplyRetractionRebuild(AtomSet* atoms, const Substitution& retraction);

}  // namespace twchase

#endif  // TWCHASE_HOM_ENDOMORPHISM_H_
