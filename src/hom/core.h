// Core computation. The core of a finite atomset A is the unique-up-to-
// isomorphism smallest retract of A; A is a core iff its only retraction is
// the identity. The core chase (Deutsch, Nash, Remmel — "The chase
// revisited") retracts to a core after each rule application; this module
// supplies that simplification step.
#ifndef TWCHASE_HOM_CORE_H_
#define TWCHASE_HOM_CORE_H_

#include <unordered_set>
#include <vector>

#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

struct CoreResult {
  /// The core retract.
  AtomSet core;

  /// A retraction of the input onto `core` (identity on core's terms).
  Substitution retraction;

  /// Fold operations performed (singular pre-pass folds plus general
  /// retractions applied). 0 iff the input was already a core.
  size_t folds = 0;
};

struct CoreOptions {
  /// Run the cheap singular-fold pre-pass (one variable moved, positional
  /// candidate generation) before the general search. Off only for the
  /// ablation benchmarks.
  bool singular_prepass = true;
};

/// Computes the core of `atoms` by repeated variable folding: while some
/// variable X admits an endomorphism whose image avoids X, retract along it.
/// A finite atomset is a core iff no variable can be folded away (constants
/// are always in the image of any endomorphism, so only variables can
/// disappear).
CoreResult ComputeCore(const AtomSet& atoms, const CoreOptions& options = {});

/// True iff `atoms` admits no proper retraction.
bool IsCore(const AtomSet& atoms);

struct IncrementalCoreOptions {
  /// BFS radius (in atom hops from the added atoms' terms) defining the
  /// dirty variables eligible for targeted folding.
  size_t dirty_radius = 2;

  /// Cascade guard: fall back to a full recomputation once more than
  /// max(8, cascade_factor * |added|) folds fire in one update — the
  /// redundancy is not local to the new atoms, so chasing it fold by fold
  /// is no cheaper than starting over.
  size_t cascade_factor = 4;

  /// Options for the fallback ComputeCore.
  CoreOptions full;
};

/// Dirty-term fold state carried across successive IncrementalCoreUpdate
/// calls (one chase run threads a single instance through every step). The
/// carried terms are re-attempted for folding next call and exempted from
/// the verification scan, so regions the last update certified clean are not
/// re-probed from scratch. The state is only a hint: correctness never
/// depends on it (every update ends in either a verified core or a full
/// recomputation), but it MUST be cleared whenever the locality assumption
/// breaks — in particular on a cascade fallback, where the full ComputeCore
/// rewrites regions far outside the recorded dirty neighbourhood and the
/// recorded terms go stale (they may no longer exist, and the terms that DID
/// change are not recorded). Keeping it was the bug this struct fixes.
struct IncrementalCoreState {
  std::unordered_set<Term, TermHash> dirty;

  /// Insertion order of `dirty` — the deterministic fold-attempt order.
  std::vector<Term> dirty_order;

  void Clear() {
    dirty.clear();
    dirty_order.clear();
  }
};

struct IncrementalCoreResult {
  /// A retraction of the pre-update instance onto the final one.
  Substitution retraction;

  /// True when the update fell back to a full ComputeCore (cascade guard or
  /// a verification hit outside the dirty neighbourhood).
  bool fell_back = false;

  /// Fold operations performed; on fallback, the count includes the full
  /// recomputation's folds.
  size_t folds = 0;
};

/// Restores the core property of *atoms after the atoms in `added` were
/// inserted, assuming *atoms was a core beforehand: folds only variables
/// within dirty_radius of the added atoms, then verifies that no other
/// variable became foldable (new atoms can unlock folds arbitrarily far
/// away, so the verification pass is what makes the result exact — the
/// output is always a genuine core, never an approximation). Mutates
/// *atoms through Insert/Erase, so an enabled delta journal records the
/// changes automatically. The fold choices may differ from ComputeCore's,
/// so the resulting core agrees with it only up to isomorphism.
///
/// When `state` is non-null, its carried dirty terms seed this update's fold
/// front (ahead of the BFS from `added`, in their recorded order) and the
/// state is left describing the regions this update touched: cleared when
/// nothing folded (the instance was certified a core with no changes),
/// restricted to still-present terms after successful folds, and cleared
/// entirely on a cascade fallback.
IncrementalCoreResult IncrementalCoreUpdate(
    AtomSet* atoms, const std::vector<Atom>& added,
    const IncrementalCoreOptions& options = {},
    IncrementalCoreState* state = nullptr);

}  // namespace twchase

#endif  // TWCHASE_HOM_CORE_H_
