// Core computation. The core of a finite atomset A is the unique-up-to-
// isomorphism smallest retract of A; A is a core iff its only retraction is
// the identity. The core chase (Deutsch, Nash, Remmel — "The chase
// revisited") retracts to a core after each rule application; this module
// supplies that simplification step.
#ifndef TWCHASE_HOM_CORE_H_
#define TWCHASE_HOM_CORE_H_

#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

struct CoreResult {
  /// The core retract.
  AtomSet core;

  /// A retraction of the input onto `core` (identity on core's terms).
  Substitution retraction;
};

struct CoreOptions {
  /// Run the cheap singular-fold pre-pass (one variable moved, positional
  /// candidate generation) before the general search. Off only for the
  /// ablation benchmarks.
  bool singular_prepass = true;
};

/// Computes the core of `atoms` by repeated variable folding: while some
/// variable X admits an endomorphism whose image avoids X, retract along it.
/// A finite atomset is a core iff no variable can be folded away (constants
/// are always in the image of any endomorphism, so only variables can
/// disappear).
CoreResult ComputeCore(const AtomSet& atoms, const CoreOptions& options = {});

/// True iff `atoms` admits no proper retraction.
bool IsCore(const AtomSet& atoms);

}  // namespace twchase

#endif  // TWCHASE_HOM_CORE_H_
