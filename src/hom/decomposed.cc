#include "hom/decomposed.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hom/matcher.h"
#include "tw/heuristics.h"
#include "tw/tree_decomposition.h"

namespace twchase {
namespace {

// A bag relation: rows over the bag's columns (query terms, sorted by id).
struct BagRelation {
  std::vector<Term> columns;
  std::vector<std::vector<Term>> rows;
};

std::string KeyOf(const std::vector<Term>& row,
                  const std::vector<size_t>& positions) {
  std::string key;
  key.reserve(positions.size() * 5);
  for (size_t p : positions) {
    uint32_t raw = row[p].raw();
    key.append(reinterpret_cast<const char*>(&raw), sizeof(raw));
  }
  return key;
}

}  // namespace

StatusOr<DecomposedMatchResult> EntailsViaDecomposition(
    const AtomSet& target, const AtomSet& query,
    const DecomposedMatchOptions& options) {
  DecomposedMatchResult result;

  // Propositional (arity-0) atoms have no Gaifman vertex; check directly.
  std::vector<Atom> positional_atoms;
  bool propositional_ok = true;
  query.ForEach([&](const Atom& atom) {
    if (atom.args().empty()) {
      if (!target.Contains(atom)) propositional_ok = false;
    } else {
      positional_atoms.push_back(atom);
    }
  });
  if (!propositional_ok) {
    result.entailed = false;
    return result;
  }
  if (positional_atoms.empty()) {
    result.entailed = true;
    result.width = -1;
    return result;
  }

  // Decompose the query's Gaifman graph.
  std::vector<Term> term_of_vertex;
  Graph gaifman = Graph::GaifmanOf(query, &term_of_vertex);
  std::vector<int> order =
      GreedyEliminationOrder(gaifman, EliminationHeuristic::kMinFill);
  TreeDecomposition td = DecompositionFromEliminationOrder(gaifman, order);
  result.width = td.Width();
  std::unordered_map<Term, int, TermHash> vertex_of;
  for (size_t i = 0; i < term_of_vertex.size(); ++i) {
    vertex_of.emplace(term_of_vertex[i], static_cast<int>(i));
  }

  // Assign each atom to the first bag containing all its vertices.
  size_t num_bags = td.bags.size();
  std::vector<std::vector<Atom>> atoms_of_bag(num_bags);
  for (const Atom& atom : positional_atoms) {
    std::vector<int> vertices;
    for (Term t : atom.DistinctTerms()) vertices.push_back(vertex_of.at(t));
    std::sort(vertices.begin(), vertices.end());
    bool placed = false;
    for (size_t b = 0; b < num_bags && !placed; ++b) {
      if (std::includes(td.bags[b].begin(), td.bags[b].end(), vertices.begin(),
                        vertices.end())) {
        atoms_of_bag[b].push_back(atom);
        placed = true;
      }
    }
    TWCHASE_CHECK_MSG(placed, "atom not covered by any bag");
  }

  // Per-variable global candidate domains: the terms appearing in the target
  // at positions where the variable occurs in the query. Used for bag
  // columns whose variable has no atom assigned to that bag.
  std::unordered_map<Term, std::vector<Term>, TermHash> domain;
  for (const Atom& atom : positional_atoms) {
    for (size_t i = 0; i < atom.args().size(); ++i) {
      Term v = atom.arg(i);
      if (!v.is_variable() || domain.contains(v)) continue;
      std::unordered_set<Term, TermHash> values;
      for (const Atom* cand : target.ByPredicate(atom.predicate())) {
        if (cand->arity() == atom.arity()) values.insert(cand->arg(i));
      }
      domain.emplace(v, std::vector<Term>(values.begin(), values.end()));
    }
  }

  // Build bag relations.
  std::vector<BagRelation> relations(num_bags);
  for (size_t b = 0; b < num_bags; ++b) {
    BagRelation& rel = relations[b];
    for (int v : td.bags[b]) rel.columns.push_back(term_of_vertex[v]);
    // Enumerate assignments of the bag's assigned atoms.
    AtomSet bag_pattern = AtomSet::FromAtoms(atoms_of_bag[b]);
    HomOptions hom_options;
    hom_options.limit = options.max_rows_per_bag + 1;
    std::vector<Substitution> homs =
        FindAllHomomorphisms(bag_pattern, target, hom_options);
    if (homs.size() > options.max_rows_per_bag) {
      return Status::ResourceExhausted("bag relation exceeds row budget");
    }
    // Extend each assignment over the uncovered columns via their domains.
    std::vector<size_t> uncovered;
    for (size_t c = 0; c < rel.columns.size(); ++c) {
      Term t = rel.columns[c];
      if (t.is_constant()) continue;  // constants assign themselves
      if (!bag_pattern.ContainsTerm(t)) uncovered.push_back(c);
    }
    for (const Substitution& hom : homs) {
      std::vector<std::vector<Term>> partials;
      {
        std::vector<Term> row(rel.columns.size());
        for (size_t c = 0; c < rel.columns.size(); ++c) {
          row[c] = hom.Apply(rel.columns[c]);  // constants map to themselves
        }
        partials.push_back(std::move(row));
      }
      for (size_t c : uncovered) {
        Term var = rel.columns[c];
        auto it = domain.find(var);
        if (it == domain.end() || it->second.empty()) {
          partials.clear();
          break;
        }
        std::vector<std::vector<Term>> extended;
        extended.reserve(partials.size() * it->second.size());
        for (const auto& partial : partials) {
          for (Term value : it->second) {
            std::vector<Term> row = partial;
            row[c] = value;
            extended.push_back(std::move(row));
            if (extended.size() > options.max_rows_per_bag) {
              return Status::ResourceExhausted(
                  "uncovered-column expansion exceeds row budget");
            }
          }
        }
        partials = std::move(extended);
      }
      for (auto& row : partials) rel.rows.push_back(std::move(row));
      if (rel.rows.size() > options.max_rows_per_bag) {
        return Status::ResourceExhausted("bag relation exceeds row budget");
      }
    }
    result.max_rows = std::max(result.max_rows, rel.rows.size());
    if (rel.rows.empty()) {
      result.entailed = false;
      return result;
    }
  }

  // Root the tree at bag 0 and compute a post-order.
  std::vector<std::vector<int>> children(num_bags);
  {
    std::vector<std::vector<int>> adj(num_bags);
    for (const auto& [a, b] : td.edges) {
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
    std::vector<int> stack{0};
    std::vector<bool> visited(num_bags, false);
    visited[0] = true;
    std::vector<int> preorder;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      preorder.push_back(u);
      for (int w : adj[u]) {
        if (!visited[w]) {
          visited[w] = true;
          children[u].push_back(w);
          stack.push_back(w);
        }
      }
    }
    // Bottom-up pass: process bags in reverse preorder (children first).
    for (auto it = preorder.rbegin(); it != preorder.rend(); ++it) {
      int b = *it;
      for (int child : children[b]) {
        // Shared columns between b and child.
        std::vector<size_t> parent_pos, child_pos;
        const auto& pc = relations[b].columns;
        const auto& cc = relations[child].columns;
        for (size_t i = 0; i < pc.size(); ++i) {
          for (size_t j = 0; j < cc.size(); ++j) {
            if (pc[i] == cc[j]) {
              parent_pos.push_back(i);
              child_pos.push_back(j);
            }
          }
        }
        // Semijoin: keep parent rows whose projection occurs in the child.
        std::unordered_set<std::string> child_keys;
        for (const auto& row : relations[child].rows) {
          child_keys.insert(KeyOf(row, child_pos));
        }
        auto& rows = relations[b].rows;
        rows.erase(std::remove_if(rows.begin(), rows.end(),
                                  [&](const std::vector<Term>& row) {
                                    return !child_keys.contains(
                                        KeyOf(row, parent_pos));
                                  }),
                   rows.end());
        if (rows.empty()) {
          result.entailed = false;
          return result;
        }
      }
    }
  }
  result.entailed = !relations[0].rows.empty();
  return result;
}

}  // namespace twchase
