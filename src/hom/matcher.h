// Backtracking homomorphism search from a pattern atomset (CQ, rule body,
// whole instance) into a target instance. Uses the target's predicate and
// term postings for candidate generation and a greedy most-constrained-first
// static atom order. Supports:
//   * seeding with a partial substitution (trigger-satisfaction checks);
//   * a forbidden image term (folding search used by core computation:
//     a hom A → A∖{atoms containing X} without materialising the sub-instance);
//   * term-injective and variable-to-variable modes (isomorphism search).
//
// Thread-safety contract (relied on by core/parallel.h): every search here
// is a pure function of its arguments plus the per-thread ambient governor
// (util/governor.h, a thread_local) — no static mutable state, no writes to
// the pattern or target. Concurrent searches over a shared const AtomSet
// are safe as long as no thread mutates it; the chase's parallel
// match-establishment phase guarantees that by fanning out only between
// mutations. Search order, and hence the result vector, is deterministic.
#ifndef TWCHASE_HOM_MATCHER_H_
#define TWCHASE_HOM_MATCHER_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

/// Candidate-generation backend. kColumnar (the default) answers each search
/// node with an index probe / column scan over the target's ColumnSegments
/// and is bit-identical to kLegacy, the historical posting-list walk — the
/// storage-equivalence suite (tests/storage_equivalence_test.cc) is the
/// oracle. kLegacy remains as the fallback for searches the join path does
/// not cover (injective / vars-to-vars modes, mixed-arity predicates) and as
/// the baseline side of the benchmarks.
enum class MatchBackend { kColumnar = 0, kLegacy = 1 };

/// Process-wide backend switch (benchmarks and the equivalence tests flip
/// it between runs; searches read it once at construction).
void SetMatchBackend(MatchBackend backend);
MatchBackend CurrentMatchBackend();

/// Ambient chase.match.* telemetry. The chase installs one per run (and the
/// parallel evaluation re-installs the same object inside its workers, hence
/// the atomics); every HomSearch folds its probe/scan/fallback and index
/// (re)build counts into it. Totals are a pure function of the searches
/// performed, so they are identical at any --threads.
struct MatchCounters {
  std::atomic<uint64_t> index_probes{0};      // column-index EqualRange probes
  std::atomic<uint64_t> column_scans{0};      // full-segment scans (no bound arg)
  std::atomic<uint64_t> join_fallbacks{0};    // legacy-path nodes under kColumnar
  std::atomic<uint64_t> index_builds{0};      // lazy column-index (re)builds
  std::atomic<uint64_t> index_build_bytes{0};  // bytes of those builds
};

/// Installs `counters` as the thread's ambient MatchCounters for the scope
/// (nullptr suspends counting). Mirrors GovernorScope.
class MatchCountersScope {
 public:
  explicit MatchCountersScope(MatchCounters* counters);
  ~MatchCountersScope();

  MatchCountersScope(const MatchCountersScope&) = delete;
  MatchCountersScope& operator=(const MatchCountersScope&) = delete;

 private:
  MatchCounters* previous_;
};

/// The counters ambient on this thread, or nullptr.
MatchCounters* CurrentMatchCounters();

struct HomOptions {
  /// Pre-bound variables; the search only extends this mapping.
  Substitution seed;

  /// Stop after collecting this many homomorphisms. 0 means unbounded.
  size_t limit = 1;

  /// If set, no atom of the image may mention this term. Equivalent to
  /// matching into the target with every atom containing the term removed.
  std::optional<Term> forbidden_image_term;

  /// Require the mapping to be injective on terms (distinct pattern terms map
  /// to distinct target terms).
  bool injective = false;

  /// Require variables to map to variables (not constants).
  bool vars_to_vars = false;

  /// Value-ordering heuristic: try the identity candidate first in
  /// endomorphism-style searches (pattern ⊆ target). On by default; exposed
  /// for the ablation benchmarks.
  bool identity_first = true;
};

/// All homomorphisms from `pattern` to `target` satisfying `options`, up to
/// options.limit. Each result's domain is exactly vars(pattern) ∪ dom(seed).
std::vector<Substitution> FindAllHomomorphisms(const AtomSet& pattern,
                                               const AtomSet& target,
                                               const HomOptions& options);

/// First homomorphism found, or nullopt.
std::optional<Substitution> FindHomomorphism(const AtomSet& pattern,
                                             const AtomSet& target);

std::optional<Substitution> FindHomomorphism(const AtomSet& pattern,
                                             const AtomSet& target,
                                             const HomOptions& options);

bool ExistsHomomorphism(const AtomSet& pattern, const AtomSet& target);

/// True if `seed` extends to a homomorphism pattern → target. This is the
/// trigger-satisfaction test: tr = (B → H, π) is satisfied in I iff π extends
/// to a homomorphism from B ∪ H to I.
bool ExistsHomomorphismExtending(const AtomSet& pattern, const AtomSet& target,
                                 const Substitution& seed);

/// True iff pattern maps to target, i.e. target |= pattern as a Boolean CQ.
inline bool Entails(const AtomSet& target, const AtomSet& query) {
  return ExistsHomomorphism(query, target);
}

}  // namespace twchase

#endif  // TWCHASE_HOM_MATCHER_H_
