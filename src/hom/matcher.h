// Backtracking homomorphism search from a pattern atomset (CQ, rule body,
// whole instance) into a target instance. Uses the target's predicate and
// term postings for candidate generation and a greedy most-constrained-first
// static atom order. Supports:
//   * seeding with a partial substitution (trigger-satisfaction checks);
//   * a forbidden image term (folding search used by core computation:
//     a hom A → A∖{atoms containing X} without materialising the sub-instance);
//   * term-injective and variable-to-variable modes (isomorphism search).
//
// Thread-safety contract (relied on by core/parallel.h): every search here
// is a pure function of its arguments plus the per-thread ambient governor
// (util/governor.h, a thread_local) — no static mutable state, no writes to
// the pattern or target. Concurrent searches over a shared const AtomSet
// are safe as long as no thread mutates it; the chase's parallel
// match-establishment phase guarantees that by fanning out only between
// mutations. Search order, and hence the result vector, is deterministic.
#ifndef TWCHASE_HOM_MATCHER_H_
#define TWCHASE_HOM_MATCHER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

struct HomOptions {
  /// Pre-bound variables; the search only extends this mapping.
  Substitution seed;

  /// Stop after collecting this many homomorphisms. 0 means unbounded.
  size_t limit = 1;

  /// If set, no atom of the image may mention this term. Equivalent to
  /// matching into the target with every atom containing the term removed.
  std::optional<Term> forbidden_image_term;

  /// Require the mapping to be injective on terms (distinct pattern terms map
  /// to distinct target terms).
  bool injective = false;

  /// Require variables to map to variables (not constants).
  bool vars_to_vars = false;

  /// Value-ordering heuristic: try the identity candidate first in
  /// endomorphism-style searches (pattern ⊆ target). On by default; exposed
  /// for the ablation benchmarks.
  bool identity_first = true;
};

/// All homomorphisms from `pattern` to `target` satisfying `options`, up to
/// options.limit. Each result's domain is exactly vars(pattern) ∪ dom(seed).
std::vector<Substitution> FindAllHomomorphisms(const AtomSet& pattern,
                                               const AtomSet& target,
                                               const HomOptions& options);

/// First homomorphism found, or nullopt.
std::optional<Substitution> FindHomomorphism(const AtomSet& pattern,
                                             const AtomSet& target);

std::optional<Substitution> FindHomomorphism(const AtomSet& pattern,
                                             const AtomSet& target,
                                             const HomOptions& options);

bool ExistsHomomorphism(const AtomSet& pattern, const AtomSet& target);

/// True if `seed` extends to a homomorphism pattern → target. This is the
/// trigger-satisfaction test: tr = (B → H, π) is satisfied in I iff π extends
/// to a homomorphism from B ∪ H to I.
bool ExistsHomomorphismExtending(const AtomSet& pattern, const AtomSet& target,
                                 const Substitution& seed);

/// True iff pattern maps to target, i.e. target |= pattern as a Boolean CQ.
inline bool Entails(const AtomSet& target, const AtomSet& query) {
  return ExistsHomomorphism(query, target);
}

}  // namespace twchase

#endif  // TWCHASE_HOM_MATCHER_H_
