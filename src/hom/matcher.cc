#include "hom/matcher.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/fault.h"
#include "util/governor.h"
#include "util/status.h"

namespace twchase {

namespace {

// Backend switch, read once per search. Tests and benches flip it between
// runs; relaxed is enough (no data is published through it).
std::atomic<int> g_match_backend{static_cast<int>(MatchBackend::kColumnar)};

// Ambient per-thread counters pointer; the pointee is shared across threads
// (its fields are atomic), the pointer itself is thread-local like the
// governor ambient.
thread_local MatchCounters* g_match_counters = nullptr;

}  // namespace

void SetMatchBackend(MatchBackend backend) {
  g_match_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

MatchBackend CurrentMatchBackend() {
  return static_cast<MatchBackend>(
      g_match_backend.load(std::memory_order_relaxed));
}

MatchCountersScope::MatchCountersScope(MatchCounters* counters)
    : previous_(g_match_counters) {
  g_match_counters = counters;
}

MatchCountersScope::~MatchCountersScope() { g_match_counters = previous_; }

MatchCounters* CurrentMatchCounters() { return g_match_counters; }

namespace {

constexpr uint32_t kUnbound = 0xFFFFFFFFu;

// One backtracking search instance with dynamic most-constrained-first atom
// selection: at every node the next pattern atom is the one with the fewest
// candidate target atoms under the current partial binding. Pattern
// variables are renumbered into a dense local index so that the hot path
// (estimates, unification, rollback) is array access, not hashing.
// Not reusable.
//
// Candidate generation has two backends. The columnar join path
// (JoinCandidates) probes the target's per-predicate ColumnSegment: it picks
// the probe column by the legacy path's exact smallest-posting heuristic,
// binary-searches the lazily sorted column index for the bound image id, and
// verifies the remaining bound columns / repeated-variable constraints /
// forbidden term directly on the column cells. The legacy path
// (LegacyCandidates) walks the filtered posting lists. Bit-identity between
// the two holds because (a) atom selection (EstimateCandidates) is shared,
// (b) segment rows order exactly as posting slots, so the join path emits
// the unifying candidates in the legacy enumeration order, and (c) the
// identity-first reorder below reproduces the legacy swap restricted to the
// unifying candidates. Search() recursion — and with it governor polls and
// fault-injection visit schedules at kHomNode — therefore runs the same
// node sequence on both backends. See DESIGN.md §9 for the full argument.
class HomSearch {
 public:
  HomSearch(const AtomSet& pattern, const AtomSet& target,
            const HomOptions& options)
      : target_(target), options_(options) {
    backend_columnar_ = CurrentMatchBackend() == MatchBackend::kColumnar;
    // Injective and vars-to-vars searches prune candidates through mutable
    // search state (used_targets_); they keep the per-atom path.
    join_enabled_ =
        backend_columnar_ && !options.injective && !options.vars_to_vars;
    counters_ = CurrentMatchCounters();
    // Collect pattern atoms and build the local variable table.
    for (const Atom& atom : pattern.Atoms()) {
      PatAtom pat;
      pat.predicate = atom.predicate();
      pat.static_best = target_.CountByPredicate(atom.predicate());
      for (Term t : atom.args()) {
        if (t.is_variable()) {
          pat.args.push_back(Arg{LocalIndex(t), Term()});
        } else {
          pat.args.push_back(Arg{kNotVar, t});
          pat.static_best = std::min(pat.static_best, target_.CountByTerm(t));
        }
        if (options_.forbidden_image_term.has_value() &&
            t == *options_.forbidden_image_term) {
          pat.focus = true;
        }
      }
      if (pat.focus) ++remaining_focus_;
      pattern_atoms_.push_back(std::move(pat));
    }
    binding_.assign(var_terms_.size(), Term::Variable(kUnbound & 0x7FFFFFFF));
    bound_.assign(var_terms_.size(), false);
    assigned_.assign(pattern_atoms_.size(), false);
    // Seed bindings for pattern variables; seed entries for other variables
    // ride along and are re-attached at emit time.
    for (const auto& [var, term] : options_.seed.map()) {
      auto it = var_index_.find(var);
      if (it != var_index_.end()) {
        binding_[it->second] = term;
        bound_[it->second] = true;
      }
      if (options_.injective) used_targets_.insert(term);
    }
  }

  std::vector<Substitution> Run() {
    // An empty pattern has exactly one homomorphism: the seed itself.
    Search(pattern_atoms_.size());
    return std::move(results_);
  }

 private:
  static constexpr uint32_t kNotVar = 0xFFFFFFFFu;
  static constexpr size_t kInfinity = std::numeric_limits<size_t>::max();

  struct Arg {
    uint32_t var = kNotVar;  // local variable index, or kNotVar
    Term constant;           // valid iff var == kNotVar
  };

  struct PatAtom {
    PredicateId predicate = 0;
    std::vector<Arg> args;
    size_t static_best = 0;  // min over predicate / constant-arg postings
    bool focus = false;      // contains the forbidden image term (fold crux)
  };

  uint32_t LocalIndex(Term var) {
    auto [it, inserted] =
        var_index_.emplace(var, static_cast<uint32_t>(var_terms_.size()));
    if (inserted) var_terms_.push_back(var);
    return it->second;
  }

  bool AtomContains(const Atom& atom, Term t) const {
    for (Term a : atom.args()) {
      if (a == t) return true;
    }
    return false;
  }

  // Zero means a certain dead end (selected immediately to fail fast).
  size_t EstimateCandidates(const PatAtom& pat) const {
    size_t best = pat.static_best;
    size_t bound_args = 0;
    for (const Arg& arg : pat.args) {
      if (arg.var == kNotVar) {
        ++bound_args;
      } else if (bound_[arg.var]) {
        ++bound_args;
        best = std::min(best, target_.CountByTerm(binding_[arg.var]));
      }
    }
    if (best == 0) return 0;
    // Prefer atoms with more bound arguments on ties.
    return best * 4 + (3 - std::min<size_t>(bound_args, 3));
  }

  // Candidate target atoms for `pat` under the current binding, in the
  // order the legacy enumeration would attempt the ones that unify.
  std::vector<const Atom*> Candidates(const PatAtom& pat) {
    if (backend_columnar_) {
      const ColumnSegment* segment =
          join_enabled_ ? target_.SegmentFor(pat.predicate) : nullptr;
      if (segment != nullptr && segment->arity() == pat.args.size()) {
        return JoinCandidates(pat, *segment);
      }
      // A fallback worth counting: the predicate has atoms but the join
      // path cannot serve it (injective/vars-to-vars mode, mixed arity, or
      // a pattern/segment arity mismatch). An empty predicate is not a
      // fallback — both paths answer with no candidates.
      if (counters_ != nullptr &&
          target_.CountByPredicate(pat.predicate) > 0) {
        counters_->join_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return LegacyCandidates(pat);
  }

  // Columnar path: one EqualRange probe on the most selective bound column
  // (or a full segment scan when nothing is bound), then verification of
  // every remaining constraint against the column cells. Emits exactly the
  // candidates TryUnify would accept, in ascending slot order, then applies
  // the legacy identity-first reorder restricted to that subsequence.
  std::vector<const Atom*> JoinCandidates(const PatAtom& pat,
                                          const ColumnSegment& seg) {
    const TermDictionary& dict = target_.dictionary();
    const size_t arity = pat.args.size();
    col_bound_.assign(arity, 0);
    col_ids_.assign(arity, TermDictionary::kNoId);
    col_vars_.assign(arity, kNotVar);
    // Probe selection mirrors LegacyCandidates exactly (first strict
    // minimum of CountByTerm over the bound images) so that the identity
    // reorder below can reconstruct which posting the legacy path walked.
    std::optional<Term> best_term;
    size_t best_count = kInfinity;
    uint32_t probe_col = 0;
    bool dead = false;
    for (size_t i = 0; i < arity; ++i) {
      const Arg& arg = pat.args[i];
      Term image;
      if (arg.var == kNotVar) {
        image = arg.constant;
      } else if (bound_[arg.var]) {
        image = binding_[arg.var];
      } else {
        col_vars_[i] = arg.var;
        continue;
      }
      col_bound_[i] = 1;
      col_ids_[i] = dict.Find(image);
      // An image the target never stored cannot appear in any row.
      if (col_ids_[i] == TermDictionary::kNoId) dead = true;
      size_t count = target_.CountByTerm(image);
      if (count < best_count) {
        best_count = count;
        best_term = image;
        probe_col = static_cast<uint32_t>(i);
      }
    }
    std::vector<const Atom*> out;
    if (dead) return out;
    // Cells hold real ids, so comparing against kNoId (forbidden term not
    // in the dictionary) can never match — no extra guard needed.
    TermId forbidden_id = TermDictionary::kNoId;
    if (options_.forbidden_image_term.has_value()) {
      forbidden_id = dict.Find(*options_.forbidden_image_term);
    }
    auto verify_and_admit = [&](uint32_t row) {
      uint32_t slot = seg.slot(row);
      if (!target_.SlotAlive(slot)) return;
      for (size_t c = 0; c < arity; ++c) {
        TermId cell = seg.cell(row, static_cast<uint32_t>(c));
        if (cell == forbidden_id) return;
        if (col_bound_[c]) {
          if (cell != col_ids_[c]) return;
          continue;
        }
        // A repeated unbound variable must meet equal cells.
        for (size_t p = 0; p < c; ++p) {
          if (!col_bound_[p] && col_vars_[p] == col_vars_[c] &&
              seg.cell(row, static_cast<uint32_t>(p)) != cell) {
            return;
          }
        }
      }
      out.push_back(&target_.SlotAtom(slot));
    };
    if (best_term.has_value()) {
      IndexBuildStats build;
      const TermId probe_id = col_ids_[probe_col];
      ColumnSegment::ProbeResult range =
          seg.EqualRange(probe_col, probe_id, &build);
      if (counters_ != nullptr) {
        counters_->index_probes.fetch_add(1, std::memory_order_relaxed);
        if (build.builds > 0) {
          counters_->index_builds.fetch_add(build.builds,
                                            std::memory_order_relaxed);
          counters_->index_build_bytes.fetch_add(build.bytes,
                                                 std::memory_order_relaxed);
        }
      }
      for (const uint32_t* r = range.begin; r != range.end; ++r) {
        verify_and_admit(*r);
      }
      // Unmerged tail rows follow every sorted row, so scanning them second
      // keeps the enumeration in ascending slot order.
      for (uint32_t row = range.tail_begin; row != range.tail_end; ++row) {
        if (seg.cell(row, probe_col) == probe_id) verify_and_admit(row);
      }
    } else {
      if (counters_ != nullptr) {
        counters_->column_scans.fetch_add(1, std::memory_order_relaxed);
      }
      for (size_t row = 0; row < seg.rows(); ++row) {
        verify_and_admit(static_cast<uint32_t>(row));
      }
    }
    // Identity-first, restricted to the unifying subsequence. The legacy
    // swap moves the old head of its candidate list to the identity's
    // position; projected onto the unifying candidates that is a swap when
    // that head unifies, and a rotate of the identity to the front when it
    // does not. With fewer than two unifying candidates any reorder is the
    // identity permutation (also covering the legacy out.size() > 1 guard).
    if (!options_.identity_first || out.size() < 2) return out;
    size_t identity_pos = out.size();
    for (size_t j = 0; j < out.size(); ++j) {
      if (IsIdentityCandidate(pat, *out[j])) {
        identity_pos = j;
        break;
      }
    }
    if (identity_pos == out.size() || identity_pos == 0) return out;
    const Atom* first_legacy = LegacyFirstCandidate(
        pat, best_term, best_count <= target_.CountByPredicate(pat.predicate));
    if (first_legacy == out[0]) {
      std::swap(out[0], out[identity_pos]);
    } else {
      std::rotate(out.begin(), out.begin() + identity_pos,
                  out.begin() + identity_pos + 1);
    }
    return out;
  }

  // The first element of the candidate list LegacyCandidates would have
  // built (posting choice included), without materialising it. Used only to
  // decide the identity reorder's swap-vs-rotate case.
  const Atom* LegacyFirstCandidate(const PatAtom& pat,
                                   const std::optional<Term>& best_term,
                                   bool term_beats_predicate) const {
    auto admit = [&](const Atom& cand) {
      return !options_.forbidden_image_term.has_value() ||
             !AtomContains(cand, *options_.forbidden_image_term);
    };
    if (best_term.has_value() && term_beats_predicate) {
      const std::vector<AtomSet::Slot>* posting =
          target_.TermPostingSlots(*best_term);
      if (posting == nullptr) return nullptr;
      for (AtomSet::Slot s : *posting) {
        if (!target_.SlotAlive(s)) continue;
        const Atom& cand = target_.SlotAtom(s);
        if (cand.predicate() == pat.predicate && admit(cand)) return &cand;
      }
      return nullptr;
    }
    const std::vector<AtomSet::Slot>* posting =
        target_.PredicatePostingSlots(pat.predicate);
    if (posting == nullptr) return nullptr;
    for (AtomSet::Slot s : *posting) {
      if (!target_.SlotAlive(s)) continue;
      const Atom& cand = target_.SlotAtom(s);
      if (admit(cand)) return &cand;
    }
    return nullptr;
  }

  // Legacy path: the most selective posting available, filtered by the
  // forbidden image term, with the identity candidate (if present) first —
  // endomorphism-style searches then assign identity away from the conflict
  // area and backtrack locally.
  std::vector<const Atom*> LegacyCandidates(const PatAtom& pat) const {
    std::optional<Term> best_term;
    size_t best_count = kInfinity;
    for (const Arg& arg : pat.args) {
      Term image;
      if (arg.var == kNotVar) {
        image = arg.constant;
      } else if (bound_[arg.var]) {
        image = binding_[arg.var];
      } else {
        continue;
      }
      size_t count = target_.CountByTerm(image);
      if (count < best_count) {
        best_count = count;
        best_term = image;
      }
    }
    std::vector<const Atom*> out;
    auto admit = [&](const Atom* cand) {
      if (options_.forbidden_image_term.has_value() &&
          AtomContains(*cand, *options_.forbidden_image_term)) {
        return;
      }
      out.push_back(cand);
    };
    if (best_term.has_value() &&
        best_count <= target_.CountByPredicate(pat.predicate)) {
      for (const Atom* cand : target_.ByTerm(*best_term)) {
        if (cand->predicate() == pat.predicate) admit(cand);
      }
    } else {
      for (const Atom* cand : target_.ByPredicate(pat.predicate)) {
        admit(cand);
      }
    }
    if (options_.identity_first && out.size() > 1) {
      // Identity-first: the candidate whose args equal the pattern's args
      // under the current binding.
      for (size_t i = 0; i < out.size(); ++i) {
        if (IsIdentityCandidate(pat, *out[i])) {
          std::swap(out[0], out[i]);
          break;
        }
      }
    }
    return out;
  }

  bool IsIdentityCandidate(const PatAtom& pat, const Atom& cand) const {
    if (cand.args().size() != pat.args.size()) return false;
    for (size_t i = 0; i < pat.args.size(); ++i) {
      const Arg& arg = pat.args[i];
      Term expected = arg.var == kNotVar
                          ? arg.constant
                          : (bound_[arg.var] ? binding_[arg.var]
                                             : var_terms_[arg.var]);
      if (cand.arg(i) != expected) return false;
    }
    return true;
  }

  // Bindings made by TryUnify go onto the shared trail_; RollbackTo(mark)
  // undoes everything pushed after the mark. One growing vector instead of a
  // fresh vector per search node.
  bool TryUnify(const PatAtom& pat, const Atom& cand) {
    if (cand.args().size() != pat.args.size()) return false;
    for (size_t i = 0; i < pat.args.size(); ++i) {
      const Arg& arg = pat.args[i];
      Term image = cand.arg(i);
      if (arg.var == kNotVar) {
        if (arg.constant != image) return false;
        continue;
      }
      if (bound_[arg.var]) {
        if (binding_[arg.var] != image) return false;
        continue;
      }
      if (options_.vars_to_vars && image.is_constant()) return false;
      if (options_.injective) {
        if (used_targets_.contains(image)) return false;
        used_targets_.insert(image);
      }
      binding_[arg.var] = image;
      bound_[arg.var] = true;
      trail_.push_back(arg.var);
    }
    return true;
  }

  void RollbackTo(size_t mark) {
    while (trail_.size() > mark) {
      uint32_t var = trail_.back();
      trail_.pop_back();
      if (options_.injective) used_targets_.erase(binding_[var]);
      bound_[var] = false;
    }
  }

  void Emit() {
    Substitution result = options_.seed;
    for (size_t v = 0; v < var_terms_.size(); ++v) {
      if (bound_[v]) result.Bind(var_terms_[v], binding_[v]);
    }
    results_.push_back(std::move(result));
  }

  // Returns true when the search should stop (limit reached, or the ambient
  // resource governor fired — callers that must distinguish check
  // GovernorStopped(): results found before the stop are returned, but the
  // enumeration may be incomplete and a "no homomorphism" verdict is then
  // not trustworthy).
  bool Search(size_t remaining) {
    if (GovernorPoll(FaultSite::kHomNode)) return true;
    if (remaining == 0) {
      Emit();
      return options_.limit != 0 && results_.size() >= options_.limit;
    }
    // While "focus" atoms (those containing the term being folded away)
    // remain, select among them only: the satisfiability crux of a folding
    // search lives there, and deciding it before the bulk of the pattern
    // keeps UNSAT proofs local.
    size_t chosen = pattern_atoms_.size();
    size_t best_score = kInfinity;
    for (size_t i = 0; i < pattern_atoms_.size(); ++i) {
      if (assigned_[i]) continue;
      if (remaining_focus_ > 0 && !pattern_atoms_[i].focus) continue;
      size_t score = EstimateCandidates(pattern_atoms_[i]);
      if (score < best_score) {
        best_score = score;
        chosen = i;
        if (score == 0) break;
      }
    }
    TWCHASE_CHECK(chosen < pattern_atoms_.size());
    const PatAtom& pat = pattern_atoms_[chosen];
    assigned_[chosen] = true;
    if (pat.focus) --remaining_focus_;
    bool stop = false;
    for (const Atom* cand : Candidates(pat)) {
      size_t mark = trail_.size();
      if (TryUnify(pat, *cand)) {
        if (Search(remaining - 1)) {
          RollbackTo(mark);
          stop = true;
          break;
        }
      }
      RollbackTo(mark);
    }
    assigned_[chosen] = false;
    if (pat.focus) ++remaining_focus_;
    return stop;
  }

  const AtomSet& target_;
  const HomOptions& options_;
  std::vector<PatAtom> pattern_atoms_;
  std::unordered_map<Term, uint32_t, TermHash> var_index_;
  std::vector<Term> var_terms_;
  std::vector<Term> binding_;  // indexed by local variable
  std::vector<char> bound_;
  std::vector<char> assigned_;
  size_t remaining_focus_ = 0;
  std::vector<uint32_t> trail_;
  std::unordered_set<Term, TermHash> used_targets_;
  std::vector<Substitution> results_;
  bool backend_columnar_ = false;
  bool join_enabled_ = false;
  MatchCounters* counters_ = nullptr;
  // JoinCandidates per-position plan, reused across nodes so the hot path
  // allocates nothing after warm-up.
  std::vector<uint8_t> col_bound_;
  std::vector<TermId> col_ids_;
  std::vector<uint32_t> col_vars_;
};

}  // namespace

std::vector<Substitution> FindAllHomomorphisms(const AtomSet& pattern,
                                               const AtomSet& target,
                                               const HomOptions& options) {
  HomSearch search(pattern, target, options);
  return search.Run();
}

std::optional<Substitution> FindHomomorphism(const AtomSet& pattern,
                                             const AtomSet& target) {
  return FindHomomorphism(pattern, target, HomOptions{});
}

std::optional<Substitution> FindHomomorphism(const AtomSet& pattern,
                                             const AtomSet& target,
                                             const HomOptions& options) {
  HomOptions opts = options;
  opts.limit = 1;
  auto results = FindAllHomomorphisms(pattern, target, opts);
  if (results.empty()) return std::nullopt;
  return std::move(results.front());
}

bool ExistsHomomorphism(const AtomSet& pattern, const AtomSet& target) {
  return FindHomomorphism(pattern, target).has_value();
}

bool ExistsHomomorphismExtending(const AtomSet& pattern, const AtomSet& target,
                                 const Substitution& seed) {
  HomOptions options;
  options.seed = seed;
  options.limit = 1;
  return FindHomomorphism(pattern, target, options).has_value();
}

}  // namespace twchase
