#include "hom/matcher.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/fault.h"
#include "util/governor.h"
#include "util/status.h"

namespace twchase {
namespace {

constexpr uint32_t kUnbound = 0xFFFFFFFFu;

// One backtracking search instance with dynamic most-constrained-first atom
// selection: at every node the next pattern atom is the one with the fewest
// candidate target atoms under the current partial binding. Pattern
// variables are renumbered into a dense local index so that the hot path
// (estimates, unification, rollback) is array access, not hashing.
// Not reusable.
class HomSearch {
 public:
  HomSearch(const AtomSet& pattern, const AtomSet& target,
            const HomOptions& options)
      : target_(target), options_(options) {
    // Collect pattern atoms and build the local variable table.
    for (const Atom& atom : pattern.Atoms()) {
      PatAtom pat;
      pat.predicate = atom.predicate();
      pat.static_best = target_.CountByPredicate(atom.predicate());
      for (Term t : atom.args()) {
        if (t.is_variable()) {
          pat.args.push_back(Arg{LocalIndex(t), Term()});
        } else {
          pat.args.push_back(Arg{kNotVar, t});
          pat.static_best = std::min(pat.static_best, target_.CountByTerm(t));
        }
        if (options_.forbidden_image_term.has_value() &&
            t == *options_.forbidden_image_term) {
          pat.focus = true;
        }
      }
      if (pat.focus) ++remaining_focus_;
      pattern_atoms_.push_back(std::move(pat));
    }
    binding_.assign(var_terms_.size(), Term::Variable(kUnbound & 0x7FFFFFFF));
    bound_.assign(var_terms_.size(), false);
    assigned_.assign(pattern_atoms_.size(), false);
    // Seed bindings for pattern variables; seed entries for other variables
    // ride along and are re-attached at emit time.
    for (const auto& [var, term] : options_.seed.map()) {
      auto it = var_index_.find(var);
      if (it != var_index_.end()) {
        binding_[it->second] = term;
        bound_[it->second] = true;
      }
      if (options_.injective) used_targets_.insert(term);
    }
  }

  std::vector<Substitution> Run() {
    // An empty pattern has exactly one homomorphism: the seed itself.
    Search(pattern_atoms_.size());
    return std::move(results_);
  }

 private:
  static constexpr uint32_t kNotVar = 0xFFFFFFFFu;
  static constexpr size_t kInfinity = std::numeric_limits<size_t>::max();

  struct Arg {
    uint32_t var = kNotVar;  // local variable index, or kNotVar
    Term constant;           // valid iff var == kNotVar
  };

  struct PatAtom {
    PredicateId predicate = 0;
    std::vector<Arg> args;
    size_t static_best = 0;  // min over predicate / constant-arg postings
    bool focus = false;      // contains the forbidden image term (fold crux)
  };

  uint32_t LocalIndex(Term var) {
    auto [it, inserted] =
        var_index_.emplace(var, static_cast<uint32_t>(var_terms_.size()));
    if (inserted) var_terms_.push_back(var);
    return it->second;
  }

  bool AtomContains(const Atom& atom, Term t) const {
    for (Term a : atom.args()) {
      if (a == t) return true;
    }
    return false;
  }

  // Zero means a certain dead end (selected immediately to fail fast).
  size_t EstimateCandidates(const PatAtom& pat) const {
    size_t best = pat.static_best;
    size_t bound_args = 0;
    for (const Arg& arg : pat.args) {
      if (arg.var == kNotVar) {
        ++bound_args;
      } else if (bound_[arg.var]) {
        ++bound_args;
        best = std::min(best, target_.CountByTerm(binding_[arg.var]));
      }
    }
    if (best == 0) return 0;
    // Prefer atoms with more bound arguments on ties.
    return best * 4 + (3 - std::min<size_t>(bound_args, 3));
  }

  // Candidate target atoms for `pat` under the current binding: the most
  // selective posting available, filtered by the forbidden image term, with
  // the identity candidate (if present) first — endomorphism-style searches
  // then assign identity away from the conflict area and backtrack locally.
  std::vector<const Atom*> Candidates(const PatAtom& pat) const {
    std::optional<Term> best_term;
    size_t best_count = kInfinity;
    for (const Arg& arg : pat.args) {
      Term image;
      if (arg.var == kNotVar) {
        image = arg.constant;
      } else if (bound_[arg.var]) {
        image = binding_[arg.var];
      } else {
        continue;
      }
      size_t count = target_.CountByTerm(image);
      if (count < best_count) {
        best_count = count;
        best_term = image;
      }
    }
    std::vector<const Atom*> out;
    auto admit = [&](const Atom* cand) {
      if (options_.forbidden_image_term.has_value() &&
          AtomContains(*cand, *options_.forbidden_image_term)) {
        return;
      }
      out.push_back(cand);
    };
    if (best_term.has_value() &&
        best_count <= target_.CountByPredicate(pat.predicate)) {
      for (const Atom* cand : target_.ByTerm(*best_term)) {
        if (cand->predicate() == pat.predicate) admit(cand);
      }
    } else {
      for (const Atom* cand : target_.ByPredicate(pat.predicate)) {
        admit(cand);
      }
    }
    if (options_.identity_first && out.size() > 1) {
      // Identity-first: the candidate whose args equal the pattern's args
      // under the current binding.
      for (size_t i = 0; i < out.size(); ++i) {
        if (IsIdentityCandidate(pat, *out[i])) {
          std::swap(out[0], out[i]);
          break;
        }
      }
    }
    return out;
  }

  bool IsIdentityCandidate(const PatAtom& pat, const Atom& cand) const {
    if (cand.args().size() != pat.args.size()) return false;
    for (size_t i = 0; i < pat.args.size(); ++i) {
      const Arg& arg = pat.args[i];
      Term expected = arg.var == kNotVar
                          ? arg.constant
                          : (bound_[arg.var] ? binding_[arg.var]
                                             : var_terms_[arg.var]);
      if (cand.arg(i) != expected) return false;
    }
    return true;
  }

  // Bindings made by TryUnify go onto the shared trail_; RollbackTo(mark)
  // undoes everything pushed after the mark. One growing vector instead of a
  // fresh vector per search node.
  bool TryUnify(const PatAtom& pat, const Atom& cand) {
    if (cand.args().size() != pat.args.size()) return false;
    for (size_t i = 0; i < pat.args.size(); ++i) {
      const Arg& arg = pat.args[i];
      Term image = cand.arg(i);
      if (arg.var == kNotVar) {
        if (arg.constant != image) return false;
        continue;
      }
      if (bound_[arg.var]) {
        if (binding_[arg.var] != image) return false;
        continue;
      }
      if (options_.vars_to_vars && image.is_constant()) return false;
      if (options_.injective) {
        if (used_targets_.contains(image)) return false;
        used_targets_.insert(image);
      }
      binding_[arg.var] = image;
      bound_[arg.var] = true;
      trail_.push_back(arg.var);
    }
    return true;
  }

  void RollbackTo(size_t mark) {
    while (trail_.size() > mark) {
      uint32_t var = trail_.back();
      trail_.pop_back();
      if (options_.injective) used_targets_.erase(binding_[var]);
      bound_[var] = false;
    }
  }

  void Emit() {
    Substitution result = options_.seed;
    for (size_t v = 0; v < var_terms_.size(); ++v) {
      if (bound_[v]) result.Bind(var_terms_[v], binding_[v]);
    }
    results_.push_back(std::move(result));
  }

  // Returns true when the search should stop (limit reached, or the ambient
  // resource governor fired — callers that must distinguish check
  // GovernorStopped(): results found before the stop are returned, but the
  // enumeration may be incomplete and a "no homomorphism" verdict is then
  // not trustworthy).
  bool Search(size_t remaining) {
    if (GovernorPoll(FaultSite::kHomNode)) return true;
    if (remaining == 0) {
      Emit();
      return options_.limit != 0 && results_.size() >= options_.limit;
    }
    // While "focus" atoms (those containing the term being folded away)
    // remain, select among them only: the satisfiability crux of a folding
    // search lives there, and deciding it before the bulk of the pattern
    // keeps UNSAT proofs local.
    size_t chosen = pattern_atoms_.size();
    size_t best_score = kInfinity;
    for (size_t i = 0; i < pattern_atoms_.size(); ++i) {
      if (assigned_[i]) continue;
      if (remaining_focus_ > 0 && !pattern_atoms_[i].focus) continue;
      size_t score = EstimateCandidates(pattern_atoms_[i]);
      if (score < best_score) {
        best_score = score;
        chosen = i;
        if (score == 0) break;
      }
    }
    TWCHASE_CHECK(chosen < pattern_atoms_.size());
    const PatAtom& pat = pattern_atoms_[chosen];
    assigned_[chosen] = true;
    if (pat.focus) --remaining_focus_;
    bool stop = false;
    for (const Atom* cand : Candidates(pat)) {
      size_t mark = trail_.size();
      if (TryUnify(pat, *cand)) {
        if (Search(remaining - 1)) {
          RollbackTo(mark);
          stop = true;
          break;
        }
      }
      RollbackTo(mark);
    }
    assigned_[chosen] = false;
    if (pat.focus) ++remaining_focus_;
    return stop;
  }

  const AtomSet& target_;
  const HomOptions& options_;
  std::vector<PatAtom> pattern_atoms_;
  std::unordered_map<Term, uint32_t, TermHash> var_index_;
  std::vector<Term> var_terms_;
  std::vector<Term> binding_;  // indexed by local variable
  std::vector<char> bound_;
  std::vector<char> assigned_;
  size_t remaining_focus_ = 0;
  std::vector<uint32_t> trail_;
  std::unordered_set<Term, TermHash> used_targets_;
  std::vector<Substitution> results_;
};

}  // namespace

std::vector<Substitution> FindAllHomomorphisms(const AtomSet& pattern,
                                               const AtomSet& target,
                                               const HomOptions& options) {
  HomSearch search(pattern, target, options);
  return search.Run();
}

std::optional<Substitution> FindHomomorphism(const AtomSet& pattern,
                                             const AtomSet& target) {
  return FindHomomorphism(pattern, target, HomOptions{});
}

std::optional<Substitution> FindHomomorphism(const AtomSet& pattern,
                                             const AtomSet& target,
                                             const HomOptions& options) {
  HomOptions opts = options;
  opts.limit = 1;
  auto results = FindAllHomomorphisms(pattern, target, opts);
  if (results.empty()) return std::nullopt;
  return std::move(results.front());
}

bool ExistsHomomorphism(const AtomSet& pattern, const AtomSet& target) {
  return FindHomomorphism(pattern, target).has_value();
}

bool ExistsHomomorphismExtending(const AtomSet& pattern, const AtomSet& target,
                                 const Substitution& seed) {
  HomOptions options;
  options.seed = seed;
  options.limit = 1;
  return FindHomomorphism(pattern, target, options).has_value();
}

}  // namespace twchase
