#include "hom/answers.h"

#include <algorithm>
#include <set>

#include "hom/matcher.h"

namespace twchase {

std::vector<std::vector<Term>> AnswerQuery(const AtomSet& instance,
                                           const AtomSet& query,
                                           const std::vector<Term>& answer_vars,
                                           const AnswerOptions& options) {
  HomOptions hom_options;
  hom_options.limit = 0;  // enumerate all homomorphisms
  std::set<std::vector<Term>> distinct;
  for (const Substitution& hom :
       FindAllHomomorphisms(query, instance, hom_options)) {
    std::vector<Term> tuple;
    tuple.reserve(answer_vars.size());
    bool ground = true;
    for (Term v : answer_vars) {
      Term image = hom.Apply(v);
      if (image.is_variable()) ground = false;
      tuple.push_back(image);
    }
    if (options.ground_only && !ground) continue;
    distinct.insert(std::move(tuple));
    if (options.max_answers != 0 && distinct.size() >= options.max_answers) {
      break;
    }
  }
  return std::vector<std::vector<Term>>(distinct.begin(), distinct.end());
}

}  // namespace twchase
