// Treewidth-guided Boolean CQ evaluation: the algorithmic engine behind the
// paper's decidability-through-treewidth results. Instead of backtracking
// over the whole query at once, the query's Gaifman graph is tree-
// decomposed (min-fill), each atom is assigned to a bag covering it, bag
// relations are materialised, and a bottom-up semijoin pass (Yannakakis on
// the junction tree) decides satisfiability. For queries of treewidth w the
// running time is polynomial with exponent w+1 — this is Courcelle's
// tractability frontier made concrete for CQs.
#ifndef TWCHASE_HOM_DECOMPOSED_H_
#define TWCHASE_HOM_DECOMPOSED_H_

#include "model/atom_set.h"
#include "tw/treewidth.h"
#include "util/status.h"

namespace twchase {

struct DecomposedMatchOptions {
  /// Abort (ResourceExhausted) when a bag relation would exceed this many
  /// rows — the caller can then fall back to the backtracking matcher.
  size_t max_rows_per_bag = 200000;
};

struct DecomposedMatchResult {
  bool entailed = false;

  /// Width of the decomposition actually used.
  int width = -1;

  /// Largest bag relation materialised (cost indicator).
  size_t max_rows = 0;
};

/// Decides target |= query (Boolean CQ) via tree decomposition + semijoins.
/// Equivalent to ExistsHomomorphism(query, target); differs only in cost
/// profile.
StatusOr<DecomposedMatchResult> EntailsViaDecomposition(
    const AtomSet& target, const AtomSet& query,
    const DecomposedMatchOptions& options = {});

}  // namespace twchase

#endif  // TWCHASE_HOM_DECOMPOSED_H_
