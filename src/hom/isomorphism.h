// Isomorphism testing between finite atomsets, via injective
// variable-to-variable homomorphism search plus cardinality checks.
#ifndef TWCHASE_HOM_ISOMORPHISM_H_
#define TWCHASE_HOM_ISOMORPHISM_H_

#include <optional>

#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

/// Finds an isomorphism from `a` to `b` (a bijective homomorphism whose
/// inverse is also a homomorphism), or nullopt. Constants must match
/// identically; variables map bijectively to variables.
std::optional<Substitution> FindIsomorphism(const AtomSet& a, const AtomSet& b);

bool AreIsomorphic(const AtomSet& a, const AtomSet& b);

/// True iff a and b are homomorphically equivalent (map into each other).
/// Equivalent atomsets have isomorphic cores.
bool AreHomEquivalent(const AtomSet& a, const AtomSet& b);

}  // namespace twchase

#endif  // TWCHASE_HOM_ISOMORPHISM_H_
