// Non-Boolean CQ answering: enumerate the answer tuples of a query with
// distinguished (answer) variables against an instance. An answer is the
// projection of a homomorphism onto the answer variables; answers that
// contain labelled nulls are reported or filtered per the options (certain
// answers over an incomplete instance are the null-free ones).
#ifndef TWCHASE_HOM_ANSWERS_H_
#define TWCHASE_HOM_ANSWERS_H_

#include <vector>

#include "model/atom_set.h"
#include "model/term.h"

namespace twchase {

struct AnswerOptions {
  /// Stop after this many distinct answers (0 = unlimited).
  size_t max_answers = 0;

  /// Drop answers containing variables (labelled nulls). With this set, the
  /// result is the set of *certain* answers when the instance is a
  /// universal model.
  bool ground_only = false;
};

/// Distinct answer tuples, ordered lexicographically by term id. Answer
/// variables not occurring in the query map to themselves.
std::vector<std::vector<Term>> AnswerQuery(const AtomSet& instance,
                                           const AtomSet& query,
                                           const std::vector<Term>& answer_vars,
                                           const AnswerOptions& options = {});

}  // namespace twchase

#endif  // TWCHASE_HOM_ANSWERS_H_
