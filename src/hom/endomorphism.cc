#include "hom/endomorphism.h"

#include "hom/matcher.h"
#include "util/status.h"

namespace twchase {

std::optional<Substitution> FindFoldingEndomorphism(const AtomSet& atoms,
                                                    Term var) {
  TWCHASE_CHECK(var.is_variable());
  if (!atoms.ContainsTerm(var)) return std::nullopt;
  HomOptions options;
  options.limit = 1;
  options.forbidden_image_term = var;
  return FindHomomorphism(atoms, atoms, options);
}

Substitution RetractionFromEndomorphism(const AtomSet& atoms,
                                        const Substitution& endo) {
  TWCHASE_CHECK_MSG(endo.IsEndomorphismOf(atoms),
                    "RetractionFromEndomorphism: input is not an endomorphism");
  Substitution current = endo;
  // Computes h^k for k = 1, 2, 3, ... Once the image terms stabilise (after
  // s < |terms| steps) the restriction of h to them is a permutation p of
  // order m ≤ |terms|, and h^k is a retraction exactly when k ≥ s and
  // k ≡ 0 (mod m). Some such k lies in [s, s + m] ⊆ [1, 2·|terms|], so the
  // loop bound below is guaranteed to find it.
  size_t terms = atoms.Terms().size();
  size_t max_iters = 2 * terms + 8;
  for (size_t i = 0; i < max_iters; ++i) {
    if (current.IsRetractionOf(atoms)) return current;
    current = Substitution::Compose(endo, current);
  }
  // Incremental composition h^(k+1) visits every residue class of the
  // permutation order, so the loop above must have succeeded.
  TWCHASE_CHECK_MSG(false, "retraction iteration failed to converge");
  return current;
}

std::optional<Substitution> FindProperRetraction(const AtomSet& atoms) {
  for (Term var : atoms.Variables()) {
    auto endo = FindFoldingEndomorphism(atoms, var);
    if (endo.has_value()) {
      return RetractionFromEndomorphism(atoms, *endo);
    }
  }
  return std::nullopt;
}

Substitution FoldVariablesKeepingRestFixed(
    AtomSet* atoms, const std::vector<Term>& candidates,
    std::vector<Substitution>* fold_steps) {
  Substitution accumulated;
  for (Term x : candidates) {
    if (!atoms->ContainsTerm(x)) continue;
    // Identity seed on every variable except the remaining candidates: the
    // endomorphism may only move the fresh nulls.
    HomOptions options;
    options.limit = 1;
    options.forbidden_image_term = x;
    for (Term v : atoms->Variables()) {
      bool is_candidate = false;
      for (Term c : candidates) {
        if (c == v) {
          is_candidate = true;
          break;
        }
      }
      if (!is_candidate) options.seed.Bind(v, v);
    }
    auto endo = FindHomomorphism(*atoms, *atoms, options);
    if (!endo.has_value()) continue;
    Substitution retraction = RetractionFromEndomorphism(*atoms, *endo);
    ApplyRetractionRebuild(atoms, retraction);
    if (fold_steps != nullptr) fold_steps->push_back(retraction);
    accumulated = Substitution::Compose(retraction, accumulated);
  }
  return accumulated;
}

void ApplyRetractionInPlace(AtomSet* atoms, const Substitution& retraction) {
  for (const auto& [var, image] : retraction.map()) {
    if (var == image) continue;
    // Copy first: Erase/Insert invalidate the postings the pointers are into.
    std::vector<Atom> moved;
    for (const Atom* atom : atoms->ByTerm(var)) moved.push_back(*atom);
    for (const Atom& atom : moved) {
      atoms->Erase(atom);
      atoms->Insert(retraction.Apply(atom));
    }
  }
}

void ApplyRetractionRebuild(AtomSet* atoms, const Substitution& retraction) {
  AtomSet next = retraction.Apply(*atoms);
  if (atoms->delta_journal_enabled()) {
    next.EnableDeltaJournal();
    AtomSet::Delta carried = atoms->DrainDelta();
    for (const Atom& atom : carried.inserted) next.NoteExternalInsert(atom);
    for (const Atom& atom : carried.erased) next.NoteExternalErase(atom);
    for (const auto& [var, image] : retraction.map()) {
      if (var == image) continue;
      for (const Atom* atom : atoms->ByTerm(var)) {
        next.NoteExternalErase(*atom);
        next.NoteExternalInsert(retraction.Apply(*atom));
      }
    }
  }
  *atoms = std::move(next);
}

}  // namespace twchase
