#include "hom/isomorphism.h"

#include "hom/matcher.h"

namespace twchase {

std::optional<Substitution> FindIsomorphism(const AtomSet& a,
                                            const AtomSet& b) {
  if (a.size() != b.size()) return std::nullopt;
  if (a.Terms().size() != b.Terms().size()) return std::nullopt;
  HomOptions options;
  options.limit = 1;
  options.injective = true;
  options.vars_to_vars = true;
  auto hom = FindHomomorphism(a, b, options);
  if (!hom.has_value()) return std::nullopt;
  // An injective hom between equal-sized atomsets maps atoms injectively,
  // hence surjectively onto b; with equal term counts the inverse map is
  // well-defined and maps every atom of b = h(a) back into a, so it is an
  // isomorphism. No further check needed.
  return hom;
}

bool AreIsomorphic(const AtomSet& a, const AtomSet& b) {
  return FindIsomorphism(a, b).has_value();
}

bool AreHomEquivalent(const AtomSet& a, const AtomSet& b) {
  return ExistsHomomorphism(a, b) && ExistsHomomorphism(b, a);
}

}  // namespace twchase
