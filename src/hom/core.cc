#include "hom/core.h"

#include <optional>

#include "hom/endomorphism.h"
#include "util/status.h"

namespace twchase {
namespace {

// Fast pre-pass: a "singular" fold moves exactly one variable X onto another
// term Y and leaves everything else fixed. It is a retraction iff replacing
// X by Y in every atom containing X yields atoms already present. Checking
// all (X, Y) pairs costs |ByTerm(X)| lookups per candidate Y — orders of
// magnitude cheaper than a general fold search, and in chase workloads most
// redundancy collapses this way.
bool ApplySingularFolds(AtomSet* atoms, Substitution* accumulated) {
  bool any = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (Term x : atoms->Variables()) {
      // Candidate targets for x: terms y such that substituting y for x in
      // x's first atom yields an existing atom (derived positionally from
      // the same-predicate postings). Each candidate is then verified
      // against all of x's atoms.
      std::vector<const Atom*> x_atoms = atoms->ByTerm(x);
      if (x_atoms.empty()) continue;
      const Atom& probe = *x_atoms.front();
      std::vector<Term> candidates;
      for (const Atom* cand : atoms->ByPredicate(probe.predicate())) {
        if (cand->arity() != probe.arity()) continue;
        std::optional<Term> y;
        bool consistent = true;
        for (size_t i = 0; i < probe.args().size() && consistent; ++i) {
          if (probe.arg(i) == x) {
            if (!y.has_value() || *y == cand->arg(i)) {
              y = cand->arg(i);
            } else {
              consistent = false;
            }
          } else if (probe.arg(i) != cand->arg(i)) {
            consistent = false;
          }
        }
        if (consistent && y.has_value() && *y != x) candidates.push_back(*y);
      }
      for (Term y : candidates) {
        Substitution fold;
        fold.Bind(x, y);
        bool ok = true;
        for (const Atom* atom : x_atoms) {
          if (!atoms->Contains(fold.Apply(*atom))) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        *atoms = fold.Apply(*atoms);
        *accumulated = Substitution::Compose(fold, *accumulated);
        changed = true;
        any = true;
        break;
      }
      if (changed) break;  // variable snapshot is stale; restart
    }
  }
  return any;
}

}  // namespace

CoreResult ComputeCore(const AtomSet& atoms, const CoreOptions& options) {
  CoreResult result;
  result.core = atoms;
  if (options.singular_prepass) {
    ApplySingularFolds(&result.core, &result.retraction);
  }
  // Folding one variable can unlock folds of previously unfoldable variables
  // (removing atoms only makes the pattern side easier and never blocks a
  // fold whose image avoided the removed atoms — but blocked folds can become
  // possible). We therefore loop until a full pass eliminates nothing.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Term var : result.core.Variables()) {
      auto endo = FindFoldingEndomorphism(result.core, var);
      if (!endo.has_value()) continue;
      Substitution retraction =
          RetractionFromEndomorphism(result.core, *endo);
      result.core = retraction.Apply(result.core);
      result.retraction = Substitution::Compose(retraction, result.retraction);
      if (options.singular_prepass) {
        ApplySingularFolds(&result.core, &result.retraction);
      }
      changed = true;
    }
  }
  TWCHASE_CHECK(result.retraction.IsRetractionOf(atoms) ||
                result.retraction.empty());
  return result;
}

bool IsCore(const AtomSet& atoms) {
  for (Term var : atoms.Variables()) {
    if (FindFoldingEndomorphism(atoms, var).has_value()) return false;
  }
  return true;
}

}  // namespace twchase
