#include "hom/core.h"

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "hom/endomorphism.h"
#include "util/fault.h"
#include "util/governor.h"
#include "util/status.h"

namespace twchase {
namespace {

// A "singular" fold moves exactly one variable X onto another term Y and
// leaves everything else fixed. It is a retraction iff replacing X by Y in
// every atom containing X yields atoms already present. Checking all (X, Y)
// pairs costs |ByTerm(X)| lookups per candidate Y — orders of magnitude
// cheaper than a general fold search, and in chase workloads most redundancy
// collapses this way. Candidate targets for X are derived positionally from
// the same-predicate postings of X's first atom; each is verified against
// all of X's atoms, and the first verified candidate wins.
bool FindSingularFold(const AtomSet& atoms, Term x, Substitution* fold) {
  std::vector<const Atom*> x_atoms = atoms.ByTerm(x);
  if (x_atoms.empty()) return false;
  const Atom& probe = *x_atoms.front();
  for (const Atom* cand : atoms.ByPredicate(probe.predicate())) {
    if (cand->arity() != probe.arity()) continue;
    std::optional<Term> y;
    bool consistent = true;
    for (size_t i = 0; i < probe.args().size() && consistent; ++i) {
      if (probe.arg(i) == x) {
        if (!y.has_value() || *y == cand->arg(i)) {
          y = cand->arg(i);
        } else {
          consistent = false;
        }
      } else if (probe.arg(i) != cand->arg(i)) {
        consistent = false;
      }
    }
    if (!consistent || !y.has_value() || *y == x) continue;
    Substitution attempt;
    attempt.Bind(x, *y);
    bool ok = true;
    for (const Atom* atom : x_atoms) {
      if (!atoms.Contains(attempt.Apply(*atom))) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    *fold = std::move(attempt);
    return true;
  }
  return false;
}

// Fast pre-pass of ComputeCore: exhaust singular folds. Returns the number
// of folds applied.
size_t ApplySingularFolds(AtomSet* atoms, Substitution* accumulated) {
  size_t folds = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (Term x : atoms->Variables()) {
      Substitution fold;
      if (!FindSingularFold(*atoms, x, &fold)) continue;
      *atoms = fold.Apply(*atoms);
      *accumulated = Substitution::Compose(fold, *accumulated);
      changed = true;
      ++folds;
      break;  // variable snapshot is stale; restart
    }
  }
  return folds;
}

}  // namespace

CoreResult ComputeCore(const AtomSet& atoms, const CoreOptions& options) {
  CoreResult result;
  result.core = atoms;
  if (options.singular_prepass) {
    result.folds += ApplySingularFolds(&result.core, &result.retraction);
  }
  // Folding one variable can unlock folds of previously unfoldable variables
  // (removing atoms only makes the pattern side easier and never blocks a
  // fold whose image avoided the removed atoms — but blocked folds can become
  // possible). We therefore loop until a full pass eliminates nothing.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Term var : result.core.Variables()) {
      // Cooperative checkpoint between folds. Aborting here leaves a valid
      // partial state (each committed fold's composition is a retraction of
      // the input), but the result is not a core — callers that run under a
      // governor must check GovernorStopped() and discard.
      if (GovernorPoll(FaultSite::kCoreFold)) return result;
      auto endo = FindFoldingEndomorphism(result.core, var);
      if (!endo.has_value()) continue;
      Substitution retraction =
          RetractionFromEndomorphism(result.core, *endo);
      result.core = retraction.Apply(result.core);
      result.retraction = Substitution::Compose(retraction, result.retraction);
      ++result.folds;
      if (options.singular_prepass) {
        result.folds += ApplySingularFolds(&result.core, &result.retraction);
      }
      changed = true;
    }
  }
  TWCHASE_CHECK(result.retraction.IsRetractionOf(atoms) ||
                result.retraction.empty());
  return result;
}

bool IsCore(const AtomSet& atoms) {
  for (Term var : atoms.Variables()) {
    if (FindFoldingEndomorphism(atoms, var).has_value()) return false;
  }
  return true;
}

IncrementalCoreResult IncrementalCoreUpdate(
    AtomSet* atoms, const std::vector<Atom>& added,
    const IncrementalCoreOptions& options, IncrementalCoreState* state) {
  IncrementalCoreResult result;

  // Dirty terms: carried-over terms from the previous update first (still in
  // their recorded order), then a BFS over the atom-incidence graph from the
  // added atoms' terms, in deterministic first-seen order.
  std::unordered_set<Term, TermHash> dirty;
  std::vector<Term> dirty_order;
  std::vector<Term> frontier;
  if (state != nullptr) {
    for (Term t : state->dirty_order) {
      if (!atoms->ContainsTerm(t)) continue;
      if (dirty.insert(t).second) dirty_order.push_back(t);
    }
  }
  for (const Atom& atom : added) {
    for (Term t : atom.DistinctTerms()) {
      if (dirty.insert(t).second) {
        dirty_order.push_back(t);
        frontier.push_back(t);
      }
    }
  }
  for (size_t hop = 0; hop < options.dirty_radius && !frontier.empty();
       ++hop) {
    std::vector<Term> next;
    for (Term t : frontier) {
      for (const Atom* atom : atoms->ByTerm(t)) {
        for (Term u : atom->DistinctTerms()) {
          if (dirty.insert(u).second) {
            dirty_order.push_back(u);
            next.push_back(u);
          }
        }
      }
    }
    frontier = std::move(next);
  }

  // Targeted folds over the dirty variables: cheap singular folds first,
  // then general fold searches, to fixpoint. A general fold's retraction may
  // move non-dirty variables too (that is the beginning of a cascade); the
  // fold budget caps how far we chase it.
  const size_t fold_budget =
      std::max<size_t>(8, options.cascade_factor * added.size());
  size_t folds = 0;
  bool cascade = false;
  bool changed = true;
  while (changed && !cascade) {
    changed = false;
    for (Term x : dirty_order) {
      if (!x.is_variable() || !atoms->ContainsTerm(x)) continue;
      Substitution retraction;
      if (!FindSingularFold(*atoms, x, &retraction)) {
        auto endo = FindFoldingEndomorphism(*atoms, x);
        if (!endo.has_value()) continue;
        retraction = RetractionFromEndomorphism(*atoms, *endo);
      }
      ApplyRetractionInPlace(atoms, retraction);
      result.retraction = Substitution::Compose(retraction, result.retraction);
      changed = true;
      if (++folds > fold_budget) {
        cascade = true;
        break;
      }
    }
  }

  // Verification: the dirty variables are now unfoldable, but an added atom
  // can unlock a fold of a variable arbitrarily far away (its atoms' new
  // images may only now exist). Exactness requires scanning the rest; any
  // hit means the redundancy is non-local and a full recomputation takes
  // over from the current (already partially folded) instance — the
  // composition of retractions is again a retraction of the original.
  bool is_core = !cascade;
  if (is_core) {
    for (Term var : atoms->Variables()) {
      if (dirty.contains(var)) continue;
      if (FindFoldingEndomorphism(*atoms, var).has_value()) {
        is_core = false;
        break;
      }
    }
  }
  result.folds = folds;
  if (!is_core) {
    result.fell_back = true;
    CoreResult full = ComputeCore(*atoms, options.full);
    ApplyRetractionInPlace(atoms, full.retraction);
    result.retraction =
        Substitution::Compose(full.retraction, result.retraction);
    result.folds += full.folds;
    // The full recomputation rewrote regions far outside the dirty
    // neighbourhood; the recorded terms are stale (and do not cover what
    // actually changed), so the carried state must start over. Keeping it
    // here made the next update fold-attempt vanished terms and exempt
    // genuinely clean regions' stale ghosts from nothing while missing the
    // newly rewritten ones.
    if (state != nullptr) state->Clear();
    return result;
  }
  if (state != nullptr) {
    state->Clear();
    if (folds > 0) {
      // Folds fired: carry the touched neighbourhood (what still exists of
      // it) into the next update's fold front. With zero folds the instance
      // was certified unchanged, so there is nothing to carry.
      for (Term t : dirty_order) {
        if (!atoms->ContainsTerm(t)) continue;
        if (state->dirty.insert(t).second) state->dirty_order.push_back(t);
      }
    }
  }
  return result;
}

}  // namespace twchase
