#include "parser/lexer.h"

#include <cctype>

namespace twchase {

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  int line = 1, column = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < input.size() && input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  while (i < input.size()) {
    char ch = input[i];
    if (ch == '%') {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      advance(1);
      continue;
    }
    Token token;
    token.line = line;
    token.column = column;
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        advance(1);
      }
      token.text = std::string(input.substr(start, i - start));
      bool is_var = std::isupper(static_cast<unsigned char>(ch)) || ch == '_';
      token.kind = is_var ? TokenKind::kVariable : TokenKind::kIdentifier;
      out.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      // Numeric constants are ordinary identifiers (constants).
      size_t start = i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        advance(1);
      }
      token.text = std::string(input.substr(start, i - start));
      token.kind = TokenKind::kIdentifier;
      out.push_back(std::move(token));
      continue;
    }
    switch (ch) {
      case '(':
        token.kind = TokenKind::kLParen;
        break;
      case ')':
        token.kind = TokenKind::kRParen;
        break;
      case ',':
        token.kind = TokenKind::kComma;
        break;
      case '.':
        token.kind = TokenKind::kPeriod;
        break;
      case '?':
        token.kind = TokenKind::kQuestion;
        break;
      case '[':
        token.kind = TokenKind::kLBracket;
        break;
      case ']':
        token.kind = TokenKind::kRBracket;
        break;
      case ':':
        if (i + 1 < input.size() && input[i + 1] == '-') {
          token.kind = TokenKind::kImplies;
          advance(1);
          break;
        }
        [[fallthrough]];
      default:
        return Status::InvalidArgument(
            "unexpected character '" + std::string(1, ch) + "' at line " +
            std::to_string(line) + ", column " + std::to_string(column));
    }
    token.text = std::string(1, ch);
    advance(1);
    out.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  out.push_back(std::move(end));
  return out;
}

}  // namespace twchase
