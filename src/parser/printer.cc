#include "parser/printer.h"

#include <algorithm>
#include <unordered_map>

namespace twchase {
namespace {

// Canonical, re-parseable variable naming for one statement scope.
class VarNamer {
 public:
  std::string NameOf(Term var) {
    auto it = names_.find(var);
    if (it != names_.end()) return it->second;
    std::string name = "V" + std::to_string(names_.size() + 1);
    names_.emplace(var, name);
    return name;
  }

 private:
  std::unordered_map<Term, std::string, TermHash> names_;
};

std::string PrintAtomsWith(const std::vector<Atom>& atoms,
                           const Vocabulary& vocab, VarNamer* namer) {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += vocab.predicate(atoms[i].predicate()).name;
    out += '(';
    const auto& args = atoms[i].args();
    for (size_t j = 0; j < args.size(); ++j) {
      if (j > 0) out += ", ";
      out += args[j].is_variable() ? namer->NameOf(args[j])
                                   : vocab.TermName(args[j]);
    }
    out += ')';
  }
  return out;
}

std::vector<Atom> SortedAtoms(const AtomSet& atoms) {
  std::vector<Atom> out = atoms.Atoms();
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string PrintAtoms(const AtomSet& atoms, const Vocabulary& vocab) {
  VarNamer namer;
  return PrintAtomsWith(SortedAtoms(atoms), vocab, &namer);
}

std::string PrintQuery(const ParsedQuery& query, const Vocabulary& vocab) {
  VarNamer namer;
  std::string out = "?";
  if (!query.answer_vars.empty()) {
    out += '(';
    for (size_t i = 0; i < query.answer_vars.size(); ++i) {
      if (i > 0) out += ", ";
      out += namer.NameOf(query.answer_vars[i]);
    }
    out += ')';
  }
  out += " :- ";
  out += PrintAtomsWith(SortedAtoms(query.atoms), vocab, &namer);
  return out;
}

std::string PrintProgram(const KnowledgeBase& kb,
                         const std::vector<ParsedQuery>& queries) {
  std::string out;
  if (!kb.facts.empty()) {
    out += PrintAtoms(kb.facts, *kb.vocab);
    out += ".\n";
  }
  for (const Rule& rule : kb.rules) {
    VarNamer namer;  // shared across head and body of one rule
    if (!rule.label().empty()) out += "[" + rule.label() + "] ";
    out += PrintAtomsWith(SortedAtoms(rule.head()), *kb.vocab, &namer);
    out += " :- ";
    out += PrintAtomsWith(SortedAtoms(rule.body()), *kb.vocab, &namer);
    out += ".\n";
  }
  for (const ParsedQuery& query : queries) {
    out += PrintQuery(query, *kb.vocab);
    out += ".\n";
  }
  return out;
}

}  // namespace twchase
