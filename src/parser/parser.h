// Parser for the twchase text format. A program is a sequence of statements:
//   fact:   atom { "," atom } "."          (all atoms go into the fact base)
//   rule:   [ "[" label "]" ] atoms ":-" atoms "."
//   query:  "?" [ "(" vars ")" ] ":-" atoms "."
//           (without answer variables the query is Boolean)
// Predicates are declared implicitly with the arity of first use; arity
// clashes are errors. Variables are scoped per statement: the X in one rule
// is unrelated to the X in another.
#ifndef TWCHASE_PARSER_PARSER_H_
#define TWCHASE_PARSER_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "kb/knowledge_base.h"
#include "model/atom_set.h"
#include "util/status.h"

namespace twchase {

struct ParsedQuery {
  AtomSet atoms;

  /// Distinguished variables; empty for Boolean queries. Each must occur in
  /// the query atoms.
  std::vector<Term> answer_vars;
};

struct ParsedProgram {
  KnowledgeBase kb;
  std::vector<ParsedQuery> queries;
};

/// Parses a whole program into a fresh vocabulary.
StatusOr<ParsedProgram> ParseProgram(std::string_view input);

/// Parses into an existing vocabulary (predicates/constants are shared;
/// statement-scoped variables are renamed apart).
StatusOr<ParsedProgram> ParseProgram(std::string_view input,
                                     std::shared_ptr<Vocabulary> vocab);

}  // namespace twchase

#endif  // TWCHASE_PARSER_PARSER_H_
