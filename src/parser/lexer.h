// Lexer for the twchase text format (a DLGP-like syntax):
//   % comment to end of line
//   p(a, X).                      facts (uppercase / '_'-leading = variable)
//   [label] h(X,Y) :- b(X), c(Y). rules (head :- body)
//   ? :- p(X), q(X,Y).            Boolean CQs
#ifndef TWCHASE_PARSER_LEXER_H_
#define TWCHASE_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace twchase {

enum class TokenKind {
  kIdentifier,  // lowercase-leading: predicate or constant
  kVariable,    // uppercase- or '_'-leading
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kImplies,   // ":-"
  kQuestion,  // "?"
  kLBracket,
  kRBracket,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;
  int column = 1;
};

/// Tokenises the whole input; returns InvalidArgument on a bad character.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace twchase

#endif  // TWCHASE_PARSER_LEXER_H_
