#include "parser/parser.h"

#include <string>
#include <unordered_map>

#include "parser/lexer.h"

namespace twchase {
namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::shared_ptr<Vocabulary> vocab)
      : tokens_(std::move(tokens)), vocab_(std::move(vocab)) {}

  StatusOr<ParsedProgram> Run() {
    ParsedProgram program;
    program.kb.vocab = vocab_;
    while (Peek().kind != TokenKind::kEnd) {
      TWCHASE_RETURN_IF_ERROR(ParseStatement(&program));
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  Status ErrorAt(const Token& token, const std::string& message) {
    return Status::InvalidArgument(message + " at line " +
                                   std::to_string(token.line) + ", column " +
                                   std::to_string(token.column));
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return ErrorAt(Peek(), std::string("expected ") + what);
    }
    Next();
    return Status::OK();
  }

  // Per-statement variable scope: each syntactic variable name maps to a
  // fresh vocabulary variable, unique to the statement.
  Term ScopedVariable(const std::string& name) {
    auto it = scope_.find(name);
    if (it != scope_.end()) return it->second;
    Term var = vocab_->NamedVariable(name + "#" + std::to_string(statement_));
    scope_.emplace(name, var);
    return var;
  }

  StatusOr<Atom> ParseAtom() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorAt(Peek(), "expected predicate name");
    }
    std::string pred_name = Next().text;
    TWCHASE_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    std::vector<Term> args;
    while (true) {
      const Token& t = Peek();
      if (t.kind == TokenKind::kIdentifier) {
        args.push_back(vocab_->Constant(t.text));
        Next();
      } else if (t.kind == TokenKind::kVariable) {
        args.push_back(ScopedVariable(t.text));
        Next();
      } else {
        return ErrorAt(t, "expected term");
      }
      if (Peek().kind == TokenKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    TWCHASE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    auto pred = vocab_->AddPredicate(pred_name,
                                     static_cast<uint32_t>(args.size()));
    if (!pred.ok()) return pred.status();
    return Atom(pred.value(), std::move(args));
  }

  StatusOr<AtomSet> ParseAtomList() {
    AtomSet out;
    while (true) {
      auto atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      out.Insert(std::move(atom).value());
      if (Peek().kind == TokenKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    return out;
  }

  Status ParseStatement(ParsedProgram* program) {
    ++statement_;
    scope_.clear();
    // Query: "? [(vars)] :- atoms."
    if (Peek().kind == TokenKind::kQuestion) {
      Next();
      ParsedQuery query;
      if (Peek().kind == TokenKind::kLParen) {
        Next();
        while (true) {
          if (Peek().kind != TokenKind::kVariable) {
            return ErrorAt(Peek(), "expected answer variable");
          }
          query.answer_vars.push_back(ScopedVariable(Next().text));
          if (Peek().kind == TokenKind::kComma) {
            Next();
            continue;
          }
          break;
        }
        TWCHASE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      }
      TWCHASE_RETURN_IF_ERROR(Expect(TokenKind::kImplies, "':-'"));
      auto atoms = ParseAtomList();
      if (!atoms.ok()) return atoms.status();
      TWCHASE_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
      query.atoms = std::move(atoms).value();
      for (Term v : query.answer_vars) {
        if (!query.atoms.ContainsTerm(v)) {
          return Status::InvalidArgument(
              "answer variable does not occur in the query body");
        }
      }
      program->queries.push_back(std::move(query));
      return Status::OK();
    }
    // Optional rule label.
    std::string label;
    if (Peek().kind == TokenKind::kLBracket) {
      Next();
      if (Peek().kind != TokenKind::kIdentifier &&
          Peek().kind != TokenKind::kVariable) {
        return ErrorAt(Peek(), "expected label");
      }
      label = Next().text;
      TWCHASE_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    }
    auto first = ParseAtomList();
    if (!first.ok()) return first.status();
    if (Peek().kind == TokenKind::kImplies) {
      Next();
      auto body = ParseAtomList();
      if (!body.ok()) return body.status();
      TWCHASE_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
      auto rule = Rule::Create(std::move(body).value(),
                               std::move(first).value(), std::move(label));
      if (!rule.ok()) return rule.status();
      program->kb.rules.push_back(std::move(rule).value());
      return Status::OK();
    }
    // Fact statement: atoms must be label-free.
    if (!label.empty()) {
      return ErrorAt(Peek(), "labels are only allowed on rules");
    }
    TWCHASE_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    program->kb.facts.InsertAll(first.value());
    return Status::OK();
  }

  std::vector<Token> tokens_;
  std::shared_ptr<Vocabulary> vocab_;
  size_t pos_ = 0;
  int statement_ = 0;
  std::unordered_map<std::string, Term> scope_;
};

}  // namespace

StatusOr<ParsedProgram> ParseProgram(std::string_view input) {
  return ParseProgram(input, std::make_shared<Vocabulary>());
}

StatusOr<ParsedProgram> ParseProgram(std::string_view input,
                                     std::shared_ptr<Vocabulary> vocab) {
  auto tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), std::move(vocab));
  return parser.Run();
}

}  // namespace twchase
