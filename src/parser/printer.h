// Serialisation of programs back to the twchase text format. Variables are
// renamed to statement-scoped canonical names (V1, V2, ...) so the output
// always re-parses; round-trips are faithful up to variable renaming.
#ifndef TWCHASE_PARSER_PRINTER_H_
#define TWCHASE_PARSER_PRINTER_H_

#include <string>

#include "kb/knowledge_base.h"
#include "model/atom_set.h"
#include "parser/parser.h"

namespace twchase {

/// One statement worth of atoms ("a, b, c") with canonical variable names.
std::string PrintAtoms(const AtomSet& atoms, const Vocabulary& vocab);

/// One query statement ("? :- ..." or "?(V1, V2) :- ...").
std::string PrintQuery(const ParsedQuery& query, const Vocabulary& vocab);

/// Whole program: facts (one statement), rules, then queries.
std::string PrintProgram(const KnowledgeBase& kb,
                         const std::vector<ParsedQuery>& queries);

}  // namespace twchase

#endif  // TWCHASE_PARSER_PRINTER_H_
