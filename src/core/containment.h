// Conjunctive-query containment — the original application of the chase
// (Maier–Mendelzon–Sagiv / Johnson–Klug):
//   * plain containment Q1 ⊆ Q2 holds iff Q2 maps homomorphically into the
//     frozen body of Q1 (its canonical instance);
//   * containment under a ruleset Σ holds iff Q2 maps into the chase of the
//     frozen Q1 with Σ — decided exactly when the chase terminates, and
//     semi-decided positively otherwise.
#ifndef TWCHASE_CORE_CONTAINMENT_H_
#define TWCHASE_CORE_CONTAINMENT_H_

#include <vector>

#include "core/entailment.h"
#include "kb/knowledge_base.h"
#include "model/atom_set.h"

namespace twchase {

/// The canonical ("frozen") instance of a query: each variable replaced by
/// a dedicated fresh constant minted in `vocab`.
AtomSet FreezeQuery(const AtomSet& query, Vocabulary* vocab);

/// Plain CQ containment: true iff every instance satisfying q1 satisfies
/// q2 (Boolean semantics).
bool QueryContained(const AtomSet& q1, const AtomSet& q2, Vocabulary* vocab);

/// Containment under the rules of `kb` (facts ignored), via the chase of
/// the frozen q1. kEntailed = contained; kNotEntailed = not contained
/// (exact, chase terminated); kUnknown = budget exhausted without a match.
EntailmentResult QueryContainedUnder(const KnowledgeBase& kb,
                                     const AtomSet& q1, const AtomSet& q2,
                                     size_t max_steps);

}  // namespace twchase

#endif  // TWCHASE_CORE_CONTAINMENT_H_
