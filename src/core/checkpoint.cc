#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "core/session.h"
#include "hom/matcher.h"
#include "util/fs.h"

namespace twchase {
namespace {

constexpr char kMagic[] = "twchase-checkpoint";

uint64_t Fnv1a(uint64_t h, uint64_t value) {
  // Mix the value bytewise so that (a, b) and (a', b') with the same XOR
  // never collide trivially.
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t Fnv1aString(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return Fnv1a(h, s.size());
}

uint64_t Fnv1aAtoms(uint64_t h, const AtomSet& atoms) {
  atoms.ForEach([&h](const Atom& atom) {
    h = Fnv1a(h, atom.predicate());
    for (Term t : atom.args()) h = Fnv1a(h, t.raw());
  });
  return h;
}

// Sorted by variable id so the output is independent of hash-map iteration
// order.
std::vector<std::pair<Term, Term>> SortedBindings(const Substitution& sigma) {
  std::vector<std::pair<Term, Term>> entries(sigma.map().begin(),
                                             sigma.map().end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.raw() < b.first.raw();
            });
  return entries;
}

void WriteSigma(std::ostringstream& out, const Substitution& sigma) {
  auto entries = SortedBindings(sigma);
  out << ' ' << entries.size();
  for (const auto& [var, image] : entries) {
    out << ' ' << var.raw() << ' ' << image.raw();
  }
}

Term TermFromRaw(uint32_t raw) {
  constexpr uint32_t kVarBit = 0x80000000u;
  return (raw & kVarBit) != 0 ? Term::Variable(raw & ~kVarBit)
                              : Term::Constant(raw);
}

bool ReadSigma(std::istringstream& in, Substitution* sigma) {
  size_t count = 0;
  if (!(in >> count)) return false;
  for (size_t i = 0; i < count; ++i) {
    uint32_t var = 0;
    uint32_t image = 0;
    if (!(in >> var >> image)) return false;
    sigma->Bind(TermFromRaw(var), TermFromRaw(image));
  }
  return true;
}

StatusOr<ChaseVariant> VariantFromName(const std::string& name) {
  for (ChaseVariant v :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted, ChaseVariant::kFrugal,
        ChaseVariant::kCore}) {
    if (name == ChaseVariantName(v)) return v;
  }
  return Status::InvalidArgument("checkpoint: unknown chase variant '" +
                                 name + "'");
}

StatusOr<StopReason> StopReasonFromName(const std::string& name) {
  for (StopReason r :
       {StopReason::kFixpoint, StopReason::kStepBudget,
        StopReason::kInstanceSizeGuard, StopReason::kDeadline,
        StopReason::kMemoryBudget, StopReason::kCancelled}) {
    if (name == StopReasonName(r)) return r;
  }
  return Status::InvalidArgument("checkpoint: unknown stop reason '" + name +
                                 "'");
}

Status MalformedAt(const std::string& what, size_t offset) {
  return Status::InvalidArgument("checkpoint: malformed " + what +
                                 " at byte " + std::to_string(offset));
}

}  // namespace

uint64_t ProgramFingerprint(const KnowledgeBase& kb) {
  uint64_t h = 1469598103934665603ull;
  h = Fnv1a(h, kb.rules.size());
  for (const Rule& rule : kb.rules) {
    h = Fnv1aString(h, rule.label());
    h = Fnv1aAtoms(h, rule.body());
    h = Fnv1aAtoms(h, rule.head());
    for (Term t : rule.existential()) h = Fnv1a(h, t.raw());
  }
  h = Fnv1a(h, kb.facts.size());
  h = Fnv1a(h, kb.facts.ContentHash());
  return h;
}

uint64_t CheckpointFingerprint(const KnowledgeBase& kb,
                               const ChaseOptions& options) {
  uint64_t h = ProgramFingerprint(kb);
  h = Fnv1a(h, static_cast<uint64_t>(CurrentMatchBackend()));
  h = Fnv1a(h, options.plan.enabled ? 1u : 0u);
  // A checkpoint written under --variant=auto pins the preflight decision:
  // resuming is only valid if re-classification of the (unchanged) program
  // reaches the same verdict and picks the same variant. Explicit-variant
  // checkpoints hash exactly as before this field existed.
  if (options.preflight.auto_variant) {
    h = Fnv1a(h, 0x70F1u);  // domain separator for the preflight fold
    h = Fnv1a(h, options.preflight.verdict);
    h = Fnv1a(h, static_cast<uint64_t>(options.variant));
  }
  return h;
}

ChaseCheckpoint MakeCheckpoint(const KnowledgeBase& kb,
                               const ChaseOptions& options,
                               const ChaseResult& result) {
  TWCHASE_CHECK_MSG(options.resume.record_log,
                    "MakeCheckpoint requires a run executed with "
                    "resume.record_log = true");
  ChaseCheckpoint cp;
  cp.variant = options.variant;
  cp.datalog_first = options.datalog_first;
  cp.delta_enabled = options.delta.enabled;
  cp.core_every = options.core.core_every;
  cp.core_at_round_end = options.core.core_at_round_end;
  cp.core_initial = options.core.core_initial;
  cp.program_fingerprint = CheckpointFingerprint(kb, options);
  cp.stop_reason = result.stop_reason;
  cp.steps = result.steps;
  cp.rounds = result.rounds;
  const AtomSet& last = result.derivation.Last();
  cp.instance_size = last.size();
  cp.instance_hash = last.ContentHash();
  cp.expected_variables = result.resume_log.committed_num_variables;
  cp.log = result.resume_log;
  return cp;
}

std::string SerializeCheckpoint(const ChaseCheckpoint& cp) {
  std::ostringstream out;
  out << kMagic << ' ' << cp.version << '\n';
  out << "variant " << ChaseVariantName(cp.variant) << '\n';
  out << "schedule " << cp.datalog_first << ' ' << cp.delta_enabled << ' '
      << cp.core_every << ' ' << cp.core_at_round_end << ' '
      << cp.core_initial << '\n';
  out << "program " << cp.program_fingerprint << '\n';
  out << "stop " << StopReasonName(cp.stop_reason) << '\n';
  out << "progress " << cp.steps << ' ' << cp.rounds << '\n';
  out << "instance " << cp.instance_size << ' ' << cp.instance_hash << '\n';
  out << "variables " << cp.log.initial_num_variables << ' '
      << cp.expected_variables << '\n';
  out << "initial " << cp.log.have_initial << ' ' << cp.log.initial_folds;
  WriteSigma(out, cp.log.initial_sigma);
  out << '\n';
  out << "steps " << cp.log.steps.size() << '\n';
  for (const ResumeLog::StepRecord& step : cp.log.steps) {
    out << "step " << step.cored << ' ' << step.folds;
    WriteSigma(out, step.sigma);
    out << ' ' << step.fold_sigmas.size();
    for (const Substitution& fold : step.fold_sigmas) WriteSigma(out, fold);
    out << '\n';
  }
  out << "rounds " << cp.log.rounds.size() << '\n';
  for (const ResumeLog::RoundRecord& round : cp.log.rounds) {
    out << "round " << round.decisions.size() << ' ';
    if (round.decisions.empty()) {
      out << '-';
    } else {
      for (uint8_t bit : round.decisions) out << (bit != 0 ? '1' : '0');
    }
    out << ' ' << round.have_round_end << ' ' << round.round_end_folds;
    WriteSigma(out, round.round_end_sigma);
    out << '\n';
  }
  out << "end\n";
  return out.str();
}

StatusOr<ChaseCheckpoint> ParseCheckpoint(const std::string& text) {
  // Manual cursor instead of istream getline: tracks the byte offset of
  // the current line (for error annotation) and distinguishes a missing
  // line from a final line torn off before its newline.
  size_t pos = 0;
  size_t line_start = 0;
  std::string line;
  auto Malformed = [&](const std::string& what) {
    return MalformedAt(what, line_start);
  };
  auto next_line = [&](const char* expected_tag,
                       std::istringstream* fields) -> Status {
    line_start = pos;
    if (pos >= text.size()) {
      return MalformedAt(
          std::string("input: missing '") + expected_tag + "' line", pos);
    }
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      return Status::InvalidArgument(
          "checkpoint: truncated final line (missing newline) at byte " +
          std::to_string(line_start));
    }
    line.assign(text, line_start, nl - line_start);
    pos = nl + 1;
    fields->clear();
    fields->str(line);
    std::string tag;
    if (!(*fields >> tag) || tag != expected_tag) {
      return Malformed(std::string("'") + expected_tag + "' line");
    }
    return Status::OK();
  };

  ChaseCheckpoint cp;
  std::istringstream f;
  TWCHASE_RETURN_IF_ERROR(next_line(kMagic, &f));
  if (!(f >> cp.version)) return Malformed("header");
  if (cp.version != 1) {
    return Status::InvalidArgument("checkpoint: unsupported version " +
                                   std::to_string(cp.version));
  }

  TWCHASE_RETURN_IF_ERROR(next_line("variant", &f));
  std::string name;
  if (!(f >> name)) return Malformed("variant");
  auto variant = VariantFromName(name);
  TWCHASE_RETURN_IF_ERROR(variant.status());
  cp.variant = variant.value();

  TWCHASE_RETURN_IF_ERROR(next_line("schedule", &f));
  if (!(f >> cp.datalog_first >> cp.delta_enabled >> cp.core_every >>
        cp.core_at_round_end >> cp.core_initial)) {
    return Malformed("schedule");
  }

  TWCHASE_RETURN_IF_ERROR(next_line("program", &f));
  if (!(f >> cp.program_fingerprint)) return Malformed("program");

  TWCHASE_RETURN_IF_ERROR(next_line("stop", &f));
  if (!(f >> name)) return Malformed("stop");
  auto reason = StopReasonFromName(name);
  TWCHASE_RETURN_IF_ERROR(reason.status());
  cp.stop_reason = reason.value();

  TWCHASE_RETURN_IF_ERROR(next_line("progress", &f));
  if (!(f >> cp.steps >> cp.rounds)) return Malformed("progress");

  TWCHASE_RETURN_IF_ERROR(next_line("instance", &f));
  if (!(f >> cp.instance_size >> cp.instance_hash)) return Malformed("instance");

  TWCHASE_RETURN_IF_ERROR(next_line("variables", &f));
  if (!(f >> cp.log.initial_num_variables >> cp.expected_variables)) {
    return Malformed("variables");
  }
  cp.log.committed_num_variables = cp.expected_variables;

  TWCHASE_RETURN_IF_ERROR(next_line("initial", &f));
  if (!(f >> cp.log.have_initial >> cp.log.initial_folds) ||
      !ReadSigma(f, &cp.log.initial_sigma)) {
    return Malformed("initial");
  }

  TWCHASE_RETURN_IF_ERROR(next_line("steps", &f));
  size_t step_count = 0;
  if (!(f >> step_count)) return Malformed("steps");
  // Guard against absurd counts (corrupted/hostile input) before reserving.
  if (step_count > text.size()) return Malformed("steps count");
  cp.log.steps.reserve(step_count);
  for (size_t i = 0; i < step_count; ++i) {
    TWCHASE_RETURN_IF_ERROR(next_line("step", &f));
    ResumeLog::StepRecord step;
    if (!(f >> step.cored >> step.folds) || !ReadSigma(f, &step.sigma)) {
      return Malformed("step record");
    }
    size_t fold_count = 0;
    if (!(f >> fold_count) || fold_count > text.size()) {
      return Malformed("step record");
    }
    step.fold_sigmas.reserve(fold_count);
    for (size_t k = 0; k < fold_count; ++k) {
      Substitution fold;
      if (!ReadSigma(f, &fold)) return Malformed("step fold");
      step.fold_sigmas.push_back(std::move(fold));
    }
    cp.log.steps.push_back(std::move(step));
  }

  TWCHASE_RETURN_IF_ERROR(next_line("rounds", &f));
  size_t round_count = 0;
  if (!(f >> round_count) || round_count > text.size()) {
    return Malformed("rounds");
  }
  cp.log.rounds.reserve(round_count);
  for (size_t i = 0; i < round_count; ++i) {
    TWCHASE_RETURN_IF_ERROR(next_line("round", &f));
    ResumeLog::RoundRecord round;
    size_t bit_count = 0;
    std::string bits;
    if (!(f >> bit_count >> bits) || bit_count > text.size()) {
      return Malformed("round record");
    }
    if (bit_count == 0) {
      if (bits != "-") return Malformed("round bits");
    } else {
      if (bits.size() != bit_count) return Malformed("round bits");
      round.decisions.reserve(bit_count);
      for (char c : bits) {
        if (c != '0' && c != '1') return Malformed("round bits");
        round.decisions.push_back(c == '1' ? 1 : 0);
      }
    }
    if (!(f >> round.have_round_end >> round.round_end_folds) ||
        !ReadSigma(f, &round.round_end_sigma)) {
      return Malformed("round record");
    }
    cp.log.rounds.push_back(std::move(round));
  }

  TWCHASE_RETURN_IF_ERROR(next_line("end", &f));
  if (pos != text.size()) {
    return Status::InvalidArgument(
        "checkpoint: trailing garbage after 'end' at byte " +
        std::to_string(pos));
  }
  return cp;
}

std::string SerializeCheckpointSealed(const ChaseCheckpoint& cp) {
  std::string body = SerializeCheckpoint(cp);
  char footer[64];
  std::snprintf(footer, sizeof footer, "checksum 1 %zu %08x\n", body.size(),
                Crc32(body));
  return body + footer;
}

StatusOr<ChaseCheckpoint> ParseSealedCheckpoint(const std::string& text) {
  if (text.empty() || text.back() != '\n') {
    return Status::InvalidArgument(
        "sealed checkpoint: truncated (missing final newline) at byte " +
        std::to_string(text.size()));
  }
  // The footer is the last line; everything before it is the body.
  size_t body_end = text.rfind('\n', text.size() - 2);
  size_t footer_start = body_end == std::string::npos ? 0 : body_end + 1;
  std::istringstream f(text.substr(footer_start));
  std::string tag;
  uint32_t footer_version = 0;
  size_t body_size = 0;
  std::string crc_hex;
  std::string extra;
  if (!(f >> tag >> footer_version >> body_size >> crc_hex) ||
      tag != "checksum" || (f >> extra)) {
    return Status::InvalidArgument(
        "sealed checkpoint: malformed checksum footer at byte " +
        std::to_string(footer_start));
  }
  if (footer_version != 1) {
    return Status::InvalidArgument(
        "sealed checkpoint: unsupported footer version " +
        std::to_string(footer_version));
  }
  if (body_size != footer_start) {
    return Status::InvalidArgument(
        "sealed checkpoint: length mismatch (footer says " +
        std::to_string(body_size) + " bytes, body has " +
        std::to_string(footer_start) + ")");
  }
  std::string body = text.substr(0, footer_start);
  char want[16];
  std::snprintf(want, sizeof want, "%08x", Crc32(body));
  if (crc_hex != want) {
    return Status::InvalidArgument(
        "sealed checkpoint: checksum mismatch (footer " + crc_hex +
        ", body " + want + ")");
  }
  return ParseCheckpoint(body);
}

// Compatibility wrapper: the validation surface and the replay live in
// ChaseSession::Resume (core/session.h) since the session redesign; this
// keeps the historical one-shot signature and error order.
StatusOr<ChaseResult> ResumeChase(const KnowledgeBase& kb,
                                  const ChaseOptions& options,
                                  const ChaseCheckpoint& checkpoint) {
  auto session = ChaseSession::Create(kb, options);
  if (!session.ok()) return session.status();
  TWCHASE_RETURN_IF_ERROR((*session)->Resume(checkpoint));
  return (*session)->TakeResult();
}

}  // namespace twchase
