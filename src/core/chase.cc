#include "core/chase.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/trigger.h"
#include "hom/core.h"
#include "hom/endomorphism.h"
#include "util/logging.h"
#include "util/status.h"

namespace twchase {

const char* ChaseVariantName(ChaseVariant variant) {
  switch (variant) {
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
    case ChaseVariant::kFrugal:
      return "frugal";
    case ChaseVariant::kCore:
      return "core";
  }
  return "unknown";
}

namespace {

// Canonical string key for the (semi-)oblivious applied-trigger sets.
std::string TriggerKey(int rule_index, const Substitution& match,
                       const std::vector<Term>& restrict_to) {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  if (restrict_to.empty()) {
    for (const auto& [var, term] : match.map()) {
      entries.emplace_back(var.raw(), term.raw());
    }
  } else {
    for (Term var : restrict_to) {
      entries.emplace_back(var.raw(), match.Apply(var).raw());
    }
  }
  std::sort(entries.begin(), entries.end());
  std::string key = std::to_string(rule_index);
  for (const auto& [a, b] : entries) {
    key += ':';
    key += std::to_string(a);
    key += ',';
    key += std::to_string(b);
  }
  return key;
}

// Deterministic sort key for a trigger within a round.
std::string MatchSortKey(const Substitution& match) {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (const auto& [var, term] : match.map()) {
    entries.emplace_back(var.raw(), term.raw());
  }
  std::sort(entries.begin(), entries.end());
  std::string key;
  for (const auto& [a, b] : entries) {
    key += std::to_string(a);
    key += ',';
    key += std::to_string(b);
    key += ';';
  }
  return key;
}

}  // namespace

StatusOr<ChaseResult> RunChase(const KnowledgeBase& kb,
                               const ChaseOptions& options) {
  if (kb.vocab == nullptr) {
    return Status::InvalidArgument("knowledge base has no vocabulary");
  }
  if (options.core_every == 0) {
    return Status::InvalidArgument("core_every must be positive");
  }
  Vocabulary* vocab = kb.vocab.get();
  const bool is_core = options.variant == ChaseVariant::kCore;

  ChaseResult result;
  result.derivation = Derivation(options.keep_snapshots);

  AtomSet current = kb.facts;
  Substitution sigma0;
  if (is_core && options.core_initial) {
    CoreResult cored = ComputeCore(current);
    current = std::move(cored.core);
    sigma0 = std::move(cored.retraction);
  }
  result.derivation.AddInitial(current, std::move(sigma0));

  std::unordered_set<std::string> applied_keys;  // (semi-)oblivious only
  size_t since_last_core = 0;

  while (result.steps < options.max_steps) {
    ++result.rounds;
    // Snapshot this round's triggers.
    struct PendingTrigger {
      int rule_index;
      Trigger trigger;
      bool datalog;
      std::string sort_key;
    };
    std::vector<PendingTrigger> pending;
    for (int r = 0; r < static_cast<int>(kb.rules.size()); ++r) {
      for (Trigger& tr : FindTriggers(kb.rules[r], r, current)) {
        PendingTrigger p;
        p.rule_index = r;
        p.datalog = kb.rules[r].IsDatalog();
        p.sort_key = MatchSortKey(tr.match);
        p.trigger = std::move(tr);
        pending.push_back(std::move(p));
      }
    }
    std::stable_sort(pending.begin(), pending.end(),
                     [&](const PendingTrigger& a, const PendingTrigger& b) {
                       if (options.datalog_first && a.datalog != b.datalog) {
                         return a.datalog;
                       }
                       if (a.rule_index != b.rule_index) {
                         return a.rule_index < b.rule_index;
                       }
                       return a.sort_key < b.sort_key;
                     });

    bool progressed = false;
    Substitution sigma_round;  // composition of simplifications this round
    for (PendingTrigger& p : pending) {
      if (result.steps >= options.max_steps) break;
      const Rule& rule = kb.rules[p.rule_index];
      // Re-map the trigger through the simplifications applied since the
      // round snapshot (σ^j_i of Definition 2); σ is a homomorphism between
      // successive instances, so the image is still a trigger.
      Substitution match = sigma_round.empty()
                               ? std::move(p.trigger.match)
                               : Substitution::Compose(sigma_round,
                                                       p.trigger.match);
      // Activeness per variant.
      switch (options.variant) {
        case ChaseVariant::kOblivious: {
          std::string key = TriggerKey(p.rule_index, match, {});
          if (!applied_keys.insert(std::move(key)).second) continue;
          break;
        }
        case ChaseVariant::kSemiOblivious: {
          std::string key = TriggerKey(p.rule_index, match, rule.frontier());
          if (!applied_keys.insert(std::move(key)).second) continue;
          break;
        }
        case ChaseVariant::kRestricted:
        case ChaseVariant::kFrugal:
        case ChaseVariant::kCore: {
          if (TriggerIsSatisfied(rule, match, current)) continue;
          break;
        }
      }

      TriggerApplication application =
          ApplyTrigger(rule, match, &current, vocab);
      Substitution sigma;
      if (is_core && !options.core_at_round_end &&
          ++since_last_core >= options.core_every) {
        CoreResult cored = ComputeCore(current);
        current = std::move(cored.core);
        sigma = std::move(cored.retraction);
        since_last_core = 0;
      } else if (options.variant == ChaseVariant::kFrugal &&
                 !rule.existential().empty()) {
        std::vector<Term> fresh;
        for (Term ev : rule.existential()) {
          fresh.push_back(application.safe.Apply(ev));
        }
        sigma = FoldVariablesKeepingRestFixed(&current, fresh);
      }
      result.derivation.AddStep(p.rule_index, rule.label(), match, sigma,
                                std::move(application.added_atoms), current);
      if (!sigma.IsIdentity()) {
        sigma_round = Substitution::Compose(sigma, sigma_round);
      }
      ++result.steps;
      progressed = true;
      if (options.max_instance_size != 0 &&
          current.size() > options.max_instance_size) {
        result.size_guard_tripped = true;
        break;
      }
    }
    if (is_core && options.core_at_round_end && progressed) {
      CoreResult cored = ComputeCore(current);
      if (!cored.retraction.IsIdentity()) {
        current = std::move(cored.core);
        result.derivation.AmendLastSimplification(cored.retraction, current);
      }
    }
    if (!progressed) {
      result.terminated = true;
      break;
    }
    if (result.size_guard_tripped) break;
  }
  TWCHASE_LOG(Debug) << "chase " << ChaseVariantName(options.variant) << ": "
                     << result.steps << " steps, " << result.rounds
                     << " rounds, terminated=" << result.terminated
                     << ", |F|=" << current.size();
  return result;
}

}  // namespace twchase
