#include "core/chase.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/delta.h"
#include "core/parallel.h"
#include "core/session.h"
#include "core/trigger.h"
#include "core/trigger_key.h"
#include "hom/core.h"
#include "hom/endomorphism.h"
#include "hom/matcher.h"
#include "obs/observer.h"
#include "plan/core_guard.h"
#include "plan/execution_plan.h"
#include "util/fault.h"
#include "util/governor.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace twchase {

const char* ChaseVariantName(ChaseVariant variant) {
  switch (variant) {
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
    case ChaseVariant::kFrugal:
      return "frugal";
    case ChaseVariant::kCore:
      return "core";
  }
  return "unknown";
}

// Error messages lead with the full nested field path (limits. / core. /
// delta. / resume. / parallel.), so CLI users see which flag to fix and the
// HTTP surface (src/service/wire.cc) can lift the path into its structured
// 400 payload without guessing.
Status ChaseOptions::Validate() const {
  if (core.core_every == 0) {
    return Status::InvalidArgument("core.core_every must be positive");
  }
  if (core.incremental_core &&
      (core.core_every != 1 || core.core_at_round_end)) {
    return Status::InvalidArgument(
        "core.incremental_core requires core.core_every == 1 and "
        "core.core_at_round_end == false");
  }
  if (resume.record_log && core.incremental_core) {
    return Status::InvalidArgument(
        "resume.record_log requires core.incremental_core == false: the "
        "in-place fold order of the incremental path is not reproducible "
        "from a resume log");
  }
  if (parallel.threads == 0) {
    return Status::InvalidArgument(
        "parallel.threads must be positive (1 = sequential)");
  }
  if (preflight.auto_variant && !preflight.resolved) {
    return Status::InvalidArgument(
        "preflight.auto_variant requires resolution: run "
        "ResolveAutoVariant (analysis/preflight.h) before starting the "
        "chase — an unresolved --variant=auto must never reach the engine");
  }
  return Status::OK();
}

namespace {

// A body match of one rule. Under delta evaluation it is kept across rounds;
// under naive evaluation it lives for one round. `key` packs the full
// binding map and serves as both the deduplication identity and the
// within-rule sort key (via PackedBindings::LegacyLess, which reproduces the
// engine's historical string-key order exactly).
struct StoredMatch {
  Substitution match;
  PackedBindings key;

  // Monotone variants only: this match was considered this round and can
  // never be active again (applied, duplicate, or satisfied in a growing
  // instance); dropped from the stored set at round end.
  bool retired = false;
};

struct RuleState {
  bool datalog = false;

  // Predicates occurring in the rule body — the probe filter for inserted
  // atoms.
  std::unordered_set<PredicateId> body_predicates;

  // Invariant under delta evaluation (at every round start): `matches` is
  // exactly the set of homomorphisms body → current instance, minus retired
  // ones, and `match_keys` contains the key of every match ever stored and
  // not invalidated (retired keys are kept: their atoms can never be
  // re-inserted in a monotone run, so the probes cannot rediscover them).
  std::vector<StoredMatch> matches;
  std::unordered_set<PackedBindings, PackedBindingsHash> match_keys;

  // (Semi-)oblivious: keys already applied, persistent for the whole run.
  std::unordered_set<PackedBindings, PackedBindingsHash> applied;
};

// Records the effect of replacing `before` by retraction(before) into the
// delta index: exactly the atoms containing a moved variable disappear (a
// retraction is the identity on all terms of its image, so an atom of the
// image never contains a moved variable), and their images appear. An image
// atom may have existed already — recording it as inserted is harmless, the
// seeded probes deduplicate against the stored keys.
void RecordRetractionDelta(const Substitution& retraction,
                           const AtomSet& before, DeltaIndex* delta) {
  for (const auto& [var, image] : retraction.map()) {
    if (var == image) continue;
    for (const Atom* atom : before.ByTerm(var)) {
      delta->RecordErase(*atom);
      delta->RecordInsert(retraction.Apply(*atom));
    }
  }
}

// Telemetry of one round's parallel sections (up to three: priming/naive
// enumeration, erasure revalidation, seeded probes), aggregated for the
// ParallelRoundEvent and ChaseStats.
struct RoundParallelStats {
  size_t sections = 0;
  size_t tasks = 0;
  size_t workers_used = 0;    // max over the round's sections
  size_t max_imbalance = 0;   // max over sections of (max - min) worker share
  double eval_ms = 0;
  double merge_ms = 0;

  void NoteSection(const ParallelSectionStats& section, double section_merge_ms) {
    ++sections;
    tasks += section.tasks;
    workers_used = std::max(workers_used, section.workers_used);
    max_imbalance = std::max(
        max_imbalance, section.max_worker_tasks - section.min_worker_tasks);
    eval_ms += section.eval_ms;
    merge_ms += section_merge_ms;
  }
};

// Telemetry of one round's planner decisions (src/plan/), aggregated for the
// per-round PlanEvent and ChaseStats.
struct RoundPlanStats {
  size_t active_strata = 0;
  size_t enumerations_skipped = 0;
  size_t probes_skipped = 0;
  size_t core_proofs = 0;
  size_t core_certified = 0;

  bool any() const {
    return active_strata + enumerations_skipped + probes_skipped +
               core_proofs + core_certified >
           0;
  }
};

// Walks a recorded ResumeLog in lock-step with the scheduler. While
// `active`, committed decisions come from the log instead of satisfaction
// checks, and recorded retractions are applied instead of recomputing
// cores. The cursor deactivates — execution "goes live" — exactly at the
// boundary where the recorded run stopped.
struct ReplayCursor {
  const ResumeLog* log = nullptr;
  size_t round_index = 0;
  size_t bit_index = 0;
  size_t step_index = 0;
  bool active = false;
};

}  // namespace

// The one-shot compatibility surface: both free functions are thin wrappers
// over ChaseSession (core/session.h), which owns validation and lifecycle.
// A session that is only ever started is exactly the historical run — the
// goldens and the differential suites pin the bit-identity.
StatusOr<ChaseResult> RunChase(const KnowledgeBase& kb,
                               const ChaseOptions& options) {
  return RunChaseWithReplay(kb, options, nullptr);
}

StatusOr<ChaseResult> RunChaseWithReplay(const KnowledgeBase& kb,
                                         const ChaseOptions& options,
                                         const ResumeLog* replay) {
  auto session = ChaseSession::Create(kb, options);
  if (!session.ok()) return session.status();
  TWCHASE_RETURN_IF_ERROR((*session)->StartWithReplay(replay));
  return (*session)->TakeResult();
}

namespace internal {

StatusOr<ChaseResult> ExecuteChase(const KnowledgeBase& kb,
                                   const ChaseOptions& options,
                                   const ResumeLog* replay) {
  if (kb.vocab == nullptr) {
    return Status::InvalidArgument("knowledge base has no vocabulary");
  }
  TWCHASE_RETURN_IF_ERROR(options.Validate());
  // A log that never committed anything records a run that stopped before
  // the initial element; replaying it is a plain fresh run.
  if (replay != nullptr && !replay->have_initial) replay = nullptr;
  Vocabulary* vocab = kb.vocab.get();
  const bool is_core = options.variant == ChaseVariant::kCore;
  const bool use_incremental_core = is_core && options.core.incremental_core;
  const bool delta_on = options.delta.enabled;
  // The observer is a read-only tap; every emission site below is a single
  // untaken branch when no observer is attached.
  ChaseObserver* const obs = options.observer;
  // Monotone variants never erase atoms, so a trigger once applied — or, for
  // the restricted chase, once satisfied — can never become active again:
  // the delta evaluation retires such matches instead of re-checking them
  // every round. Frugal and core runs erase atoms (satisfaction is not
  // stable), so their matches are kept and re-checked.
  const bool retire_considered =
      delta_on && (options.variant == ChaseVariant::kOblivious ||
                   options.variant == ChaseVariant::kSemiOblivious ||
                   options.variant == ChaseVariant::kRestricted);

  ChaseResult result;
  result.derivation = Derivation(options.keep_snapshots);
  ScopedCrashContext crash_context("chase run", &result.steps);

  // Cooperative resource governance: the governor is polled at every
  // trigger/round boundary here and at every search node inside the
  // homomorphism, coring, entailment and treewidth procedures via the
  // ambient scope. Once it stops, nothing past the last committed step is
  // trusted: partial search results are discarded, uncommitted mutations
  // rolled back, and the run returns the consistent prefix.
  ResourceLimits governor_limits;
  governor_limits.deadline_ms = options.limits.deadline_ms;
  governor_limits.memory_budget_bytes = options.limits.memory_budget_bytes;
  governor_limits.cancel = options.limits.cancel;
  ResourceGovernor governor(governor_limits);
  GovernorScope governor_scope(&governor);

  // Ambient chase.match.* telemetry: every homomorphism search of this run
  // (trigger enumeration, satisfaction checks, core folds) folds its
  // probe/scan/build counts in here; the parallel evaluation path installs
  // the same object inside its workers. Totals are a pure function of the
  // searches performed, hence identical at any --threads.
  MatchCounters match_counters;
  MatchCountersScope match_scope(&match_counters);
  auto fold_match_stats = [&]() {
    result.stats.match_index_probes =
        match_counters.index_probes.load(std::memory_order_relaxed);
    result.stats.match_column_scans =
        match_counters.column_scans.load(std::memory_order_relaxed);
    result.stats.match_join_fallbacks =
        match_counters.join_fallbacks.load(std::memory_order_relaxed);
    result.stats.match_index_builds =
        match_counters.index_builds.load(std::memory_order_relaxed);
    result.stats.match_index_build_bytes =
        match_counters.index_build_bytes.load(std::memory_order_relaxed);
  };

  // Counter values already reported through MatchPlanEvent, so each round's
  // event carries deltas. Besides the round ends, this is flushed once after
  // the scheduler loop (and on the pre-run budget-stop path): a mid-round
  // stop used to drop the final round's counts from any attached
  // MetricsRegistry while ChaseStats kept them, so the registry totals
  // diverged between --threads settings depending on where the stop landed.
  MatchPlanEvent match_reported;
  auto emit_match_plan_delta = [&](size_t round) {
    if (obs == nullptr) return;
    MatchPlanEvent plan;
    plan.round = round;
    plan.index_probes =
        match_counters.index_probes.load(std::memory_order_relaxed) -
        match_reported.index_probes;
    plan.column_scans =
        match_counters.column_scans.load(std::memory_order_relaxed) -
        match_reported.column_scans;
    plan.join_fallbacks =
        match_counters.join_fallbacks.load(std::memory_order_relaxed) -
        match_reported.join_fallbacks;
    plan.index_builds =
        match_counters.index_builds.load(std::memory_order_relaxed) -
        match_reported.index_builds;
    plan.index_build_bytes =
        match_counters.index_build_bytes.load(std::memory_order_relaxed) -
        match_reported.index_build_bytes;
    if (plan.index_probes + plan.column_scans + plan.join_fallbacks +
            plan.index_builds + plan.index_build_bytes ==
        0) {
      return;
    }
    obs->OnMatchPlan(plan);
    match_reported.index_probes += plan.index_probes;
    match_reported.column_scans += plan.column_scans;
    match_reported.join_fallbacks += plan.join_fallbacks;
    match_reported.index_builds += plan.index_builds;
    match_reported.index_build_bytes += plan.index_build_bytes;
  };

  // Still-core guard (plan/core_guard.h). The instance is a certified core
  // exactly while `guard_base_established`: every certified variable was
  // minted before `guard_base_mark` and `guard_atoms_since` holds the atoms
  // added since certification. Certification sites are exactly the live
  // coring successes (initial, per-step, round-end) and guard proofs;
  // replayed retractions never certify (the base predates the replayed
  // mutations).
  const bool plan_on = options.plan.enabled;
  const bool core_guard_on =
      plan_on && options.plan.core_guard && is_core && !use_incremental_core;
  bool guard_base_established = false;
  uint32_t guard_base_mark = 0;
  std::vector<Atom> guard_atoms_since;
  auto note_certified = [&]() {
    if (!core_guard_on) return;
    guard_base_established = true;
    guard_base_mark = static_cast<uint32_t>(vocab->num_variables());
    guard_atoms_since.clear();
  };

  ResumeLog* const rec = options.resume.record_log ? &result.resume_log
                                                   : nullptr;
  ReplayCursor cursor;
  if (replay != nullptr) {
    cursor.log = replay;
    cursor.active = true;
  }
  // Set once, when replay reaches the end of the log but the reconstructed
  // state does not match the checkpointed one.
  Status replay_error = Status::OK();
  AtomSet current = kb.facts;
  // Deactivates the cursor (all further decisions are live) and, when the
  // log carries landing-verification data, cross-checks the reconstructed
  // state against the checkpointed one. Every deactivation site is a full
  // consumption of the log, so the check fires exactly at the recorded
  // stop boundary.
  auto go_live = [&]() {
    cursor.active = false;
    if (cursor.log == nullptr || !cursor.log->verify_landing) return;
    if (current.size() != cursor.log->expected_instance_size ||
        current.ContentHash() != cursor.log->expected_instance_hash ||
        vocab->num_variables() != cursor.log->committed_num_variables) {
      replay_error = Status::FailedPrecondition(
          "resume replay did not reconstruct the checkpointed state "
          "(instance or fresh-null counter mismatch; the checkpoint does "
          "not belong to this knowledge base / options)");
    }
  };

  governor.NoteMemoryUsage(current.ApproxMemoryBytes());
  bool budget_stop = governor.ShouldStop(FaultSite::kRoundBoundary);

  Substitution sigma0;
  size_t initial_folds = 0;
  size_t initial_size_before = current.size();
  if (!budget_stop && is_core && options.core.core_initial) {
    if (cursor.active) {
      sigma0 = cursor.log->initial_sigma;
      initial_folds = cursor.log->initial_folds;
      current = sigma0.Apply(current);
    } else {
      CoreResult cored = ComputeCore(current);
      if (governor.stopped()) {
        // Coring aborted mid-search: the partial retraction is not a
        // retraction of anything. Keep F untouched.
        budget_stop = true;
      } else {
        current = std::move(cored.core);
        sigma0 = std::move(cored.retraction);
        initial_folds = cored.folds;
        note_certified();
      }
    }
  }
  if (budget_stop) {
    // Stopped before the initial element committed: the result is the
    // untouched input (zero steps, empty resume log with have_initial
    // false — resuming is a fresh run).
    result.derivation.AddInitial(current, {});
    result.stop_reason = governor.reason();
    result.stats.peak_instance_size = current.size();
    if (obs != nullptr) {
      RunBeginEvent begin;
      begin.variant = options.variant;
      begin.rule_count = kb.rules.size();
      begin.initial_size = current.size();
      begin.initial_simplification = &result.derivation.step(0).simplification;
      begin.instance = &current;
      obs->OnRunBegin(begin);
      if (governor.fault_fired()) {
        obs->OnFaultInjected(
            {governor.fault_site(), governor.fault_visit(), governor.reason()});
      }
      emit_match_plan_delta(0);
      obs->OnRunEnd({result.steps, result.rounds, result.terminated,
                     result.size_guard_tripped, current.size(),
                     result.stop_reason});
    }
    fold_match_stats();
    return result;
  }
  if (rec != nullptr) {
    rec->have_initial = true;
    rec->initial_sigma = sigma0;
    rec->initial_folds = initial_folds;
    rec->initial_num_variables = vocab->num_variables();
  }
  result.derivation.AddInitial(current, std::move(sigma0));
  if (rec != nullptr) rec->committed_num_variables = vocab->num_variables();
  result.stats.peak_instance_size = current.size();
  // The final retained snapshot is the live instance; counting both would
  // double the estimate (see ApproxMemoryBytesExcludingFinalSnapshot).
  governor.NoteMemoryUsage(
      current.ApproxMemoryBytes() +
      result.derivation.ApproxMemoryBytesExcludingFinalSnapshot());

  if (obs != nullptr) {
    RunBeginEvent begin;
    begin.variant = options.variant;
    begin.rule_count = kb.rules.size();
    begin.initial_size = current.size();
    begin.initial_simplification = &result.derivation.step(0).simplification;
    begin.instance = &current;
    obs->OnRunBegin(begin);
    if (is_core && options.core.core_initial) {
      CoreRetractionEvent retraction;
      retraction.step = 0;
      retraction.folds = initial_folds;
      retraction.size_before = initial_size_before;
      retraction.size_after = current.size();
      obs->OnCoreRetraction(retraction);
    }
  }

  std::vector<RuleState> rule_states(kb.rules.size());
  for (size_t r = 0; r < kb.rules.size(); ++r) {
    rule_states[r].datalog = kb.rules[r].IsDatalog();
    kb.rules[r].body().ForEach([&](const Atom& atom) {
      rule_states[r].body_predicates.insert(atom.predicate());
    });
  }

  // Execution plan (src/plan/): positive-reliance graph, SCC strata and
  // dormant rules. A pure function of the program and the input facts'
  // predicates, computed once and valid for the whole run: every atom any
  // chase instance can ever hold has a producible predicate (induction over
  // applications), so a dormant rule has no match in any reachable
  // instance, retractions included — see BuildExecutionPlan.
  ExecutionPlan exec_plan;
  std::vector<std::unordered_set<PredicateId>> plan_body_predicates;
  if (plan_on) {
    exec_plan = BuildExecutionPlan(kb.rules, kb.facts);
    result.stats.plan_reliance_edges = exec_plan.graph.edge_count;
    result.stats.plan_strata = exec_plan.strata.size();
    result.stats.plan_dormant_rules = exec_plan.dormant_count;
    plan_body_predicates.reserve(rule_states.size());
    for (const RuleState& state : rule_states) {
      plan_body_predicates.push_back(state.body_predicates);
    }
    if (obs != nullptr) {
      PlanEvent plan_event;
      plan_event.rules = kb.rules.size();
      plan_event.reliance_edges = exec_plan.graph.edge_count;
      plan_event.strata = exec_plan.strata.size();
      plan_event.dormant_rules = exec_plan.dormant_count;
      obs->OnPlan(plan_event);
    }
  }
  const bool skip_dormant =
      plan_on && options.plan.skip_dormant && exec_plan.dormant_count > 0;

  // Parallel trigger evaluation (core/parallel.h): with threads > 1 the
  // match-establishment phase of each round fans its probes out over a
  // fixed pool and merges the per-task candidate buffers back in the exact
  // sequential order, so the run below — instance, journal, events — is
  // bit-identical at any thread count. threads == 1 takes the untouched
  // sequential branches (no pool is even constructed).
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<ParallelTriggerEval> peval;
  if (options.parallel.threads > 1) {
    pool = std::make_unique<ThreadPool>(options.parallel.threads);
    peval = std::make_unique<ParallelTriggerEval>(pool.get(), &governor);
  }

  DeltaIndex pending_delta;
  bool delta_primed = false;
  if (delta_on) current.EnableDeltaJournal();

  size_t since_last_core = 0;

  // Dirty-term fold state threaded through successive incremental core
  // updates (hom/core.h); the update itself clears it on cascade fallback.
  IncrementalCoreState inc_core_state;

  while (result.steps < options.limits.max_steps) {
    if (governor.ShouldStop(FaultSite::kRoundBoundary)) {
      budget_stop = true;
      break;
    }
    if (cursor.active && cursor.round_index >= cursor.log->rounds.size()) {
      go_live();
      if (!replay_error.ok()) break;
    }
    ++result.rounds;
    if (rec != nullptr) rec->rounds.emplace_back();
    const size_t steps_at_round_start = result.steps;
    RoundParallelStats round_par;
    RoundPlanStats round_plan;

    // Establish this round's match sets: naive evaluation re-enumerates
    // from scratch; delta evaluation repairs the stored sets from the atoms
    // inserted/erased since the last round. Either way, afterwards each
    // rule's matches (minus retired ones, which are inactive by
    // construction) are exactly its triggers for `current`.
    if (!delta_on || !delta_primed) {
      if (peval != nullptr) {
        // One task per rule; results land in per-rule slots and merge in
        // rule order, which is exactly the sequential loop's order (the
        // enumeration within a rule is the deterministic hom-search order
        // either way).
        std::vector<std::vector<CandidateMatch>> slots(kb.rules.size());
        ParallelSectionStats section;
        const bool complete = peval->Run(
            kb.rules.size(),
            [&](size_t r) {
              // A dormant rule's enumeration is guaranteed empty — skip the
              // search, leave the slot empty.
              if (skip_dormant && exec_plan.dormant[r]) return size_t{0};
              slots[r] = EnumerateRuleCandidates(kb.rules[r], current);
              return ApproxCandidateBytes(slots[r]);
            },
            &section);
        if (complete) {
          Stopwatch merge_timer;
          for (size_t r = 0; r < kb.rules.size(); ++r) {
            RuleState& state = rule_states[r];
            state.matches.clear();
            for (CandidateMatch& candidate : slots[r]) {
              if (delta_on) state.match_keys.insert(candidate.key);
              state.matches.push_back(StoredMatch{std::move(candidate.match),
                                                  std::move(candidate.key)});
            }
            if (skip_dormant && exec_plan.dormant[r]) {
              ++result.stats.plan_enumerations_skipped;
              ++round_plan.enumerations_skipped;
            } else {
              ++result.stats.full_enumerations;
            }
          }
          round_par.NoteSection(section, merge_timer.ElapsedMillis());
        }
        // Incomplete sections adopted a stop into the governor; the partial
        // slots are dropped and the stopped() check below ends the run.
      } else {
        for (size_t r = 0; r < kb.rules.size(); ++r) {
          RuleState& state = rule_states[r];
          state.matches.clear();
          if (skip_dormant && exec_plan.dormant[r]) {
            // The enumeration is guaranteed empty for a dormant rule.
            ++result.stats.plan_enumerations_skipped;
            ++round_plan.enumerations_skipped;
            continue;
          }
          for (Trigger& tr :
               FindTriggers(kb.rules[r], static_cast<int>(r), current)) {
            PackedBindings key = PackedBindings::FromMatch(tr.match);
            if (delta_on) state.match_keys.insert(key);
            state.matches.push_back(
                StoredMatch{std::move(tr.match), std::move(key)});
          }
          ++result.stats.full_enumerations;
        }
      }
      delta_primed = true;
    } else {
      pending_delta.Absorb(current.DrainDelta());
      DeltaRepairEvent repair;
      repair.round = result.rounds;
      repair.inserted_atoms = pending_delta.inserted().size();
      repair.erased_atoms = pending_delta.erased().size();
      if (pending_delta.has_erasures()) {
        // Revalidation fast path: insertions never falsify a stored match,
        // so a rule none of whose body predicates lost an atom keeps its
        // whole match set, and within a touched rule only matches whose
        // body image meets the erased segment need the full re-probe.
        // Outcomes (and with them retire events and counters) are exactly
        // those of the unconditional IsTriggerFor sweep.
        auto rule_touched_by_erasure = [&](size_t r) {
          for (PredicateId p : rule_states[r].body_predicates) {
            if (pending_delta.ErasedTouchesPredicate(p)) return true;
          }
          return false;
        };
        auto still_valid = [&](size_t r, const StoredMatch& stored) {
          return !MatchImageTouchesErased(kb.rules[r], stored.match,
                                          pending_delta) ||
                 IsTriggerFor(kb.rules[r], stored.match, current);
        };
        if (peval != nullptr) {
          // Each chunk writes a disjoint range of one rule's valid[] bytes;
          // the compaction below then replays the sequential (rule, index)
          // order — key erasures, counters, retire events and all.
          struct RevalChunk {
            size_t rule;
            size_t begin;
            size_t end;
          };
          constexpr size_t kRevalChunk = 32;
          std::vector<RevalChunk> chunks;
          std::vector<std::vector<uint8_t>> valid(kb.rules.size());
          for (size_t r = 0; r < kb.rules.size(); ++r) {
            const size_t count = rule_states[r].matches.size();
            valid[r].assign(count, 1);
            if (!rule_touched_by_erasure(r)) continue;
            for (size_t b = 0; b < count; b += kRevalChunk) {
              chunks.push_back(
                  RevalChunk{r, b, std::min(b + kRevalChunk, count)});
            }
          }
          ParallelSectionStats section;
          const bool complete = peval->Run(
              chunks.size(),
              [&](size_t t) {
                const RevalChunk& chunk = chunks[t];
                const RuleState& state = rule_states[chunk.rule];
                for (size_t i = chunk.begin; i < chunk.end; ++i) {
                  valid[chunk.rule][i] =
                      still_valid(chunk.rule, state.matches[i]) ? 1 : 0;
                }
                return size_t{0};
              },
              &section);
          if (complete) {
            Stopwatch merge_timer;
            for (size_t r = 0; r < kb.rules.size(); ++r) {
              RuleState& state = rule_states[r];
              size_t kept = 0;
              for (size_t i = 0; i < state.matches.size(); ++i) {
                if (valid[r][i] != 0) {
                  if (kept != i) {
                    state.matches[kept] = std::move(state.matches[i]);
                  }
                  ++kept;
                } else {
                  state.match_keys.erase(state.matches[i].key);
                  ++result.stats.matches_invalidated;
                  ++repair.matches_invalidated;
                  if (obs != nullptr) {
                    obs->OnTriggerRetired({result.rounds, static_cast<int>(r),
                                           TriggerRetireReason::kInvalidated});
                  }
                }
              }
              state.matches.resize(kept);
            }
            round_par.NoteSection(section, merge_timer.ElapsedMillis());
          }
        } else {
          for (size_t r = 0; r < kb.rules.size(); ++r) {
            RuleState& state = rule_states[r];
            if (!rule_touched_by_erasure(r)) continue;
            size_t kept = 0;
            for (size_t i = 0; i < state.matches.size(); ++i) {
              if (still_valid(r, state.matches[i])) {
                if (kept != i) state.matches[kept] = std::move(state.matches[i]);
                ++kept;
              } else {
                state.match_keys.erase(state.matches[i].key);
                ++result.stats.matches_invalidated;
                ++repair.matches_invalidated;
                if (obs != nullptr) {
                  obs->OnTriggerRetired(
                      {result.rounds, static_cast<int>(r),
                       TriggerRetireReason::kInvalidated});
                }
              }
            }
            state.matches.resize(kept);
          }
        }
      }
      if (peval != nullptr && !governor.stopped()) {
        // One task per (inserted fact, rule) pair, listed with the exact
        // filters of the sequential loop; the merge then performs the same
        // counted probes and key-deduplicated inserts in the same order.
        struct ProbeTask {
          const Atom* fact;
          size_t rule;
        };
        std::vector<ProbeTask> probes;
        for (const Atom& fact : pending_delta.inserted()) {
          // An atom inserted and erased again within the round yields no
          // matches (the probe pins a body atom's image to it).
          if (!current.Contains(fact)) continue;
          for (size_t r = 0; r < kb.rules.size(); ++r) {
            if (!rule_states[r].body_predicates.contains(fact.predicate())) {
              continue;
            }
            probes.push_back(ProbeTask{&fact, r});
          }
        }
        std::vector<std::vector<CandidateMatch>> slots(probes.size());
        ParallelSectionStats section;
        const bool complete = peval->Run(
            probes.size(),
            [&](size_t t) {
              // A dormant rule's probe is guaranteed empty — skip the
              // search, leave the slot empty.
              if (skip_dormant && exec_plan.dormant[probes[t].rule]) {
                return size_t{0};
              }
              slots[t] = SeededProbeCandidates(kb.rules[probes[t].rule],
                                               *probes[t].fact, current);
              return ApproxCandidateBytes(slots[t]);
            },
            &section);
        if (complete) {
          Stopwatch merge_timer;
          for (size_t t = 0; t < probes.size(); ++t) {
            RuleState& state = rule_states[probes[t].rule];
            // Skipped probes stay accounted: the DeltaRepairEvent payload
            // (and the seed_probes counters) must not depend on the planner.
            ++result.stats.seed_probes;
            ++repair.seed_probes;
            if (skip_dormant && exec_plan.dormant[probes[t].rule]) {
              ++result.stats.plan_probes_skipped;
              ++round_plan.probes_skipped;
            }
            for (CandidateMatch& candidate : slots[t]) {
              if (state.match_keys.insert(candidate.key).second) {
                state.matches.push_back(StoredMatch{std::move(candidate.match),
                                                    std::move(candidate.key)});
                ++repair.matches_added;
              }
            }
          }
          round_par.NoteSection(section, merge_timer.ElapsedMillis());
        }
      } else if (peval == nullptr) {
        for (const Atom& fact : pending_delta.inserted()) {
          // An atom inserted and erased again within the round yields no
          // matches (the probe pins a body atom's image to it).
          if (!current.Contains(fact)) continue;
          for (size_t r = 0; r < kb.rules.size(); ++r) {
            RuleState& state = rule_states[r];
            if (!state.body_predicates.contains(fact.predicate())) continue;
            // Skipped probes stay accounted: the DeltaRepairEvent payload
            // (and the seed_probes counters) must not depend on the planner.
            ++result.stats.seed_probes;
            ++repair.seed_probes;
            if (skip_dormant && exec_plan.dormant[r]) {
              ++result.stats.plan_probes_skipped;
              ++round_plan.probes_skipped;
              continue;
            }
            for (Substitution& m :
                 FindSeededMatches(kb.rules[r], fact, current)) {
              PackedBindings key = PackedBindings::FromMatch(m);
              if (state.match_keys.insert(key).second) {
                state.matches.push_back(
                    StoredMatch{std::move(m), std::move(key)});
                ++repair.matches_added;
              }
            }
          }
        }
      }
      if (plan_on) {
        round_plan.active_strata = CountActiveStrata(
            exec_plan, plan_body_predicates, pending_delta.InsertedPredicates());
      }
      pending_delta.Clear();
      if (obs != nullptr) obs->OnDeltaRepair(repair);
    }
    // The match search polls the governor internally and may have returned
    // a partial enumeration; a round scheduled from one would not be a fair
    // round, so stop before snapshotting.
    if (governor.stopped()) {
      budget_stop = true;
      break;
    }
    if (round_par.sections > 0) {
      ++result.stats.parallel_rounds;
      result.stats.parallel_tasks += round_par.tasks;
      result.stats.parallel_eval_ms += round_par.eval_ms;
      result.stats.parallel_merge_ms += round_par.merge_ms;
      result.stats.parallel_max_imbalance =
          std::max(result.stats.parallel_max_imbalance, round_par.max_imbalance);
      if (obs != nullptr) {
        ParallelRoundEvent par_event;
        par_event.round = result.rounds;
        par_event.threads = peval->threads();
        par_event.sections = round_par.sections;
        par_event.tasks = round_par.tasks;
        par_event.workers_used = round_par.workers_used;
        par_event.max_imbalance = round_par.max_imbalance;
        par_event.eval_ms = round_par.eval_ms;
        par_event.merge_ms = round_par.merge_ms;
        obs->OnParallelRound(par_event);
      }
    }

    // Snapshot and order the round's triggers. The order is total — within
    // a rule, distinct matches have distinct packed keys — and equals the
    // historical (datalog_first, rule_index, string sort key) order.
    struct PendingTrigger {
      int rule_index;
      bool datalog;
      size_t match_index;
    };
    std::vector<PendingTrigger> pending;
    for (size_t r = 0; r < rule_states.size(); ++r) {
      for (size_t i = 0; i < rule_states[r].matches.size(); ++i) {
        pending.push_back(
            PendingTrigger{static_cast<int>(r), rule_states[r].datalog, i});
      }
    }
    std::sort(pending.begin(), pending.end(),
              [&](const PendingTrigger& a, const PendingTrigger& b) {
                if (options.datalog_first && a.datalog != b.datalog) {
                  return a.datalog;
                }
                if (a.rule_index != b.rule_index) {
                  return a.rule_index < b.rule_index;
                }
                return PackedBindings::LegacyLess(
                    rule_states[a.rule_index].matches[a.match_index].key,
                    rule_states[b.rule_index].matches[b.match_index].key);
              });
    result.stats.triggers_found += pending.size();

    if (obs != nullptr) {
      obs->OnRoundBegin({result.rounds, pending.size(), current.size()});
    }

    bool progressed = false;
    // Set when replay hits the end of a round record that carries a
    // committed round-end coring: the recorded run left its trigger loop
    // early (step budget or size guard) and then amended — follow it.
    bool replay_round_cut = false;
    Substitution sigma_round;  // composition of simplifications this round
    for (const PendingTrigger& p : pending) {
      if (result.steps >= options.limits.max_steps) break;
      if (governor.ShouldStop(FaultSite::kTriggerBoundary)) {
        budget_stop = true;
        break;
      }
      // Replay: consume this consideration's committed decision, or detect
      // the recorded stop point and go live at exactly this trigger.
      bool replaying_this = false;
      bool replay_bit = false;
      if (cursor.active) {
        const ResumeLog::RoundRecord& rr =
            cursor.log->rounds[cursor.round_index];
        if (cursor.bit_index < rr.decisions.size()) {
          replaying_this = true;
          replay_bit = rr.decisions[cursor.bit_index++] != 0;
        } else if (rr.have_round_end) {
          replay_round_cut = true;
          break;
        } else {
          go_live();
          if (!replay_error.ok()) break;
        }
      }
      const Rule& rule = kb.rules[p.rule_index];
      RuleState& state = rule_states[p.rule_index];
      StoredMatch& stored = state.matches[p.match_index];
      ++result.stats.triggers_considered;
      if (obs != nullptr) {
        obs->OnTriggerConsidered({result.rounds, p.rule_index});
      }
      // Re-map the trigger through the simplifications applied since the
      // round snapshot (σ^j_i of Definition 2); σ is a homomorphism between
      // successive instances, so the image is still a trigger.
      Substitution composed;
      const Substitution* match = &stored.match;
      if (!sigma_round.empty()) {
        composed = Substitution::Compose(sigma_round, stored.match);
        match = &composed;
      }
      // Activeness per variant. Replay substitutes the recorded decision
      // for the satisfaction check (the oblivious key bookkeeping still
      // runs — it is deterministic — and is cross-checked against the log).
      bool satisfaction_aborted = false;
      bool skip = false;
      switch (options.variant) {
        case ChaseVariant::kOblivious: {
          PackedBindings key = match == &stored.match
                                   ? stored.key
                                   : PackedBindings::FromMatch(*match);
          bool fresh = state.applied.insert(std::move(key)).second;
          if (replaying_this) {
            TWCHASE_CHECK_MSG(fresh == replay_bit,
                              "resume log diverged from the oblivious "
                              "application keys");
          }
          stored.retired = true;
          if (obs != nullptr && retire_considered) {
            obs->OnTriggerRetired({result.rounds, p.rule_index,
                                   fresh ? TriggerRetireReason::kApplied
                                         : TriggerRetireReason::kDuplicate});
          }
          if (!fresh) skip = true;
          break;
        }
        case ChaseVariant::kSemiOblivious: {
          PackedBindings key =
              PackedBindings::FromRestricted(*match, rule.frontier());
          bool fresh = state.applied.insert(std::move(key)).second;
          if (replaying_this) {
            TWCHASE_CHECK_MSG(fresh == replay_bit,
                              "resume log diverged from the semi-oblivious "
                              "application keys");
          }
          stored.retired = true;
          if (obs != nullptr && retire_considered) {
            obs->OnTriggerRetired({result.rounds, p.rule_index,
                                   fresh ? TriggerRetireReason::kApplied
                                         : TriggerRetireReason::kDuplicate});
          }
          if (!fresh) skip = true;
          break;
        }
        case ChaseVariant::kRestricted:
        case ChaseVariant::kFrugal:
        case ChaseVariant::kCore: {
          bool satisfied;
          if (replaying_this) {
            satisfied = !replay_bit;
          } else {
            satisfied = TriggerIsSatisfied(rule, *match, current);
            if (governor.stopped()) {
              // The satisfaction search aborted; its verdict is not
              // trustworthy and nothing has been committed for this
              // consideration — stop exactly here.
              satisfaction_aborted = true;
              break;
            }
          }
          if (retire_considered) {
            stored.retired = true;
            if (obs != nullptr) {
              obs->OnTriggerRetired({result.rounds, p.rule_index,
                                     satisfied
                                         ? TriggerRetireReason::kSatisfied
                                         : TriggerRetireReason::kApplied});
            }
          }
          if (satisfied) skip = true;
          break;
        }
      }
      if (satisfaction_aborted) {
        budget_stop = true;
        break;
      }
      if (skip) {
        if (rec != nullptr) rec->rounds.back().decisions.push_back(0);
        continue;
      }

      TriggerApplication application =
          ApplyTrigger(rule, *match, &current, vocab);
      if (core_guard_on && guard_base_established) {
        // Copied, not moved: added_atoms still feeds the derivation step
        // (and the abort rollback) below.
        guard_atoms_since.insert(guard_atoms_since.end(),
                                 application.added_atoms.begin(),
                                 application.added_atoms.end());
      }
      Substitution sigma;
      std::vector<Substitution> fold_sigmas;
      size_t core_folds = 0;
      bool have_core_event = false;
      bool application_aborted = false;
      CoreRetractionEvent core_event;
      const bool do_core = is_core && !options.core.core_at_round_end &&
                           ++since_last_core >= options.core.core_every;
      if (do_core) since_last_core = 0;
      const ResumeLog::StepRecord* step_record = nullptr;
      if (replaying_this) {
        TWCHASE_CHECK_MSG(cursor.step_index < cursor.log->steps.size(),
                          "resume log diverged: missing step record");
        step_record = &cursor.log->steps[cursor.step_index++];
        TWCHASE_CHECK_MSG(step_record->cored == do_core,
                          "resume log diverged from the coring schedule");
      }
      if (do_core) {
        core_event.size_before = current.size();
        if (use_incremental_core) {
          // In-place maintenance mutates as it folds; an interruption would
          // leave a half-folded instance, so the whole update is atomic
          // (polls inside are masked).
          GovernorAtomicSection atomic_update;
          IncrementalCoreOptions inc_options;
          inc_options.dirty_radius = options.core.dirty_radius;
          IncrementalCoreResult inc =
              IncrementalCoreUpdate(&current, application.added_atoms,
                                    inc_options, &inc_core_state);
          sigma = std::move(inc.retraction);
          if (inc.fell_back) {
            ++result.stats.core_fallbacks;
          } else {
            ++result.stats.core_incremental;
          }
          core_event.incremental = true;
          core_event.fell_back = inc.fell_back;
          core_event.folds = inc.folds;
        } else if (step_record != nullptr) {
          // Replay the recorded retraction through the same mutation
          // sequence as live coring (drain, record delta, rebuild): the
          // resulting instance, journal and delta state are identical.
          if (delta_on) pending_delta.Absorb(current.DrainDelta());
          if (delta_on) {
            RecordRetractionDelta(step_record->sigma, current, &pending_delta);
          }
          current = step_record->sigma.Apply(current);
          if (delta_on) current.EnableDeltaJournal();
          sigma = step_record->sigma;
          ++result.stats.core_full;
          core_event.folds = step_record->folds;
        } else {
          if (delta_on) pending_delta.Absorb(current.DrainDelta());
          bool guard_certified = false;
          if (core_guard_on && guard_base_established && !governor.stopped()) {
            ++result.stats.plan_core_proofs;
            ++round_plan.core_proofs;
            CoreGuardOutcome guard =
                ProveStillCore(current, guard_atoms_since, guard_base_mark);
            // An inner search the governor aborted can miss a refutation,
            // so a stopped run never certifies: it falls through to
            // ComputeCore, whose abort path rolls the application back.
            guard_certified = guard.certified && !governor.stopped();
          }
          if (guard_certified) {
            // Proven still a core without folding anything: ComputeCore
            // would have returned the instance itself with an empty
            // retraction and zero folds, so leaving `current` in place
            // (its journal survives the drain) with `sigma` empty
            // reproduces the unguarded records and events bit for bit.
            ++result.stats.plan_core_certified;
            ++round_plan.core_certified;
            if (delta_on) current.EnableDeltaJournal();
            core_event.folds = 0;
            note_certified();
          } else {
            CoreResult cored = ComputeCore(current);
            if (governor.stopped()) {
              // Coring aborted mid-search: discard it and roll the
              // application back to the last committed step (its added atoms
              // are exactly what it inserted; everything else is untouched).
              for (const Atom& atom : application.added_atoms) {
                current.Erase(atom);
              }
              application_aborted = true;
            } else {
              if (delta_on) {
                RecordRetractionDelta(cored.retraction, current,
                                      &pending_delta);
              }
              current = std::move(cored.core);
              if (delta_on) current.EnableDeltaJournal();
              sigma = std::move(cored.retraction);
              ++result.stats.core_full;
              core_event.folds = cored.folds;
              note_certified();
            }
          }
        }
        if (!application_aborted) {
          core_event.size_after = current.size();
          have_core_event = true;
          core_folds = core_event.folds;
        }
      } else if (options.variant == ChaseVariant::kFrugal &&
                 !rule.existential().empty()) {
        if (step_record != nullptr) {
          // Replay the recorded folds one by one through the same rebuild
          // the live path uses — journal entries included.
          for (const Substitution& fold : step_record->fold_sigmas) {
            ApplyRetractionRebuild(&current, fold);
            sigma = Substitution::Compose(fold, sigma);
            fold_sigmas.push_back(fold);
          }
        } else {
          std::vector<Term> fresh;
          for (Term ev : rule.existential()) {
            fresh.push_back(application.safe.Apply(ev));
          }
          // Each fold rebuilds the instance; interrupting between search
          // and rebuild would lose the committed prefix, so the fold loop
          // is atomic (bounded by the handful of fresh nulls of one rule).
          GovernorAtomicSection atomic_fold;
          sigma = FoldVariablesKeepingRestFixed(
              &current, fresh, rec != nullptr ? &fold_sigmas : nullptr);
        }
      }
      if (application_aborted) {
        budget_stop = true;
        break;
      }
      if (match == &composed) {
        result.derivation.AddStep(p.rule_index, rule.label(),
                                  std::move(composed), sigma,
                                  std::move(application.added_atoms), current);
      } else if (!delta_on || stored.retired) {
        // The stored match will not be used again: naive evaluation rebuilds
        // the set next round, and retired matches are dropped below.
        result.derivation.AddStep(p.rule_index, rule.label(),
                                  std::move(stored.match), sigma,
                                  std::move(application.added_atoms), current);
      } else {
        result.derivation.AddStep(p.rule_index, rule.label(), stored.match,
                                  sigma, std::move(application.added_atoms),
                                  current);
      }
      if (!sigma.IsIdentity()) {
        sigma_round = Substitution::Compose(sigma, sigma_round);
      }
      ++result.steps;
      progressed = true;
      if (rec != nullptr) {
        rec->rounds.back().decisions.push_back(1);
        ResumeLog::StepRecord step_rec;
        step_rec.sigma = sigma;
        step_rec.fold_sigmas = std::move(fold_sigmas);
        step_rec.cored = do_core;
        step_rec.folds = core_folds;
        rec->steps.push_back(std::move(step_rec));
        rec->committed_num_variables = vocab->num_variables();
      }
      governor.NoteMemoryUsage(
          current.ApproxMemoryBytes() +
          result.derivation.ApproxMemoryBytesExcludingFinalSnapshot());
      if (obs != nullptr) {
        const DerivationStep& last =
            result.derivation.step(result.derivation.size() - 1);
        TriggerAppliedEvent applied;
        applied.step = result.steps;
        applied.round = result.rounds;
        applied.rule_index = p.rule_index;
        applied.rule_label = &last.rule_label;
        applied.match = &last.match;
        applied.simplification = &last.simplification;
        applied.added_atoms = last.added_atoms.size();
        applied.instance_size = current.size();
        applied.instance = &current;
        obs->OnTriggerApplied(applied);
        if (have_core_event) {
          core_event.step = result.steps;
          obs->OnCoreRetraction(core_event);
        }
      }
      result.stats.peak_instance_size =
          std::max(result.stats.peak_instance_size, current.size());
      if (options.limits.max_instance_size != 0 &&
          current.size() > options.limits.max_instance_size) {
        result.size_guard_tripped = true;
        break;
      }
    }
    if (budget_stop || !replay_error.ok()) break;
    (void)replay_round_cut;  // consumed by the round-end replay below
    if (is_core && options.core.core_at_round_end && progressed) {
      bool round_end_handled = false;
      if (cursor.active) {
        const ResumeLog::RoundRecord& rr =
            cursor.log->rounds[cursor.round_index];
        if (rr.have_round_end) {
          // Same mutation sequence as the live path: unconditional drain,
          // then record/rebuild/amend only for a proper retraction.
          if (delta_on) pending_delta.Absorb(current.DrainDelta());
          size_t size_before = current.size();
          if (!rr.round_end_sigma.IsIdentity()) {
            if (delta_on) {
              RecordRetractionDelta(rr.round_end_sigma, current,
                                    &pending_delta);
            }
            current = rr.round_end_sigma.Apply(current);
            if (delta_on) current.EnableDeltaJournal();
            result.derivation.AmendLastSimplification(rr.round_end_sigma,
                                                      current);
          }
          ++result.stats.core_full;
          if (rec != nullptr) {
            rec->rounds.back().have_round_end = true;
            rec->rounds.back().round_end_sigma = rr.round_end_sigma;
            rec->rounds.back().round_end_folds = rr.round_end_folds;
          }
          if (obs != nullptr) {
            CoreRetractionEvent retraction;
            retraction.step = result.steps;
            retraction.folds = rr.round_end_folds;
            retraction.size_before = size_before;
            retraction.size_after = current.size();
            obs->OnCoreRetraction(retraction);
          }
          round_end_handled = true;
        } else {
          // The recorded run stopped at this round-end coring boundary;
          // resume runs it live.
          go_live();
        }
      }
      if (!round_end_handled && replay_error.ok()) {
        if (delta_on) pending_delta.Absorb(current.DrainDelta());
        size_t size_before = current.size();
        bool guard_certified = false;
        if (core_guard_on && guard_base_established && !governor.stopped()) {
          ++result.stats.plan_core_proofs;
          ++round_plan.core_proofs;
          CoreGuardOutcome guard =
              ProveStillCore(current, guard_atoms_since, guard_base_mark);
          // A governor-aborted inner search can miss a refutation, so a
          // stopped run never certifies and takes the ComputeCore branch,
          // whose abort handling is unchanged.
          guard_certified = guard.certified && !governor.stopped();
        }
        if (guard_certified) {
          // Zero-fold round end, synthesised: an identity retraction skips
          // the record/rebuild/amend exactly as the unguarded path does, so
          // the record and event below are bit-identical to it.
          ++result.stats.plan_core_certified;
          ++round_plan.core_certified;
          note_certified();
          if (rec != nullptr) {
            rec->rounds.back().have_round_end = true;
            rec->rounds.back().round_end_sigma = Substitution();
            rec->rounds.back().round_end_folds = 0;
          }
          if (obs != nullptr) {
            CoreRetractionEvent retraction;
            retraction.step = result.steps;
            retraction.folds = 0;
            retraction.size_before = size_before;
            retraction.size_after = current.size();
            obs->OnCoreRetraction(retraction);
          }
        } else {
          CoreResult cored = ComputeCore(current);
          if (governor.stopped()) {
            // Aborted mid-search; nothing was mutated — the round's
            // committed applications stand, the amendment simply has not
            // happened yet (resume re-runs it).
            budget_stop = true;
          } else {
            ++result.stats.core_full;
            size_t round_end_folds = cored.folds;
            if (!cored.retraction.IsIdentity()) {
              if (delta_on) {
                RecordRetractionDelta(cored.retraction, current,
                                      &pending_delta);
              }
              current = std::move(cored.core);
              if (delta_on) current.EnableDeltaJournal();
              result.derivation.AmendLastSimplification(cored.retraction,
                                                        current);
            }
            note_certified();
            if (rec != nullptr) {
              rec->rounds.back().have_round_end = true;
              rec->rounds.back().round_end_sigma = cored.retraction;
              rec->rounds.back().round_end_folds = round_end_folds;
            }
            if (obs != nullptr) {
              CoreRetractionEvent retraction;
              retraction.step = result.steps;
              retraction.folds = round_end_folds;
              retraction.size_before = size_before;
              retraction.size_after = current.size();
              obs->OnCoreRetraction(retraction);
            }
          }
        }
      }
    }
    if (budget_stop || !replay_error.ok()) break;
    if (retire_considered) {
      for (RuleState& state : rule_states) {
        size_t kept = 0;
        for (size_t i = 0; i < state.matches.size(); ++i) {
          if (!state.matches[i].retired) {
            if (kept != i) state.matches[kept] = std::move(state.matches[i]);
            ++kept;
          }
        }
        state.matches.resize(kept);
      }
    }
    if (obs != nullptr) {
      // Match-phase telemetry of the whole round (establishment through
      // application and coring). Emitted only when the round did match
      // work, and skipped by the stock event log unless opted in, so event
      // streams stay comparable across backends and thread counts.
      emit_match_plan_delta(result.rounds);
      if (plan_on && round_plan.any()) {
        PlanEvent plan_event;
        plan_event.round = result.rounds;
        plan_event.rules = kb.rules.size();
        plan_event.reliance_edges = exec_plan.graph.edge_count;
        plan_event.strata = exec_plan.strata.size();
        plan_event.dormant_rules = exec_plan.dormant_count;
        plan_event.active_strata = round_plan.active_strata;
        plan_event.enumerations_skipped = round_plan.enumerations_skipped;
        plan_event.probes_skipped = round_plan.probes_skipped;
        plan_event.core_proofs = round_plan.core_proofs;
        plan_event.core_certified = round_plan.core_certified;
        obs->OnPlan(plan_event);
      }
      obs->OnRoundEnd({result.rounds, result.steps - steps_at_round_start,
                       current.size(), progressed});
    }
    if (cursor.active) {
      ++cursor.round_index;
      cursor.bit_index = 0;
    }
    if (!progressed) {
      result.terminated = true;
      break;
    }
    if (result.size_guard_tripped) break;
  }
  if (!replay_error.ok()) return replay_error;
  fold_match_stats();
  if (budget_stop) {
    result.stop_reason = governor.reason();
  } else if (result.size_guard_tripped) {
    result.stop_reason = StopReason::kInstanceSizeGuard;
  } else if (result.terminated) {
    result.stop_reason = StopReason::kFixpoint;
  } else {
    result.stop_reason = StopReason::kStepBudget;
  }
  result.terminated = result.stop_reason == StopReason::kFixpoint;
  result.size_guard_tripped =
      result.stop_reason == StopReason::kInstanceSizeGuard;
  if (obs != nullptr) {
    if (governor.fault_fired()) {
      obs->OnFaultInjected(
          {governor.fault_site(), governor.fault_visit(), governor.reason()});
    }
    // Flush the match-plan tail a mid-round stop left unreported, so an
    // attached MetricsRegistry ends exactly at the ChaseStats totals.
    emit_match_plan_delta(result.rounds);
    obs->OnRunEnd({result.steps, result.rounds, result.terminated,
                   result.size_guard_tripped, current.size(),
                   result.stop_reason});
  }
  TWCHASE_LOG(Debug) << "chase " << ChaseVariantName(options.variant) << ": "
                     << result.steps << " steps, " << result.rounds
                     << " rounds, stop=" << StopReasonName(result.stop_reason)
                     << ", |F|=" << current.size();
  return result;
}

}  // namespace internal

}  // namespace twchase
