#include "core/trigger.h"

#include "hom/matcher.h"
#include "util/status.h"

namespace twchase {

bool IsTriggerFor(const Rule& rule, const Substitution& match,
                  const AtomSet& instance) {
  bool ok = true;
  rule.body().ForEach([&](const Atom& atom) {
    if (ok && !instance.Contains(match.Apply(atom))) ok = false;
  });
  return ok;
}

bool TriggerIsSatisfied(const Rule& rule, const Substitution& match,
                        const AtomSet& instance) {
  // Extension search over the head only: the body is already mapped by
  // `match`, so matching body ∪ head seeded with match is equivalent but
  // does redundant work; we still match body atoms to let the seed constrain
  // nothing further — head-only with seed restricted to frontier is enough.
  Substitution seed = match.RestrictTo(rule.frontier());
  return ExistsHomomorphismExtending(rule.head(), instance, seed);
}

TriggerApplication ApplyTrigger(const Rule& rule, const Substitution& match,
                                AtomSet* instance, Vocabulary* vocab) {
  TriggerApplication result;
  result.safe = match.RestrictTo(rule.frontier());
  for (Term ev : rule.existential()) {
    result.safe.Bind(ev, vocab->FreshVariable(vocab->TermName(ev)));
  }
  rule.head().ForEach([&](const Atom& atom) {
    Atom image = result.safe.Apply(atom);
    if (instance->Insert(image)) result.added_atoms.push_back(image);
  });
  return result;
}

std::vector<Trigger> FindTriggers(const Rule& rule, int rule_index,
                                  const AtomSet& instance) {
  HomOptions options;
  options.limit = 0;  // all
  std::vector<Trigger> out;
  for (Substitution& match :
       FindAllHomomorphisms(rule.body(), instance, options)) {
    out.push_back(Trigger{rule_index, std::move(match)});
  }
  return out;
}

}  // namespace twchase
