#include "core/trigger.h"

#include <functional>
#include <unordered_map>

#include "hom/matcher.h"
#include "util/status.h"

namespace twchase {

bool IsTriggerFor(const Rule& rule, const Substitution& match,
                  const AtomSet& instance) {
  bool ok = true;
  rule.body().ForEach([&](const Atom& atom) {
    if (ok && !instance.Contains(match.Apply(atom))) ok = false;
  });
  return ok;
}

bool MatchImageTouchesErased(const Rule& rule, const Substitution& match,
                             const DeltaIndex& delta) {
  bool touched = false;
  rule.body().ForEach([&](const Atom& atom) {
    if (!touched && delta.ErasedTouchesPredicate(atom.predicate()) &&
        delta.WasErased(match.Apply(atom))) {
      touched = true;
    }
  });
  return touched;
}

bool TriggerIsSatisfied(const Rule& rule, const Substitution& match,
                        const AtomSet& instance) {
  // Datalog fast path: with no existential variables every head variable is
  // in the frontier, so the head is ground under `match` and "an extension
  // exists" degenerates to containment of the ground image — a hash lookup
  // per head atom instead of a homomorphism search. This is the hot check
  // of the restricted chase (once per pending trigger per revalidation).
  if (rule.existential().empty()) {
    bool ok = true;
    rule.head().ForEach([&](const Atom& atom) {
      if (ok && !instance.Contains(match.Apply(atom))) ok = false;
    });
    return ok;
  }
  // Extension search over the head only: the body is already mapped by
  // `match`, so matching body ∪ head seeded with match is equivalent but
  // does redundant work; we still match body atoms to let the seed constrain
  // nothing further — head-only with seed restricted to frontier is enough.
  Substitution seed = match.RestrictTo(rule.frontier());
  return ExistsHomomorphismExtending(rule.head(), instance, seed);
}

TriggerApplication ApplyTrigger(const Rule& rule, const Substitution& match,
                                AtomSet* instance, Vocabulary* vocab) {
  TriggerApplication result;
  result.safe = match.RestrictTo(rule.frontier());
  for (Term ev : rule.existential()) {
    result.safe.Bind(ev, vocab->FreshVariable(vocab->TermName(ev)));
  }
  rule.head().ForEach([&](const Atom& atom) {
    Atom image = result.safe.Apply(atom);
    if (instance->Insert(image)) result.added_atoms.push_back(image);
  });
  return result;
}

std::vector<Trigger> FindTriggers(const Rule& rule, int rule_index,
                                  const AtomSet& instance) {
  HomOptions options;
  options.limit = 0;  // all
  std::vector<Trigger> out;
  for (Substitution& match :
       FindAllHomomorphisms(rule.body(), instance, options)) {
    out.push_back(Trigger{rule_index, std::move(match)});
  }
  return out;
}

std::optional<Substitution> UnifyBodyAtomWithFact(const Atom& body_atom,
                                                  const Atom& fact) {
  if (body_atom.predicate() != fact.predicate()) return std::nullopt;
  if (body_atom.args().size() != fact.args().size()) return std::nullopt;
  Substitution unifier;
  for (size_t i = 0; i < body_atom.args().size(); ++i) {
    Term pat = body_atom.arg(i);
    Term image = fact.arg(i);
    if (pat.is_constant()) {
      if (pat != image) return std::nullopt;
      continue;
    }
    std::optional<Term> bound = unifier.Lookup(pat);
    if (bound.has_value()) {
      if (*bound != image) return std::nullopt;
    } else {
      unifier.Bind(pat, image);
    }
  }
  return unifier;
}

bool AtomsUnifiableDisjoint(const Atom& a, const Atom& b) {
  if (a.predicate() != b.predicate()) return false;
  if (a.args().size() != b.args().size()) return false;
  // Union-find over the positions' terms. Variables are tagged by side so
  // equal ids on opposite sides stay distinct unknowns; constants share one
  // namespace. A class may contain at most one constant (no occurs-check is
  // needed: atoms are flat, so no term contains another).
  std::unordered_map<uint64_t, uint64_t> parent;
  auto key = [](int side, Term t) -> uint64_t {
    const uint64_t tag = t.is_constant() ? 2u : static_cast<uint64_t>(side);
    return (tag << 32) | t.raw();
  };
  std::function<uint64_t(uint64_t)> find = [&](uint64_t x) -> uint64_t {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    uint64_t root = find(it->second);
    it->second = root;
    return root;
  };
  auto is_constant_key = [](uint64_t x) { return (x >> 32) == 2u; };
  for (size_t i = 0; i < a.args().size(); ++i) {
    uint64_t ra = find(key(0, a.arg(i)));
    uint64_t rb = find(key(1, b.arg(i)));
    if (ra == rb) continue;
    if (is_constant_key(ra) && is_constant_key(rb)) return false;
    // Point the variable root at the other root so constants stay roots.
    if (is_constant_key(ra)) {
      parent[rb] = ra;
    } else {
      parent[ra] = rb;
    }
  }
  return true;
}

std::vector<Substitution> FindSeededMatches(const Rule& rule, const Atom& fact,
                                            const AtomSet& instance) {
  std::vector<Substitution> out;
  rule.body().ForEach([&](const Atom& body_atom) {
    std::optional<Substitution> seed = UnifyBodyAtomWithFact(body_atom, fact);
    if (!seed.has_value()) return;
    HomOptions options;
    options.seed = std::move(*seed);
    options.limit = 0;  // all
    for (Substitution& match :
         FindAllHomomorphisms(rule.body(), instance, options)) {
      out.push_back(std::move(match));
    }
  });
  return out;
}

}  // namespace twchase
