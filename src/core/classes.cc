#include "core/classes.h"

#include <cstdio>

#include "util/status.h"

namespace twchase {

ClassificationReport ClassifyKb(const KnowledgeBase& kb,
                                const ClassificationOptions& options) {
  ClassificationReport report;

  ChaseOptions core_opts;
  core_opts.variant = ChaseVariant::kCore;
  core_opts.limits.max_steps = options.max_steps;
  auto core_run = RunChase(kb, core_opts);
  TWCHASE_CHECK_MSG(core_run.ok(), core_run.status().ToString());
  report.core_chase_terminated = core_run->terminated;
  report.core_steps = core_run->steps;
  report.core_tw_series = MeasureSeries(core_run->derivation,
                                        Measure::kTreewidthUpper, options.tw);
  report.core_tw =
      SummarizeBoundedness(report.core_tw_series, options.tail_window);

  ChaseOptions restricted_opts;
  restricted_opts.variant = ChaseVariant::kRestricted;
  restricted_opts.limits.max_steps = options.max_steps;
  auto restricted_run = RunChase(kb, restricted_opts);
  TWCHASE_CHECK_MSG(restricted_run.ok(), restricted_run.status().ToString());
  report.restricted_terminated = restricted_run->terminated;
  report.restricted_steps = restricted_run->steps;
  report.restricted_tw_series = MeasureSeries(
      restricted_run->derivation, Measure::kTreewidthUpper, options.tw);
  report.restricted_tw =
      SummarizeBoundedness(report.restricted_tw_series, options.tail_window);

  return report;
}

std::string ClassificationReport::ToTableRow(const std::string& name) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-24s | %-9s %6zu | rc tw max %2d tail %2d %-9s | cc tw max "
                "%2d tail %2d",
                name.c_str(), core_chase_terminated ? "TERM(fes)" : "no-term",
                core_steps, restricted_tw.uniform_bound,
                restricted_tw.recurring_estimate,
                restricted_terminated ? "TERM" : "no-term",
                core_tw.uniform_bound, core_tw.recurring_estimate);
  return buf;
}

}  // namespace twchase
