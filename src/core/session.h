// ChaseSession: the lifecycle handle for one chase run, and the primary
// entry point of the engine. A session owns the validated ChaseOptions, the
// cancellation token its control surface drives, and (while running) the
// engine invocation itself; the free functions RunChase / ResumeChase /
// RunChaseWithReplay in core/chase.h and core/checkpoint.h are retained as
// the one-shot compatibility surface and are thin wrappers over a session.
//
// The session exists because one process now hosts MANY chases at once (the
// multi-tenant daemon in src/service/): each concurrent job needs its own
// governor, its own observers, and a control surface that another thread
// can drive — preempt a long job at a consistent boundary, turn the stopped
// prefix into a checkpoint, and later continue it elsewhere. The one-shot
// functions cannot express "pause this particular run over there"; the
// session can, without changing a single engine behavior: a session that is
// only ever Start()ed is byte-for-byte the old RunChase.
//
// State machine (one-way; a session runs at most one segment):
//
//     kIdle --Start()/Resume(cp)--> kRunning --+--> kDone    (fixpoint or
//                                              |              budget/cancel)
//                                              +--> kPaused  (Pause() was
//                                                            requested and
//                                                            the run stopped
//                                                            at a boundary)
//
// Start()/Resume() execute synchronously on the calling thread (the daemon
// runs them on scheduler workers). Pause() and Cancel() are thread-safe
// asynchronous requests: both stop the run cooperatively at the next
// governed boundary; they differ only in how the session classifies the
// stop. A paused session yields a Checkpoint() from which a NEW session —
// over a freshly parsed copy of the same program, exactly like ResumeChase —
// continues the run bit-identically (same final instance, derivation
// journal and observer event stream as the uninterrupted run; the
// fault-injection suite proves this at every boundary).
//
// Thread-safety: Start/Resume/Result/TakeResult/Checkpoint belong to the
// owning (worker) thread; Pause/Cancel/state may be called from any thread.
#ifndef TWCHASE_CORE_SESSION_H_
#define TWCHASE_CORE_SESSION_H_

#include <atomic>
#include <memory>

#include "core/chase.h"
#include "core/checkpoint.h"
#include "kb/knowledge_base.h"
#include "util/status.h"

namespace twchase {

class ChaseSession {
 public:
  enum class State {
    kIdle,     // created, not yet started
    kRunning,  // Start()/Resume() executing on the owning thread
    kPaused,   // stopped by Pause(); Checkpoint() continues it elsewhere
    kDone,     // fixpoint, exhausted budget, cancelled, or failed
  };

  /// Validates `options` (same checks, same error order as the one-shot
  /// RunChase: vocabulary first, then ChaseOptions::Validate) and builds an
  /// idle session. `kb` is borrowed and must outlive the session. If the
  /// caller's options carry no cancel token, the session mints one so that
  /// Pause()/Cancel() always work; a caller-provided token is kept and
  /// shared (external cancellation still stops the run, reported as kDone).
  static StatusOr<std::unique_ptr<ChaseSession>> Create(
      const KnowledgeBase& kb, const ChaseOptions& options);

  /// Runs the chase to a stop boundary on the calling thread. Returns OK
  /// when the engine produced a result (even a budget-stopped or cancelled
  /// prefix — those are recoverable outcomes, not errors) and the session
  /// moved to kDone or kPaused. FailedPrecondition if the session is not
  /// idle.
  Status Start();

  /// Continues a checkpointed run: validates the checkpoint against kb and
  /// options exactly as ResumeChase does (variant, schedule echo,
  /// fingerprint, fresh-vocabulary state), replays the recorded prefix and
  /// goes live. Same threading and outcome contract as Start().
  Status Resume(const ChaseCheckpoint& checkpoint);

  /// Compatibility entry for the deterministic-replay path (the backbone of
  /// Resume and of the recorded-run tests): Start(), but replaying `replay`
  /// first. `replay` may be null (plain Start) and is borrowed for the
  /// duration of the call.
  Status StartWithReplay(const ResumeLog* replay);

  /// Requests preemption from any thread: the run stops at the next
  /// governed boundary and the session lands in kPaused, from which
  /// Checkpoint() resumes it later. FailedPrecondition unless the session
  /// records a resume log (options.resume.record_log — a run without the
  /// log cannot be continued, only cancelled). Pausing a session that
  /// already finished is a harmless no-op (the finished state wins).
  Status Pause();

  /// Requests cancellation from any thread: the run stops at the next
  /// governed boundary with StopReason::kCancelled and the session lands in
  /// kDone. Always safe; overrides a concurrent Pause().
  void Cancel();

  /// The finished run (kPaused or kDone). The paused case holds the
  /// consistent prefix the checkpoint is built from.
  const ChaseResult& Result() const;

  /// Moves the result out (for callers that return it by value). The
  /// session keeps its terminal state but the result is gone.
  ChaseResult TakeResult();

  /// Builds the checkpoint of a kPaused (or kDone-with-log) session.
  /// FailedPrecondition while running/idle or without a recorded log.
  StatusOr<ChaseCheckpoint> Checkpoint() const;

  State state() const { return state_.load(std::memory_order_acquire); }

  /// Meaningful once the session left kRunning.
  StopReason stop_reason() const { return result_.stop_reason; }

  /// True once Pause() was requested (even if the run finished first).
  bool pause_requested() const {
    return pause_requested_.load(std::memory_order_acquire);
  }

  const ChaseOptions& options() const { return options_; }
  const KnowledgeBase& kb() const { return *kb_; }

 private:
  ChaseSession(const KnowledgeBase& kb, const ChaseOptions& options);

  const KnowledgeBase* kb_;
  ChaseOptions options_;

  /// Shares the flag with options_.limits.cancel: RequestCancel here stops
  /// the engine segment, whoever started it.
  CancelToken control_token_;

  std::atomic<State> state_{State::kIdle};
  std::atomic<bool> pause_requested_{false};
  std::atomic<bool> cancel_requested_{false};
  ChaseResult result_;
  bool has_result_ = false;
};

const char* ChaseSessionStateName(ChaseSession::State state);

}  // namespace twchase

#endif  // TWCHASE_CORE_SESSION_H_
