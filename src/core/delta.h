// DeltaIndex: the change set driving semi-naive rule evaluation. The chase
// accumulates the atoms inserted into and erased from the current instance
// between scheduler rounds (rule applications insert; core/frugal
// retractions erase and insert images) and, at the next round start, derives
// new triggers only from matches whose image touches an inserted atom and
// revalidates stored matches only when something was erased.
//
// Recording is conservative by design: it is safe to record an insertion of
// an atom that was already present (the seeded re-match dedups against the
// stored trigger keys) or that is erased again before the round ends (the
// seeded probe finds nothing); missing a real change is the only error.
#ifndef TWCHASE_CORE_DELTA_H_
#define TWCHASE_CORE_DELTA_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/atom.h"
#include "model/atom_set.h"

namespace twchase {

class DeltaIndex {
 public:
  void RecordInsert(const Atom& atom);
  void RecordErase(const Atom& atom);

  /// Merges a drained AtomSet journal into this index.
  void Absorb(AtomSet::Delta delta);

  bool empty() const { return inserted_.empty() && erased_.empty(); }
  bool has_erasures() const { return !erased_.empty(); }

  /// Inserted atoms, deduplicated, in first-record order.
  const std::vector<Atom>& inserted() const { return inserted_; }

  /// Erased atoms, deduplicated, in first-record order.
  const std::vector<Atom>& erased() const { return erased_; }

  /// Indices into inserted() of the atoms with the given predicate — the
  /// seeding points for a body atom of that predicate.
  const std::vector<size_t>* InsertedWithPredicate(PredicateId predicate) const;

  /// Predicates with at least one inserted atom. The execution planner
  /// intersects this with per-stratum body predicates to count the strata
  /// the next round will actually touch (chase.plan.active_strata).
  const std::unordered_set<PredicateId>& InsertedPredicates() const {
    return inserted_predicates_;
  }

  /// O(1) membership probes into the erased segment, read directly by the
  /// chase's revalidation fast path: a stored match whose body image touches
  /// no erased atom is still a trigger (insertions never falsify a Contains
  /// check), so the full per-match re-probe of the instance runs only for
  /// matches these probes implicate.
  bool ErasedTouchesPredicate(PredicateId predicate) const {
    return erased_predicates_.contains(predicate);
  }
  bool WasErased(const Atom& atom) const {
    return erased_seen_.contains(atom);
  }

  void Clear();

 private:
  std::vector<Atom> inserted_;
  std::vector<Atom> erased_;
  std::unordered_set<Atom, AtomHash> inserted_seen_;
  std::unordered_set<Atom, AtomHash> erased_seen_;
  std::unordered_map<PredicateId, std::vector<size_t>> inserted_by_predicate_;
  std::unordered_set<PredicateId> inserted_predicates_;
  std::unordered_set<PredicateId> erased_predicates_;
};

}  // namespace twchase

#endif  // TWCHASE_CORE_DELTA_H_
