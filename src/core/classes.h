// Empirical classifiers for the decidable classes of Figure 1: fes evidence
// (core-chase termination), bts evidence (treewidth-bounded restricted
// chase) and core-bts evidence (recurringly treewidth-bounded core chase,
// Definition 17). On a fixed instance and finite budget these are
// semi-decisions: termination within budget certifies fes on that instance;
// boundedness on the prefix is evidence, not proof (the paper's classes
// quantify over all instances and infinite sequences).
#ifndef TWCHASE_CORE_CLASSES_H_
#define TWCHASE_CORE_CLASSES_H_

#include <string>

#include "core/chase.h"
#include "core/measures.h"
#include "kb/knowledge_base.h"

namespace twchase {

struct ClassificationOptions {
  size_t max_steps = 400;
  size_t tail_window = 8;
  TreewidthOptions tw;
};

struct ClassificationReport {
  // Core chase (fes / core-bts evidence).
  bool core_chase_terminated = false;
  size_t core_steps = 0;
  std::vector<int> core_tw_series;
  BoundednessSummary core_tw;

  // Restricted chase (bts evidence).
  bool restricted_terminated = false;
  size_t restricted_steps = 0;
  std::vector<int> restricted_tw_series;
  BoundednessSummary restricted_tw;

  std::string ToTableRow(const std::string& name) const;
};

/// Runs both chases on the KB and summarises the measure series.
ClassificationReport ClassifyKb(const KnowledgeBase& kb,
                                const ClassificationOptions& options = {});

}  // namespace twchase

#endif  // TWCHASE_CORE_CLASSES_H_
