// Triggers and rule application (Section 2). A trigger for instance I is a
// pair tr = (R, π) with π a homomorphism from body(R) to I. It is satisfied
// in I if π extends to a homomorphism from body ∪ head into I. Applying tr
// produces α(I, tr) = I ∪ π_safe(head), where π_safe maps frontier variables
// per π and existential variables to fresh nulls.
#ifndef TWCHASE_CORE_TRIGGER_H_
#define TWCHASE_CORE_TRIGGER_H_

#include <vector>

#include "core/delta.h"
#include "kb/rule.h"
#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

struct Trigger {
  int rule_index = -1;
  Substitution match;  // domain: vars(body)
};

/// True iff `match` maps body(rule) into `instance` (tr is a trigger for it).
bool IsTriggerFor(const Rule& rule, const Substitution& match,
                  const AtomSet& instance);

/// True iff some body-atom image of `match` is in the delta's erased
/// segment. The revalidation fast path: when false, the match is still a
/// trigger for the instance the delta was drained from (only erasures can
/// falsify IsTriggerFor's Contains checks), so the full check is skipped.
bool MatchImageTouchesErased(const Rule& rule, const Substitution& match,
                             const DeltaIndex& delta);

/// True iff the trigger is satisfied in `instance`.
bool TriggerIsSatisfied(const Rule& rule, const Substitution& match,
                        const AtomSet& instance);

struct TriggerApplication {
  /// π_safe: match plus fresh bindings for existential variables.
  Substitution safe;

  /// Head-image atoms that were actually inserted (absent before).
  std::vector<Atom> added_atoms;
};

/// α(instance, tr): inserts the head image into *instance. Fresh nulls are
/// minted from `vocab` (never reused — see the paper's Footnote 2).
TriggerApplication ApplyTrigger(const Rule& rule, const Substitution& match,
                                AtomSet* instance, Vocabulary* vocab);

/// All triggers of `rule` (index `rule_index`) for `instance`, in the
/// deterministic enumeration order of the homomorphism search.
std::vector<Trigger> FindTriggers(const Rule& rule, int rule_index,
                                  const AtomSet& instance);

/// The binding obtained by unifying `body_atom` with `fact` position-wise
/// (constants must coincide; a repeated variable must meet equal terms), or
/// nullopt on clash or predicate/arity mismatch.
std::optional<Substitution> UnifyBodyAtomWithFact(const Atom& body_atom,
                                                  const Atom& fact);

/// True iff the two atoms are unifiable with their variable namespaces kept
/// disjoint (standardise-apart): a variable of `a` never denotes the same
/// unknown as an equally-named variable of `b`. This is proper two-sided
/// unification — both atoms may contain variables — unlike
/// UnifyBodyAtomWithFact, whose one-way matching would miss pairs such as
/// p(c, X) against p(Y, d) that do have a most general unifier. The rule
/// reliance analysis (src/plan/reliance.h) uses it to decide whether a head
/// atom of one rule can ever produce a body match of another.
bool AtomsUnifiableDisjoint(const Atom& a, const Atom& b);

/// Semi-naive probe: all matches of body(rule) into `instance` that map at
/// least one body atom onto `fact`. For each compatible body atom the
/// homomorphism search is seeded with the unifier, which pins that atom's
/// image to `fact` — so if `fact` is not (or no longer) in `instance` the
/// probe finds nothing. A match mapping several body atoms onto `fact` is
/// found once per such atom; callers deduplicate by binding key.
std::vector<Substitution> FindSeededMatches(const Rule& rule, const Atom& fact,
                                            const AtomSet& instance);

}  // namespace twchase

#endif  // TWCHASE_CORE_TRIGGER_H_
