#include "core/derivation.h"

#include "util/status.h"

namespace twchase {

void Derivation::AddInitial(const AtomSet& f0, Substitution sigma0) {
  TWCHASE_CHECK(steps_.empty());
  DerivationStep step;
  step.simplification = std::move(sigma0);
  step.instance_size = f0.size();
  if (keep_snapshots_) step.instance = f0;
  last_step_bytes_ = StepBytes(step);
  last_snapshot_bytes_ = keep_snapshots_ ? step.instance.ApproxMemoryBytes() : 0;
  approx_bytes_ += last_step_bytes_;
  steps_.push_back(std::move(step));
  last_ = f0;
}

void Derivation::AddStep(int rule_index, std::string rule_label,
                         Substitution match, Substitution sigma,
                         std::vector<Atom> added_atoms,
                         const AtomSet& instance) {
  TWCHASE_CHECK(!steps_.empty());
  DerivationStep step;
  step.rule_index = rule_index;
  step.rule_label = std::move(rule_label);
  step.match = std::move(match);
  step.simplification = std::move(sigma);
  step.added_atoms = std::move(added_atoms);
  step.instance_size = instance.size();
  if (keep_snapshots_) step.instance = instance;
  last_step_bytes_ = StepBytes(step);
  last_snapshot_bytes_ = keep_snapshots_ ? step.instance.ApproxMemoryBytes() : 0;
  approx_bytes_ += last_step_bytes_;
  // Maintain the running F_i without an O(|F_i|) copy per step: when the
  // simplification is the identity, the step only inserted `added_atoms`
  // into F_{i-1}, so mirroring those inserts reproduces F_i's content
  // (Last()'s contract — consumers compare content, not internal layout).
  // Retracting steps (core and frugal folds carry a non-identity sigma)
  // fall back to the full copy; they are rare and already paid for an
  // instance rebuild. The size check is a defensive resync: it cannot
  // trigger for a pure insertion step.
  if (step.simplification.IsIdentity()) {
    for (const Atom& atom : step.added_atoms) last_.Insert(atom);
    if (last_.size() != instance.size()) last_ = instance;
  } else {
    last_ = instance;
  }
  steps_.push_back(std::move(step));
}

void Derivation::AmendLastSimplification(const Substitution& sigma,
                                         const AtomSet& instance) {
  TWCHASE_CHECK(!steps_.empty());
  DerivationStep& last = steps_.back();
  last.simplification = Substitution::Compose(sigma, last.simplification);
  last.instance_size = instance.size();
  if (keep_snapshots_) last.instance = instance;
  approx_bytes_ -= last_step_bytes_;
  last_step_bytes_ = StepBytes(last);
  last_snapshot_bytes_ = keep_snapshots_ ? last.instance.ApproxMemoryBytes() : 0;
  approx_bytes_ += last_step_bytes_;
  last_ = instance;
}

size_t Derivation::StepBytes(const DerivationStep& step) const {
  // Rough per-step footprint; the snapshot (when kept) dominates. The
  // 48-byte constant approximates one hash-map node per substitution entry.
  size_t bytes = sizeof(DerivationStep) + step.rule_label.capacity();
  bytes += (step.match.size() + step.simplification.size()) * 48;
  bytes += step.added_atoms.size() * 64;
  if (keep_snapshots_) bytes += step.instance.ApproxMemoryBytes();
  return bytes;
}

const AtomSet& Derivation::Instance(size_t i) const {
  TWCHASE_CHECK(keep_snapshots_ && i < steps_.size());
  return steps_[i].instance;
}

Substitution Derivation::SigmaBetween(size_t i, size_t j) const {
  TWCHASE_CHECK(i <= j && j < steps_.size());
  Substitution out;
  for (size_t k = i + 1; k <= j; ++k) {
    out = Substitution::Compose(steps_[k].simplification, out);
  }
  return out;
}

AtomSet Derivation::PreSimplification(size_t i) const {
  TWCHASE_CHECK(keep_snapshots_ && i >= 1 && i < steps_.size());
  AtomSet out = steps_[i - 1].instance;
  for (const Atom& atom : steps_[i].added_atoms) out.Insert(atom);
  return out;
}

bool Derivation::IsMonotonic() const {
  TWCHASE_CHECK(keep_snapshots_);
  for (size_t i = 1; i < steps_.size(); ++i) {
    if (!steps_[i - 1].instance.IsSubsetOf(steps_[i].instance)) return false;
  }
  return true;
}

AtomSet Derivation::NaturalAggregation() const {
  TWCHASE_CHECK(keep_snapshots_);
  AtomSet out;
  for (const DerivationStep& step : steps_) {
    out.InsertAll(step.instance);
  }
  return out;
}

std::unordered_map<Atom, size_t, AtomHash> Derivation::ProvenanceIndex()
    const {
  TWCHASE_CHECK(keep_snapshots_);
  std::unordered_map<Atom, size_t, AtomHash> out;
  if (steps_.empty()) return out;
  steps_[0].instance.ForEach(
      [&](const Atom& atom) { out.emplace(atom, 0); });
  for (size_t i = 1; i < steps_.size(); ++i) {
    for (const Atom& atom : steps_[i].added_atoms) {
      out.emplace(atom, i);
    }
  }
  return out;
}

}  // namespace twchase
