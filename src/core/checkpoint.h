// Checkpointing and resumption of chase runs.
//
// The paper's interesting chases are precisely the ones that do not
// terminate (the core-chase sequences of the inflating elevator grow
// forever), so a practical engine must be able to stop a run at a budget
// boundary, write everything needed to continue, and later resume
// *bit-identically*: the resumed run produces the same final instance, the
// same derivation journal and the same observer event stream as an
// uninterrupted run with the combined budget.
//
// A checkpoint is NOT an instance snapshot. Serializing the instance alone
// cannot resume a run: the scheduler's future depends on state that is
// expensive or impossible to externalize directly (stored match sets,
// applied-key sets, the coring cadence). Instead a checkpoint carries the
// ResumeLog — the per-round decision bits and the recorded coring/folding
// retractions — and resumption REPLAYS the recorded prefix through the very
// same scheduler code path (RunChaseWithReplay): decision bits substitute
// for satisfaction checks and recorded retractions substitute for core
// recomputation, so replay is cheap (no homomorphism searches) and lands in
// the exact scheduler state, stored matches and all, where the run stopped.
// The instance size/hash recorded here are a cross-check of that landing,
// not the mechanism.
//
// The knowledge base itself is deliberately not embedded: the caller
// re-parses the same program text (the CLI passes the same file) and a
// fingerprint verifies it is byte-for-byte the same program, which also
// pins the term-id assignment the serialized substitutions refer to.
#ifndef TWCHASE_CORE_CHECKPOINT_H_
#define TWCHASE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "core/chase.h"
#include "kb/knowledge_base.h"
#include "util/status.h"

namespace twchase {

/// Deterministic structural fingerprint of (rules, facts): FNV-1a over rule
/// labels, bodies, heads and the facts' content hash. Stable across
/// processes; sensitive to anything that changes term-id assignment or the
/// scheduler's rule order.
uint64_t ProgramFingerprint(const KnowledgeBase& kb);

/// The fingerprint a checkpoint actually stores: ProgramFingerprint plus
/// everything run-shaping that lives outside the schedule echo — the
/// process-wide match backend (a columnar-backend checkpoint must not
/// silently resume under the legacy backend: the runs are bit-identical,
/// but the fingerprint is the contract that the whole configuration
/// matches), the planner switch and — for runs requested as --variant=auto
/// — the preflight decision (classifier verdict + resolved variant), so a
/// resume whose re-classification would decide differently is rejected.
/// Computed at MakeCheckpoint time against the backend then in force, and
/// re-computed by ResumeChase for the rejection check.
uint64_t CheckpointFingerprint(const KnowledgeBase& kb,
                               const ChaseOptions& options);

struct ChaseCheckpoint {
  /// Format version (bumped on incompatible serialization changes).
  uint32_t version = 1;

  ChaseVariant variant = ChaseVariant::kRestricted;

  /// Echo of the options that shape the decision-bit stream; ResumeChase
  /// rejects a resume whose options disagree (the bits would be
  /// meaningless against a different schedule).
  bool datalog_first = true;
  bool delta_enabled = true;
  size_t core_every = 1;
  bool core_at_round_end = false;
  bool core_initial = true;

  uint64_t program_fingerprint = 0;

  /// Where the recorded run stopped.
  StopReason stop_reason = StopReason::kFixpoint;
  size_t steps = 0;
  size_t rounds = 0;

  /// Landing cross-check: the checkpointed instance's size and
  /// order-independent content hash (AtomSet::ContentHash), and the
  /// vocabulary's variable count after the last committed step.
  size_t instance_size = 0;
  uint64_t instance_hash = 0;
  size_t expected_variables = 0;

  ResumeLog log;
};

/// Builds a checkpoint from a finished (stopped or terminated) run. The run
/// must have been executed with options.resume.record_log = true; CHECK
/// fails otherwise (an empty log would silently resume from scratch).
ChaseCheckpoint MakeCheckpoint(const KnowledgeBase& kb,
                               const ChaseOptions& options,
                               const ChaseResult& result);

/// Line-based text serialization (versioned, self-describing header).
std::string SerializeCheckpoint(const ChaseCheckpoint& checkpoint);

/// Parses a serialized checkpoint. InvalidArgument on malformed input or an
/// unsupported version; never aborts on untrusted bytes. Strict: trailing
/// bytes after the "end" terminator and a final line without its newline
/// are rejected with a byte-offset-annotated error, so a torn tail can
/// never parse as a shorter-but-valid log.
StatusOr<ChaseCheckpoint> ParseCheckpoint(const std::string& text);

/// SerializeCheckpoint plus an integrity footer:
///   checksum 1 <body-length> <crc32-of-body-in-hex>\n
/// This is the on-disk form used by the durable job store: the length
/// detects truncation, the CRC detects bit rot, and strictness rejects
/// anything after the footer.
std::string SerializeCheckpointSealed(const ChaseCheckpoint& checkpoint);

/// Verifies and strips the footer, then parses the body strictly.
/// InvalidArgument when the footer is missing, the length disagrees, the
/// CRC mismatches, or bytes follow the footer.
StatusOr<ChaseCheckpoint> ParseSealedCheckpoint(const std::string& text);

/// Resumes the checkpointed run against `kb`, which must be a fresh parse
/// of the same program (fingerprint-verified, vocabulary unconsumed).
/// `options` supplies the NEW budgets (typically larger than the recorded
/// run's); the schedule-shaping options must match the checkpoint's echo.
/// The returned result is bit-identical — same derivation, same events, as
/// verified by the landing cross-check — to an uninterrupted run under the
/// combined budget. FailedPrecondition when the checkpoint does not match
/// kb/options or the replay fails to reconstruct the recorded state.
StatusOr<ChaseResult> ResumeChase(const KnowledgeBase& kb,
                                  const ChaseOptions& options,
                                  const ChaseCheckpoint& checkpoint);

}  // namespace twchase

#endif  // TWCHASE_CORE_CHECKPOINT_H_
