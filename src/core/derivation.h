// Derivations (Definition 1): sequences ((tr_i, σ_i, F_i)) where tr_i is a
// trigger for F_{i-1} not satisfied in it, σ_i is a retraction
// ("simplification"), and F_i = σ_i(α(F_{i-1}, tr_i)). Also provides the
// composed simplifications σ^j_i (Definition 2) used to trace triggers
// through a non-monotonic derivation, and the natural aggregation D*
// (Section 3).
#ifndef TWCHASE_CORE_DERIVATION_H_
#define TWCHASE_CORE_DERIVATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

struct DerivationStep {
  /// Rule applied at this step; -1 for the initial step 0.
  int rule_index = -1;
  std::string rule_label;

  /// Trigger homomorphism π_i (empty for step 0).
  Substitution match;

  /// Simplification σ_i: a retraction of α(F_{i-1}, tr_i) onto F_i
  /// (σ_0 retracts the initial fact set).
  Substitution simplification;

  /// Atoms inserted by α before simplification.
  std::vector<Atom> added_atoms;

  /// F_i snapshot; empty when the derivation does not keep snapshots.
  AtomSet instance;

  /// |F_i| (recorded even without snapshots).
  size_t instance_size = 0;
};

class Derivation {
 public:
  explicit Derivation(bool keep_snapshots) : keep_snapshots_(keep_snapshots) {}

  /// Installs F_0 = σ_0(F).
  void AddInitial(const AtomSet& f0, Substitution sigma0);

  /// Appends step i from its components. `instance` is F_i.
  void AddStep(int rule_index, std::string rule_label, Substitution match,
               Substitution sigma, std::vector<Atom> added_atoms,
               const AtomSet& instance);

  /// Composes an additional simplification into the most recent step and
  /// replaces its instance (used by round-end coring, where the retraction
  /// conceptually belongs to the round's last rule application — the
  /// Deutsch–Nash–Remmel presentation of the core chase).
  void AmendLastSimplification(const Substitution& sigma,
                               const AtomSet& instance);

  /// Number of recorded elements F_0 .. F_{size()-1}.
  size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  const DerivationStep& step(size_t i) const { return steps_[i]; }

  bool keeps_snapshots() const { return keep_snapshots_; }

  /// F_i (requires snapshots).
  const AtomSet& Instance(size_t i) const;

  /// The last F_i (always available).
  const AtomSet& Last() const { return last_; }

  /// σ^j_i = σ_j • ... • σ_{i+1} (identity when i == j); a homomorphism from
  /// F_i to F_j.
  Substitution SigmaBetween(size_t i, size_t j) const;

  /// A_i = α(F_{i-1}, tr_i), reconstructed as F_{i-1} plus the added atoms
  /// (requires snapshots; i ≥ 1).
  AtomSet PreSimplification(size_t i) const;

  /// True iff F_{i-1} ⊆ F_i for all i (requires snapshots).
  bool IsMonotonic() const;

  /// Natural aggregation D* = ∪_i F_i (requires snapshots).
  AtomSet NaturalAggregation() const;

  /// Provenance: for every atom ever produced, the first step that created
  /// it (0 for initial atoms). Keys cover the natural aggregation.
  std::unordered_map<Atom, size_t, AtomHash> ProvenanceIndex() const;

  /// Rough estimate of resident bytes across all recorded steps (snapshots
  /// dominate when kept). Maintained incrementally so the chase's
  /// memory-budget poll can read it per step.
  size_t ApproxMemoryBytes() const { return approx_bytes_; }

  /// ApproxMemoryBytes minus the final step's retained snapshot. The chase
  /// accounts the live instance separately, and with snapshots kept the
  /// final snapshot *is* (a copy of) the live instance — adding both
  /// double-counted it, inflating every estimate by one instance and
  /// tripping memory budgets early. Budget polls therefore combine the
  /// live instance's bytes with this.
  size_t ApproxMemoryBytesExcludingFinalSnapshot() const {
    return approx_bytes_ - last_snapshot_bytes_;
  }

 private:
  size_t StepBytes(const DerivationStep& step) const;

  bool keep_snapshots_;
  std::vector<DerivationStep> steps_;
  AtomSet last_;
  size_t approx_bytes_ = 0;
  size_t last_step_bytes_ = 0;
  size_t last_snapshot_bytes_ = 0;  // snapshot share of last_step_bytes_
};

}  // namespace twchase

#endif  // TWCHASE_CORE_DERIVATION_H_
