// Packed trigger keys. The chase identifies and orders triggers by their
// match bindings; these used to be rendered as decimal strings
// ("12:3,4;5,6;"), which allocated and hashed a string per trigger per
// round. PackedBindings stores the same information as a sorted vector of
// (variable, term) words with O(words) hashing and comparison.
//
// Ordering: the engine's deterministic trigger order was defined by
// lexicographic comparison of the old decimal strings, and the golden tests
// pin derivation skeletons produced under that order. LegacyLess reproduces
// it exactly (decimal-digit lexicographic semantics, including the
// terminator artefacts) so that replacing the representation cannot move a
// single trigger in the schedule.
#ifndef TWCHASE_CORE_TRIGGER_KEY_H_
#define TWCHASE_CORE_TRIGGER_KEY_H_

#include <cstdint>
#include <vector>

#include "model/substitution.h"
#include "model/term.h"

namespace twchase {

class PackedBindings {
 public:
  PackedBindings() = default;

  /// Key over the full binding map (oblivious trigger identity; also the
  /// within-rule sort key, since a trigger's domain is exactly vars(body)).
  static PackedBindings FromMatch(const Substitution& match);

  /// Key over σ⁺(var) for var in `vars` (semi-oblivious frontier identity).
  static PackedBindings FromRestricted(const Substitution& match,
                                       const std::vector<Term>& vars);

  bool empty() const { return words_.empty(); }
  const std::vector<uint64_t>& words() const { return words_; }

  size_t Hash() const;

  friend bool operator==(const PackedBindings& a, const PackedBindings& b) {
    return a.words_ == b.words_;
  }

  /// Strict weak order equal to lexicographic order of the legacy decimal
  /// string keys ("a,b;a,b;..." over the sorted pairs).
  static bool LegacyLess(const PackedBindings& a, const PackedBindings& b);

 private:
  // Sorted (var.raw << 32 | term.raw) words.
  std::vector<uint64_t> words_;
};

struct PackedBindingsHash {
  size_t operator()(const PackedBindings& key) const { return key.Hash(); }
};

/// The legacy order on a term component: compares x and y as decimal strings,
/// each followed by the legacy ';' terminator. Since ';' is greater than any
/// digit, a number whose decimal rendering is a proper prefix of the other's
/// sorts *after* it (e.g. 12 after 123, but 9 after 10). Exposed for tests.
bool LegacyDecimalLess(uint32_t x, uint32_t y);

}  // namespace twchase

#endif  // TWCHASE_CORE_TRIGGER_KEY_H_
