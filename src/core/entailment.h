// CQ entailment procedures (Sections 2, 9). Three building blocks:
//   1. DecideByCoreChase — run the core chase; on termination the result is
//      the (unique) finite universal model and entailment is decided exactly.
//   2. SaturationSemiDecision — positive semi-decision: check the query
//      against growing chase prefixes (sound for "entailed" by Proposition 1,
//      since every F_i is universal... the query maps into some F_i iff it is
//      entailed *when it maps*; non-mapping on a prefix proves nothing).
//   3. FindFiniteCounterModel — bounded search for a finite model of
//      (F, Σ) ∧ ¬Q, the implementable stand-in for Theorem 1's
//      treewidth-bounded model search (see DESIGN.md substitutions).
// CombinedEntailment interleaves them, mirroring the two-semi-procedures
// argument of Theorem 1 within explicit budgets.
#ifndef TWCHASE_CORE_ENTAILMENT_H_
#define TWCHASE_CORE_ENTAILMENT_H_

#include <optional>
#include <string>

#include "core/chase.h"
#include "kb/knowledge_base.h"
#include "model/atom_set.h"

namespace twchase {

// Each procedure takes an optional trailing observer: it is attached to the
// underlying chase run(s) and additionally receives one OnPhase event per
// completed sub-procedure (named "core-chase", "restricted-saturation",
// "robust-aggregation", "counter-model", ...), carrying its wall time and
// chase step count.

enum class EntailmentVerdict { kEntailed, kNotEntailed, kUnknown };

const char* EntailmentVerdictName(EntailmentVerdict verdict);

struct EntailmentResult {
  EntailmentVerdict verdict = EntailmentVerdict::kUnknown;
  size_t chase_steps = 0;
  std::string method;
};

/// Exact decision when the core chase terminates within `max_steps`;
/// otherwise kEntailed if the query already maps into the last prefix, else
/// kUnknown.
EntailmentResult DecideByCoreChase(const KnowledgeBase& kb,
                                   const AtomSet& query, size_t max_steps,
                                   ChaseObserver* observer = nullptr);

/// Positive semi-decision via the restricted chase: kEntailed as soon as the
/// query maps into a prefix; kNotEntailed only if the chase terminates.
EntailmentResult SaturationSemiDecision(const KnowledgeBase& kb,
                                        const AtomSet& query, size_t max_steps,
                                        ChaseObserver* observer = nullptr);

/// Theorem 2's surface: run the core chase and test the query against the
/// robust aggregation prefix D⊛ (a finitely universal model, Proposition 11;
/// by Proposition 9 a match certifies entailment). Sound for kEntailed on
/// every prefix; exact when the chase terminates. Compared to
/// DecideByCoreChase it also counts matches that only appear in the
/// *aggregated* structure, not in any single chase element.
EntailmentResult DecideByRobustAggregation(const KnowledgeBase& kb,
                                           const AtomSet& query,
                                           size_t max_steps,
                                           ChaseObserver* observer = nullptr);

/// Minimizes a query to its core before answering (hom-equivalent, never
/// larger; answering against any instance is unaffected).
AtomSet MinimizeQuery(const AtomSet& query);

struct CounterModelOptions {
  /// Extra fresh domain constants beyond the terms of F.
  int max_extra_elements = 2;

  /// Backtracking-node budget.
  size_t max_nodes = 100000;
};

/// Searches for a finite model of the KB into which `query` does not map.
/// Returns the model if found (a certificate for K ⊭ Q).
std::optional<AtomSet> FindFiniteCounterModel(const KnowledgeBase& kb,
                                              const AtomSet& query,
                                              const CounterModelOptions& options);

/// Interleaves the three procedures (Theorem 1's architecture under budget).
EntailmentResult CombinedEntailment(const KnowledgeBase& kb,
                                    const AtomSet& query, size_t max_steps,
                                    const CounterModelOptions& cm_options,
                                    ChaseObserver* observer = nullptr);

/// Theorem 1's dovetailing loop made explicit: alternately grow the chase
/// budget (positive semi-decision) and the counter-model domain size
/// (negative semi-decision), round by round, until one side answers or
/// `rounds` are exhausted. Each round r uses chase budget base_steps·2^r and
/// r extra domain elements.
EntailmentResult DovetailEntailment(const KnowledgeBase& kb,
                                    const AtomSet& query, size_t base_steps,
                                    int rounds,
                                    ChaseObserver* observer = nullptr);

}  // namespace twchase

#endif  // TWCHASE_CORE_ENTAILMENT_H_
