// The chase engine: oblivious, semi-oblivious (skolem), restricted
// (standard) and core chase variants over one fair, deterministic,
// round-based scheduler.
//
// Fairness: each round snapshots all triggers of the current instance and
// processes them in a deterministic order (datalog rules first, matching the
// schedules used in the paper's proofs, e.g. Proposition 6), re-checking
// activeness — and, for the core chase, re-mapping the trigger through the
// accumulated simplifications σ (Definition 2) — before each application.
// Every trigger existing at round r is thus considered by round r+1, which
// realises Definition 3 on every finite prefix.
//
// Termination: a round in which no trigger is active is a fixpoint. For the
// restricted/core chase this means every trigger is satisfied (the result is
// a model); the core chase terminates iff the KB has a finite universal
// model (Deutsch–Nash–Remmel), which is the fes test used by classes.h.
#ifndef TWCHASE_CORE_CHASE_H_
#define TWCHASE_CORE_CHASE_H_

#include <cstdint>

#include "core/derivation.h"
#include "kb/knowledge_base.h"
#include "util/status.h"

namespace twchase {

enum class ChaseVariant {
  kOblivious,      // apply every trigger once, never re-check satisfaction
  kSemiOblivious,  // apply once per (rule, frontier restriction)
  kRestricted,     // apply only unsatisfied triggers
  kFrugal,         // restricted + fold freshly created nulls when redundant
                   // (a derivation "between" restricted and core, Section 3)
  kCore,           // restricted + retract to a core after each application
};

const char* ChaseVariantName(ChaseVariant variant);

class ChaseObserver;  // obs/observer.h

/// Chase configuration, grouped by concern: `limits` (budgets), `core`
/// (coring schedule of the core chase), `delta` (semi-naive evaluation).
/// Invariants across groups are checked by Validate(), which RunChase calls
/// first — inconsistent combinations are rejected, never silently patched.
struct ChaseOptions {
  ChaseVariant variant = ChaseVariant::kRestricted;

  /// Run budgets. The run stops (unterminated) when one is exhausted.
  struct LimitOptions {
    /// Budget in rule applications.
    size_t max_steps = 1000;

    /// Instance-size guardrail: stop (unterminated) once |F_i| exceeds this
    /// (0 = unlimited). Protects callers from runaway oblivious chases.
    size_t max_instance_size = 0;
  };

  /// Coring schedule (core chase only; ignored by the other variants).
  struct CoreOptions {
    /// Retract to a core after every k-th application (the paper allows any
    /// finite spacing; 1 = after every application).
    size_t core_every = 1;

    /// Instead of per-application coring, core once at the end of each
    /// scheduler round — the Deutsch–Nash–Remmel presentation (apply all
    /// active triggers "in parallel", then take the core). The retraction
    /// is recorded as the simplification of the round's last application,
    /// which keeps the run a valid derivation (Definition 1) and a core
    /// chase sequence (finitely many applications between corings).
    bool core_at_round_end = false;

    /// Also core the initial fact set (the core chase does; other variants
    /// keep F as-is).
    bool core_initial = true;

    /// Maintain the core incrementally after each application (fold only
    /// variables within dirty_radius of the new atoms, then verify the
    /// rest) instead of recomputing from scratch; falls back to a full
    /// ComputeCore when a fold cascades or verification finds a distant
    /// fold. Requires core_every == 1 and core_at_round_end == false
    /// (Validate rejects other combinations). The instance is still a core
    /// after every application, but the chosen folds — and hence null names
    /// and trigger order — may differ from the full recomputation, so runs
    /// agree only up to isomorphism. Off by default.
    bool incremental_core = false;

    /// Incremental core: BFS radius (in atom hops from the added atoms'
    /// terms) defining the dirty variables eligible for folding.
    size_t dirty_radius = 2;
  };

  /// Semi-naive (delta-driven) trigger generation.
  struct DeltaOptions {
    /// Keep each rule's set of body matches across rounds and repair/extend
    /// it from the atoms inserted and erased since the previous round,
    /// instead of re-enumerating all matches of the whole instance every
    /// round. A pure optimisation: the produced run is identical — same
    /// instances, same steps, same trigger order — to the naive evaluation
    /// for every variant.
    bool enabled = true;
  };

  LimitOptions limits;
  CoreOptions core;
  DeltaOptions delta;

  /// Process datalog (non-existential) rules before existential ones within
  /// a round, as the paper's constructions assume (Proposition 6).
  bool datalog_first = true;

  /// Keep per-step instance snapshots (needed by aggregations and measures).
  bool keep_snapshots = true;

  /// Structured event tap (obs/observer.h), non-owning. Null (the default)
  /// means zero observation overhead; attached observers see every round,
  /// trigger and retraction but must never mutate the run — runs with and
  /// without observers are bit-identical.
  ChaseObserver* observer = nullptr;

  /// Rejects inconsistent option combinations (core_every == 0,
  /// incremental_core with an unsupported coring schedule, ...). RunChase
  /// validates first and surfaces the same Status.
  Status Validate() const;

  // --- Deprecated flat accessors ------------------------------------------
  // The flat fields moved into the nested groups above; these forward for
  // one release so external callers can migrate (`o.max_steps = n` becomes
  // `o.limits.max_steps = n`, or transitionally `o.max_steps() = n`).

  [[deprecated("use limits.max_steps")]] size_t& max_steps() {
    return limits.max_steps;
  }
  [[deprecated("use limits.max_steps")]] size_t max_steps() const {
    return limits.max_steps;
  }
  [[deprecated("use limits.max_instance_size")]] size_t& max_instance_size() {
    return limits.max_instance_size;
  }
  [[deprecated("use limits.max_instance_size")]] size_t max_instance_size()
      const {
    return limits.max_instance_size;
  }
  [[deprecated("use core.core_every")]] size_t& core_every() {
    return core.core_every;
  }
  [[deprecated("use core.core_every")]] size_t core_every() const {
    return core.core_every;
  }
  [[deprecated("use core.core_at_round_end")]] bool& core_at_round_end() {
    return core.core_at_round_end;
  }
  [[deprecated("use core.core_at_round_end")]] bool core_at_round_end() const {
    return core.core_at_round_end;
  }
  [[deprecated("use core.core_initial")]] bool& core_initial() {
    return core.core_initial;
  }
  [[deprecated("use core.core_initial")]] bool core_initial() const {
    return core.core_initial;
  }
  [[deprecated("use core.incremental_core")]] bool& incremental_core() {
    return core.incremental_core;
  }
  [[deprecated("use core.incremental_core")]] bool incremental_core() const {
    return core.incremental_core;
  }
  [[deprecated("use core.dirty_radius")]] size_t& dirty_radius() {
    return core.dirty_radius;
  }
  [[deprecated("use core.dirty_radius")]] size_t dirty_radius() const {
    return core.dirty_radius;
  }
  [[deprecated("use delta.enabled")]] bool& delta_evaluation() {
    return delta.enabled;
  }
  [[deprecated("use delta.enabled")]] bool delta_evaluation() const {
    return delta.enabled;
  }
};

/// Evaluation counters, for benchmarks and the ablation tables. Not part of
/// run equivalence: delta ON and OFF produce identical derivations but
/// different counter values.
struct ChaseStats {
  /// Pending triggers snapshotted, summed over rounds.
  size_t triggers_found = 0;

  /// Activeness checks performed (pending entries actually examined).
  size_t triggers_considered = 0;

  /// Whole-instance trigger enumerations (one per rule per naive round,
  /// plus one per rule to prime the delta state).
  size_t full_enumerations = 0;

  /// Delta-seeded match probes (one per inserted atom per rule whose body
  /// mentions its predicate).
  size_t seed_probes = 0;

  /// Stored matches dropped because an atom of their image was erased.
  size_t matches_invalidated = 0;

  /// Full ComputeCore invocations.
  size_t core_full = 0;

  /// Incremental core updates that completed without falling back.
  size_t core_incremental = 0;

  /// Incremental core updates that fell back to a full recomputation.
  size_t core_fallbacks = 0;

  /// Largest |F_i| seen.
  size_t peak_instance_size = 0;
};

struct ChaseResult {
  Derivation derivation{true};

  /// True iff a fixpoint was reached within the budget.
  bool terminated = false;

  /// Set when the run stopped because max_instance_size was exceeded.
  bool size_guard_tripped = false;

  /// Rule applications performed.
  size_t steps = 0;

  /// Scheduler rounds performed.
  size_t rounds = 0;

  ChaseStats stats;
};

/// Runs the chase on kb. Fresh nulls are minted in *kb.vocab.
StatusOr<ChaseResult> RunChase(const KnowledgeBase& kb,
                               const ChaseOptions& options);

}  // namespace twchase

#endif  // TWCHASE_CORE_CHASE_H_
