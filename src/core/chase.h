// The chase engine: oblivious, semi-oblivious (skolem), restricted
// (standard) and core chase variants over one fair, deterministic,
// round-based scheduler.
//
// Fairness: each round snapshots all triggers of the current instance and
// processes them in a deterministic order (datalog rules first, matching the
// schedules used in the paper's proofs, e.g. Proposition 6), re-checking
// activeness — and, for the core chase, re-mapping the trigger through the
// accumulated simplifications σ (Definition 2) — before each application.
// Every trigger existing at round r is thus considered by round r+1, which
// realises Definition 3 on every finite prefix.
//
// Termination: a round in which no trigger is active is a fixpoint. For the
// restricted/core chase this means every trigger is satisfied (the result is
// a model); the core chase terminates iff the KB has a finite universal
// model (Deutsch–Nash–Remmel), which is the fes test used by classes.h.
#ifndef TWCHASE_CORE_CHASE_H_
#define TWCHASE_CORE_CHASE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/derivation.h"
#include "kb/knowledge_base.h"
#include "util/governor.h"
#include "util/status.h"

namespace twchase {

enum class ChaseVariant {
  kOblivious,      // apply every trigger once, never re-check satisfaction
  kSemiOblivious,  // apply once per (rule, frontier restriction)
  kRestricted,     // apply only unsatisfied triggers
  kFrugal,         // restricted + fold freshly created nulls when redundant
                   // (a derivation "between" restricted and core, Section 3)
  kCore,           // restricted + retract to a core after each application
};

const char* ChaseVariantName(ChaseVariant variant);

class ChaseObserver;  // obs/observer.h

/// Chase configuration, grouped by concern: `limits` (budgets), `core`
/// (coring schedule of the core chase), `delta` (semi-naive evaluation).
/// Invariants across groups are checked by Validate(), which RunChase calls
/// first — inconsistent combinations are rejected, never silently patched.
struct ChaseOptions {
  ChaseVariant variant = ChaseVariant::kRestricted;

  /// Run budgets. The run stops (unterminated) when one is exhausted; the
  /// exhausted budget is reported as ChaseResult::stop_reason and the
  /// result carries the consistent prefix completed so far.
  struct LimitOptions {
    /// Budget in rule applications.
    size_t max_steps = 1000;

    /// Instance-size guardrail: stop (unterminated) once |F_i| exceeds this
    /// (0 = unlimited). Protects callers from runaway oblivious chases.
    size_t max_instance_size = 0;

    /// Wall-clock budget in milliseconds, measured from the start of the
    /// run (nullopt = unlimited; 0 = already expired, so the run stops at
    /// the first boundary with the initial instance unmodified). Enforced
    /// cooperatively at trigger/round boundaries, so the overshoot is
    /// bounded by one trigger application.
    std::optional<uint64_t> deadline_ms;

    /// Budget on estimated resident bytes of instance + retained
    /// derivation (0 = unlimited). An estimate (see
    /// AtomSet::ApproxMemoryBytes), not an allocator hook; the CLI's
    /// --memory-budget-mb converts to bytes.
    size_t memory_budget_bytes = 0;

    /// External cooperative cancellation; inert by default. Another thread
    /// may call cancel.RequestCancel() to stop the run at the next
    /// boundary with StopReason::kCancelled.
    CancelToken cancel;
  };

  /// Coring schedule (core chase only; ignored by the other variants).
  struct CoreOptions {
    /// Retract to a core after every k-th application (the paper allows any
    /// finite spacing; 1 = after every application).
    size_t core_every = 1;

    /// Instead of per-application coring, core once at the end of each
    /// scheduler round — the Deutsch–Nash–Remmel presentation (apply all
    /// active triggers "in parallel", then take the core). The retraction
    /// is recorded as the simplification of the round's last application,
    /// which keeps the run a valid derivation (Definition 1) and a core
    /// chase sequence (finitely many applications between corings).
    bool core_at_round_end = false;

    /// Also core the initial fact set (the core chase does; other variants
    /// keep F as-is).
    bool core_initial = true;

    /// Maintain the core incrementally after each application (fold only
    /// variables within dirty_radius of the new atoms, then verify the
    /// rest) instead of recomputing from scratch; falls back to a full
    /// ComputeCore when a fold cascades or verification finds a distant
    /// fold. Requires core_every == 1 and core_at_round_end == false
    /// (Validate rejects other combinations). The instance is still a core
    /// after every application, but the chosen folds — and hence null names
    /// and trigger order — may differ from the full recomputation, so runs
    /// agree only up to isomorphism. Off by default.
    bool incremental_core = false;

    /// Incremental core: BFS radius (in atom hops from the added atoms'
    /// terms) defining the dirty variables eligible for folding.
    size_t dirty_radius = 2;
  };

  /// Semi-naive (delta-driven) trigger generation.
  struct DeltaOptions {
    /// Keep each rule's set of body matches across rounds and repair/extend
    /// it from the atoms inserted and erased since the previous round,
    /// instead of re-enumerating all matches of the whole instance every
    /// round. A pure optimisation: the produced run is identical — same
    /// instances, same steps, same trigger order — to the naive evaluation
    /// for every variant.
    bool enabled = true;
  };

  /// Parallel trigger evaluation (core/parallel.h).
  struct ParallelOptions {
    /// Worker threads for the match-establishment phase of each round (the
    /// priming/naive enumerations, the post-erasure revalidation and the
    /// delta-seeded probes), calling thread included. 1 (the default) runs
    /// the untouched sequential path — no pool is created, no code path
    /// changes. Any N produces bit-identical results (instance, derivation
    /// journal, observer event stream): candidates are computed in
    /// per-task slots and merged in the exact sequential order. 0 is
    /// rejected by Validate(). The CLI defaults its --threads flag to the
    /// hardware concurrency; the library default stays sequential.
    size_t threads = 1;
  };

  /// Reliance-based execution planning (src/plan/). On by default: every
  /// pruning the planner performs is backed by a soundness proof (a dormant
  /// rule can never match; a guarded core is proven still-core before the
  /// recomputation is skipped), so planned and unplanned runs are
  /// bit-identical — same instance, derivation journal and observer event
  /// stream — and the flag exists for ablation and the differential tests.
  struct PlanOptions {
    /// Master switch. Off disables the analysis entirely (no plan is built,
    /// no PlanEvent is emitted, zero overhead).
    bool enabled = true;

    /// Skip match establishment for dormant rules (some body predicate is
    /// neither in the initial facts nor producible by any rule chain — the
    /// rule cannot acquire a match in any chase of this KB). The skipped
    /// searches are guaranteed empty; seed-probe counters are still
    /// advanced so the DeltaRepairEvent payload is unchanged.
    bool skip_dormant = true;

    /// Guard per-step/round-end corings of the core chase with the
    /// still-core proof (plan/core_guard.h): when the proof certifies that
    /// the additions since the last certified core left the instance a
    /// core, the full ComputeCore — whose output would be the instance
    /// itself with zero folds — is skipped and its zero-fold events/records
    /// are synthesised identically.
    bool core_guard = true;
  };

  /// Termination-analysis preflight provenance (filled by
  /// analysis/preflight.h's ResolveAutoVariant; plain ints so core stays
  /// decoupled from the analysis layer). When a run was requested as
  /// --variant=auto, `variant` holds the preflight's pick and this group
  /// records that fact plus the classifier verdict — both are folded into
  /// the checkpoint fingerprint, so a checkpoint written under auto rejects
  /// resume if re-classification would decide differently.
  struct PreflightProvenance {
    /// The variant was requested as "auto" rather than picked explicitly.
    bool auto_variant = false;

    /// Set once ResolveAutoVariant stored its decision. An auto request
    /// that reaches the engine unresolved is rejected by Validate().
    bool resolved = false;

    /// The classifier verdict (numeric TerminationClass from
    /// analysis/preflight.h).
    uint32_t verdict = 0;
  };

  /// Checkpoint/resume support (core/checkpoint.h).
  struct ResumeOptions {
    /// Record the resume log (per-round decision bits and recorded coring
    /// retractions) alongside the derivation, so a checkpoint can be
    /// written from the result. Off by default (the log costs memory
    /// proportional to the run). Incompatible with core.incremental_core:
    /// the in-place fold order of the incremental path is not reproducible
    /// from the log, and incremental runs are only iso-equivalent anyway.
    bool record_log = false;
  };

  LimitOptions limits;
  CoreOptions core;
  DeltaOptions delta;
  PlanOptions plan;
  ParallelOptions parallel;
  ResumeOptions resume;
  PreflightProvenance preflight;

  /// Process datalog (non-existential) rules before existential ones within
  /// a round, as the paper's constructions assume (Proposition 6).
  bool datalog_first = true;

  /// Keep per-step instance snapshots (needed by aggregations and measures).
  bool keep_snapshots = true;

  /// Structured event tap (obs/observer.h), non-owning. Null (the default)
  /// means zero observation overhead; attached observers see every round,
  /// trigger and retraction but must never mutate the run — runs with and
  /// without observers are bit-identical.
  ChaseObserver* observer = nullptr;

  /// Rejects inconsistent option combinations (core_every == 0,
  /// incremental_core with an unsupported coring schedule, resume
  /// recording with incremental_core, parallel.threads == 0, ...).
  /// RunChase validates first and surfaces the same Status.
  Status Validate() const;

  // The deprecated flat accessors (max_steps() et al.) that bridged the
  // PR-2 regrouping were removed after their one-release grace period; use
  // the nested groups (limits.max_steps, core.core_every, delta.enabled).
};

/// Evaluation counters, for benchmarks and the ablation tables. Not part of
/// run equivalence: delta ON and OFF produce identical derivations but
/// different counter values.
struct ChaseStats {
  /// Pending triggers snapshotted, summed over rounds.
  size_t triggers_found = 0;

  /// Activeness checks performed (pending entries actually examined).
  size_t triggers_considered = 0;

  /// Whole-instance trigger enumerations (one per rule per naive round,
  /// plus one per rule to prime the delta state).
  size_t full_enumerations = 0;

  /// Delta-seeded match probes (one per inserted atom per rule whose body
  /// mentions its predicate).
  size_t seed_probes = 0;

  /// Stored matches dropped because an atom of their image was erased.
  size_t matches_invalidated = 0;

  /// Full ComputeCore invocations.
  size_t core_full = 0;

  /// Incremental core updates that completed without falling back.
  size_t core_incremental = 0;

  /// Incremental core updates that fell back to a full recomputation.
  size_t core_fallbacks = 0;

  /// Largest |F_i| seen.
  size_t peak_instance_size = 0;

  /// Parallel evaluation telemetry (all zero when parallel.threads == 1).
  /// Rounds that ran at least one parallel section.
  size_t parallel_rounds = 0;

  /// Tasks dispatched to the pool, summed over sections (a task is one
  /// rule enumeration, one revalidation chunk, or one seeded probe).
  size_t parallel_tasks = 0;

  /// Wall time spent inside parallel sections (dispatch to join).
  double parallel_eval_ms = 0;

  /// Wall time spent merging per-task candidate buffers into the stored
  /// match sets, in sequential order.
  double parallel_merge_ms = 0;

  /// Worst per-section probe imbalance: max over sections of
  /// (largest - smallest per-worker task count among participating
  /// workers). 0 = perfectly balanced.
  size_t parallel_max_imbalance = 0;

  /// Match-phase counters (columnar backend; all zero on the legacy
  /// per-atom backend). Deterministic across thread counts: each counter
  /// is a per-search total and index builds happen exactly once per
  /// stale-to-ready column transition.
  /// Sorted-column EqualRange lookups.
  uint64_t match_index_probes = 0;

  /// Full-segment scans (pattern had no bound position to probe on).
  uint64_t match_column_scans = 0;

  /// Searches that fell back to per-atom matching (injective or
  /// vars-to-vars modes, mixed-arity predicates, legacy backend opt-out).
  uint64_t match_join_fallbacks = 0;

  /// Lazy column-index (re)builds, and total sorted-row bytes they wrote.
  uint64_t match_index_builds = 0;
  uint64_t match_index_build_bytes = 0;

  /// Execution-planner telemetry (src/plan/; all zero with plan.enabled
  /// off). Static plan shape:
  size_t plan_reliance_edges = 0;
  size_t plan_strata = 0;
  size_t plan_dormant_rules = 0;

  /// Full enumerations skipped because the rule is dormant.
  size_t plan_enumerations_skipped = 0;

  /// Delta-seeded probes skipped because the rule is dormant (seed_probes
  /// still counts them — the probe is accounted, just not executed).
  size_t plan_probes_skipped = 0;

  /// Still-core proofs attempted, and the subset that certified (each
  /// certification skips one full ComputeCore).
  size_t plan_core_proofs = 0;
  size_t plan_core_certified = 0;
};

/// Everything needed to replay a recorded run deterministically: one
/// decision bit per committed trigger consideration, plus the coring /
/// folding retractions actually chosen (recomputing a core is expensive
/// and its fold choices are history-dependent; replaying the recorded
/// retraction is exact and cheap). Produced when
/// ChaseOptions::resume.record_log is set; consumed by ResumeChase
/// (core/checkpoint.h) via the replay path of the scheduler.
struct ResumeLog {
  struct StepRecord {
    /// The simplification σ_i committed for this application: the coring
    /// retraction (core variant), or identity. Frugal folds are recorded
    /// separately in fold_sigmas so replay can reproduce the per-fold
    /// journal entries exactly.
    Substitution sigma;

    /// Frugal chase: the per-fold retractions, in fold order.
    std::vector<Substitution> fold_sigmas;

    /// True when this application was followed by a per-application coring
    /// (so replay knows whether sigma came from a core event or is a
    /// trivial identity).
    bool cored = false;

    /// Fold count of the coring (CoreRetractionEvent::folds is not
    /// derivable from the retraction alone, and replayed runs must emit
    /// the same event payloads as live ones).
    size_t folds = 0;
  };

  struct RoundRecord {
    /// One bit per committed trigger consideration this round, in pending
    /// order after the canonical sort: 1 = applied, 0 = skipped (inactive
    /// or satisfied).
    std::vector<uint8_t> decisions;

    /// Round-end coring (core.core_at_round_end): true iff the round's
    /// ComputeCore committed (the sigma may still be the identity). False
    /// on the final record when the run stopped at the round-end coring
    /// boundary — replay resumes live exactly there.
    bool have_round_end = false;
    Substitution round_end_sigma;
    size_t round_end_folds = 0;
  };

  /// True once the initial element F_0 was committed. A log with
  /// have_initial == false records nothing (the run stopped before any
  /// commitment) and replaying it is a plain fresh run.
  bool have_initial = false;

  /// Initial coring retraction (σ_0); identity when core_initial is off or
  /// the variant is not core.
  Substitution initial_sigma;
  size_t initial_folds = 0;

  std::vector<StepRecord> steps;
  std::vector<RoundRecord> rounds;

  /// vocab->num_variables() when the recorded run started. Replay must
  /// start from the same vocabulary state (same program, freshly parsed) or
  /// the minted null ids diverge; ResumeChase verifies this up front.
  size_t initial_num_variables = 0;

  /// vocab->num_variables() after the last committed step: resuming mints
  /// fresh nulls starting here, and replay must land exactly on it.
  size_t committed_num_variables = 0;

  /// Landing verification, filled by ResumeChase from the checkpoint: when
  /// verify_landing is set, the replay checks — at the boundary where the
  /// log is exhausted and execution goes live — that the reconstructed
  /// instance and fresh-null counter match the checkpointed ones, and the
  /// run fails with FailedPrecondition otherwise (a corrupted or mismatched
  /// checkpoint must not silently produce a diverged chase).
  bool verify_landing = false;
  size_t expected_instance_size = 0;
  uint64_t expected_instance_hash = 0;

  bool empty() const { return steps.empty() && rounds.empty(); }
};

struct ChaseResult {
  Derivation derivation{true};

  /// Why the run stopped. kFixpoint is the terminated case; every other
  /// reason leaves `derivation` holding the consistent prefix completed
  /// when the budget ran out.
  StopReason stop_reason = StopReason::kFixpoint;

  /// True iff a fixpoint was reached within the budget. Mirrors
  /// stop_reason == kFixpoint (kept for existing callers).
  bool terminated = false;

  /// Set when the run stopped because max_instance_size was exceeded.
  /// Mirrors stop_reason == kInstanceSizeGuard (kept for existing callers).
  bool size_guard_tripped = false;

  /// Rule applications performed.
  size_t steps = 0;

  /// Scheduler rounds performed.
  size_t rounds = 0;

  ChaseStats stats;

  /// Populated when options.resume.record_log was set; otherwise empty.
  ResumeLog resume_log;
};

/// Runs the chase on kb. Fresh nulls are minted in *kb.vocab.
///
/// COMPATIBILITY SURFACE: since the ChaseSession redesign
/// (core/session.h) this is a thin wrapper — create a session, Start() it,
/// take the result. Behavior is bit-identical to the historical free
/// function; new code that needs lifecycle control (pause, checkpoint,
/// cancellation from another thread, many concurrent runs in one process)
/// should hold a ChaseSession instead.
StatusOr<ChaseResult> RunChase(const KnowledgeBase& kb,
                               const ChaseOptions& options);

/// RunChase, deterministically replaying the prefix recorded in `replay`
/// (decision bits consumed instead of satisfaction checks, recorded
/// retractions applied instead of recomputing cores) before continuing
/// live. The backbone of ResumeChase (core/checkpoint.h); `replay` may be
/// null, which is plain RunChase. Replay requires the same kb, options and
/// a fresh vocabulary state — callers go through ResumeChase, which
/// validates all of that. Compatibility wrapper over
/// ChaseSession::StartWithReplay, like RunChase above.
StatusOr<ChaseResult> RunChaseWithReplay(const KnowledgeBase& kb,
                                         const ChaseOptions& options,
                                         const ResumeLog* replay);

namespace internal {

/// The engine proper: one uninterrupted run segment (optionally replaying a
/// recorded prefix) on the calling thread. Exposed for ChaseSession
/// (core/session.h), which owns validation and lifecycle; everything else —
/// the CLI, the daemon, tests — goes through the session or the
/// compatibility wrappers above.
StatusOr<ChaseResult> ExecuteChase(const KnowledgeBase& kb,
                                   const ChaseOptions& options,
                                   const ResumeLog* replay);

}  // namespace internal

}  // namespace twchase

#endif  // TWCHASE_CORE_CHASE_H_
