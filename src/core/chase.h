// The chase engine: oblivious, semi-oblivious (skolem), restricted
// (standard) and core chase variants over one fair, deterministic,
// round-based scheduler.
//
// Fairness: each round snapshots all triggers of the current instance and
// processes them in a deterministic order (datalog rules first, matching the
// schedules used in the paper's proofs, e.g. Proposition 6), re-checking
// activeness — and, for the core chase, re-mapping the trigger through the
// accumulated simplifications σ (Definition 2) — before each application.
// Every trigger existing at round r is thus considered by round r+1, which
// realises Definition 3 on every finite prefix.
//
// Termination: a round in which no trigger is active is a fixpoint. For the
// restricted/core chase this means every trigger is satisfied (the result is
// a model); the core chase terminates iff the KB has a finite universal
// model (Deutsch–Nash–Remmel), which is the fes test used by classes.h.
#ifndef TWCHASE_CORE_CHASE_H_
#define TWCHASE_CORE_CHASE_H_

#include <cstdint>

#include "core/derivation.h"
#include "kb/knowledge_base.h"
#include "util/status.h"

namespace twchase {

enum class ChaseVariant {
  kOblivious,      // apply every trigger once, never re-check satisfaction
  kSemiOblivious,  // apply once per (rule, frontier restriction)
  kRestricted,     // apply only unsatisfied triggers
  kFrugal,         // restricted + fold freshly created nulls when redundant
                   // (a derivation "between" restricted and core, Section 3)
  kCore,           // restricted + retract to a core after each application
};

const char* ChaseVariantName(ChaseVariant variant);

struct ChaseOptions {
  ChaseVariant variant = ChaseVariant::kRestricted;

  /// Budget in rule applications; the run stops unterminated when exhausted.
  size_t max_steps = 1000;

  /// Instance-size guardrail: stop (unterminated) once |F_i| exceeds this
  /// (0 = unlimited). Protects callers from runaway oblivious chases.
  size_t max_instance_size = 0;

  /// Process datalog (non-existential) rules before existential ones within
  /// a round, as the paper's constructions assume (Proposition 6).
  bool datalog_first = true;

  /// Keep per-step instance snapshots (needed by aggregations and measures).
  bool keep_snapshots = true;

  /// Core chase: retract to a core after every k-th application (the paper
  /// allows any finite spacing; 1 = after every application).
  size_t core_every = 1;

  /// Core chase: instead of per-application coring, core once at the end of
  /// each scheduler round — the Deutsch–Nash–Remmel presentation (apply all
  /// active triggers "in parallel", then take the core). The retraction is
  /// recorded as the simplification of the round's last application, which
  /// keeps the run a valid derivation (Definition 1) and a core chase
  /// sequence (finitely many applications between corings).
  bool core_at_round_end = false;

  /// Also core the initial fact set (the core chase does; other variants
  /// keep F as-is).
  bool core_initial = true;
};

struct ChaseResult {
  Derivation derivation{true};

  /// True iff a fixpoint was reached within the budget.
  bool terminated = false;

  /// Set when the run stopped because max_instance_size was exceeded.
  bool size_guard_tripped = false;

  /// Rule applications performed.
  size_t steps = 0;

  /// Scheduler rounds performed.
  size_t rounds = 0;
};

/// Runs the chase on kb. Fresh nulls are minted in *kb.vocab.
StatusOr<ChaseResult> RunChase(const KnowledgeBase& kb,
                               const ChaseOptions& options);

}  // namespace twchase

#endif  // TWCHASE_CORE_CHASE_H_
