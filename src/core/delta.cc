#include "core/delta.h"

namespace twchase {

void DeltaIndex::RecordInsert(const Atom& atom) {
  if (!inserted_seen_.insert(atom).second) return;
  inserted_by_predicate_[atom.predicate()].push_back(inserted_.size());
  inserted_predicates_.insert(atom.predicate());
  inserted_.push_back(atom);
}

void DeltaIndex::RecordErase(const Atom& atom) {
  if (!erased_seen_.insert(atom).second) return;
  erased_predicates_.insert(atom.predicate());
  erased_.push_back(atom);
}

void DeltaIndex::Absorb(AtomSet::Delta delta) {
  for (Atom& atom : delta.inserted) RecordInsert(atom);
  for (Atom& atom : delta.erased) RecordErase(atom);
}

const std::vector<size_t>* DeltaIndex::InsertedWithPredicate(
    PredicateId predicate) const {
  auto it = inserted_by_predicate_.find(predicate);
  return it == inserted_by_predicate_.end() ? nullptr : &it->second;
}

void DeltaIndex::Clear() {
  inserted_.clear();
  erased_.clear();
  inserted_seen_.clear();
  erased_seen_.clear();
  inserted_by_predicate_.clear();
  inserted_predicates_.clear();
  erased_predicates_.clear();
}

}  // namespace twchase
