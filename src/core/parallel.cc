#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "core/trigger.h"
#include "hom/matcher.h"
#include "kb/rule.h"
#include "util/fault.h"
#include "util/stopwatch.h"

namespace twchase {

bool ParallelTriggerEval::Run(size_t tasks,
                              const std::function<size_t(size_t)>& fn,
                              ParallelSectionStats* stats) {
  if (stats != nullptr) *stats = ParallelSectionStats{};
  if (tasks == 0) return !governor_->stopped();

  Stopwatch timer;
  const size_t workers = pool_->threads();
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> result_bytes{0};
  // Raised by the first stopping worker so the others drain quickly instead
  // of finishing the section; the results are discarded either way.
  std::atomic<bool> abort{false};
  // Written only by the owning worker, read after the join (RunOnAllWorkers
  // is a barrier), so plain vectors suffice.
  std::vector<size_t> worker_tasks(workers, 0);
  std::vector<std::optional<StopReason>> worker_stops(workers);

  const size_t base_estimate = governor_->memory_estimate();
  ResourceLimits worker_limits;
  worker_limits.cancel = governor_->limits().cancel;  // shared, thread-safe
  worker_limits.memory_budget_bytes = governor_->limits().memory_budget_bytes;
  worker_limits.deadline_ms = governor_->RemainingDeadlineMs();

  // The caller's match counters (atomic fields) are shared across workers;
  // totals are order-independent sums, so they stay deterministic at any
  // thread count.
  MatchCounters* match_counters = CurrentMatchCounters();

  pool_->RunOnAllWorkers([&](size_t worker) {
    // ResourceGovernor is single-threaded, so each worker polls its own
    // detached instance (parent == nullptr keeps CheckPassive off the main
    // governor, which the caller's thread owns).
    ResourceGovernor worker_governor(worker_limits, /*parent=*/nullptr);
    worker_governor.NoteMemoryUsage(base_estimate);
    GovernorScope scope(&worker_governor);
    MatchCountersScope counters_scope(match_counters);
    // Fault-injection visit counts are part of deterministic test schedules
    // and the injector is thread-local to the test's thread; workers must
    // not consume visits in scheduling-dependent order. Injection therefore
    // covers only the sequential path (threads == 1).
    FaultInjectorScope no_faults(nullptr);
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) break;
      if (worker_governor.ShouldStop(FaultSite::kTriggerBoundary)) break;
      const size_t task = cursor.fetch_add(1, std::memory_order_relaxed);
      if (task >= tasks) break;
      ++worker_tasks[worker];
      const size_t bytes = fn(task);
      const size_t total =
          result_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
      worker_governor.NoteMemoryUsage(base_estimate + total);
      // fn polls the ambient (worker) governor inside the homomorphism
      // search; a latched stop means this task's results are partial.
      if (worker_governor.stopped()) break;
    }
    if (worker_governor.stopped()) {
      worker_stops[worker] = worker_governor.reason();
      abort.store(true, std::memory_order_relaxed);
    }
  });

  if (stats != nullptr) {
    stats->tasks = tasks;
    stats->result_bytes = result_bytes.load(std::memory_order_relaxed);
    stats->eval_ms = timer.ElapsedMillis();
    size_t used = 0;
    size_t max_tasks = 0;
    size_t min_tasks = tasks;
    for (size_t count : worker_tasks) {
      if (count == 0) continue;
      ++used;
      max_tasks = std::max(max_tasks, count);
      min_tasks = std::min(min_tasks, count);
    }
    stats->workers_used = used;
    stats->max_worker_tasks = max_tasks;
    stats->min_worker_tasks = used == 0 ? 0 : min_tasks;
  }

  // Fold the first stop (by worker index, for a stable choice) back into
  // the main governor. Any stop means unclaimed or half-evaluated tasks:
  // the section is incomplete and the caller must discard its results.
  for (const std::optional<StopReason>& stop : worker_stops) {
    if (stop.has_value()) {
      governor_->AdoptStop(*stop);
      return false;
    }
  }
  return true;
}

std::vector<CandidateMatch> EnumerateRuleCandidates(const Rule& rule,
                                                    const AtomSet& instance) {
  HomOptions options;
  options.limit = 0;  // all
  std::vector<CandidateMatch> out;
  for (Substitution& match :
       FindAllHomomorphisms(rule.body(), instance, options)) {
    PackedBindings key = PackedBindings::FromMatch(match);
    out.push_back(CandidateMatch{std::move(match), std::move(key)});
  }
  return out;
}

std::vector<CandidateMatch> SeededProbeCandidates(const Rule& rule,
                                                  const Atom& fact,
                                                  const AtomSet& instance) {
  std::vector<CandidateMatch> out;
  rule.body().ForEach([&](const Atom& body_atom) {
    std::optional<Substitution> seed = UnifyBodyAtomWithFact(body_atom, fact);
    if (!seed.has_value()) return;
    HomOptions options;
    options.seed = std::move(*seed);
    options.limit = 0;  // all
    for (Substitution& match :
         FindAllHomomorphisms(rule.body(), instance, options)) {
      PackedBindings key = PackedBindings::FromMatch(match);
      out.push_back(CandidateMatch{std::move(match), std::move(key)});
    }
  });
  return out;
}

size_t ApproxCandidateBytes(const std::vector<CandidateMatch>& candidates) {
  size_t bytes = candidates.capacity() * sizeof(CandidateMatch);
  for (const CandidateMatch& candidate : candidates) {
    // One hash node (two Terms, a next pointer, allocator overhead) per
    // binding, plus the packed key words.
    bytes += candidate.match.size() * 32;
    bytes += candidate.key.words().capacity() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace twchase
