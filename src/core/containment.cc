#include "core/containment.h"

#include <string>

#include "hom/matcher.h"
#include "util/status.h"

namespace twchase {

AtomSet FreezeQuery(const AtomSet& query, Vocabulary* vocab) {
  Substitution freeze;
  size_t i = 0;
  for (Term v : query.Variables()) {
    freeze.Bind(v, vocab->Constant("_frozen" + std::to_string(i++) + "_" +
                                   std::to_string(v.index())));
  }
  return freeze.Apply(query);
}

bool QueryContained(const AtomSet& q1, const AtomSet& q2, Vocabulary* vocab) {
  AtomSet canonical = FreezeQuery(q1, vocab);
  return ExistsHomomorphism(q2, canonical);
}

EntailmentResult QueryContainedUnder(const KnowledgeBase& kb,
                                     const AtomSet& q1, const AtomSet& q2,
                                     size_t max_steps) {
  KnowledgeBase canonical_kb;
  canonical_kb.vocab = kb.vocab;
  canonical_kb.rules = kb.rules;
  canonical_kb.facts = FreezeQuery(q1, kb.vocab.get());
  return DecideByCoreChase(canonical_kb, q2, max_steps);
}

}  // namespace twchase
