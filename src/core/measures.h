// Structural measures over derivations (Section 5): per-step series of size
// and treewidth, and uniform/recurring boundedness summaries. A sequence is
// uniformly μ-bounded by k if μ(F_i) ≤ k for all i, and recurringly
// μ-bounded by k if μ(F_i) ≤ k for infinitely many i; on a finite prefix the
// recurring bound is estimated as the minimum over a tail window.
#ifndef TWCHASE_CORE_MEASURES_H_
#define TWCHASE_CORE_MEASURES_H_

#include <vector>

#include "core/derivation.h"
#include "tw/treewidth.h"

namespace twchase {

enum class Measure {
  kSize,            // |F_i|
  kTreewidthUpper,  // certified upper bound (exact when the solver certifies)
  kTreewidthLower,  // certified lower bound
};

/// Per-step series of the measure over a derivation with snapshots.
std::vector<int> MeasureSeries(const Derivation& derivation, Measure measure,
                               const TreewidthOptions& tw_options = {});

struct BoundednessSummary {
  /// max over the series — the smallest uniform bound on this prefix.
  int uniform_bound = -1;

  /// min over the tail window — estimate of the recurring bound.
  int recurring_estimate = -1;

  /// Value at the last element.
  int final_value = -1;
};

BoundednessSummary SummarizeBoundedness(const std::vector<int>& series,
                                        size_t tail_window);

}  // namespace twchase

#endif  // TWCHASE_CORE_MEASURES_H_
