// Human-readable derivation traces: one line per step showing the rule,
// the trigger image, the simplification and the instance size — the raw
// material behind Figure 5/6-style walkthroughs and the CLI's --trace flag.
#ifndef TWCHASE_CORE_TRACE_H_
#define TWCHASE_CORE_TRACE_H_

#include <string>

#include "core/derivation.h"
#include "model/predicate.h"

namespace twchase {

struct TraceOptions {
  /// Print at most this many steps (0 = all).
  size_t max_steps = 0;

  /// Also print the full instance at each step.
  bool print_instances = false;
};

std::string DerivationTrace(const Derivation& derivation,
                            const Vocabulary& vocab,
                            const TraceOptions& options = {});

}  // namespace twchase

#endif  // TWCHASE_CORE_TRACE_H_
