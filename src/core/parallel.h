// Parallel trigger evaluation. A chase round's match establishment — the
// priming/naive full enumerations, the post-erasure revalidation of stored
// matches, and the delta-seeded homomorphism probes — is embarrassingly
// parallel: every probe reads the (immutable within the phase) current
// instance and writes only its own result slot. ParallelTriggerEval
// partitions those probes over a fixed ThreadPool and leaves the *merge* of
// the per-slot candidate buffers to the scheduler, which replays it in the
// exact order the sequential engine would have produced the same results.
//
// Determinism contract: every chase run at threads=N is bit-identical to
// threads=1 — same instance, same derivation journal, same observer event
// stream (tests/parallel_chase_test.cc pins this across all five variants).
// Three properties make that hold:
//   1. results land in per-task slots, so scheduling never reorders them;
//   2. the merge walks the slots in sequential probe order and performs the
//      same key-dedup inserts, and the round's trigger schedule is then the
//      same PackedBindings::LegacyLess sort either way;
//   3. workers compute pure functions of (rule, fact, instance) — keys
//      included — and never touch the vocabulary or the instance.
//
// Resource governance: ResourceGovernor is single-threaded by design, so
// each worker polls its own detached governor derived from the main one
// (shared thread-safe cancel token, the remaining slice of the deadline,
// the same memory budget seeded with the main estimate plus the aggregated
// result-buffer bytes). The first worker stop is adopted into the main
// governor after the section joins; partial results are then discarded by
// the caller, exactly like an interrupted sequential enumeration.
#ifndef TWCHASE_CORE_PARALLEL_H_
#define TWCHASE_CORE_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "core/trigger_key.h"
#include "model/atom_set.h"
#include "model/substitution.h"
#include "util/governor.h"
#include "util/thread_pool.h"

namespace twchase {

class Rule;

/// One candidate trigger produced by a worker: the body match plus its
/// packed key (computed worker-side — FromMatch is a pure function, and
/// hashing off the main thread is part of the win).
struct CandidateMatch {
  Substitution match;
  PackedBindings key;
};

/// Telemetry of one parallel section (one Run call).
struct ParallelSectionStats {
  size_t tasks = 0;
  size_t workers_used = 0;      // workers that executed >= 1 task
  size_t max_worker_tasks = 0;  // largest per-worker share
  size_t min_worker_tasks = 0;  // smallest share among participating workers
  size_t result_bytes = 0;      // aggregated estimate of buffered results
  double eval_ms = 0;           // wall time of the section, join included
};

class ParallelTriggerEval {
 public:
  /// Non-owning; both must outlive this object. `governor` is the chase's
  /// main governor — worker limits are derived from it per section.
  ParallelTriggerEval(ThreadPool* pool, ResourceGovernor* governor)
      : pool_(pool), governor_(governor) {}

  size_t threads() const { return pool_->threads(); }

  /// Runs fn(task) for every task in [0, tasks), partitioned dynamically
  /// (atomic cursor) across the pool; fn returns the approximate resident
  /// bytes of the task's buffered results, which are aggregated across
  /// workers into the governors' memory estimates. Returns true when every
  /// task ran to completion; false when a worker governor stopped — the
  /// stop has been adopted into the main governor and the section's
  /// results are incomplete (callers must discard them and unwind, exactly
  /// as after an interrupted sequential enumeration).
  bool Run(size_t tasks, const std::function<size_t(size_t)>& fn,
           ParallelSectionStats* stats);

 private:
  ThreadPool* pool_;
  ResourceGovernor* governor_;
};

/// Worker-side body of one priming task: all matches of body(rule) into
/// `instance`, with keys, in the deterministic enumeration order of the
/// homomorphism search (the same order FindTriggers yields).
std::vector<CandidateMatch> EnumerateRuleCandidates(const Rule& rule,
                                                    const AtomSet& instance);

/// Worker-side body of one delta-seeded probe: all matches of body(rule)
/// into `instance` mapping at least one body atom onto `fact`, with keys,
/// in FindSeededMatches order.
std::vector<CandidateMatch> SeededProbeCandidates(const Rule& rule,
                                                  const Atom& fact,
                                                  const AtomSet& instance);

/// Rough resident-byte estimate of a candidate buffer (hash-map nodes of
/// the substitutions plus the packed key words), for the workers' memory
/// accounting.
size_t ApproxCandidateBytes(const std::vector<CandidateMatch>& candidates);

}  // namespace twchase

#endif  // TWCHASE_CORE_PARALLEL_H_
