#include "core/trace.h"

#include "obs/stock_observers.h"

namespace twchase {

std::string DerivationTrace(const Derivation& derivation,
                            const Vocabulary& vocab,
                            const TraceOptions& options) {
  TraceObserver observer(&vocab, options);
  ReplayDerivation(derivation, ChaseVariant::kRestricted, &observer);
  return observer.text();
}

}  // namespace twchase
