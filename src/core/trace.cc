#include "core/trace.h"

#include <string>

namespace twchase {

std::string DerivationTrace(const Derivation& derivation,
                            const Vocabulary& vocab,
                            const TraceOptions& options) {
  std::string out;
  size_t limit = options.max_steps == 0
                     ? derivation.size()
                     : std::min(options.max_steps, derivation.size());
  for (size_t i = 0; i < limit; ++i) {
    const DerivationStep& step = derivation.step(i);
    out += "F_" + std::to_string(i);
    if (i == 0) {
      out += " = initial";
      if (!step.simplification.empty() && !step.simplification.IsIdentity()) {
        out += ", cored via " + step.simplification.ToString(vocab);
      }
    } else {
      out += " = ";
      out += step.rule_label.empty() ? ("rule#" + std::to_string(step.rule_index))
                                     : step.rule_label;
      out += " @ " + step.match.ToString(vocab);
      out += " +" + std::to_string(step.added_atoms.size()) + " atoms";
      if (!step.simplification.empty() && !step.simplification.IsIdentity()) {
        out += ", simplified " + step.simplification.ToString(vocab);
      }
    }
    out += " -> |F| = " + std::to_string(step.instance_size) + "\n";
    if (options.print_instances && derivation.keeps_snapshots()) {
      out += "    " + derivation.Instance(i).ToString(vocab) + "\n";
    }
  }
  if (limit < derivation.size()) {
    out += "... (" + std::to_string(derivation.size() - limit) +
           " more steps)\n";
  }
  return out;
}

}  // namespace twchase
