#include "core/trigger_key.h"

#include <algorithm>

#include "util/status.h"

namespace twchase {
namespace {

int NumDigits(uint32_t x) {
  int d = 1;
  while (x >= 10) {
    x /= 10;
    ++d;
  }
  return d;
}

uint32_t Pow10(int e) {
  uint32_t p = 1;
  while (e-- > 0) p *= 10;
  return p;
}

// Compares the decimal renderings of x and y lexicographically, where each
// rendering is followed by a terminator byte. terminator_greater says whether
// that byte compares greater than any digit (';' after terms) or smaller
// (',' after variables); it only matters when one rendering is a proper
// prefix of the other.
int CompareDecimal(uint32_t x, uint32_t y, bool terminator_greater) {
  if (x == y) return 0;
  int dx = NumDigits(x);
  int dy = NumDigits(y);
  if (dx == dy) return x < y ? -1 : 1;
  if (dx < dy) {
    uint32_t prefix = y / Pow10(dy - dx);
    if (x != prefix) return x < prefix ? -1 : 1;
    // str(x) is a proper prefix of str(y): x's next byte is the terminator.
    return terminator_greater ? 1 : -1;
  }
  uint32_t prefix = x / Pow10(dx - dy);
  if (prefix != y) return prefix < y ? -1 : 1;
  return terminator_greater ? -1 : 1;
}

std::vector<uint64_t> PackSorted(std::vector<uint64_t> words) {
  std::sort(words.begin(), words.end());
  return words;
}

// Packs one (variable, term) binding into a key word. Both halves are
// masked to 32 bits explicitly and range-checked: if Term::raw() is ever
// widened past 32 bits (or the packing is fed a pre-widened value), an
// unmasked `hi << 32 | lo` would let the low half bleed into the high
// half, silently conflating distinct bindings — two different triggers
// would share a key and one would never be applied. Fail loudly instead.
uint64_t PackBindingWord(uint64_t hi, uint64_t lo) {
  TWCHASE_CHECK_MSG(hi <= 0xFFFFFFFFull && lo <= 0xFFFFFFFFull,
                    "binding id exceeds the 32-bit packed-key field");
  return hi << 32 | (lo & 0xFFFFFFFFull);
}

}  // namespace

PackedBindings PackedBindings::FromMatch(const Substitution& match) {
  PackedBindings key;
  key.words_.reserve(match.size());
  for (const auto& [var, term] : match.map()) {
    key.words_.push_back(PackBindingWord(var.raw(), term.raw()));
  }
  key.words_ = PackSorted(std::move(key.words_));
  return key;
}

PackedBindings PackedBindings::FromRestricted(const Substitution& match,
                                              const std::vector<Term>& vars) {
  PackedBindings key;
  key.words_.reserve(vars.size());
  for (Term var : vars) {
    key.words_.push_back(PackBindingWord(var.raw(), match.Apply(var).raw()));
  }
  key.words_ = PackSorted(std::move(key.words_));
  return key;
}

size_t PackedBindings::Hash() const {
  // splitmix-style combine over the words.
  uint64_t h = 0x9e3779b97f4a7c15ULL + words_.size();
  for (uint64_t w : words_) {
    uint64_t x = w + h;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    h = x ^ (x >> 31);
  }
  return static_cast<size_t>(h);
}

bool PackedBindings::LegacyLess(const PackedBindings& a,
                                const PackedBindings& b) {
  size_t n = std::min(a.words_.size(), b.words_.size());
  for (size_t i = 0; i < n; ++i) {
    uint32_t var_a = static_cast<uint32_t>(a.words_[i] >> 32);
    uint32_t var_b = static_cast<uint32_t>(b.words_[i] >> 32);
    // Variables are followed by ',' in the legacy rendering (smaller than
    // any digit, so a decimal prefix sorts first).
    if (int c = CompareDecimal(var_a, var_b, /*terminator_greater=*/false)) {
      return c < 0;
    }
    uint32_t term_a = static_cast<uint32_t>(a.words_[i]);
    uint32_t term_b = static_cast<uint32_t>(b.words_[i]);
    // Terms are followed by ';' (greater than any digit).
    if (int c = CompareDecimal(term_a, term_b, /*terminator_greater=*/true)) {
      return c < 0;
    }
  }
  return a.words_.size() < b.words_.size();
}

bool LegacyDecimalLess(uint32_t x, uint32_t y) {
  return CompareDecimal(x, y, /*terminator_greater=*/true) < 0;
}

}  // namespace twchase
