// Robust aggregation (Section 8, Definitions 14–16). Alongside a (possibly
// non-monotonic) derivation we maintain the robust sequence (G_i): each G_i
// is isomorphic to F_i, but renamed so that simplification images keep the
// <_X-smallest variable of their preimage (the robust renaming ρ_σ). The
// homomorphisms π_i: G_{i-1} → G_i then rename every variable at most
// rank(X) times (Proposition 10), so variables stabilise, the forwarded
// unions τ(G_i) grow monotonically, and their union D⊛ is a finitely
// universal model of the KB (Proposition 11) whose treewidth inherits any
// recurring bound of the derivation (Proposition 12).
//
// For a finite run the aggregator reports the forwarded union
// U_j = ∪_{i≤j} τ^j_i(G_i); when the chase terminated this equals D⊛
// restricted to the run, and for truncated runs it is the best finite
// prefix (per-variable stability streaks are reported so benches can show
// convergence).
#ifndef TWCHASE_CORE_ROBUST_H_
#define TWCHASE_CORE_ROBUST_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/derivation.h"
#include "model/atom_set.h"
#include "model/substitution.h"

namespace twchase {

class ChaseObserver;  // obs/observer.h

/// The robust renaming ρ_σ of a retraction σ of A (Definition 14): maps each
/// variable Y of σ(A) to the <_X-smallest variable of σ⁻¹(Y). Identity
/// bindings are included for variables of σ(A) untouched by σ.
Substitution RobustRenaming(const AtomSet& a, const Substitution& sigma);

struct RobustStepStats {
  size_t g_size = 0;           // |G_i|
  size_t union_size = 0;       // |U_i|
  size_t renamed_variables = 0;  // variables moved by π_i on U_{i-1}
  size_t stable_variables = 0;   // variables of U_i unchanged ≥ 1 step
};

class RobustAggregator {
 public:
  RobustAggregator() = default;

  /// Installs G_0 from F_0 = σ_0(F). `pre` is the original fact set F.
  void Begin(const AtomSet& pre, const Substitution& sigma0);

  /// Processes step i: `pre` is A_i = α(F_{i-1}, tr_i) (pre-simplification)
  /// and σ_i the simplification with F_i = σ_i(A_i).
  void Step(const AtomSet& pre, const Substitution& sigma_i);

  /// Replays a derivation prefix: elements F_0 .. F_{limit-1}, or the whole
  /// derivation when limit is 0 or exceeds it (requires snapshots). An
  /// observer, if given, receives one OnRobustRename per processed element.
  static RobustAggregator FromDerivation(const Derivation& derivation,
                                         size_t limit = 0,
                                         ChaseObserver* observer = nullptr);

  /// G_i for the latest step.
  const AtomSet& CurrentG() const { return g_; }

  /// ρ_i: isomorphism from F_i to G_i.
  const Substitution& CurrentRho() const { return rho_; }

  /// Forwarded union U_i = ∪_{k≤i} τ^i_k(G_k) — the finite prefix of D⊛.
  const AtomSet& Aggregate() const { return union_; }

  /// Per-step statistics, index 0 = after Begin.
  const std::vector<RobustStepStats>& stats() const { return stats_; }

  /// Steps processed (including Begin).
  size_t steps() const { return stats_.size(); }

  /// For each variable of the current union, the step index since which all
  /// π's have fixed it.
  const std::unordered_map<Term, size_t, TermHash>& stable_since() const {
    return stable_since_;
  }

  /// π_i homomorphisms, index-aligned with steps (π_0 = ρ_{σ_0}). π_i maps
  /// G_{i-1} into G_i (tests verify Lemma 1's monotone forwarding on these).
  const std::vector<Substitution>& pis() const { return pis_; }

  /// Attaches a read-only event tap: each processed element additionally
  /// emits an OnRobustRename carrying that step's RobustStepStats. Non-owning;
  /// call before Begin to see every step.
  void set_observer(ChaseObserver* observer) { observer_ = observer; }

 private:
  void RecordStats(size_t renamed);

  AtomSet g_;
  Substitution rho_;  // F_i → G_i
  AtomSet union_;     // U_i
  std::vector<RobustStepStats> stats_;
  std::vector<Substitution> pis_;
  std::unordered_map<Term, size_t, TermHash> stable_since_;
  ChaseObserver* observer_ = nullptr;
};

}  // namespace twchase

#endif  // TWCHASE_CORE_ROBUST_H_
