#include "core/entailment.h"

#include <string>
#include <vector>

#include "core/robust.h"
#include "core/trigger.h"
#include "hom/core.h"
#include "hom/matcher.h"
#include "obs/observer.h"
#include "util/fault.h"
#include "util/governor.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace twchase {

namespace {

// Emits one OnPhase per completed sub-procedure.
void EmitPhase(ChaseObserver* observer, const char* name,
               const Stopwatch& watch, size_t chase_steps) {
  if (observer == nullptr) return;
  PhaseEvent phase;
  phase.name = name;
  phase.wall_ms = watch.ElapsedMillis();
  phase.chase_steps = chase_steps;
  observer->OnPhase(phase);
}

}  // namespace

const char* EntailmentVerdictName(EntailmentVerdict verdict) {
  switch (verdict) {
    case EntailmentVerdict::kEntailed:
      return "entailed";
    case EntailmentVerdict::kNotEntailed:
      return "not-entailed";
    case EntailmentVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

EntailmentResult DecideByCoreChase(const KnowledgeBase& kb,
                                   const AtomSet& query, size_t max_steps,
                                   ChaseObserver* observer) {
  Stopwatch watch;
  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = max_steps;
  options.keep_snapshots = false;
  options.observer = observer;
  auto run = RunChase(kb, options);
  TWCHASE_CHECK_MSG(run.ok(), run.status().ToString());
  EntailmentResult result;
  result.chase_steps = run->steps;
  result.method = "core-chase";
  bool maps = ExistsHomomorphism(query, run->derivation.Last());
  if (GovernorStopped() && !maps) {
    // The query match search may have been cut short: a found match is a
    // real certificate, but absence proves nothing once the governor fired.
    result.verdict = EntailmentVerdict::kUnknown;
  } else if (run->terminated) {
    // The fixpoint is the finite universal model: exact decision.
    result.verdict =
        maps ? EntailmentVerdict::kEntailed : EntailmentVerdict::kNotEntailed;
  } else {
    // Every prefix element is universal for K (Proposition 1), so a match
    // certifies entailment; absence proves nothing.
    result.verdict =
        maps ? EntailmentVerdict::kEntailed : EntailmentVerdict::kUnknown;
  }
  EmitPhase(observer, "core-chase", watch, result.chase_steps);
  return result;
}

EntailmentResult SaturationSemiDecision(const KnowledgeBase& kb,
                                        const AtomSet& query, size_t max_steps,
                                        ChaseObserver* observer) {
  Stopwatch watch;
  ChaseOptions options;
  options.variant = ChaseVariant::kRestricted;
  options.limits.max_steps = max_steps;
  options.keep_snapshots = false;
  options.observer = observer;
  auto run = RunChase(kb, options);
  TWCHASE_CHECK_MSG(run.ok(), run.status().ToString());
  EntailmentResult result;
  result.chase_steps = run->steps;
  result.method = "restricted-saturation";
  bool maps = ExistsHomomorphism(query, run->derivation.Last());
  if (maps) {
    result.verdict = EntailmentVerdict::kEntailed;
  } else if (run->terminated && !GovernorStopped()) {
    result.verdict = EntailmentVerdict::kNotEntailed;
  } else {
    result.verdict = EntailmentVerdict::kUnknown;
  }
  EmitPhase(observer, "restricted-saturation", watch, result.chase_steps);
  return result;
}

EntailmentResult DecideByRobustAggregation(const KnowledgeBase& kb,
                                           const AtomSet& query,
                                           size_t max_steps,
                                           ChaseObserver* observer) {
  Stopwatch watch;
  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = max_steps;
  options.keep_snapshots = true;  // the aggregator replays the derivation
  options.observer = observer;
  auto run = RunChase(kb, options);
  TWCHASE_CHECK_MSG(run.ok(), run.status().ToString());
  RobustAggregator agg =
      RobustAggregator::FromDerivation(run->derivation, 0, observer);
  EntailmentResult result;
  result.chase_steps = run->steps;
  result.method = "robust-aggregation";
  bool maps = ExistsHomomorphism(query, agg.Aggregate());
  if (maps) {
    // The match image is a finite subset of a finitely universal model
    // prefix... the prefix U_i consists of forwarded images of the
    // (universal) G_k, so any match certifies entailment (Proposition 9's
    // forward direction via Lemma 1).
    result.verdict = EntailmentVerdict::kEntailed;
  } else if (run->terminated && !GovernorStopped()) {
    result.verdict = EntailmentVerdict::kNotEntailed;
  } else {
    result.verdict = EntailmentVerdict::kUnknown;
  }
  EmitPhase(observer, "robust-aggregation", watch, result.chase_steps);
  return result;
}

AtomSet MinimizeQuery(const AtomSet& query) {
  return ComputeCore(query).core;
}

namespace {

// Backtracking search for a finite model of (F, Σ) avoiding Q. Satisfies one
// unsatisfied trigger at a time, branching over all assignments of its
// existential variables to the finite domain; prunes branches where Q
// already maps (atoms only grow). The atom space over a finite domain is
// finite and every recursion inserts at least one atom, so the search tree
// is finite; max_nodes caps worst-case blowup.
class CounterModelSearch {
 public:
  CounterModelSearch(const KnowledgeBase& kb, const AtomSet& query,
                     const CounterModelOptions& options)
      : kb_(kb), query_(query), options_(options) {}

  std::optional<AtomSet> Run() {
    instance_ = kb_.facts;
    domain_ = kb_.facts.Terms();
    for (int i = 0; i < options_.max_extra_elements; ++i) {
      domain_.push_back(
          kb_.vocab->Constant("_cm" + std::to_string(i)));
    }
    if (domain_.empty()) return std::nullopt;
    if (Search()) return found_;
    return std::nullopt;
  }

 private:
  bool Search() {
    if (++nodes_ > options_.max_nodes) return false;
    if (ExistsHomomorphism(query_, instance_)) return false;
    // First unsatisfied trigger, in deterministic rule order.
    for (int r = 0; r < static_cast<int>(kb_.rules.size()); ++r) {
      const Rule& rule = kb_.rules[r];
      for (const Trigger& tr : FindTriggers(rule, r, instance_)) {
        if (TriggerIsSatisfied(rule, tr.match, instance_)) continue;
        return SatisfyAndRecurse(rule, tr.match, 0, tr.match);
      }
    }
    found_ = instance_;
    return true;
  }

  // Enumerates assignments of rule.existential()[index:] to the domain.
  bool SatisfyAndRecurse(const Rule& rule, const Substitution& match,
                         size_t index, Substitution assignment) {
    if (index == rule.existential().size()) {
      std::vector<Atom> added;
      rule.head().ForEach([&](const Atom& atom) {
        Atom image = assignment.Apply(atom);
        if (instance_.Insert(image)) added.push_back(image);
      });
      if (added.empty()) {
        // Head image already present: the trigger was satisfiable with this
        // assignment, contradicting the caller's check — cannot happen, but
        // guard against infinite recursion anyway.
        return false;
      }
      bool ok = Search();
      if (ok) return true;
      for (const Atom& atom : added) instance_.Erase(atom);
      return false;
    }
    Term ev = rule.existential()[index];
    for (Term candidate : domain_) {
      Substitution extended = assignment;
      extended.Bind(ev, candidate);
      if (SatisfyAndRecurse(rule, match, index + 1, std::move(extended))) {
        return true;
      }
      if (nodes_ > options_.max_nodes) return false;
    }
    return false;
  }

  const KnowledgeBase& kb_;
  const AtomSet& query_;
  CounterModelOptions options_;
  AtomSet instance_;
  std::vector<Term> domain_;
  AtomSet found_;
  size_t nodes_ = 0;
};

}  // namespace

std::optional<AtomSet> FindFiniteCounterModel(
    const KnowledgeBase& kb, const AtomSet& query,
    const CounterModelOptions& options) {
  CounterModelSearch search(kb, query, options);
  auto result = search.Run();
  // An interrupted search is untrustworthy in both directions: its internal
  // satisfaction / query checks may have been cut short, so a "model" could
  // be bogus and absence proves nothing. Degrade to "none found".
  if (GovernorStopped()) return std::nullopt;
  return result;
}

EntailmentResult DovetailEntailment(const KnowledgeBase& kb,
                                    const AtomSet& query, size_t base_steps,
                                    int rounds, ChaseObserver* observer) {
  EntailmentResult last;
  last.method = "dovetail/interrupted";
  size_t steps = base_steps;
  for (int r = 0; r < rounds; ++r) {
    // Cooperative checkpoint between dovetail rounds: a stop here returns
    // the best (sound) verdict so far — kUnknown unless a certificate was
    // already found.
    if (GovernorPoll(FaultSite::kEntailmentRound)) return last;
    EntailmentResult by_chase = DecideByCoreChase(kb, query, steps, observer);
    last = by_chase;
    if (by_chase.verdict != EntailmentVerdict::kUnknown) return by_chase;
    CounterModelOptions cm;
    cm.max_extra_elements = r;
    Stopwatch cm_watch;
    auto counter_model = FindFiniteCounterModel(kb, query, cm);
    EmitPhase(observer, "counter-model", cm_watch, 0);
    if (counter_model.has_value()) {
      EntailmentResult result;
      result.verdict = EntailmentVerdict::kNotEntailed;
      result.chase_steps = by_chase.chase_steps;
      result.method = "dovetail/counter-model(k=" + std::to_string(r) + ")";
      return result;
    }
    steps *= 2;
  }
  last.method = "dovetail/exhausted";
  return last;
}

EntailmentResult CombinedEntailment(const KnowledgeBase& kb,
                                    const AtomSet& query, size_t max_steps,
                                    const CounterModelOptions& cm_options,
                                    ChaseObserver* observer) {
  EntailmentResult by_chase = DecideByCoreChase(kb, query, max_steps, observer);
  if (by_chase.verdict != EntailmentVerdict::kUnknown) return by_chase;
  Stopwatch cm_watch;
  auto counter_model = FindFiniteCounterModel(kb, query, cm_options);
  EmitPhase(observer, "counter-model", cm_watch, 0);
  if (counter_model.has_value()) {
    EntailmentResult result;
    result.verdict = EntailmentVerdict::kNotEntailed;
    result.chase_steps = by_chase.chase_steps;
    result.method = "finite-counter-model";
    return result;
  }
  return by_chase;
}

}  // namespace twchase
