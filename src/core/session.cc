#include "core/session.h"

#include <string>
#include <utility>

namespace twchase {

const char* ChaseSessionStateName(ChaseSession::State state) {
  switch (state) {
    case ChaseSession::State::kIdle: return "idle";
    case ChaseSession::State::kRunning: return "running";
    case ChaseSession::State::kPaused: return "paused";
    case ChaseSession::State::kDone: return "done";
  }
  return "unknown";
}

ChaseSession::ChaseSession(const KnowledgeBase& kb, const ChaseOptions& options)
    : kb_(&kb), options_(options) {
  // The control surface needs a real token. A caller-provided one is kept
  // (its flag is shared, so external cancellation keeps working and
  // Cancel() fires the same flag); otherwise the session mints its own.
  if (!options_.limits.cancel.valid()) {
    options_.limits.cancel = CancelToken::Create();
  }
  control_token_ = options_.limits.cancel;
}

StatusOr<std::unique_ptr<ChaseSession>> ChaseSession::Create(
    const KnowledgeBase& kb, const ChaseOptions& options) {
  // Same checks, same order as the one-shot entry points always performed.
  if (kb.vocab == nullptr) {
    return Status::InvalidArgument("knowledge base has no vocabulary");
  }
  TWCHASE_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<ChaseSession>(new ChaseSession(kb, options));
}

Status ChaseSession::Start() { return StartWithReplay(nullptr); }

Status ChaseSession::StartWithReplay(const ResumeLog* replay) {
  State expected = State::kIdle;
  if (!state_.compare_exchange_strong(expected, State::kRunning,
                                      std::memory_order_acq_rel)) {
    return Status::FailedPrecondition(
        std::string("session already started (state: ") +
        ChaseSessionStateName(expected) + ")");
  }
  StatusOr<ChaseResult> run = internal::ExecuteChase(*kb_, options_, replay);
  if (!run.ok()) {
    state_.store(State::kDone, std::memory_order_release);
    return run.status();
  }
  result_ = std::move(run).value();
  has_result_ = true;
  // A cooperative stop that Pause() asked for (and that Cancel() did not
  // override) parks the session instead of finishing it: the prefix is
  // consistent and, with the recorded log, checkpointable.
  const bool paused = result_.stop_reason == StopReason::kCancelled &&
                      pause_requested_.load(std::memory_order_acquire) &&
                      !cancel_requested_.load(std::memory_order_acquire);
  state_.store(paused ? State::kPaused : State::kDone,
               std::memory_order_release);
  return Status::OK();
}

Status ChaseSession::Resume(const ChaseCheckpoint& checkpoint) {
  // The full ResumeChase validation surface, in its historical order: the
  // decision bits are meaningless against a different schedule, and the
  // serialized substitutions refer to the term ids of one exact program.
  if (options_.variant != checkpoint.variant) {
    return Status::FailedPrecondition(
        std::string("resume: checkpoint was recorded with variant '") +
        ChaseVariantName(checkpoint.variant) + "', options request '" +
        ChaseVariantName(options_.variant) + "'");
  }
  if (options_.datalog_first != checkpoint.datalog_first ||
      options_.delta.enabled != checkpoint.delta_enabled ||
      options_.core.core_every != checkpoint.core_every ||
      options_.core.core_at_round_end != checkpoint.core_at_round_end ||
      options_.core.core_initial != checkpoint.core_initial) {
    return Status::FailedPrecondition(
        "resume: schedule-shaping options (datalog_first, delta.enabled, "
        "coring schedule) differ from the recorded run; the decision bits "
        "are meaningless against a different schedule");
  }
  if (options_.core.incremental_core) {
    return Status::FailedPrecondition(
        "resume: incremental_core runs are not replayable");
  }
  if (CheckpointFingerprint(*kb_, options_) != checkpoint.program_fingerprint) {
    return Status::FailedPrecondition(
        "resume: fingerprint mismatch — the checkpoint belongs to a "
        "different rule set or fact base, or was recorded under a different "
        "--match-backend or --plan setting");
  }
  if (checkpoint.log.have_initial &&
      kb_->vocab->num_variables() != checkpoint.log.initial_num_variables) {
    return Status::FailedPrecondition(
        "resume: vocabulary is not in the recorded run's start state "
        "(expected " +
        std::to_string(checkpoint.log.initial_num_variables) +
        " variables, found " + std::to_string(kb_->vocab->num_variables()) +
        "); re-parse the program into a fresh vocabulary before resuming");
  }
  ResumeLog log = checkpoint.log;
  log.verify_landing = true;
  log.expected_instance_size = checkpoint.instance_size;
  log.expected_instance_hash = checkpoint.instance_hash;
  log.committed_num_variables = checkpoint.expected_variables;
  return StartWithReplay(&log);
}

Status ChaseSession::Pause() {
  if (!options_.resume.record_log) {
    return Status::FailedPrecondition(
        "session is not checkpointable: it was created without "
        "resume.record_log, so a paused prefix could not be continued");
  }
  pause_requested_.store(true, std::memory_order_release);
  control_token_.RequestCancel();
  return Status::OK();
}

void ChaseSession::Cancel() {
  cancel_requested_.store(true, std::memory_order_release);
  control_token_.RequestCancel();
}

const ChaseResult& ChaseSession::Result() const {
  TWCHASE_CHECK_MSG(has_result_, "ChaseSession::Result before completion");
  return result_;
}

ChaseResult ChaseSession::TakeResult() {
  TWCHASE_CHECK_MSG(has_result_,
                    "ChaseSession::TakeResult before completion");
  has_result_ = false;
  return std::move(result_);
}

StatusOr<ChaseCheckpoint> ChaseSession::Checkpoint() const {
  State state = state_.load(std::memory_order_acquire);
  if (state != State::kPaused && state != State::kDone) {
    return Status::FailedPrecondition(
        std::string("cannot checkpoint a session in state '") +
        ChaseSessionStateName(state) + "'");
  }
  if (!has_result_ || !options_.resume.record_log) {
    return Status::FailedPrecondition(
        "cannot checkpoint: the session holds no recorded run "
        "(resume.record_log off, or the result was taken)");
  }
  return MakeCheckpoint(*kb_, options_, result_);
}

}  // namespace twchase
