#include "core/aggregation.h"

#include "core/trigger.h"
#include "hom/matcher.h"

namespace twchase {

AtomSet NaturalAggregation(const Derivation& derivation) {
  return derivation.NaturalAggregation();
}

bool IsFairPrefix(const Derivation& derivation, const KnowledgeBase& kb,
                  size_t skip_tail) {
  size_t n = derivation.size();
  size_t check_until = n > skip_tail ? n - skip_tail : 0;
  for (size_t i = 0; i < check_until; ++i) {
    const AtomSet& fi = derivation.Instance(i);
    for (int r = 0; r < static_cast<int>(kb.rules.size()); ++r) {
      for (const Trigger& tr : FindTriggers(kb.rules[r], r, fi)) {
        bool satisfied_somewhere = false;
        for (size_t j = i; j < n && !satisfied_somewhere; ++j) {
          Substitution mapped =
              Substitution::Compose(derivation.SigmaBetween(i, j), tr.match);
          if (TriggerIsSatisfied(kb.rules[r], mapped,
                                 derivation.Instance(j))) {
            satisfied_somewhere = true;
          }
        }
        if (!satisfied_somewhere) return false;
      }
    }
  }
  return true;
}

bool MapsInto(const AtomSet& candidate, const AtomSet& model) {
  return ExistsHomomorphism(candidate, model);
}

}  // namespace twchase
