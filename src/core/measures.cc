#include "core/measures.h"

#include <algorithm>

#include "util/status.h"

namespace twchase {

std::vector<int> MeasureSeries(const Derivation& derivation, Measure measure,
                               const TreewidthOptions& tw_options) {
  std::vector<int> out;
  out.reserve(derivation.size());
  for (size_t i = 0; i < derivation.size(); ++i) {
    switch (measure) {
      case Measure::kSize:
        out.push_back(static_cast<int>(derivation.step(i).instance_size));
        break;
      case Measure::kTreewidthUpper: {
        TreewidthResult tw =
            ComputeTreewidth(derivation.Instance(i), tw_options);
        out.push_back(tw.upper_bound);
        break;
      }
      case Measure::kTreewidthLower: {
        TreewidthResult tw =
            ComputeTreewidth(derivation.Instance(i), tw_options);
        out.push_back(tw.lower_bound);
        break;
      }
    }
  }
  return out;
}

BoundednessSummary SummarizeBoundedness(const std::vector<int>& series,
                                        size_t tail_window) {
  BoundednessSummary out;
  if (series.empty()) return out;
  out.uniform_bound = *std::max_element(series.begin(), series.end());
  size_t window = std::min(std::max<size_t>(tail_window, 1), series.size());
  out.recurring_estimate =
      *std::min_element(series.end() - static_cast<long>(window), series.end());
  out.final_value = series.back();
  return out;
}

}  // namespace twchase
