#include "core/measures.h"

#include <algorithm>

#include "obs/stock_observers.h"

namespace twchase {

std::vector<int> MeasureSeries(const Derivation& derivation, Measure measure,
                               const TreewidthOptions& tw_options) {
  MeasuresObserver observer(measure, tw_options);
  ReplayDerivation(derivation, ChaseVariant::kRestricted, &observer);
  return observer.series();
}

BoundednessSummary SummarizeBoundedness(const std::vector<int>& series,
                                        size_t tail_window) {
  BoundednessSummary out;
  if (series.empty()) return out;
  out.uniform_bound = *std::max_element(series.begin(), series.end());
  size_t window = std::min(std::max<size_t>(tail_window, 1), series.size());
  out.recurring_estimate =
      *std::min_element(series.end() - static_cast<long>(window), series.end());
  out.final_value = series.back();
  return out;
}

}  // namespace twchase
