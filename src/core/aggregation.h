// Natural aggregation D* (Section 3) and empirical checkers for its
// semantic properties (Proposition 1): universality for the KB, modelhood
// for monotonic fair derivations, and fairness itself.
#ifndef TWCHASE_CORE_AGGREGATION_H_
#define TWCHASE_CORE_AGGREGATION_H_

#include "core/derivation.h"
#include "kb/knowledge_base.h"

namespace twchase {

/// D* = ∪_i F_i.
AtomSet NaturalAggregation(const Derivation& derivation);

/// Empirical fairness check on a finite derivation prefix: for every
/// i < size - skip_tail and every trigger tr for F_i, some j ≥ i has
/// σ^j_i(tr) satisfied in F_j. For a terminated chase use skip_tail = 0 (the
/// fixpoint satisfies everything); truncated runs necessarily leave triggers
/// open near the end, so pass a small skip_tail. Quadratic in the derivation
/// length — intended for tests.
bool IsFairPrefix(const Derivation& derivation, const KnowledgeBase& kb,
                  size_t skip_tail = 0);

/// Checks that `candidate` maps homomorphically into `model` — the
/// finite-witness half of "universal for K" (Proposition 1(1)): every
/// element F_i of a derivation, and hence any finite subset of D*, must map
/// into every model of K.
bool MapsInto(const AtomSet& candidate, const AtomSet& model);

}  // namespace twchase

#endif  // TWCHASE_CORE_AGGREGATION_H_
