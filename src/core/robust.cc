#include "core/robust.h"

#include <algorithm>

#include "obs/observer.h"
#include "util/status.h"

namespace twchase {

Substitution RobustRenaming(const AtomSet& a, const Substitution& sigma) {
  AtomSet image = sigma.Apply(a);
  Substitution rho;
  for (Term y : image.Variables()) {
    std::vector<Term> preimage = sigma.Preimage(y);
    TWCHASE_CHECK_MSG(!preimage.empty(), "retraction image var has no preimage");
    Term best = preimage.front();
    for (Term cand : preimage) {
      if (cand.rank() < best.rank()) best = cand;
    }
    rho.Bind(y, best);
  }
  return rho;
}

void RobustAggregator::Begin(const AtomSet& pre, const Substitution& sigma0) {
  TWCHASE_CHECK(stats_.empty());
  // Complete σ_0 to full domain so Preimage sees fixed variables.
  Substitution sigma = sigma0;
  for (Term v : pre.Variables()) {
    if (!sigma.Lookup(v).has_value()) sigma.Bind(v, v);
  }
  Substitution rho_sigma = RobustRenaming(pre, sigma);
  AtomSet f0 = sigma.Apply(pre);
  g_ = rho_sigma.Apply(f0);
  pis_.push_back(Substitution::Compose(rho_sigma, sigma));
  // ρ_0 = ρ_{σ_0}, restricted to vars(F_0) so it stays an isomorphism
  // F_0 → G_0 (stale bindings would break invertibility later).
  rho_ = rho_sigma.RestrictTo(f0.Variables());
  union_ = g_;
  for (Term v : g_.Variables()) stable_since_.emplace(v, 0);
  RecordStats(0);
}

void RobustAggregator::Step(const AtomSet& pre, const Substitution& sigma_i) {
  TWCHASE_CHECK(!stats_.empty());
  // A'_i = ρ_{i-1}(A_i); fresh variables are untouched by ρ_{i-1}.
  AtomSet a_prime = rho_.Apply(pre);
  // σ'_i = ρ_{i-1} • σ_i • ρ_{i-1}⁻¹, completed to the full domain of A'_i.
  Substitution rho_inv = rho_.Inverse();
  Substitution sigma_prime;
  for (Term xp : a_prime.Variables()) {
    Term x = rho_inv.Apply(xp);
    Term yp = rho_.Apply(sigma_i.Apply(x));
    sigma_prime.Bind(xp, yp);
  }
  // Robust renaming of σ'_i, and the new G_i.
  Substitution rho_sigma = RobustRenaming(a_prime, sigma_prime);
  AtomSet f_prime = sigma_prime.Apply(a_prime);
  g_ = rho_sigma.Apply(f_prime);
  // π_i = ρ_{σ'_i} • σ'_i maps G_{i-1} (⊆ A'_i) to G_i.
  Substitution pi = Substitution::Compose(rho_sigma, sigma_prime);
  pis_.push_back(pi);
  // ρ_i = ρ_{σ'_i} • ρ_{i-1}, restricted to vars(F_i) to remain an
  // invertible isomorphism F_i → G_i.
  AtomSet f_i = sigma_i.Apply(pre);
  rho_ = Substitution::Compose(rho_sigma, rho_).RestrictTo(f_i.Variables());
  // Fresh variables of F_i fixed by both maps must still be in the domain
  // for Inverse()/completion logic; add explicit identities.
  for (Term v : f_i.Variables()) {
    if (!rho_.Lookup(v).has_value()) rho_.Bind(v, v);
  }

  // Forward the union: U_i = π_i(U_{i-1}) ∪ G_i, and track stability.
  size_t step_index = stats_.size();
  size_t renamed = 0;
  std::unordered_map<Term, size_t, TermHash> next_since;
  // Unmoved variables first: a variable that keeps its name stays stable
  // even if other variables fold onto it.
  for (Term v : union_.Variables()) {
    if (pi.Apply(v) != v) continue;
    auto it = stable_since_.find(v);
    next_since.emplace(v, it == stable_since_.end() ? step_index : it->second);
  }
  for (Term v : union_.Variables()) {
    Term image = pi.Apply(v);
    if (image == v) continue;
    ++renamed;
    next_since.emplace(image, step_index);
  }
  union_ = pi.Apply(union_);
  union_.InsertAll(g_);
  for (Term v : union_.Variables()) next_since.emplace(v, step_index);
  stable_since_ = std::move(next_since);
  RecordStats(renamed);
}

RobustAggregator RobustAggregator::FromDerivation(const Derivation& derivation,
                                                  size_t limit,
                                                  ChaseObserver* observer) {
  TWCHASE_CHECK(derivation.keeps_snapshots());
  RobustAggregator agg;
  agg.set_observer(observer);
  TWCHASE_CHECK(!derivation.empty());
  size_t n = derivation.size();
  if (limit != 0 && limit < n) n = limit;
  // The derivation's F_0 is already simplified; reconstruct the original F
  // from σ_0? The simplification σ_0 retracts F onto F_0, but F itself is
  // not recorded. Since σ_0(F) = F_0 and the robust renaming of σ_0 only
  // renames within F's variables, we treat F_0 as `pre` with σ = identity
  // when σ_0's pre-image is unavailable; the resulting G_0 differs from the
  // paper's by an isomorphism, which is harmless for every downstream use.
  agg.Begin(derivation.Instance(0), derivation.step(0).simplification);
  for (size_t i = 1; i < n; ++i) {
    agg.Step(derivation.PreSimplification(i),
             derivation.step(i).simplification);
  }
  return agg;
}

void RobustAggregator::RecordStats(size_t renamed) {
  RobustStepStats s;
  s.g_size = g_.size();
  s.union_size = union_.size();
  s.renamed_variables = renamed;
  size_t step_index = stats_.size();
  for (const auto& [var, since] : stable_since_) {
    if (step_index > since) ++s.stable_variables;
  }
  stats_.push_back(s);
  if (observer_ != nullptr) {
    RobustRenameEvent event;
    event.step = step_index;
    event.renamed_variables = s.renamed_variables;
    event.stable_variables = s.stable_variables;
    event.g_size = s.g_size;
    event.union_size = s.union_size;
    observer_->OnRobustRename(event);
  }
}

}  // namespace twchase
