#include "tw/heuristics.h"

#include <algorithm>
#include <limits>
#include <set>

#include "tw/tree_decomposition.h"
#include "util/fault.h"
#include "util/governor.h"

namespace twchase {
namespace {

int FillCost(const std::vector<std::set<int>>& adj, int v) {
  int fill = 0;
  for (auto it = adj[v].begin(); it != adj[v].end(); ++it) {
    auto jt = it;
    for (++jt; jt != adj[v].end(); ++jt) {
      if (!adj[*it].contains(*jt)) ++fill;
    }
  }
  return fill;
}

}  // namespace

std::vector<int> GreedyEliminationOrder(const Graph& g,
                                        EliminationHeuristic heuristic) {
  int n = g.num_vertices();
  std::vector<std::set<int>> adj(n);
  for (int u = 0; u < n; ++u) {
    for (int v : g.Neighbors(u)) adj[u].insert(v);
  }
  std::vector<bool> eliminated(n, false);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    // Cooperative checkpoint per elimination step. On a stop, degrade to a
    // well-defined result: append the remaining vertices in id order — the
    // output stays a valid elimination order (every caller requires a
    // permutation), only its width guarantee degrades.
    if (GovernorPoll(FaultSite::kTreewidthNode)) {
      for (int v = 0; v < n; ++v) {
        if (!eliminated[v]) order.push_back(v);
      }
      return order;
    }
    int best = -1;
    long best_score = std::numeric_limits<long>::max();
    for (int v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      long score = heuristic == EliminationHeuristic::kMinFill
                       ? FillCost(adj, v)
                       : static_cast<long>(adj[v].size());
      if (score < best_score) {
        best_score = score;
        best = v;
      }
    }
    order.push_back(best);
    eliminated[best] = true;
    std::vector<int> nbrs(adj[best].begin(), adj[best].end());
    for (size_t a = 0; a < nbrs.size(); ++a) {
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[nbrs[a]].insert(nbrs[b]);
        adj[nbrs[b]].insert(nbrs[a]);
      }
    }
    for (int w : nbrs) adj[w].erase(best);
    adj[best].clear();
  }
  return order;
}

int HeuristicUpperBound(const Graph& g, EliminationHeuristic heuristic) {
  if (g.num_vertices() == 0) return -1;
  return WidthOfEliminationOrder(g, GreedyEliminationOrder(g, heuristic));
}

int BestHeuristicUpperBound(const Graph& g, std::vector<int>* best_order) {
  if (g.num_vertices() == 0) {
    if (best_order != nullptr) best_order->clear();
    return -1;
  }
  std::vector<int> fill = GreedyEliminationOrder(g, EliminationHeuristic::kMinFill);
  std::vector<int> deg =
      GreedyEliminationOrder(g, EliminationHeuristic::kMinDegree);
  int wf = WidthOfEliminationOrder(g, fill);
  int wd = WidthOfEliminationOrder(g, deg);
  if (best_order != nullptr) *best_order = wf <= wd ? fill : deg;
  return std::min(wf, wd);
}

}  // namespace twchase
