#include "tw/dot.h"

namespace twchase {
namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string GraphToDot(const Graph& g, const std::vector<std::string>& labels) {
  std::string out = "graph G {\n  node [shape=circle, fontsize=10];\n";
  for (int v = 0; v < g.num_vertices(); ++v) {
    out += "  n" + std::to_string(v);
    if (v < static_cast<int>(labels.size())) {
      out += " [label=\"" + Escape(labels[v]) + "\"]";
    }
    out += ";\n";
  }
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (u < v) {
        out += "  n" + std::to_string(u) + " -- n" + std::to_string(v) + ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

std::string GaifmanToDot(const AtomSet& atoms, const Vocabulary& vocab) {
  std::vector<Term> terms;
  Graph g = Graph::GaifmanOf(atoms, &terms);
  std::vector<std::string> labels;
  labels.reserve(terms.size());
  for (Term t : terms) labels.push_back(vocab.TermName(t));
  return GraphToDot(g, labels);
}

std::string DecompositionToDot(const TreeDecomposition& td,
                               const std::vector<std::string>& labels) {
  std::string out = "graph TD {\n  node [shape=box, fontsize=10];\n";
  for (size_t b = 0; b < td.bags.size(); ++b) {
    std::string label;
    for (size_t i = 0; i < td.bags[b].size(); ++i) {
      if (i > 0) label += ", ";
      int v = td.bags[b][i];
      label += v < static_cast<int>(labels.size()) ? labels[v]
                                                   : std::to_string(v);
    }
    out += "  b" + std::to_string(b) + " [label=\"{" + Escape(label) + "}\"];\n";
  }
  for (const auto& [x, y] : td.edges) {
    out += "  b" + std::to_string(x) + " -- b" + std::to_string(y) + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace twchase
