// Greedy elimination-order heuristics producing treewidth upper bounds and
// witnessing tree decompositions: min-fill and min-degree.
#ifndef TWCHASE_TW_HEURISTICS_H_
#define TWCHASE_TW_HEURISTICS_H_

#include <vector>

#include "tw/graph.h"

namespace twchase {

enum class EliminationHeuristic { kMinFill, kMinDegree };

/// Greedy elimination order: repeatedly removes the vertex adding the fewest
/// fill edges (min-fill) or with the fewest remaining neighbors (min-degree),
/// connecting its neighborhood into a clique. Ties broken by vertex id for
/// determinism.
std::vector<int> GreedyEliminationOrder(const Graph& g,
                                        EliminationHeuristic heuristic);

/// Width achieved by the given heuristic (an upper bound on treewidth).
int HeuristicUpperBound(const Graph& g, EliminationHeuristic heuristic);

/// Best of min-fill and min-degree.
int BestHeuristicUpperBound(const Graph& g, std::vector<int>* best_order);

}  // namespace twchase

#endif  // TWCHASE_TW_HEURISTICS_H_
