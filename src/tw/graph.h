// Undirected graphs for treewidth computation, plus the Gaifman (primal)
// graph of an atomset: vertices are the terms, edges join terms co-occurring
// in an atom. Every atom's terms form a clique, so any tree decomposition of
// the Gaifman graph covers every atom in some bag (cliques are always
// contained in a bag), matching the paper's Definition 4.
#ifndef TWCHASE_TW_GRAPH_H_
#define TWCHASE_TW_GRAPH_H_

#include <cstdint>
#include <vector>

#include "model/atom_set.h"
#include "model/term.h"

namespace twchase {

class Graph {
 public:
  explicit Graph(int num_vertices) : adj_(num_vertices) {}

  int num_vertices() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return num_edges_; }

  /// Adds an undirected edge (idempotent; self-loops ignored).
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  const std::vector<int>& Neighbors(int v) const { return adj_[v]; }
  int Degree(int v) const { return static_cast<int>(adj_[v].size()); }

  /// Gaifman graph of `atoms`. If `term_of_vertex` is non-null, it receives
  /// the term corresponding to each vertex id.
  static Graph GaifmanOf(const AtomSet& atoms,
                         std::vector<Term>* term_of_vertex);

  /// n×m grid graph (used by tests and the grid lower bound machinery).
  static Graph Grid(int rows, int cols);

  /// Complete graph on n vertices.
  static Graph Complete(int n);

  /// Cycle on n vertices.
  static Graph Cycle(int n);

 private:
  std::vector<std::vector<int>> adj_;  // sorted neighbor lists
  int num_edges_ = 0;
};

}  // namespace twchase

#endif  // TWCHASE_TW_GRAPH_H_
