// Exact treewidth via the Bodlaender–Fomin–Koster–Kratsch–Thilikos dynamic
// program over vertex subsets (O*(2^n)): TW(S) = min over v ∈ S of
// max(TW(S∖{v}), |Q(S∖{v}, v)|), where Q(S, v) is the set of vertices outside
// S ∪ {v} reachable from v through S. Practical up to ~20 vertices.
#ifndef TWCHASE_TW_EXACT_H_
#define TWCHASE_TW_EXACT_H_

#include <vector>

#include "tw/graph.h"
#include "util/status.h"

namespace twchase {

/// Hard cap on the exact DP (memory: one byte per subset).
inline constexpr int kMaxExactVertices = 22;

/// Exact treewidth of g. Returns FailedPrecondition if g has more than
/// kMaxExactVertices vertices.
StatusOr<int> ExactTreewidth(const Graph& g);

/// Exact treewidth plus an optimal elimination order recovered from the DP
/// table (usable with DecompositionFromEliminationOrder for a witness).
StatusOr<std::vector<int>> ExactEliminationOrder(const Graph& g);

}  // namespace twchase

#endif  // TWCHASE_TW_EXACT_H_
