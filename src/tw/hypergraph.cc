#include "tw/hypergraph.h"

#include <algorithm>
#include <unordered_map>

#include "tw/graph.h"
#include "tw/heuristics.h"
#include "util/status.h"

namespace twchase {

Hypergraph Hypergraph::Of(const AtomSet& atoms) {
  Hypergraph hg;
  hg.vertices = atoms.Terms();
  std::unordered_map<Term, int, TermHash> index;
  for (size_t i = 0; i < hg.vertices.size(); ++i) {
    index.emplace(hg.vertices[i], static_cast<int>(i));
  }
  std::vector<std::vector<int>> seen;
  atoms.ForEach([&](const Atom& atom) {
    std::vector<int> edge;
    for (Term t : atom.DistinctTerms()) edge.push_back(index.at(t));
    std::sort(edge.begin(), edge.end());
    if (std::find(hg.edges.begin(), hg.edges.end(), edge) == hg.edges.end()) {
      hg.edges.push_back(std::move(edge));
    }
  });
  return hg;
}

namespace {

// GYO reduction on a mutable copy of the hyperedges. Returns true if the
// hypergraph reduces to nothing (α-acyclic).
bool GyoReduce(std::vector<std::vector<int>> edges) {
  bool changed = true;
  while (changed && !edges.empty()) {
    changed = false;
    // Count vertex occurrences.
    std::unordered_map<int, int> occurrences;
    for (const auto& edge : edges) {
      for (int v : edge) ++occurrences[v];
    }
    // Remove vertices occurring in exactly one edge.
    for (auto& edge : edges) {
      auto removed = std::remove_if(edge.begin(), edge.end(), [&](int v) {
        return occurrences[v] <= 1;
      });
      if (removed != edge.end()) {
        edge.erase(removed, edge.end());
        changed = true;
      }
    }
    // Remove empty edges and edges contained in another edge.
    for (size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].empty()) {
        edges.erase(edges.begin() + static_cast<long>(i));
        changed = true;
        --i;
        continue;
      }
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j) continue;
        if (std::includes(edges[j].begin(), edges[j].end(), edges[i].begin(),
                          edges[i].end())) {
          edges.erase(edges.begin() + static_cast<long>(i));
          changed = true;
          --i;
          break;
        }
      }
    }
  }
  return edges.empty();
}

}  // namespace

bool IsAlphaAcyclic(const AtomSet& atoms) {
  return GyoReduce(Hypergraph::Of(atoms).edges);
}

std::optional<JoinTree> BuildJoinTree(const AtomSet& atoms) {
  if (!IsAlphaAcyclic(atoms)) return std::nullopt;
  JoinTree tree;
  tree.nodes = atoms.Atoms();
  size_t n = tree.nodes.size();
  if (n <= 1) return tree;
  // Maximum-weight spanning tree on the intersection graph (weights =
  // shared-term counts): for α-acyclic hypergraphs this is a join tree
  // (Bernstein–Goodman). Prim's algorithm, O(n²) — fine at atom counts here.
  auto shared = [&](size_t a, size_t b) {
    int count = 0;
    for (Term t : tree.nodes[a].DistinctTerms()) {
      for (Term u : tree.nodes[b].DistinctTerms()) {
        if (t == u) ++count;
      }
    }
    return count;
  };
  std::vector<bool> in_tree(n, false);
  std::vector<int> best_weight(n, -1);
  std::vector<int> best_parent(n, -1);
  in_tree[0] = true;
  for (size_t i = 1; i < n; ++i) {
    best_weight[i] = shared(0, i);
    best_parent[i] = 0;
  }
  for (size_t added = 1; added < n; ++added) {
    int pick = -1;
    for (size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && (pick == -1 || best_weight[i] > best_weight[pick])) {
        pick = static_cast<int>(i);
      }
    }
    in_tree[pick] = true;
    tree.edges.emplace_back(best_parent[pick], pick);
    for (size_t i = 0; i < n; ++i) {
      if (!in_tree[i]) {
        int w = shared(pick, i);
        if (w > best_weight[i]) {
          best_weight[i] = w;
          best_parent[i] = pick;
        }
      }
    }
  }
  return tree;
}

int HypertreeWidthUpperBound(const AtomSet& atoms) {
  if (atoms.empty()) return 0;
  if (IsAlphaAcyclic(atoms)) return 1;
  Hypergraph hg = Hypergraph::Of(atoms);
  Graph gaifman = Graph::GaifmanOf(atoms, nullptr);
  std::vector<int> order =
      GreedyEliminationOrder(gaifman, EliminationHeuristic::kMinFill);
  TreeDecomposition td = DecompositionFromEliminationOrder(gaifman, order);
  int width = 1;
  for (const auto& bag : td.bags) {
    // Greedy set cover of the bag with hyperedges.
    std::vector<bool> covered(bag.size(), false);
    size_t remaining = bag.size();
    int used = 0;
    while (remaining > 0) {
      int best_edge = -1;
      size_t best_gain = 0;
      for (size_t e = 0; e < hg.edges.size(); ++e) {
        size_t gain = 0;
        for (size_t i = 0; i < bag.size(); ++i) {
          if (covered[i]) continue;
          if (std::binary_search(hg.edges[e].begin(), hg.edges[e].end(),
                                 bag[i])) {
            ++gain;
          }
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_edge = static_cast<int>(e);
        }
      }
      TWCHASE_CHECK_MSG(best_edge >= 0, "bag vertex not in any hyperedge");
      for (size_t i = 0; i < bag.size(); ++i) {
        if (!covered[i] &&
            std::binary_search(hg.edges[best_edge].begin(),
                               hg.edges[best_edge].end(), bag[i])) {
          covered[i] = true;
          --remaining;
        }
      }
      ++used;
    }
    width = std::max(width, used);
  }
  return width;
}

}  // namespace twchase
