// Hypergraph view of atomsets and classical hypergraph acyclicity. The
// paper notes (Section 5) that its counterexamples transfer from treewidth
// to hypergraph-based measures such as (generalized) hypertree width; this
// module supplies the standard machinery on the hypergraph side:
//   * the hypergraph of an atomset (one hyperedge per atom);
//   * α-acyclicity via GYO reduction (ear removal);
//   * join-tree construction for α-acyclic atomsets (a width-minimal
//     "hypertree decomposition" of hypertree-width 1);
//   * a hypertree-width upper bound for cyclic atomsets via bag covering of
//     a (treewidth) tree decomposition with hyperedges.
#ifndef TWCHASE_TW_HYPERGRAPH_H_
#define TWCHASE_TW_HYPERGRAPH_H_

#include <optional>
#include <vector>

#include "model/atom_set.h"
#include "tw/tree_decomposition.h"

namespace twchase {

struct Hypergraph {
  /// Distinct vertices (terms), index-aligned with edge member lists.
  std::vector<Term> vertices;

  /// Hyperedges as sorted vertex-index lists (one per distinct atom scope).
  std::vector<std::vector<int>> edges;

  static Hypergraph Of(const AtomSet& atoms);
};

/// α-acyclicity via GYO reduction: repeatedly remove isolated vertices
/// (vertices in at most one edge) and ear edges (edges contained in another
/// edge); acyclic iff everything reduces away.
bool IsAlphaAcyclic(const AtomSet& atoms);

/// A join tree for an α-acyclic atomset: one node per atom, edges such that
/// for every term the nodes containing it form a subtree. Returns nullopt
/// for cyclic inputs.
struct JoinTree {
  std::vector<Atom> nodes;
  std::vector<std::pair<int, int>> edges;
};
std::optional<JoinTree> BuildJoinTree(const AtomSet& atoms);

/// Hypertree-width upper bound: cover each bag of a (min-fill) tree
/// decomposition with as few hyperedges as possible (greedy set cover);
/// the largest cover size is an upper bound on generalized hypertree width.
/// α-acyclic atomsets report 1.
int HypertreeWidthUpperBound(const AtomSet& atoms);

}  // namespace twchase

#endif  // TWCHASE_TW_HYPERGRAPH_H_
