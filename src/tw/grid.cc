#include "tw/grid.h"

#include "hom/matcher.h"

namespace twchase {
namespace {

// Encodes an undirected graph as an atomset over pseudo-predicate 0
// ("edge", both orientations) with vertices as raw variables. Never printed,
// so no vocabulary registration is needed.
AtomSet EncodeGraph(const Graph& g, uint32_t vertex_offset) {
  AtomSet out;
  const PredicateId kEdge = 0;
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) {
      out.Insert(Atom(kEdge, {Term::Variable(vertex_offset + u),
                              Term::Variable(vertex_offset + v)}));
    }
  }
  // Isolated vertices are irrelevant for grid containment.
  return out;
}

}  // namespace

bool GraphContainsGrid(const Graph& g, int n) {
  if (n <= 0) return true;
  if (n == 1) return g.num_vertices() >= 1;
  if (g.num_vertices() < n * n) return false;
  Graph grid = Graph::Grid(n, n);
  // Pattern vertex ids start far above target ids so the two variable spaces
  // never collide.
  constexpr uint32_t kPatternOffset = 1u << 24;
  AtomSet target = EncodeGraph(g, 0);
  AtomSet pattern = EncodeGraph(grid, kPatternOffset);
  HomOptions options;
  options.limit = 1;
  options.injective = true;
  options.vars_to_vars = true;
  return FindHomomorphism(pattern, target, options).has_value();
}

bool ContainsGrid(const AtomSet& atoms, int n) {
  Graph g = Graph::GaifmanOf(atoms, nullptr);
  return GraphContainsGrid(g, n);
}

int GridLowerBound(const AtomSet& atoms, int max_n) {
  Graph g = Graph::GaifmanOf(atoms, nullptr);
  int best = 0;
  for (int n = 1; n <= max_n; ++n) {
    if (!GraphContainsGrid(g, n)) break;
    best = n;
  }
  return best;
}

}  // namespace twchase
