#include "tw/tree_decomposition.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

namespace twchase {

int TreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

namespace {

// Union-find for tree/acyclicity checking.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  // Returns false if x and y were already connected (a cycle).
  bool Union(int x, int y) {
    int rx = Find(x), ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

Status TreeDecomposition::Validate(const Graph& g) const {
  int b = static_cast<int>(bags.size());
  if (b == 0) {
    if (g.num_vertices() == 0) return Status::OK();
    return Status::InvalidArgument("no bags but graph has vertices");
  }
  // 1. Tree shape.
  if (static_cast<int>(edges.size()) != b - 1) {
    return Status::InvalidArgument(
        "bag graph has " + std::to_string(edges.size()) + " edges, expected " +
        std::to_string(b - 1));
  }
  DisjointSets dsu(b);
  for (const auto& [x, y] : edges) {
    if (x < 0 || x >= b || y < 0 || y >= b) {
      return Status::InvalidArgument("tree edge endpoint out of range");
    }
    if (!dsu.Union(x, y)) {
      return Status::InvalidArgument("bag graph contains a cycle");
    }
  }
  // b-1 successful unions on b nodes => connected tree.

  // 2. Vertex coverage.
  std::vector<char> covered(g.num_vertices(), 0);
  for (const auto& bag : bags) {
    for (int v : bag) {
      if (v < 0 || v >= g.num_vertices()) {
        return Status::InvalidArgument("bag vertex out of range");
      }
      covered[v] = 1;
    }
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!covered[v]) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " not covered by any bag");
    }
  }

  // 3. Edge coverage.
  auto bag_contains = [](const std::vector<int>& bag, int v) {
    return std::binary_search(bag.begin(), bag.end(), v);
  };
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (v < u) continue;
      bool found = false;
      for (const auto& bag : bags) {
        if (bag_contains(bag, u) && bag_contains(bag, v)) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("edge (" + std::to_string(u) + "," +
                                       std::to_string(v) +
                                       ") not contained in any bag");
      }
    }
  }

  // 4. Connectivity of occurrences: for each vertex, the bags containing it
  // must induce a connected subgraph of the tree.
  for (int v = 0; v < g.num_vertices(); ++v) {
    std::vector<int> holders;
    for (int i = 0; i < b; ++i) {
      if (bag_contains(bags[i], v)) holders.push_back(i);
    }
    if (holders.size() <= 1) continue;
    DisjointSets sub(b);
    std::vector<char> is_holder(b, 0);
    for (int h : holders) is_holder[h] = 1;
    for (const auto& [x, y] : edges) {
      if (is_holder[x] && is_holder[y]) sub.Union(x, y);
    }
    int root = sub.Find(holders[0]);
    for (int h : holders) {
      if (sub.Find(h) != root) {
        return Status::InvalidArgument(
            "occurrences of vertex " + std::to_string(v) +
            " are not connected in the tree");
      }
    }
  }
  return Status::OK();
}

namespace {

// Simulates elimination with fill-in, producing per-vertex elimination bags.
// neighbor sets are std::set<int> for simplicity; n stays small for exact use
// and min-fill callers pass already-reasonable sizes.
struct EliminationRun {
  std::vector<std::vector<int>> bags;  // bag of each eliminated vertex
  std::vector<int> position;          // position of each vertex in the order
};

EliminationRun RunElimination(const Graph& g, const std::vector<int>& order) {
  int n = g.num_vertices();
  std::vector<std::set<int>> adj(n);
  for (int u = 0; u < n; ++u) {
    for (int v : g.Neighbors(u)) adj[u].insert(v);
  }
  EliminationRun run;
  run.bags.resize(n);
  run.position.assign(n, -1);
  for (int i = 0; i < n; ++i) run.position[order[i]] = i;
  for (int v : order) {
    std::vector<int> bag;
    bag.push_back(v);
    for (int w : adj[v]) bag.push_back(w);
    std::sort(bag.begin(), bag.end());
    run.bags[v] = std::move(bag);
    // Connect neighbors (fill-in), then remove v.
    std::vector<int> nbrs(adj[v].begin(), adj[v].end());
    for (size_t a = 0; a < nbrs.size(); ++a) {
      for (size_t c = a + 1; c < nbrs.size(); ++c) {
        adj[nbrs[a]].insert(nbrs[c]);
        adj[nbrs[c]].insert(nbrs[a]);
      }
    }
    for (int w : nbrs) adj[w].erase(v);
    adj[v].clear();
  }
  return run;
}

}  // namespace

TreeDecomposition DecompositionFromEliminationOrder(
    const Graph& g, const std::vector<int>& order) {
  int n = g.num_vertices();
  TWCHASE_CHECK(static_cast<int>(order.size()) == n);
  TreeDecomposition td;
  if (n == 0) return td;
  EliminationRun run = RunElimination(g, order);
  // Bag i corresponds to order[i]. Parent of bag i: the bag of the earliest-
  // eliminated vertex among the bag's members other than order[i] itself.
  td.bags.resize(n);
  for (int i = 0; i < n; ++i) td.bags[i] = run.bags[order[i]];
  for (int i = 0; i < n; ++i) {
    int parent = -1;
    int best_pos = n;
    for (int w : td.bags[i]) {
      if (w == order[i]) continue;
      if (run.position[w] > i && run.position[w] < best_pos) {
        best_pos = run.position[w];
        parent = best_pos;
      }
    }
    if (parent == -1 && i + 1 < n) {
      // Isolated (no later neighbors): attach anywhere to keep a tree.
      parent = i + 1;
    }
    if (parent != -1) td.edges.emplace_back(i, parent);
  }
  return td;
}

int WidthOfEliminationOrder(const Graph& g, const std::vector<int>& order) {
  EliminationRun run = RunElimination(g, order);
  int width = -1;
  for (const auto& bag : run.bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

}  // namespace twchase
