// Grid containment (paper Definition 5): an atomset contains an n×n grid if
// n² distinct terms t_i^j exist such that vertical and horizontal neighbors
// co-occur in some atom. By Fact 2, containment implies treewidth ≥ n; the
// paper's counterexamples rest on this witness, so we implement it as a
// first-class lower bound.
//
// Detection is subgraph isomorphism of the n×n grid graph into the Gaifman
// graph, implemented by re-encoding both as atomsets over a binary edge
// predicate and reusing the injective homomorphism search.
#ifndef TWCHASE_TW_GRID_H_
#define TWCHASE_TW_GRID_H_

#include "model/atom_set.h"
#include "tw/graph.h"

namespace twchase {

/// True iff `atoms` contains an n×n grid in the sense of Definition 5.
bool ContainsGrid(const AtomSet& atoms, int n);

/// Graph-level version: true iff g contains the n×n grid as a subgraph
/// (not necessarily induced).
bool GraphContainsGrid(const Graph& g, int n);

/// Largest n in [1, max_n] with ContainsGrid(atoms, n); 0 if none (an atomset
/// with at least one term always contains the 1×1 grid). By Fact 2 the result
/// is a treewidth lower bound.
int GridLowerBound(const AtomSet& atoms, int max_n);

}  // namespace twchase

#endif  // TWCHASE_TW_GRID_H_
