#include "tw/treewidth.h"

#include <algorithm>

#include "tw/exact.h"
#include "tw/grid.h"
#include "tw/heuristics.h"
#include "tw/lower_bounds.h"
#include "util/status.h"

namespace twchase {

TreewidthResult ComputeTreewidth(const Graph& g,
                                 const TreewidthOptions& options) {
  TreewidthResult result;
  if (g.num_vertices() == 0) {
    result.lower_bound = result.upper_bound = -1;
    return result;
  }
  std::vector<int> best_order;
  result.upper_bound = BestHeuristicUpperBound(g, &best_order);
  result.lower_bound = BestLowerBound(g);
  if (options.max_grid_lower_bound > 0 &&
      result.lower_bound < result.upper_bound) {
    for (int n = result.lower_bound + 1;
         n <= std::min(options.max_grid_lower_bound, result.upper_bound); ++n) {
      if (!GraphContainsGrid(g, n)) break;
      result.lower_bound = n;
    }
  }
  if (result.lower_bound < result.upper_bound &&
      g.num_vertices() <= options.max_exact_vertices &&
      g.num_vertices() <= kMaxExactVertices) {
    auto order = ExactEliminationOrder(g);
    if (order.ok()) {
      int width = WidthOfEliminationOrder(g, order.value());
      TWCHASE_CHECK(width <= result.upper_bound);
      result.lower_bound = result.upper_bound = width;
      best_order = std::move(order.value());
    }
    // !order.ok() means the exact DP was interrupted by the resource
    // governor (the vertex-count precondition is guarded above): keep the
    // heuristic bounds already computed instead of aborting.
  }
  result.decomposition = DecompositionFromEliminationOrder(g, best_order);
  return result;
}

TreewidthResult ComputeTreewidth(const AtomSet& atoms,
                                 const TreewidthOptions& options) {
  return ComputeTreewidth(Graph::GaifmanOf(atoms, nullptr), options);
}

int MustExactTreewidth(const AtomSet& atoms) {
  Graph g = Graph::GaifmanOf(atoms, nullptr);
  TreewidthOptions options;
  options.max_exact_vertices = kMaxExactVertices;
  TreewidthResult result = ComputeTreewidth(g, options);
  TWCHASE_CHECK_MSG(result.exact(), "treewidth not certified exact");
  return result.upper_bound;
}

}  // namespace twchase
