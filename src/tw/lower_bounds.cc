#include "tw/lower_bounds.h"

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

namespace twchase {
namespace {

std::vector<std::set<int>> AdjSets(const Graph& g) {
  std::vector<std::set<int>> adj(g.num_vertices());
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) adj[u].insert(v);
  }
  return adj;
}

int MinDegreeVertex(const std::vector<std::set<int>>& adj,
                    const std::vector<bool>& gone) {
  int best = -1;
  size_t best_deg = std::numeric_limits<size_t>::max();
  for (int v = 0; v < static_cast<int>(adj.size()); ++v) {
    if (gone[v]) continue;
    if (adj[v].size() < best_deg) {
      best_deg = adj[v].size();
      best = v;
    }
  }
  return best;
}

}  // namespace

int DegeneracyLowerBound(const Graph& g) {
  int n = g.num_vertices();
  if (n == 0) return -1;
  auto adj = AdjSets(g);
  std::vector<bool> gone(n, false);
  int bound = 0;
  for (int step = 0; step < n; ++step) {
    int v = MinDegreeVertex(adj, gone);
    bound = std::max(bound, static_cast<int>(adj[v].size()));
    for (int w : adj[v]) adj[w].erase(v);
    adj[v].clear();
    gone[v] = true;
  }
  return bound;
}

int MmdPlusLowerBound(const Graph& g) {
  int n = g.num_vertices();
  if (n == 0) return -1;
  auto adj = AdjSets(g);
  std::vector<bool> gone(n, false);
  int bound = 0;
  int remaining = n;
  while (remaining > 1) {
    int v = MinDegreeVertex(adj, gone);
    bound = std::max(bound, static_cast<int>(adj[v].size()));
    if (adj[v].empty()) {
      gone[v] = true;
      --remaining;
      continue;
    }
    // Contract v into its min-degree neighbor u.
    int u = -1;
    size_t best_deg = std::numeric_limits<size_t>::max();
    for (int w : adj[v]) {
      if (adj[w].size() < best_deg) {
        best_deg = adj[w].size();
        u = w;
      }
    }
    for (int w : adj[v]) {
      if (w == u) continue;
      adj[u].insert(w);
      adj[w].insert(u);
    }
    for (int w : adj[v]) adj[w].erase(v);
    adj[v].clear();
    gone[v] = true;
    --remaining;
  }
  return bound;
}

int BestLowerBound(const Graph& g) {
  return std::max(DegeneracyLowerBound(g), MmdPlusLowerBound(g));
}

}  // namespace twchase
