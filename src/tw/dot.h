// Graphviz (DOT) export for Gaifman graphs and tree decompositions — handy
// for inspecting the paper's structures (staircase steps, elevator boxes)
// visually.
#ifndef TWCHASE_TW_DOT_H_
#define TWCHASE_TW_DOT_H_

#include <string>

#include "model/atom_set.h"
#include "tw/graph.h"
#include "tw/tree_decomposition.h"

namespace twchase {

/// DOT rendering of an undirected graph; vertex labels optional.
std::string GraphToDot(const Graph& g, const std::vector<std::string>& labels);

/// DOT rendering of the Gaifman graph of an atomset, with term names.
std::string GaifmanToDot(const AtomSet& atoms, const Vocabulary& vocab);

/// DOT rendering of a tree decomposition: bags as boxes listing their
/// members (optionally labelled via `labels`, one per graph vertex).
std::string DecompositionToDot(const TreeDecomposition& td,
                               const std::vector<std::string>& labels);

}  // namespace twchase

#endif  // TWCHASE_TW_DOT_H_
