#include "tw/exact.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/fault.h"
#include "util/governor.h"

namespace twchase {
namespace {

// |Q(S, v)|: vertices w ∉ S ∪ {v} adjacent to the component of G[S ∪ {v}]
// containing v. Bitset BFS from v restricted to S.
int QSize(const std::vector<uint32_t>& adj, uint32_t s, int v) {
  uint32_t region = 0;                  // reached vertices inside S
  uint32_t seen_out = adj[v];           // neighbors of the region (any side)
  uint32_t frontier = adj[v] & s;
  while (frontier != 0) {
    region |= frontier;
    uint32_t next = 0;
    uint32_t f = frontier;
    while (f != 0) {
      int u = __builtin_ctz(f);
      f &= f - 1;
      next |= adj[u];
    }
    seen_out |= next;
    frontier = next & s & ~region;
  }
  uint32_t outside = seen_out & ~s & ~(1u << v);
  return __builtin_popcount(outside);
}

std::vector<uint32_t> AdjacencyBits(const Graph& g) {
  std::vector<uint32_t> adj(g.num_vertices(), 0);
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int w : g.Neighbors(u)) adj[u] |= 1u << w;
  }
  return adj;
}

// Fills the full DP table tw[S] for all subsets. Returns an empty table
// when the ambient resource governor fires mid-computation (the DP is
// all-or-nothing: a partial table certifies no bound).
std::vector<int8_t> ComputeTable(const Graph& g) {
  int n = g.num_vertices();
  std::vector<uint32_t> adj = AdjacencyBits(g);
  std::vector<int8_t> tw(size_t{1} << n, 0);
  for (uint32_t s = 1; s < (1u << n); ++s) {
    // Cooperative checkpoint, amortised: one poll per 1024 subsets keeps
    // the overhead invisible while bounding the overshoot.
    if ((s & 1023u) == 0 && GovernorPoll(FaultSite::kTreewidthNode)) {
      return {};
    }
    int best = n;
    uint32_t rem = s;
    while (rem != 0) {
      int v = __builtin_ctz(rem);
      rem &= rem - 1;
      uint32_t rest = s ^ (1u << v);
      int cand = std::max<int>(tw[rest], QSize(adj, rest, v));
      best = std::min(best, cand);
    }
    tw[s] = static_cast<int8_t>(best);
  }
  return tw;
}

}  // namespace

StatusOr<int> ExactTreewidth(const Graph& g) {
  int n = g.num_vertices();
  if (n > kMaxExactVertices) {
    return Status::FailedPrecondition(
        "exact treewidth limited to " + std::to_string(kMaxExactVertices) +
        " vertices, got " + std::to_string(n));
  }
  if (n == 0) return -1;
  std::vector<int8_t> tw = ComputeTable(g);
  if (tw.empty()) {
    return Status::ResourceExhausted(
        "exact treewidth DP interrupted by the resource governor");
  }
  return static_cast<int>(tw[(1u << n) - 1]);
}

StatusOr<std::vector<int>> ExactEliminationOrder(const Graph& g) {
  int n = g.num_vertices();
  if (n > kMaxExactVertices) {
    return Status::FailedPrecondition(
        "exact treewidth limited to " + std::to_string(kMaxExactVertices) +
        " vertices, got " + std::to_string(n));
  }
  if (n == 0) return std::vector<int>{};
  std::vector<int8_t> tw = ComputeTable(g);
  if (tw.empty()) {
    return Status::ResourceExhausted(
        "exact treewidth DP interrupted by the resource governor");
  }
  std::vector<uint32_t> adj = AdjacencyBits(g);
  // Recover an optimal order back-to-front: for the prefix set S, the vertex
  // eliminated last within S is one attaining the DP minimum.
  std::vector<int> order(n);
  uint32_t s = (1u << n) - 1;
  for (int pos = n - 1; pos >= 0; --pos) {
    int chosen = -1;
    uint32_t rem = s;
    while (rem != 0) {
      int v = __builtin_ctz(rem);
      rem &= rem - 1;
      uint32_t rest = s ^ (1u << v);
      if (std::max<int>(tw[rest], QSize(adj, rest, v)) == tw[s]) {
        chosen = v;
        break;
      }
    }
    TWCHASE_CHECK(chosen >= 0);
    order[pos] = chosen;
    s ^= 1u << chosen;
  }
  return order;
}

}  // namespace twchase
