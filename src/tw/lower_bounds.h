// Treewidth lower bounds: degeneracy (maximum over the min-degree removal
// sequence) and MMD+ (minor-monotone variant contracting the min-degree
// vertex into its least-degree neighbor).
#ifndef TWCHASE_TW_LOWER_BOUNDS_H_
#define TWCHASE_TW_LOWER_BOUNDS_H_

#include "tw/graph.h"

namespace twchase {

/// Degeneracy of g: max over the removal sequence of the min degree.
/// Always ≤ treewidth.
int DegeneracyLowerBound(const Graph& g);

/// MMD+ lower bound: like degeneracy but contracts the chosen min-degree
/// vertex into its minimum-degree neighbor (treewidth is minor-monotone,
/// so the bound is valid and ≥ plain degeneracy in practice).
int MmdPlusLowerBound(const Graph& g);

/// Best available structural lower bound.
int BestLowerBound(const Graph& g);

}  // namespace twchase

#endif  // TWCHASE_TW_LOWER_BOUNDS_H_
