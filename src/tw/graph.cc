#include "tw/graph.h"

#include <algorithm>
#include <unordered_map>

#include "util/status.h"

namespace twchase {

void Graph::AddEdge(int u, int v) {
  TWCHASE_CHECK(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices());
  if (u == v) return;
  auto it = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
  if (it != adj_[u].end() && *it == v) return;
  adj_[u].insert(it, v);
  auto it2 = std::lower_bound(adj_[v].begin(), adj_[v].end(), u);
  adj_[v].insert(it2, u);
  ++num_edges_;
}

bool Graph::HasEdge(int u, int v) const {
  if (u == v) return false;
  const auto& a = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  int needle = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::binary_search(a.begin(), a.end(), needle);
}

Graph Graph::GaifmanOf(const AtomSet& atoms, std::vector<Term>* term_of_vertex) {
  std::vector<Term> terms = atoms.Terms();
  std::unordered_map<Term, int, TermHash> vertex_of;
  vertex_of.reserve(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    vertex_of.emplace(terms[i], static_cast<int>(i));
  }
  Graph g(static_cast<int>(terms.size()));
  atoms.ForEach([&](const Atom& atom) {
    std::vector<Term> distinct = atom.DistinctTerms();
    for (size_t i = 0; i < distinct.size(); ++i) {
      for (size_t j = i + 1; j < distinct.size(); ++j) {
        g.AddEdge(vertex_of[distinct[i]], vertex_of[distinct[j]]);
      }
    }
  });
  if (term_of_vertex != nullptr) *term_of_vertex = std::move(terms);
  return g;
}

Graph Graph::Grid(int rows, int cols) {
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
    }
  }
  return g;
}

Graph Graph::Complete(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph Graph::Cycle(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

}  // namespace twchase
