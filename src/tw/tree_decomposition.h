// Tree decompositions (Definition 4 of the paper) with a full validity
// checker: vertex coverage, edge coverage, and connectivity of each vertex's
// occurrence set within the tree.
#ifndef TWCHASE_TW_TREE_DECOMPOSITION_H_
#define TWCHASE_TW_TREE_DECOMPOSITION_H_

#include <utility>
#include <vector>

#include "tw/graph.h"
#include "util/status.h"

namespace twchase {

struct TreeDecomposition {
  /// Bags of graph vertex ids; each bag sorted ascending.
  std::vector<std::vector<int>> bags;

  /// Tree edges between bag indices.
  std::vector<std::pair<int, int>> edges;

  /// Size of the largest bag minus one; -1 for an empty decomposition.
  int Width() const;

  /// Verifies this is a valid tree decomposition of `g`:
  ///   1. the bag graph is a tree (connected, acyclic) — or empty/forest with
  ///      a single component per connected component is NOT accepted: we
  ///      require a single tree when there is at least one bag;
  ///   2. every vertex of g appears in some bag;
  ///   3. every edge of g is contained in some bag;
  ///   4. for every vertex, the bags containing it induce a connected
  ///      subtree.
  Status Validate(const Graph& g) const;
};

/// Builds a tree decomposition from an elimination order: eliminating v
/// creates the bag {v} ∪ (current neighbors of v), then contracts v with
/// fill-in edges among its neighbors. The width equals the largest such bag
/// minus one. `order` must be a permutation of the graph's vertices.
TreeDecomposition DecompositionFromEliminationOrder(
    const Graph& g, const std::vector<int>& order);

/// The width an elimination order achieves, without building the
/// decomposition (max back-degree in the fill graph).
int WidthOfEliminationOrder(const Graph& g, const std::vector<int>& order);

}  // namespace twchase

#endif  // TWCHASE_TW_TREE_DECOMPOSITION_H_
