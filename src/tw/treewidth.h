// Facade over the treewidth toolkit: combines heuristic upper bounds,
// structural lower bounds and the exact subset DP into a single entry point
// returning a certified interval (and the exact value when lb == ub).
#ifndef TWCHASE_TW_TREEWIDTH_H_
#define TWCHASE_TW_TREEWIDTH_H_

#include <optional>

#include "model/atom_set.h"
#include "tw/graph.h"
#include "tw/tree_decomposition.h"

namespace twchase {

struct TreewidthOptions {
  /// Run the exponential exact DP when the graph has at most this many
  /// vertices and the bounds have not met.
  int max_exact_vertices = 18;

  /// Additionally try grid containment up to this size as a lower bound
  /// (0 disables; grid search is itself exponential in the worst case but
  /// fast on the grid-like instances of the paper).
  int max_grid_lower_bound = 0;
};

struct TreewidthResult {
  int lower_bound = -1;
  int upper_bound = -1;

  /// Decomposition witnessing upper_bound.
  TreeDecomposition decomposition;

  bool exact() const { return lower_bound == upper_bound; }

  /// The exact treewidth when certified, nullopt otherwise.
  std::optional<int> value() const {
    if (exact()) return upper_bound;
    return std::nullopt;
  }
};

TreewidthResult ComputeTreewidth(const Graph& g,
                                 const TreewidthOptions& options = {});

/// Treewidth of an atomset = treewidth of its Gaifman graph (Definition 4:
/// bags of terms; equivalent because every atom's terms form a clique).
TreewidthResult ComputeTreewidth(const AtomSet& atoms,
                                 const TreewidthOptions& options = {});

/// Convenience: certified-exact treewidth or abort. For tests and benches on
/// instances known to be small.
int MustExactTreewidth(const AtomSet& atoms);

}  // namespace twchase

#endif  // TWCHASE_TW_TREEWIDTH_H_
