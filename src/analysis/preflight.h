// Termination-analysis preflight: classify a parsed program into the
// paper's termination/treewidth classes and drive automatic variant policy.
//
// The classifier is a lattice of evidence sources, cheapest first:
//   1. static (pure syntax, kb/analysis.h): datalog / weak acyclicity /
//      joint acyclicity ⇒ fes; (frontier-)guardedness / linearity ⇒ bts;
//   2. MSA-style critical-instance check (Marnette): chase the critical
//      instance (the all-star tuples over the program's constants plus a
//      fresh star constant) semi-obliviously under the ResourceGovernor —
//      termination there implies semi-oblivious (hence restricted, frugal
//      and core) chase termination on EVERY instance ⇒ fes;
//   3. dynamic probe on the actual instance: a budgeted core-chase run —
//      fixpoint certifies a finite universal model for THIS knowledge base
//      (Deutsch–Nash–Remmel) ⇒ fes; a non-terminating prefix whose
//      treewidth series stops growing is (budgeted, empirical) core-bts
//      evidence in the sense of Definition 17.
//
// Soundness contract: a kFes verdict always carries the evidence tier that
// produced it (FesEvidence), because the tiers guarantee termination for
// different variant sets — static weak acyclicity / datalog covers all five
// variants, joint acyclicity and the critical-instance check cover the
// skolem-and-up variants (semi-oblivious, restricted, frugal, core), and a
// core-run certificate covers the core chase only. The auto-variant policy
// only ever picks a variant the evidence covers. Budget exhaustion or an
// ambient governor interruption of the dynamic tiers degrades the verdict
// toward kUnknown — an interrupted check is never treated as evidence.
#ifndef TWCHASE_ANALYSIS_PREFLIGHT_H_
#define TWCHASE_ANALYSIS_PREFLIGHT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/chase.h"
#include "kb/analysis.h"
#include "kb/knowledge_base.h"
#include "util/status.h"

namespace twchase {

/// The classifier's verdict lattice (numeric values are stable: they are
/// folded into checkpoint fingerprints and surfaced on the wire).
enum class TerminationClass : uint32_t {
  kUnknown = 0,  // no evidence within budget (includes non-terminating)
  kFes = 1,      // finite expansion: some chase variant provably terminates
  kBts = 2,      // treewidth-bounded chase (termination NOT implied)
  kCoreBts = 3,  // recurringly tw-bounded core chase (empirical evidence)
};

const char* TerminationClassName(TerminationClass c);
bool ParseTerminationClass(const std::string& name, TerminationClass* out);

/// Which tier produced a kFes verdict; decides the variants the verdict is
/// allowed to recommend (see the soundness contract above).
enum class FesEvidence : uint32_t {
  kNone = 0,
  kStaticAllVariants = 1,  // datalog or weakly acyclic: all five variants
  kStaticSkolem = 2,       // jointly acyclic: semi-oblivious and up
  kCriticalInstance = 3,   // MSA critical-instance run: semi-oblivious and up
  kCoreRun = 4,            // core chase of this instance terminated: core only
};

const char* FesEvidenceName(FesEvidence e);

struct PreflightOptions {
  /// Run the MSA-style critical-instance check (tier 2). Skipped
  /// automatically when the critical instance would exceed
  /// critical_max_instance atoms (high-arity predicates with many
  /// constants).
  bool run_critical_instance = true;

  /// Also chase the critical instance obliviously, to upgrade
  /// critical-instance evidence to the all-variants tier when it holds.
  bool run_critical_oblivious = true;

  /// Run the budgeted core-chase probe on the actual instance (tier 3).
  bool run_dynamic_probe = true;

  /// Budgets for the critical-instance chase.
  size_t critical_max_steps = 400;
  size_t critical_max_instance = 4000;

  /// Budgets for the dynamic core-chase probe.
  size_t probe_max_steps = 160;
  size_t probe_max_instance = 4000;

  /// Wall-clock ceiling for each dynamic run (on top of any ambient
  /// governor). nullopt = no own deadline.
  std::optional<uint64_t> deadline_ms = 2000;

  /// Treewidth-series tail window for the core-bts probe (see
  /// SummarizeBoundedness).
  size_t tw_tail_window = 8;
};

struct PreflightReport {
  /// Tier 1: the static classifier bits (always computed; pure syntax).
  RulesetAnalysis rules;

  /// Tier 2: critical-instance check.
  bool critical_ran = false;
  bool critical_skipped_too_large = false;
  bool critical_terminated = false;  // semi-oblivious chase hit fixpoint
  bool critical_oblivious_terminated = false;
  bool critical_interrupted = false;  // deadline/cancel: inconclusive
  size_t critical_steps = 0;
  size_t critical_instance_atoms = 0;

  /// Tier 3: dynamic probe on the actual instance.
  bool probe_ran = false;
  bool probe_core_terminated = false;
  bool probe_interrupted = false;  // deadline/cancel/memory: inconclusive
  size_t probe_core_steps = 0;
  int probe_tw_uniform = -1;    // max treewidth over the core-chase prefix
  int probe_tw_recurring = -1;  // min over the tail window
  bool probe_tw_bounded = false;  // the series stopped growing on the tail

  TerminationClass verdict = TerminationClass::kUnknown;
  FesEvidence fes_evidence = FesEvidence::kNone;

  /// True when the verdict rests on budgeted runs (core-run fes or the
  /// core-bts probe) rather than a for-all-instances proof.
  bool empirical = false;

  /// The auto-variant policy's pick (always covered by the evidence).
  ChaseVariant recommended_variant = ChaseVariant::kCore;

  /// Suggested budgets for programs without termination evidence (0 /
  /// empty = no suggestion needed: the recommended variant provably
  /// terminates).
  size_t suggested_max_steps = 0;
  size_t suggested_memory_budget_bytes = 0;

  /// One line for the CLI / job payloads, e.g.
  /// "fes (weakly acyclic); variant=semi-oblivious".
  std::string Summary() const;
};

/// Runs the preflight lattice on kb. Never mutates kb (dynamic tiers run on
/// a printed-and-reparsed sandbox copy, so no nulls are minted in
/// kb.vocab). Honours an ambient ResourceGovernor: interrupted tiers are
/// recorded as inconclusive and the verdict degrades toward kUnknown.
PreflightReport RunPreflight(const KnowledgeBase& kb,
                             const PreflightOptions& options = {});

/// Resolves a --variant=auto request: requires options->preflight
/// .auto_variant, runs the preflight, stores the recommended variant and
/// the verdict into *options and marks the provenance resolved (so
/// Validate() accepts it and checkpoints pin the decision). Budgets are
/// only suggested in the returned report, never written into *options.
StatusOr<PreflightReport> ResolveAutoVariant(const KnowledgeBase& kb,
                                             const PreflightOptions& popts,
                                             ChaseOptions* options);

}  // namespace twchase

#endif  // TWCHASE_ANALYSIS_PREFLIGHT_H_
