#include "analysis/preflight.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "core/measures.h"
#include "parser/parser.h"
#include "parser/printer.h"
#include "util/logging.h"

namespace twchase {
namespace {

// A dynamic-tier run that stopped for one of these reasons was cut short by
// wall clock, memory pressure or cancellation (ambient or our own): the run
// is inconclusive, never negative evidence. Step and instance-size budgets
// are the *designed* divergence detectors and are not interruptions.
bool IsInterruption(StopReason reason) {
  return reason == StopReason::kDeadline ||
         reason == StopReason::kMemoryBudget ||
         reason == StopReason::kCancelled;
}

// The dynamic tiers chase a private copy of the program so no fresh nulls
// are ever minted in the caller's vocabulary. The copy goes through the
// public printer and parser (the round-trip the property tests pin); a
// program that does not survive the round trip skips the dynamic tiers and
// is classified on static evidence alone.
std::optional<KnowledgeBase> MakeSandbox(const KnowledgeBase& kb) {
  const std::string text = PrintProgram(kb, {});
  StatusOr<ParsedProgram> parsed = ParseProgram(text);
  if (!parsed.ok()) return std::nullopt;
  KnowledgeBase copy = std::move(parsed.value().kb);
  if (copy.rules.size() != kb.rules.size() ||
      copy.facts.size() != kb.facts.size()) {
    return std::nullopt;
  }
  return copy;
}

// Marnette's critical instance: every predicate filled with every tuple
// over the constants occurring in the rules plus one fresh "star"
// constant. Every instance maps homomorphically into it (constants of the
// program to themselves, everything else to star), so chase termination on
// the critical instance implies termination on every instance.
//
// Returns the number of atoms the instance would need; fills *facts only
// when that count is within `cap`.
size_t BuildCriticalInstance(const KnowledgeBase& kb, size_t cap,
                             AtomSet* facts) {
  std::set<Term> constants;
  constants.insert(kb.vocab->Constant("critical_star"));
  for (const Rule& rule : kb.rules) {
    rule.body_and_head().ForEach([&](const Atom& atom) {
      for (Term t : atom.args()) {
        if (t.is_constant()) constants.insert(t);
      }
    });
  }
  const std::vector<Term> pool(constants.begin(), constants.end());

  size_t total = 0;
  for (PredicateId p = 0; p < kb.vocab->num_predicates(); ++p) {
    const uint32_t arity = kb.vocab->predicate(p).arity;
    size_t tuples = 1;
    for (uint32_t i = 0; i < arity; ++i) {
      if (tuples > cap) break;
      tuples *= pool.size();
    }
    total += tuples;
    if (total > cap) return total;
  }

  for (PredicateId p = 0; p < kb.vocab->num_predicates(); ++p) {
    const uint32_t arity = kb.vocab->predicate(p).arity;
    std::vector<size_t> idx(arity, 0);
    while (true) {
      std::vector<Term> args(arity);
      for (uint32_t i = 0; i < arity; ++i) args[i] = pool[idx[i]];
      facts->Insert(Atom(p, std::move(args)));
      uint32_t pos = 0;
      for (; pos < arity; ++pos) {
        if (++idx[pos] < pool.size()) break;
        idx[pos] = 0;
      }
      if (pos == arity) break;
    }
  }
  return total;
}

struct DynamicRun {
  bool ok = false;
  bool terminated = false;
  bool interrupted = false;
  size_t steps = 0;
  ChaseResult result;
};

DynamicRun RunBudgeted(const KnowledgeBase& kb, ChaseVariant variant,
                       size_t max_steps, size_t max_instance,
                       std::optional<uint64_t> deadline_ms,
                       bool keep_snapshots) {
  ChaseOptions options;
  options.variant = variant;
  options.limits.max_steps = max_steps;
  options.limits.max_instance_size = max_instance;
  options.limits.deadline_ms = deadline_ms;
  options.keep_snapshots = keep_snapshots;
  DynamicRun run;
  StatusOr<ChaseResult> result = RunChase(kb, options);
  if (!result.ok()) return run;
  run.ok = true;
  run.result = std::move(result.value());
  run.terminated = run.result.terminated;
  run.interrupted = IsInterruption(run.result.stop_reason);
  run.steps = run.result.steps;
  return run;
}

// Did the treewidth series stop growing? Compares the max over the second
// half of the prefix against the max over the first: a series whose later
// half never exceeds its earlier half is (empirically) recurringly bounded
// — the staircase's constant-2 series qualifies, the elevator's growing
// cores do not. Too-short prefixes are inconclusive.
bool SeriesStoppedGrowing(const std::vector<int>& series, size_t tail_window) {
  if (series.size() < 2 * tail_window) return false;
  const size_t mid = series.size() / 2;
  const int first_max = *std::max_element(series.begin(), series.begin() + mid);
  const int second_max = *std::max_element(series.begin() + mid, series.end());
  return second_max <= first_max;
}

size_t SuggestedSteps(const KnowledgeBase& kb) {
  const size_t raw = 200 * (kb.rules.size() + 1) + 20 * kb.facts.size();
  return std::min<size_t>(100000, std::max<size_t>(1000, raw));
}

}  // namespace

const char* TerminationClassName(TerminationClass c) {
  switch (c) {
    case TerminationClass::kUnknown:
      return "unknown";
    case TerminationClass::kFes:
      return "fes";
    case TerminationClass::kBts:
      return "bts";
    case TerminationClass::kCoreBts:
      return "core-bts";
  }
  return "unknown";
}

bool ParseTerminationClass(const std::string& name, TerminationClass* out) {
  for (TerminationClass c :
       {TerminationClass::kUnknown, TerminationClass::kFes,
        TerminationClass::kBts, TerminationClass::kCoreBts}) {
    if (name == TerminationClassName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

const char* FesEvidenceName(FesEvidence e) {
  switch (e) {
    case FesEvidence::kNone:
      return "none";
    case FesEvidence::kStaticAllVariants:
      return "static";
    case FesEvidence::kStaticSkolem:
      return "jointly-acyclic";
    case FesEvidence::kCriticalInstance:
      return "critical-instance";
    case FesEvidence::kCoreRun:
      return "core-run";
  }
  return "none";
}

std::string PreflightReport::Summary() const {
  std::ostringstream out;
  out << TerminationClassName(verdict);
  switch (verdict) {
    case TerminationClass::kFes:
      if (rules.datalog) {
        out << " (datalog)";
      } else if (rules.weakly_acyclic) {
        out << " (weakly acyclic)";
      } else if (rules.jointly_acyclic) {
        out << " (jointly acyclic)";
      } else if (fes_evidence == FesEvidence::kCriticalInstance) {
        out << " (critical instance terminates)";
      } else if (fes_evidence == FesEvidence::kCoreRun) {
        out << " (core chase reached fixpoint on this instance)";
      }
      break;
    case TerminationClass::kBts:
      if (rules.guarded) {
        out << " (guarded)";
      } else if (rules.frontier_guarded) {
        out << " (frontier-guarded)";
      }
      break;
    case TerminationClass::kCoreBts:
      out << " (core-chase treewidth stopped growing at "
          << probe_tw_recurring << ", empirical)";
      break;
    case TerminationClass::kUnknown:
      if (critical_interrupted || probe_interrupted) {
        out << " (classification interrupted)";
      } else {
        out << " (no termination evidence within budget)";
      }
      break;
  }
  out << "; variant=" << ChaseVariantName(recommended_variant);
  if (suggested_max_steps != 0) {
    out << "; suggest --max-steps=" << suggested_max_steps
        << " --memory-budget-mb="
        << (suggested_memory_budget_bytes >> 20);
  }
  return out.str();
}

PreflightReport RunPreflight(const KnowledgeBase& kb,
                             const PreflightOptions& options) {
  PreflightReport report;
  report.rules = AnalyzeRuleset(kb.rules);

  // Tier 1: static evidence.
  if (report.rules.datalog || report.rules.weakly_acyclic) {
    report.fes_evidence = FesEvidence::kStaticAllVariants;
  } else if (report.rules.jointly_acyclic) {
    report.fes_evidence = FesEvidence::kStaticSkolem;
  }

  // Tier 2: the MSA-style critical-instance check, only when statics left
  // termination open.
  if (report.fes_evidence == FesEvidence::kNone &&
      options.run_critical_instance) {
    std::optional<KnowledgeBase> sandbox = MakeSandbox(kb);
    if (sandbox.has_value()) {
      AtomSet critical_facts;
      const size_t atoms = BuildCriticalInstance(
          *sandbox, options.critical_max_instance, &critical_facts);
      report.critical_instance_atoms = atoms;
      if (atoms > options.critical_max_instance) {
        report.critical_skipped_too_large = true;
      } else {
        KnowledgeBase crit{sandbox->vocab, std::move(critical_facts),
                           sandbox->rules};
        DynamicRun semi = RunBudgeted(
            crit, ChaseVariant::kSemiOblivious, options.critical_max_steps,
            options.critical_max_instance * 4, options.deadline_ms,
            /*keep_snapshots=*/false);
        report.critical_ran = semi.ok;
        report.critical_terminated = semi.terminated;
        report.critical_interrupted = semi.interrupted;
        report.critical_steps = semi.steps;
        if (semi.terminated) {
          report.fes_evidence = FesEvidence::kCriticalInstance;
          if (options.run_critical_oblivious) {
            std::optional<KnowledgeBase> sandbox2 = MakeSandbox(kb);
            if (sandbox2.has_value()) {
              AtomSet crit2_facts;
              BuildCriticalInstance(*sandbox2, options.critical_max_instance,
                                    &crit2_facts);
              KnowledgeBase crit2{sandbox2->vocab, std::move(crit2_facts),
                                  sandbox2->rules};
              DynamicRun obl = RunBudgeted(
                  crit2, ChaseVariant::kOblivious, options.critical_max_steps,
                  options.critical_max_instance * 4, options.deadline_ms,
                  /*keep_snapshots=*/false);
              report.critical_oblivious_terminated = obl.terminated;
            }
          }
        }
      }
    }
  }

  // Tier 3: budgeted core-chase probe on the actual instance — fixpoint
  // certifies fes for this knowledge base; a non-terminating prefix feeds
  // the core-bts treewidth test.
  if (report.fes_evidence == FesEvidence::kNone && options.run_dynamic_probe) {
    std::optional<KnowledgeBase> sandbox = MakeSandbox(kb);
    if (sandbox.has_value()) {
      DynamicRun probe = RunBudgeted(
          *sandbox, ChaseVariant::kCore, options.probe_max_steps,
          options.probe_max_instance, options.deadline_ms,
          /*keep_snapshots=*/true);
      report.probe_ran = probe.ok;
      report.probe_core_terminated = probe.terminated;
      report.probe_interrupted = probe.interrupted;
      report.probe_core_steps = probe.steps;
      if (probe.terminated) {
        report.fes_evidence = FesEvidence::kCoreRun;
        report.empirical = true;
      } else if (probe.ok && !probe.interrupted) {
        const std::vector<int> series =
            MeasureSeries(probe.result.derivation, Measure::kTreewidthUpper);
        const BoundednessSummary tw =
            SummarizeBoundedness(series, options.tw_tail_window);
        report.probe_tw_uniform = tw.uniform_bound;
        report.probe_tw_recurring = tw.recurring_estimate;
        report.probe_tw_bounded =
            SeriesStoppedGrowing(series, options.tw_tail_window);
      }
    }
  }

  // Assemble the verdict, best class first.
  if (report.fes_evidence != FesEvidence::kNone) {
    report.verdict = TerminationClass::kFes;
  } else if (report.rules.ImpliesTreewidthBounded()) {
    report.verdict = TerminationClass::kBts;
  } else if (report.probe_tw_bounded) {
    report.verdict = TerminationClass::kCoreBts;
    report.empirical = true;
  } else {
    report.verdict = TerminationClass::kUnknown;
  }

  // The auto-variant policy: the cheapest variant the evidence covers.
  switch (report.verdict) {
    case TerminationClass::kFes:
      if (report.fes_evidence == FesEvidence::kCoreRun) {
        // Only the core chase is certified to terminate here.
        report.recommended_variant = ChaseVariant::kCore;
      } else if (report.rules.datalog) {
        report.recommended_variant = ChaseVariant::kRestricted;
      } else {
        // Weak/joint acyclicity and the critical-instance check certify
        // the skolem chase: apply-once-per-frontier without satisfaction
        // checks is the cheapest covered variant.
        report.recommended_variant = ChaseVariant::kSemiOblivious;
      }
      break;
    case TerminationClass::kBts:
      // Treewidth-bounded but possibly non-terminating: the restricted
      // chase keeps elements small and needs budgets.
      report.recommended_variant = ChaseVariant::kRestricted;
      break;
    case TerminationClass::kCoreBts:
    case TerminationClass::kUnknown:
      // The core chase terminates whenever any finite universal model
      // exists (Deutsch–Nash–Remmel): the best shot at termination, under
      // suggested budgets.
      report.recommended_variant = ChaseVariant::kCore;
      break;
  }
  if (report.verdict != TerminationClass::kFes) {
    report.suggested_max_steps = SuggestedSteps(kb);
    report.suggested_memory_budget_bytes = 256ull << 20;
  }
  return report;
}

StatusOr<PreflightReport> ResolveAutoVariant(const KnowledgeBase& kb,
                                             const PreflightOptions& popts,
                                             ChaseOptions* options) {
  if (!options->preflight.auto_variant) {
    return Status::InvalidArgument(
        "ResolveAutoVariant: options do not request --variant=auto");
  }
  PreflightReport report = RunPreflight(kb, popts);
  options->variant = report.recommended_variant;
  options->preflight.verdict = static_cast<uint32_t>(report.verdict);
  options->preflight.resolved = true;
  return report;
}

}  // namespace twchase
