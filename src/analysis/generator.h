// Seeded randomized rule-set generator with known termination-class labels.
//
// Programs are built *by construction* inside their class, so the label is
// correct without running anything:
//   * kFes — level-stratified existential rules: every head predicate sits
//     strictly above every body predicate in a fixed stratification, so the
//     position dependency graph is acyclic (weak acyclicity is asserted),
//     and every chase variant terminates on every instance;
//   * kBts — guarded by construction: each body is a guard atom containing
//     all body variables plus side atoms over subsets of them (guardedness
//     is asserted); termination is NOT implied, treewidth-boundedness is;
//   * kCoreBts — the paper's steepening staircase kernel under reserved
//     predicate names (core chase non-terminating, treewidth ≤ 2) in
//     disjoint union with a random fes part: the union is core-bts and not
//     fes;
//   * kNonTerminating — a rigid existential chain kernel
//     (nt_q(X) → ∃Z nt_s(X,Z) ∧ nt_q(Z), seeded from a constant: the
//     growing path is its own core, so NO chase variant terminates) in
//     disjoint union with a random fes part.
//
// Emission goes through the public printer (parser/printer.h), so every
// generated program is valid .twc and the parse/print round-trip property
// tests gate the corpus.
#ifndef TWCHASE_ANALYSIS_GENERATOR_H_
#define TWCHASE_ANALYSIS_GENERATOR_H_

#include <cstdint>
#include <string>

#include "kb/knowledge_base.h"
#include "parser/parser.h"

namespace twchase {

enum class GeneratedClass : uint32_t {
  kFes = 0,
  kBts = 1,
  kCoreBts = 2,
  kNonTerminating = 3,
};

inline constexpr size_t kNumGeneratedClasses = 4;

const char* GeneratedClassName(GeneratedClass c);
bool ParseGeneratedClass(const std::string& name, GeneratedClass* out);

struct GeneratorOptions {
  GeneratedClass label = GeneratedClass::kFes;
  uint64_t seed = 1;

  /// Size of the random (stratified / guarded) part.
  size_t predicates = 5;
  size_t rules = 5;
  size_t facts = 4;
  uint32_t max_arity = 3;

  /// Also emit a query statement over the generated schema.
  bool with_query = true;
};

struct GeneratedProgram {
  GeneratedClass label = GeneratedClass::kFes;
  uint64_t seed = 0;

  /// Valid .twc text (leading "% twgen ..." header comment).
  std::string text;
};

/// Deterministic in (label, seed, sizes). The construction invariant of the
/// label's class is asserted (weak acyclicity / guardedness), and the text
/// is verified to re-parse before returning.
GeneratedProgram GenerateProgram(const GeneratorOptions& options);

}  // namespace twchase

#endif  // TWCHASE_ANALYSIS_GENERATOR_H_
