// Differential sweep harness: run a program across every chase variant ×
// both match backends × thread counts × plan on/off and cross-check
// bit-identity where the engine guarantees it (for a fixed variant, every
// backend/thread/plan configuration must produce the same final instance,
// derivation journal and observer event stream). Any divergence is
// delta-minimized (greedy rule, then fact removal) into the smallest
// program that still diverges, ready to pin as a regression test.
//
// This is the semantic fuzzer behind `twgen --sweep` and the check.sh
// smoke gate; the generator (analysis/generator.h) supplies labeled
// programs, the sweep supplies the oracle.
#ifndef TWCHASE_ANALYSIS_SWEEP_H_
#define TWCHASE_ANALYSIS_SWEEP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/chase.h"

namespace twchase {

struct SweepOptions {
  /// Step budget per run — small on purpose: divergence shows up early and
  /// non-terminating programs must not stall the sweep.
  size_t max_steps = 40;

  /// The alternate thread count checked against the sequential reference.
  size_t alt_threads = 4;

  /// Also sweep the legacy per-atom match backend (the columnar backend is
  /// always swept).
  bool include_legacy_backend = true;

  /// Delta-minimize divergent programs before reporting.
  bool minimize = true;

  /// Variants to sweep; empty = all five.
  std::vector<ChaseVariant> variants;
};

struct SweepDivergence {
  /// Program as given to the sweep.
  std::string program;

  /// Greedy-minimized reproducer (equals `program` when minimize is off).
  std::string minimized;

  ChaseVariant variant = ChaseVariant::kRestricted;

  /// The diverging configuration, e.g. "backend=legacy threads=4 plan=on".
  std::string config;

  /// First differing field, e.g. "instance hash", "journal step 12".
  std::string detail;
};

struct SweepReport {
  size_t programs = 0;
  size_t runs = 0;
  std::vector<SweepDivergence> divergences;

  bool clean() const { return divergences.empty(); }
};

/// Sweeps each program text (parsed freshly per run). The process-global
/// match backend is saved and restored around the sweep.
SweepReport RunDifferentialSweep(const std::vector<std::string>& programs,
                                 const SweepOptions& options = {});

}  // namespace twchase

#endif  // TWCHASE_ANALYSIS_SWEEP_H_
