#include "analysis/generator.h"

#include <sstream>
#include <vector>

#include "kb/analysis.h"
#include "parser/printer.h"
#include "util/logging.h"
#include "util/random.h"

namespace twchase {
namespace {

constexpr const char* kConstants[] = {"c1", "c2", "c3", "c4"};

size_t PickIndex(Rng* rng, size_t bound) {
  TWCHASE_CHECK(bound > 0);
  return static_cast<size_t>(rng->Uniform(0, static_cast<int64_t>(bound) - 1));
}

struct StratifiedPred {
  std::string name;
  uint32_t arity;
};

// The random fes part: predicates p0..p{n-1} with level = index; every rule
// maps body predicates of level ≤ L to head predicates of level > L, so all
// position-graph edges strictly increase the level and the part is weakly
// acyclic whatever the argument wiring.
void AddStratifiedPart(KbBuilder* b, Rng* rng, const GeneratorOptions& o) {
  const size_t n = std::max<size_t>(3, o.predicates);
  std::vector<StratifiedPred> preds;
  preds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    preds.push_back({"p" + std::to_string(i),
                     1 + static_cast<uint32_t>(PickIndex(
                             rng, std::max<uint32_t>(1, o.max_arity)))});
  }

  const auto constant = [&](Rng* r) {
    return b->C(kConstants[PickIndex(r, 4)]);
  };

  // Seed facts over the lower half of the stratification.
  for (size_t f = 0; f < o.facts; ++f) {
    const StratifiedPred& p = preds[PickIndex(rng, std::max<size_t>(1, n / 2))];
    std::vector<Term> args;
    for (uint32_t i = 0; i < p.arity; ++i) args.push_back(constant(rng));
    b->Fact(p.name, std::move(args));
  }

  for (size_t r = 0; r < o.rules; ++r) {
    const size_t level = PickIndex(rng, n - 1);  // body max level, < n - 1
    std::vector<Term> var_pool = {b->V("X1"), b->V("X2"), b->V("X3")};

    std::vector<Atom> body;
    std::vector<Term> body_vars;
    const size_t body_atoms = 1 + (rng->Bernoulli(0.5) ? 1 : 0);
    for (size_t a = 0; a < body_atoms; ++a) {
      const StratifiedPred& p = preds[PickIndex(rng, level + 1)];
      std::vector<Term> args;
      for (uint32_t i = 0; i < p.arity; ++i) {
        if (a == 0 && i == 0) {
          args.push_back(var_pool[0]);  // at least one body variable
        } else if (rng->Bernoulli(0.8)) {
          args.push_back(var_pool[PickIndex(rng, var_pool.size())]);
        } else {
          args.push_back(constant(rng));
        }
      }
      for (Term t : args) {
        if (t.is_variable()) body_vars.push_back(t);
      }
      body.push_back(b->A(p.name, std::move(args)));
    }

    std::vector<Term> existentials = {b->V("Z1"), b->V("Z2")};
    std::vector<Atom> head;
    const size_t head_atoms = 1 + (rng->Bernoulli(0.35) ? 1 : 0);
    for (size_t a = 0; a < head_atoms; ++a) {
      const StratifiedPred& p =
          preds[level + 1 + PickIndex(rng, n - level - 1)];
      std::vector<Term> args;
      for (uint32_t i = 0; i < p.arity; ++i) {
        const double roll = rng->UniformReal();
        if (roll < 0.60) {
          args.push_back(body_vars[PickIndex(rng, body_vars.size())]);
        } else if (roll < 0.85) {
          args.push_back(existentials[PickIndex(rng, existentials.size())]);
        } else {
          args.push_back(constant(rng));
        }
      }
      head.push_back(b->A(p.name, std::move(args)));
    }
    b->AddRule("fes_r" + std::to_string(r), std::move(body), std::move(head));
  }
}

// The random bts part: every body is one guard atom with pairwise-distinct
// variables plus side atoms over subsets of them, so guardedness holds by
// construction. Heads may wire cycles freely — termination is not part of
// the label.
void AddGuardedPart(KbBuilder* b, Rng* rng, const GeneratorOptions& o) {
  const uint32_t guard_arity_cap = std::max<uint32_t>(2, o.max_arity);
  const size_t m = std::max<size_t>(2, o.predicates / 2);
  std::vector<StratifiedPred> guards;
  std::vector<StratifiedPred> sides;
  for (size_t i = 0; i < m; ++i) {
    guards.push_back(
        {"g" + std::to_string(i),
         2 + static_cast<uint32_t>(PickIndex(rng, guard_arity_cap - 1))});
    sides.push_back({"s" + std::to_string(i),
                     1 + static_cast<uint32_t>(PickIndex(rng, 2))});
  }

  const auto constant = [&](Rng* r) {
    return b->C(kConstants[PickIndex(r, 4)]);
  };

  for (const StratifiedPred& g : guards) {
    std::vector<Term> args;
    for (uint32_t i = 0; i < g.arity; ++i) args.push_back(constant(rng));
    b->Fact(g.name, std::move(args));
  }
  for (size_t f = 0; f < o.facts; ++f) {
    const StratifiedPred& s = sides[PickIndex(rng, sides.size())];
    std::vector<Term> args;
    for (uint32_t i = 0; i < s.arity; ++i) args.push_back(constant(rng));
    b->Fact(s.name, std::move(args));
  }

  for (size_t r = 0; r < o.rules; ++r) {
    const StratifiedPred& g = guards[PickIndex(rng, guards.size())];
    std::vector<Term> guard_vars;
    for (uint32_t i = 0; i < g.arity; ++i) {
      guard_vars.push_back(b->V("X" + std::to_string(i + 1)));
    }
    std::vector<Atom> body;
    body.push_back(b->A(g.name, guard_vars));
    const size_t side_atoms = PickIndex(rng, 3);  // 0..2
    for (size_t a = 0; a < side_atoms; ++a) {
      const StratifiedPred& s = sides[PickIndex(rng, sides.size())];
      if (s.arity > guard_vars.size()) continue;
      std::vector<Term> args;
      for (uint32_t i = 0; i < s.arity; ++i) {
        args.push_back(guard_vars[PickIndex(rng, guard_vars.size())]);
      }
      body.push_back(b->A(s.name, std::move(args)));
    }

    std::vector<Term> existentials = {b->V("Z1"), b->V("Z2")};
    std::vector<Atom> head;
    const size_t head_atoms = 1 + (rng->Bernoulli(0.4) ? 1 : 0);
    for (size_t a = 0; a < head_atoms; ++a) {
      const bool pick_guard = rng->Bernoulli(0.6);
      const StratifiedPred& p = pick_guard
                                    ? guards[PickIndex(rng, guards.size())]
                                    : sides[PickIndex(rng, sides.size())];
      std::vector<Term> args;
      for (uint32_t i = 0; i < p.arity; ++i) {
        const double roll = rng->UniformReal();
        if (roll < 0.55) {
          args.push_back(guard_vars[PickIndex(rng, guard_vars.size())]);
        } else if (roll < 0.85) {
          args.push_back(existentials[PickIndex(rng, existentials.size())]);
        } else {
          args.push_back(constant(rng));
        }
      }
      head.push_back(b->A(p.name, std::move(args)));
    }
    b->AddRule("bts_r" + std::to_string(r), std::move(body), std::move(head));
  }
}

// The steepening staircase kernel (Definition 7) under reserved sc_*
// predicate names: its core chase never terminates but every element has
// treewidth ≤ 2 — core-bts and not fes, and disjoint union with a fes part
// preserves both.
void AddStaircaseKernel(KbBuilder* b) {
  const Term w0 = b->V("W0");  // initial null, as in data/staircase.twc
  b->Fact("sc_f", {w0});
  b->Fact("sc_h", {w0, w0});
  const Term x = b->V("X"), y = b->V("Y"), xp = b->V("Xp"), yp = b->V("Yp");
  b->AddRule("sc_Rh1", {b->A("sc_h", {x, x})},
             {b->A("sc_h", {x, y}), b->A("sc_v", {x, xp}),
              b->A("sc_h", {xp, yp}), b->A("sc_v", {y, yp}),
              b->A("sc_c", {yp})});
  b->AddRule("sc_Rh2",
             {b->A("sc_h", {x, x}), b->A("sc_v", {x, xp}),
              b->A("sc_h", {xp, xp}), b->A("sc_h", {xp, yp})},
             {b->A("sc_c", {yp}), b->A("sc_h", {x, y}),
              b->A("sc_v", {y, yp})});
  b->AddRule("sc_Rh3",
             {b->A("sc_f", {x}), b->A("sc_h", {x, x}), b->A("sc_h", {x, y})},
             {b->A("sc_f", {y}), b->A("sc_h", {y, y})});
  b->AddRule("sc_Rh4",
             {b->A("sc_h", {x, x}), b->A("sc_v", {x, xp}),
              b->A("sc_c", {xp})},
             {b->A("sc_h", {xp, xp})});
}

// Rigid existential chain under reserved nt_* names: the chase grows a
// directed path from a constant, which is its own core (no null can fold
// onto an earlier one without an s-predecessor), so no variant terminates.
void AddNonTerminatingKernel(KbBuilder* b) {
  b->Fact("nt_q", {b->C("a0")});
  const Term x = b->V("X"), z = b->V("Znt");
  b->AddRule("nt_chain", {b->A("nt_q", {x})},
             {b->A("nt_s", {x, z}), b->A("nt_q", {z})});
}

}  // namespace

const char* GeneratedClassName(GeneratedClass c) {
  switch (c) {
    case GeneratedClass::kFes:
      return "fes";
    case GeneratedClass::kBts:
      return "bts";
    case GeneratedClass::kCoreBts:
      return "core-bts";
    case GeneratedClass::kNonTerminating:
      return "non-terminating";
  }
  return "fes";
}

bool ParseGeneratedClass(const std::string& name, GeneratedClass* out) {
  for (GeneratedClass c :
       {GeneratedClass::kFes, GeneratedClass::kBts, GeneratedClass::kCoreBts,
        GeneratedClass::kNonTerminating}) {
    if (name == GeneratedClassName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

GeneratedProgram GenerateProgram(const GeneratorOptions& options) {
  Rng rng(options.seed * 0x9E3779B97F4A7C15ull +
          static_cast<uint64_t>(options.label) + 1);
  KbBuilder b;

  switch (options.label) {
    case GeneratedClass::kFes:
      AddStratifiedPart(&b, &rng, options);
      break;
    case GeneratedClass::kBts:
      AddGuardedPart(&b, &rng, options);
      break;
    case GeneratedClass::kCoreBts: {
      AddStaircaseKernel(&b);
      GeneratorOptions padding = options;
      padding.rules = std::max<size_t>(1, options.rules / 2);
      AddStratifiedPart(&b, &rng, padding);
      break;
    }
    case GeneratedClass::kNonTerminating: {
      AddNonTerminatingKernel(&b);
      GeneratorOptions padding = options;
      padding.rules = std::max<size_t>(1, options.rules / 2);
      AddStratifiedPart(&b, &rng, padding);
      break;
    }
  }

  std::vector<ParsedQuery> queries;
  KnowledgeBase kb = b.Build();

  // The construction invariants that make the label correct.
  switch (options.label) {
    case GeneratedClass::kFes:
      TWCHASE_CHECK_MSG(IsWeaklyAcyclic(kb.rules),
                        "generator: fes part must be weakly acyclic");
      break;
    case GeneratedClass::kBts:
      TWCHASE_CHECK_MSG(IsGuarded(kb.rules),
                        "generator: bts part must be guarded");
      break;
    case GeneratedClass::kCoreBts:
    case GeneratedClass::kNonTerminating:
      break;  // kernel properties are structural, pinned by tests
  }

  if (options.with_query && !kb.rules.empty()) {
    // One query over the first rule's head predicate, all-variable args.
    const Atom sample = kb.rules.front().head().Atoms().front();
    ParsedQuery q;
    std::vector<Term> args;
    for (size_t i = 0; i < sample.args().size(); ++i) {
      args.push_back(kb.vocab->NamedVariable("Q" + std::to_string(i + 1)));
    }
    if (!args.empty()) q.answer_vars.push_back(args[0]);
    q.atoms.Insert(Atom(sample.predicate(), std::move(args)));
    queries.push_back(std::move(q));
  }

  GeneratedProgram out;
  out.label = options.label;
  out.seed = options.seed;
  std::ostringstream text;
  text << "% twgen class=" << GeneratedClassName(options.label)
       << " seed=" << options.seed << "\n"
       << PrintProgram(kb, queries);
  out.text = text.str();

  StatusOr<ParsedProgram> reparsed = ParseProgram(out.text);
  TWCHASE_CHECK_MSG(reparsed.ok(),
                    "generator: emitted program must re-parse");
  TWCHASE_CHECK_MSG(reparsed.value().kb.rules.size() == kb.rules.size(),
                    "generator: re-parse must preserve the rule count");
  return out;
}

}  // namespace twchase
