#include "analysis/sweep.h"

#include <optional>
#include <sstream>

#include "hom/matcher.h"
#include "obs/stock_observers.h"
#include "parser/parser.h"
#include "parser/printer.h"

namespace twchase {
namespace {

const ChaseVariant kAllVariants[] = {
    ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
    ChaseVariant::kRestricted, ChaseVariant::kFrugal, ChaseVariant::kCore};

struct Config {
  MatchBackend backend = MatchBackend::kColumnar;
  size_t threads = 1;
  bool plan = true;

  std::string Name() const {
    std::ostringstream out;
    out << "backend="
        << (backend == MatchBackend::kColumnar ? "columnar" : "legacy")
        << " threads=" << threads << " plan=" << (plan ? "on" : "off");
    return out.str();
  }
};

// The sweep flips the process-global backend per run; restore the caller's
// choice whatever happens.
class BackendRestorer {
 public:
  BackendRestorer() : saved_(CurrentMatchBackend()) {}
  ~BackendRestorer() { SetMatchBackend(saved_); }

 private:
  MatchBackend saved_;
};

struct RunOutput {
  bool ok = false;
  std::string error;
  ChaseResult result;
  std::string events;
};

RunOutput RunConfig(const std::string& text, ChaseVariant variant,
                    const Config& config, size_t max_steps) {
  RunOutput out;
  StatusOr<ParsedProgram> parsed = ParseProgram(text);
  if (!parsed.ok()) {
    out.error = "parse: " + parsed.status().ToString();
    return out;
  }
  SetMatchBackend(config.backend);
  std::ostringstream events;
  EventLogObserver log(&events);
  ChaseOptions options;
  options.variant = variant;
  options.limits.max_steps = max_steps;
  options.plan.enabled = config.plan;
  options.parallel.threads = config.threads;
  options.observer = &log;
  StatusOr<ChaseResult> run = RunChase(parsed.value().kb, options);
  if (!run.ok()) {
    out.error = "chase: " + run.status().ToString();
    return out;
  }
  out.ok = true;
  out.result = std::move(run).value();
  out.events = events.str();
  return out;
}

// First differing field between two runs of the same (program, variant), or
// nullopt when bit-identical.
std::optional<std::string> FirstDifference(const RunOutput& ref,
                                           const RunOutput& alt) {
  if (!ref.ok || !alt.ok) {
    return "run error: ref=" + (ref.ok ? "ok" : ref.error) +
           " alt=" + (alt.ok ? "ok" : alt.error);
  }
  if (ref.result.stop_reason != alt.result.stop_reason) {
    return std::string("stop reason: ") +
           StopReasonName(ref.result.stop_reason) + " vs " +
           StopReasonName(alt.result.stop_reason);
  }
  if (ref.result.steps != alt.result.steps) return "step count";
  if (ref.result.rounds != alt.result.rounds) return "round count";
  const Derivation& rd = ref.result.derivation;
  const Derivation& ad = alt.result.derivation;
  if (rd.Last().ContentHash() != ad.Last().ContentHash()) {
    return "final instance hash";
  }
  if (rd.size() != ad.size()) return "journal length";
  for (size_t i = 0; i < rd.size(); ++i) {
    const DerivationStep& r = rd.step(i);
    const DerivationStep& a = ad.step(i);
    if (r.rule_index != a.rule_index || r.rule_label != a.rule_label ||
        r.match != a.match || r.simplification != a.simplification ||
        r.added_atoms != a.added_atoms || r.instance_size != a.instance_size ||
        r.instance.ContentHash() != a.instance.ContentHash()) {
      return "journal step " + std::to_string(i);
    }
  }
  if (ref.events != alt.events) return "event stream";
  return std::nullopt;
}

std::vector<Config> MakeConfigs(const SweepOptions& options) {
  std::vector<Config> configs;
  std::vector<MatchBackend> backends = {MatchBackend::kColumnar};
  if (options.include_legacy_backend) {
    backends.push_back(MatchBackend::kLegacy);
  }
  for (MatchBackend backend : backends) {
    for (size_t threads : {size_t{1}, options.alt_threads}) {
      for (bool plan : {true, false}) {
        configs.push_back({backend, threads, plan});
      }
    }
  }
  return configs;
}

// Does `config` still diverge from the reference on this program text?
std::optional<std::string> Diverges(const std::string& text,
                                    ChaseVariant variant, const Config& config,
                                    size_t max_steps) {
  RunOutput ref = RunConfig(text, variant, Config{}, max_steps);
  RunOutput alt = RunConfig(text, variant, config, max_steps);
  return FirstDifference(ref, alt);
}

// Greedy delta-minimization: drop rules, then facts, one at a time, keeping
// each removal that preserves the divergence. Bounded by `budget` trial
// pairs of runs.
std::string Minimize(const std::string& text, ChaseVariant variant,
                     const Config& config, size_t max_steps) {
  StatusOr<ParsedProgram> parsed = ParseProgram(text);
  if (!parsed.ok()) return text;
  KnowledgeBase kb = std::move(parsed.value().kb);
  size_t budget = 200;

  const auto print = [](const KnowledgeBase& k) { return PrintProgram(k, {}); };

  bool changed = true;
  while (changed && budget > 0) {
    changed = false;
    for (size_t i = 0; i < kb.rules.size() && budget > 0; ++i) {
      KnowledgeBase trial{kb.vocab, kb.facts, {}};
      for (size_t j = 0; j < kb.rules.size(); ++j) {
        if (j != i) trial.rules.push_back(kb.rules[j]);
      }
      --budget;
      if (Diverges(print(trial), variant, config, max_steps).has_value()) {
        kb.rules = std::move(trial.rules);
        changed = true;
        break;
      }
    }
  }
  std::vector<Atom> facts = kb.facts.Atoms();
  changed = true;
  while (changed && budget > 0) {
    changed = false;
    for (size_t i = 0; i < facts.size() && budget > 0; ++i) {
      KnowledgeBase trial{kb.vocab, {}, kb.rules};
      for (size_t j = 0; j < facts.size(); ++j) {
        if (j != i) trial.facts.Insert(facts[j]);
      }
      --budget;
      if (Diverges(print(trial), variant, config, max_steps).has_value()) {
        facts.erase(facts.begin() + static_cast<ptrdiff_t>(i));
        changed = true;
        break;
      }
    }
  }
  KnowledgeBase final_kb{kb.vocab, {}, kb.rules};
  for (const Atom& a : facts) final_kb.facts.Insert(a);
  return print(final_kb);
}

}  // namespace

SweepReport RunDifferentialSweep(const std::vector<std::string>& programs,
                                 const SweepOptions& options) {
  BackendRestorer restore_backend;
  SweepReport report;
  std::vector<ChaseVariant> variants = options.variants;
  if (variants.empty()) {
    variants.assign(std::begin(kAllVariants), std::end(kAllVariants));
  }
  const std::vector<Config> configs = MakeConfigs(options);

  for (const std::string& text : programs) {
    ++report.programs;
    for (ChaseVariant variant : variants) {
      RunOutput ref = RunConfig(text, variant, Config{}, options.max_steps);
      ++report.runs;
      for (const Config& config : configs) {
        if (config.backend == MatchBackend::kColumnar &&
            config.threads == 1 && config.plan) {
          continue;  // that is the reference itself
        }
        RunOutput alt = RunConfig(text, variant, config, options.max_steps);
        ++report.runs;
        std::optional<std::string> diff = FirstDifference(ref, alt);
        if (!diff.has_value()) continue;
        SweepDivergence divergence;
        divergence.program = text;
        divergence.variant = variant;
        divergence.config = config.Name();
        divergence.detail = *diff;
        divergence.minimized =
            options.minimize
                ? Minimize(text, variant, config, options.max_steps)
                : text;
        report.divergences.push_back(std::move(divergence));
      }
    }
  }
  return report;
}

}  // namespace twchase
