// Stratified execution plan over the positive-reliance graph. The SCC
// condensation of the reliance graph is a DAG; its topological order gives
// strata of mutually-recursive rule groups. The plan also classifies rules as
// dormant: a rule is dormant when some body predicate is not producible —
// derivable neither from the initial facts nor from any rule head reachable
// through the producibility fixpoint — so the rule can never acquire a match
// in any chase of the KB (every instance atom is an initial fact or a rule
// head image). Dormant rules are skipped wholesale by the scheduler: their
// full enumerations are never run and their delta probes are known-empty.
//
// The plan is a pure function of (rules, facts' predicates). It never looks
// at the evolving instance, so a plan computed once at run begin stays valid
// for the whole chase — including across core retractions, which only remove
// atoms and cannot make a non-producible predicate producible.
#ifndef TWCHASE_PLAN_EXECUTION_PLAN_H_
#define TWCHASE_PLAN_EXECUTION_PLAN_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "kb/knowledge_base.h"
#include "plan/reliance.h"

namespace twchase {

struct ExecutionPlan {
  RelianceGraph graph;

  /// component_of[r] = SCC index of rule r (dense, deterministic).
  std::vector<int> component_of;

  /// Strata in topological order of the condensation; each stratum lists its
  /// rule indices ascending. A rule in a later stratum can only be fed by
  /// earlier or same-stratum rules.
  std::vector<std::vector<int>> strata;

  /// dormant[r] — rule r can never have a match (see file comment).
  std::vector<bool> dormant;
  size_t dormant_count = 0;
};

/// Builds the plan: reliance graph, SCC condensation (deterministic across
/// runs and platforms — Tarjan with roots visited in rule-index order),
/// producibility fixpoint from the predicates of `facts`.
ExecutionPlan BuildExecutionPlan(const std::vector<Rule>& rules,
                                 const AtomSet& facts);

/// Number of strata containing at least one rule whose body mentions a
/// predicate in `inserted` — the strata the next round actually has to look
/// at. Purely informational (feeds chase.plan.* metrics).
size_t CountActiveStrata(
    const ExecutionPlan& plan,
    const std::vector<std::unordered_set<PredicateId>>& body_predicates,
    const std::unordered_set<PredicateId>& inserted);

}  // namespace twchase

#endif  // TWCHASE_PLAN_EXECUTION_PLAN_H_
