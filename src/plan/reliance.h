// Positive reliances between rules (after the reliance analysis of
// "Restricted Chase Termination: You Want More than Fairness"). Rule r1
// positively relies on feeding r2 — written r1 → r2 — when some head atom of
// r1 unifies with some body atom of r2 under standardised-apart variable
// namespaces. The relation over-approximates "an application of r1 can create
// a new match of r2": if no head atom of r1 unifies with any body atom of r2,
// then no atom r1 ever produces can participate in a body image of r2, so the
// absence of an edge is a sound licence to skip r2 after a round in which
// only r1 fired. Constants are compared exactly; variables unify freely, so
// the test never misses a producible match (soundness of skipping) while
// remaining a purely syntactic, chase-independent computation done once per
// program.
#ifndef TWCHASE_PLAN_RELIANCE_H_
#define TWCHASE_PLAN_RELIANCE_H_

#include <cstddef>
#include <vector>

#include "kb/rule.h"

namespace twchase {

struct RelianceGraph {
  size_t rule_count = 0;

  /// successors[r] = rule indices r2 with an edge r → r2, ascending, unique.
  std::vector<std::vector<int>> successors;

  size_t edge_count = 0;
};

/// The positive-reliance graph of `rules`. O(|rules|² · head·body atom
/// pairs); every comparison is a constant-time-ish positional unification, so
/// the analysis is negligible next to a single chase round.
RelianceGraph ComputePositiveReliances(const std::vector<Rule>& rules);

}  // namespace twchase

#endif  // TWCHASE_PLAN_RELIANCE_H_
