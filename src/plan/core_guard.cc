#include "plan/core_guard.h"

#include <unordered_set>

#include "core/trigger.h"
#include "hom/endomorphism.h"
#include "hom/matcher.h"

namespace twchase {

CoreGuardOutcome ProveStillCore(const AtomSet& instance,
                                const std::vector<Atom>& added,
                                uint32_t base_variable_mark) {
  CoreGuardOutcome outcome;

  // Case (ii): a retraction moving only fresh variables exists iff some
  // fresh variable admits a folding endomorphism. A hit here is a definitive
  // "not a core"; either way the caller's fallback is the same ComputeCore.
  std::unordered_set<Term, TermHash> fresh_seen;
  for (const Atom& d : added) {
    for (Term t : d.args()) {
      if (!t.is_variable() || t.index() < base_variable_mark) continue;
      if (!fresh_seen.insert(t).second) continue;
      ++outcome.fresh_null_checks;
      if (FindFoldingEndomorphism(instance, t).has_value()) return outcome;
    }
  }

  // Case (i): some retraction maps an atom a onto d ∈ added with a ≠ d. Its
  // restriction to vars(a) is forced positionally, so seed an endomorphism
  // search with it; any extension (even an automorphism — indistinguishable
  // cheaply) withholds the certificate.
  for (const Atom& d : added) {
    for (const Atom* a : instance.ByPredicate(d.predicate())) {
      if (*a == d) continue;
      std::optional<Substitution> seed = UnifyBodyAtomWithFact(*a, d);
      if (!seed.has_value()) continue;
      ++outcome.onto_checks;
      HomOptions options;
      options.seed = std::move(*seed);
      options.limit = 1;
      if (FindHomomorphism(instance, instance, options).has_value()) {
        return outcome;
      }
    }
  }

  outcome.certified = true;
  return outcome;
}

}  // namespace twchase
