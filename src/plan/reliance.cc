#include "plan/reliance.h"

#include "core/trigger.h"

namespace twchase {

namespace {

bool HeadFeedsBody(const Rule& producer, const Rule& consumer) {
  bool feeds = false;
  producer.head().ForEach([&](const Atom& head_atom) {
    if (feeds) return;
    consumer.body().ForEach([&](const Atom& body_atom) {
      if (!feeds && AtomsUnifiableDisjoint(head_atom, body_atom)) feeds = true;
    });
  });
  return feeds;
}

}  // namespace

RelianceGraph ComputePositiveReliances(const std::vector<Rule>& rules) {
  RelianceGraph graph;
  graph.rule_count = rules.size();
  graph.successors.resize(rules.size());
  for (size_t r1 = 0; r1 < rules.size(); ++r1) {
    for (size_t r2 = 0; r2 < rules.size(); ++r2) {
      if (HeadFeedsBody(rules[r1], rules[r2])) {
        graph.successors[r1].push_back(static_cast<int>(r2));
        ++graph.edge_count;
      }
    }
  }
  return graph;
}

}  // namespace twchase
