// Still-core guard: a sound, conservative proof that a core stayed a core
// after a pure addition, without recomputing the core.
//
// Setting: A is a finite core (the instance as of the last certification),
// A' = A ∪ D where D is the set of atoms added since (A ∩ D = ∅ — the chase
// only ever adds atoms between corings). Claim: any *proper* retraction ρ of
// A' falls into one of two cases.
//
//   (i)  ρ maps some atom a of A' onto some d ∈ D with ρ(a) ≠ a; or
//   (ii) ρ moves only fresh variables, vars(D) ∖ vars(A).
//
// Proof. Suppose ρ is not in case (i): no changed atom image lands in D.
// An atom of A cannot map unchanged onto an atom of D (that would put it in
// A ∩ D = ∅), so ρ(A) ⊆ A, and ρ restricted to terms(A) is an idempotent
// endomorphism of A — a retraction of A. A is a core, so that restriction is
// the identity on terms(A); constants are fixed by every homomorphism, so ρ
// moves only variables outside vars(A), i.e. fresh ones — case (ii). ∎
//
// The guard refutes both cases:
//
//   (ii) For every fresh variable v (index ≥ the vocabulary mark taken at
//        certification) appearing in D, search for a folding endomorphism of
//        A' eliminating v. Success means A' is definitively not a core.
//   (i)  For every d ∈ D and every same-predicate atom a ≠ d of A', the
//        positional restriction σ of any h with h(a) = d is forced (constants
//        of a must already equal d's, variables of a bind to d's terms —
//        one-way matching is exact here). If σ exists, search for any
//        endomorphism of A' extending σ with limit 1. Finding one does not
//        prove A' is not a core (the extension may be an automorphism), so a
//        hit only withholds the certificate.
//
// All checks negative ⟹ no proper retraction exists ⟹ A' is a core, and the
// caller skips the full ComputeCore. Any hit falls back to ComputeCore,
// whose output is bit-identical to what the unguarded path produces — the
// guard never changes the chase, only avoids provably-idempotent work.
#ifndef TWCHASE_PLAN_CORE_GUARD_H_
#define TWCHASE_PLAN_CORE_GUARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/atom_set.h"

namespace twchase {

struct CoreGuardOutcome {
  /// True iff the instance is proven to still be a core.
  bool certified = false;

  /// Folding-endomorphism searches run (case ii).
  size_t fresh_null_checks = 0;

  /// Seeded onto-D endomorphism searches run (case i).
  size_t onto_checks = 0;
};

/// Attempts to prove that `instance` (= certified core ∪ `added`) is still a
/// core. `base_variable_mark` is the vocabulary's num_variables() at the last
/// certification: every variable of the certified core has index below it.
CoreGuardOutcome ProveStillCore(const AtomSet& instance,
                                const std::vector<Atom>& added,
                                uint32_t base_variable_mark);

}  // namespace twchase

#endif  // TWCHASE_PLAN_CORE_GUARD_H_
