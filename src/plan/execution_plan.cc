#include "plan/execution_plan.h"

#include <algorithm>

#include "util/status.h"

namespace twchase {

namespace {

/// Iterative Tarjan. Roots are tried in rule-index order, successor lists are
/// ascending, so component numbering and completion order are deterministic.
/// Components complete in reverse topological order of the condensation.
struct TarjanState {
  const RelianceGraph* graph;
  std::vector<int> index;      // -1 = unvisited
  std::vector<int> lowlink;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  std::vector<int> component_of;
  int next_index = 0;
  int component_count = 0;

  explicit TarjanState(const RelianceGraph& g)
      : graph(&g),
        index(g.rule_count, -1),
        lowlink(g.rule_count, 0),
        on_stack(g.rule_count, false),
        component_of(g.rule_count, -1) {}

  void Visit(int root) {
    // Explicit DFS frame: node plus position in its successor list.
    struct Frame {
      int node;
      size_t next_succ;
    };
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::vector<int>& succs = graph->successors[frame.node];
      if (frame.next_succ < succs.size()) {
        int next = succs[frame.next_succ++];
        if (index[next] == -1) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[next]);
        }
        continue;
      }
      // frame.node is fully expanded.
      if (lowlink[frame.node] == index[frame.node]) {
        int member;
        do {
          member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          component_of[member] = component_count;
        } while (member != frame.node);
        ++component_count;
      }
      int done = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[done]);
      }
    }
  }
};

}  // namespace

ExecutionPlan BuildExecutionPlan(const std::vector<Rule>& rules,
                                 const AtomSet& facts) {
  ExecutionPlan plan;
  plan.graph = ComputePositiveReliances(rules);

  TarjanState tarjan(plan.graph);
  for (size_t r = 0; r < rules.size(); ++r) {
    if (tarjan.index[r] == -1) tarjan.Visit(static_cast<int>(r));
  }
  plan.component_of = std::move(tarjan.component_of);

  // Tarjan completes components in reverse topological order, so stratum i
  // is the component completed (component_count - 1 - i)-th.
  plan.strata.assign(tarjan.component_count, {});
  for (size_t r = 0; r < rules.size(); ++r) {
    int stratum = tarjan.component_count - 1 - plan.component_of[r];
    plan.strata[stratum].push_back(static_cast<int>(r));
  }
  for (std::vector<int>& stratum : plan.strata) {
    std::sort(stratum.begin(), stratum.end());
    TWCHASE_CHECK(!stratum.empty());
  }

  // Producibility fixpoint: a predicate is producible if an initial fact has
  // it, or some rule with an all-producible body has it in its head.
  std::unordered_set<PredicateId> producible;
  facts.ForEach([&](const Atom& atom) { producible.insert(atom.predicate()); });
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules) {
      bool body_ok = true;
      rule.body().ForEach([&](const Atom& atom) {
        if (body_ok && producible.count(atom.predicate()) == 0) body_ok = false;
      });
      if (!body_ok) continue;
      rule.head().ForEach([&](const Atom& atom) {
        if (producible.insert(atom.predicate()).second) changed = true;
      });
    }
  }

  plan.dormant.assign(rules.size(), false);
  for (size_t r = 0; r < rules.size(); ++r) {
    bool body_ok = true;
    rules[r].body().ForEach([&](const Atom& atom) {
      if (body_ok && producible.count(atom.predicate()) == 0) body_ok = false;
    });
    if (!body_ok) {
      plan.dormant[r] = true;
      ++plan.dormant_count;
    }
  }
  return plan;
}

size_t CountActiveStrata(
    const ExecutionPlan& plan,
    const std::vector<std::unordered_set<PredicateId>>& body_predicates,
    const std::unordered_set<PredicateId>& inserted) {
  size_t active = 0;
  for (const std::vector<int>& stratum : plan.strata) {
    bool touched = false;
    for (int rule : stratum) {
      if (touched) break;
      for (PredicateId pred : body_predicates[rule]) {
        if (inserted.count(pred) != 0) {
          touched = true;
          break;
        }
      }
    }
    if (touched) ++active;
  }
  return active;
}

}  // namespace twchase
