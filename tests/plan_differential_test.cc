// Bit-identity oracle for the execution planner (ChaseOptions::plan): a
// planned run must be IDENTICAL to the unplanned run — same final instance,
// same derivation journal, same observer event stream — for every chase
// variant, on both paper worlds, at every thread count. The planner only
// ever skips work whose outcome is forced (dormant-rule enumerations are
// provably empty; a certified still-core proof stands in for a ComputeCore
// that would have found zero folds), so identity holds by construction;
// these tests are the oracle for that argument, and run under the asan and
// tsan presets via tools/check.sh (label: plan).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/chase.h"
#include "hom/core.h"
#include "kb/examples.h"
#include "kb/knowledge_base.h"
#include "obs/stock_observers.h"

namespace twchase {
namespace {

const ChaseVariant kAllVariants[] = {
    ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
    ChaseVariant::kRestricted, ChaseVariant::kFrugal, ChaseVariant::kCore};

enum class Family { kStaircase, kElevator };

KnowledgeBase FreshKb(Family family) {
  // Fresh world per run so fresh-null minting starts from the same
  // vocabulary state (construction is deterministic).
  if (family == Family::kStaircase) return StaircaseWorld().kb();
  return ElevatorWorld().kb();
}

std::string FamilyName(Family family) {
  return family == Family::kStaircase ? "staircase" : "elevator";
}

struct RunOutput {
  ChaseResult result;
  std::string events;
};

RunOutput RunVariant(Family family, ChaseVariant variant, size_t max_steps,
                     bool plan, size_t threads, bool round_end_coring = false) {
  KnowledgeBase kb = FreshKb(family);
  std::ostringstream events;
  EventLogObserver log(&events);
  ChaseOptions options;
  options.variant = variant;
  options.limits.max_steps = max_steps;
  options.plan.enabled = plan;
  options.parallel.threads = threads;
  options.core.core_at_round_end = round_end_coring;
  options.observer = &log;
  auto run = RunChase(kb, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return {std::move(run).value(), events.str()};
}

void ExpectSameJournal(const Derivation& got, const Derivation& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(context + ", step " + std::to_string(i));
    const DerivationStep& g = got.step(i);
    const DerivationStep& w = want.step(i);
    EXPECT_EQ(g.rule_index, w.rule_index);
    EXPECT_EQ(g.rule_label, w.rule_label);
    EXPECT_EQ(g.match, w.match);
    EXPECT_EQ(g.simplification, w.simplification);
    EXPECT_EQ(g.added_atoms, w.added_atoms);
    EXPECT_EQ(g.instance_size, w.instance_size);
    EXPECT_EQ(g.instance.ContentHash(), w.instance.ContentHash());
  }
}

void ExpectBitIdentical(const RunOutput& planned, const RunOutput& golden,
                        const std::string& context) {
  EXPECT_EQ(planned.result.stop_reason, golden.result.stop_reason) << context;
  EXPECT_EQ(planned.result.steps, golden.result.steps) << context;
  EXPECT_EQ(planned.result.rounds, golden.result.rounds) << context;
  EXPECT_EQ(planned.result.derivation.Last().ContentHash(),
            golden.result.derivation.Last().ContentHash())
      << context;
  ExpectSameJournal(planned.result.derivation, golden.result.derivation,
                    context);
  EXPECT_EQ(planned.events, golden.events) << context;
}

void SweepFamily(Family family, size_t max_steps) {
  for (ChaseVariant variant : kAllVariants) {
    RunOutput golden = RunVariant(family, variant, max_steps, /*plan=*/false,
                                  /*threads=*/1);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      RunOutput planned =
          RunVariant(family, variant, max_steps, /*plan=*/true, threads);
      ExpectBitIdentical(planned, golden,
                         FamilyName(family) + "/" +
                             ChaseVariantName(variant) + "/threads=" +
                             std::to_string(threads));
    }
  }
}

TEST(PlanDifferential, StaircaseSweep) {
  SweepFamily(Family::kStaircase, 40);
}

TEST(PlanDifferential, ElevatorSweep) {
  SweepFamily(Family::kElevator, 40);
}

// Round-end coring drives the guard's other certification site; the core
// variant must stay bit-identical there too.
TEST(PlanDifferential, RoundEndCoringStaysIdentical) {
  for (Family family : {Family::kStaircase, Family::kElevator}) {
    RunOutput golden = RunVariant(family, ChaseVariant::kCore, 40,
                                  /*plan=*/false, /*threads=*/1,
                                  /*round_end_coring=*/true);
    RunOutput planned = RunVariant(family, ChaseVariant::kCore, 40,
                                   /*plan=*/true, /*threads=*/1,
                                   /*round_end_coring=*/true);
    ExpectBitIdentical(planned, golden, FamilyName(family) + "/round-end");
  }
}

// core_every > 1 makes the guard prove multi-application batches at once.
TEST(PlanDifferential, SpacedCoringStaysIdentical) {
  for (size_t every : {size_t{2}, size_t{3}}) {
    KnowledgeBase golden_kb = FreshKb(Family::kStaircase);
    ChaseOptions options;
    options.variant = ChaseVariant::kCore;
    options.limits.max_steps = 40;
    options.core.core_every = every;
    options.plan.enabled = false;
    auto golden = RunChase(golden_kb, options);
    ASSERT_TRUE(golden.ok());

    KnowledgeBase planned_kb = FreshKb(Family::kStaircase);
    options.plan.enabled = true;
    auto planned = RunChase(planned_kb, options);
    ASSERT_TRUE(planned.ok());
    ExpectSameJournal(planned->derivation, golden->derivation,
                      "core_every=" + std::to_string(every));
    EXPECT_EQ(planned->derivation.Last().ContentHash(),
              golden->derivation.Last().ContentHash());
  }
}

// The guard's certificates must be genuine: after every planned core run
// the final instance is a core, and the guard actually replaced folds
// (otherwise the oracle above would be vacuous for the guard path).
TEST(PlanDifferential, GuardCertifiesOnTheCoreVariant) {
  RunOutput planned = RunVariant(Family::kStaircase, ChaseVariant::kCore, 40,
                                 /*plan=*/true, /*threads=*/1);
  EXPECT_GT(planned.result.stats.plan_core_proofs, 0u);
  EXPECT_GT(planned.result.stats.plan_core_certified, 0u);
  EXPECT_TRUE(IsCore(planned.result.derivation.Last()));

  RunOutput golden = RunVariant(Family::kStaircase, ChaseVariant::kCore, 40,
                                /*plan=*/false, /*threads=*/1);
  EXPECT_EQ(golden.result.stats.plan_core_proofs, 0u);
  EXPECT_LT(planned.result.stats.core_full, golden.result.stats.core_full);
}

// Plan events only surface in the JSONL stream when explicitly opted in.
TEST(PlanDifferential, EventLogOptInEmitsPlanEvents) {
  KnowledgeBase kb = FreshKb(Family::kStaircase);
  std::ostringstream events;
  EventLogObserver log(&events, /*log_parallel_events=*/false,
                       /*log_match_events=*/false, /*log_plan_events=*/true);
  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = 12;
  options.observer = &log;
  auto run = RunChase(kb, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_NE(events.str().find("\"event\": \"plan\""), std::string::npos);
}

}  // namespace
}  // namespace twchase
