// Checkpoint format and resumption contract: serialize/parse round-trips,
// program fingerprinting, rejection of mismatched resumes, graceful
// handling of malformed/hostile checkpoint bytes, and budget-interrupt →
// resume bit-identity without fault injection (deadline and step-budget
// stops through the public ResumeChase entry point).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/chase.h"
#include "core/checkpoint.h"
#include "hom/matcher.h"
#include "kb/examples.h"

namespace twchase {
namespace {

// Scoped backend switch: restores the previous backend even on test failure
// so a failing case cannot poison the rest of the binary.
struct BackendGuard {
  explicit BackendGuard(MatchBackend backend)
      : previous(CurrentMatchBackend()) {
    SetMatchBackend(backend);
  }
  ~BackendGuard() { SetMatchBackend(previous); }
  MatchBackend previous;
};

ChaseOptions RecordingOptions(ChaseVariant variant, size_t max_steps) {
  ChaseOptions options;
  options.variant = variant;
  options.limits.max_steps = max_steps;
  options.resume.record_log = true;
  return options;
}

TEST(ProgramFingerprintTest, DeterministicAcrossFreshWorlds) {
  StaircaseWorld a;
  StaircaseWorld b;
  EXPECT_EQ(ProgramFingerprint(a.kb()), ProgramFingerprint(b.kb()));
  ElevatorWorld c;
  ElevatorWorld d;
  EXPECT_EQ(ProgramFingerprint(c.kb()), ProgramFingerprint(d.kb()));
  EXPECT_NE(ProgramFingerprint(a.kb()), ProgramFingerprint(c.kb()));
}

TEST(ProgramFingerprintTest, SensitiveToFactsAndRules) {
  StaircaseWorld a;
  uint64_t before = ProgramFingerprint(a.kb());
  // Adding one fact changes the fingerprint.
  KnowledgeBase more_facts = a.kb();
  Atom existing;
  more_facts.facts.ForEach([&](const Atom& atom) { existing = atom; });
  std::vector<Term> args = existing.args();
  args.push_back(args.empty() ? Term::Constant(0) : args.back());
  more_facts.facts.Insert(Atom(existing.predicate(), std::move(args)));
  EXPECT_NE(ProgramFingerprint(more_facts), before);
  // Dropping a rule changes the fingerprint.
  KnowledgeBase fewer_rules = a.kb();
  fewer_rules.rules.pop_back();
  EXPECT_NE(ProgramFingerprint(fewer_rules), before);
  // Facts of a different family differ too.
  EXPECT_NE(ProgramFingerprint(MakeTransitiveClosure(3)),
            ProgramFingerprint(MakeTransitiveClosure(4)));
}

TEST(CheckpointFormatTest, SerializeParseRoundTrip) {
  StaircaseWorld world;
  ChaseOptions options = RecordingOptions(ChaseVariant::kCore, 4);
  auto run = RunChase(world.kb(), options);
  ASSERT_TRUE(run.ok());
  StaircaseWorld fresh;
  ChaseCheckpoint cp = MakeCheckpoint(fresh.kb(), options, *run);
  std::string text = SerializeCheckpoint(cp);

  auto parsed = ParseCheckpoint(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, cp.version);
  EXPECT_EQ(parsed->variant, cp.variant);
  EXPECT_EQ(parsed->datalog_first, cp.datalog_first);
  EXPECT_EQ(parsed->delta_enabled, cp.delta_enabled);
  EXPECT_EQ(parsed->core_every, cp.core_every);
  EXPECT_EQ(parsed->program_fingerprint, cp.program_fingerprint);
  EXPECT_EQ(parsed->stop_reason, cp.stop_reason);
  EXPECT_EQ(parsed->steps, cp.steps);
  EXPECT_EQ(parsed->rounds, cp.rounds);
  EXPECT_EQ(parsed->instance_size, cp.instance_size);
  EXPECT_EQ(parsed->instance_hash, cp.instance_hash);
  EXPECT_EQ(parsed->expected_variables, cp.expected_variables);
  EXPECT_EQ(parsed->log.have_initial, cp.log.have_initial);
  EXPECT_EQ(parsed->log.initial_sigma, cp.log.initial_sigma);
  EXPECT_EQ(parsed->log.steps.size(), cp.log.steps.size());
  for (size_t i = 0; i < cp.log.steps.size(); ++i) {
    EXPECT_EQ(parsed->log.steps[i].sigma, cp.log.steps[i].sigma) << i;
    EXPECT_EQ(parsed->log.steps[i].cored, cp.log.steps[i].cored) << i;
    EXPECT_EQ(parsed->log.steps[i].fold_sigmas.size(),
              cp.log.steps[i].fold_sigmas.size())
        << i;
  }
  ASSERT_EQ(parsed->log.rounds.size(), cp.log.rounds.size());
  for (size_t i = 0; i < cp.log.rounds.size(); ++i) {
    EXPECT_EQ(parsed->log.rounds[i].decisions, cp.log.rounds[i].decisions)
        << i;
    EXPECT_EQ(parsed->log.rounds[i].have_round_end,
              cp.log.rounds[i].have_round_end)
        << i;
  }
  // Serialization is canonical: parse(serialize(x)) serializes identically.
  EXPECT_EQ(SerializeCheckpoint(*parsed), text);
}

TEST(CheckpointFormatTest, MalformedInputsAreRejectedNotFatal) {
  StaircaseWorld world;
  ChaseOptions options = RecordingOptions(ChaseVariant::kRestricted, 3);
  auto run = RunChase(world.kb(), options);
  ASSERT_TRUE(run.ok());
  StaircaseWorld fresh;
  std::string good =
      SerializeCheckpoint(MakeCheckpoint(fresh.kb(), options, *run));

  const std::string cases[] = {
      "",
      "not a checkpoint at all",
      "twchase-checkpoint 99\n",             // unsupported version
      good.substr(0, good.size() / 2),       // truncated mid-file
      good.substr(0, good.find("end")),      // missing terminator
      "twchase-checkpoint 1\nvariant bogus\n",
      "twchase-checkpoint 1\nvariant core\nschedule x y z\n",
  };
  for (const std::string& text : cases) {
    auto parsed = ParseCheckpoint(text);
    EXPECT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << parsed.status().ToString();
  }

  // Hostile counts must not cause huge allocations or crashes.
  std::string hostile = good;
  size_t steps_pos = hostile.find("\nsteps ");
  ASSERT_NE(steps_pos, std::string::npos);
  hostile.replace(steps_pos, 8, "\nsteps 999999999999 ");
  EXPECT_FALSE(ParseCheckpoint(hostile).ok());
}

// Regression: ParseCheckpoint used to stream through an istringstream,
// silently ignoring anything after "end" and accepting a final line with no
// terminating newline — so a torn or concatenated checkpoint file parsed as
// if it were intact. Both are now rejected with the byte offset.
TEST(CheckpointFormatTest, TrailingGarbageAndTruncationAreRejectedWithOffsets) {
  StaircaseWorld world;
  ChaseOptions options = RecordingOptions(ChaseVariant::kRestricted, 3);
  auto run = RunChase(world.kb(), options);
  ASSERT_TRUE(run.ok());
  StaircaseWorld fresh;
  std::string good =
      SerializeCheckpoint(MakeCheckpoint(fresh.kb(), options, *run));
  ASSERT_TRUE(ParseCheckpoint(good).ok());

  // Bytes after the "end" line: rejected, offset points past "end".
  auto trailing = ParseCheckpoint(good + "junk after the end\n");
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(trailing.status().message().find("trailing garbage"),
            std::string::npos)
      << trailing.status();
  EXPECT_NE(trailing.status().message().find(
                "at byte " + std::to_string(good.size())),
            std::string::npos)
      << trailing.status();

  // A second full checkpoint appended (the classic double-write) is
  // trailing garbage too, not a silent first-wins parse.
  EXPECT_FALSE(ParseCheckpoint(good + good).ok());

  // Final line missing its newline: a torn tail, not a valid terminator.
  std::string torn = good.substr(0, good.size() - 1);
  auto truncated = ParseCheckpoint(torn);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(truncated.status().message().find("truncated final line"),
            std::string::npos)
      << truncated.status();
  EXPECT_NE(truncated.status().message().find("at byte"), std::string::npos);

  // Structurally malformed lines carry the offset of the line they died on.
  const std::string prefix = "twchase-checkpoint 1\nvariant core\n";
  auto bogus = ParseCheckpoint(prefix + "nonsense\n");
  ASSERT_FALSE(bogus.ok());
  EXPECT_NE(bogus.status().message().find("at byte"), std::string::npos)
      << bogus.status();
}

TEST(CheckpointFormatTest, SealedFooterRoundTripsAndCatchesCorruption) {
  StaircaseWorld world;
  ChaseOptions options = RecordingOptions(ChaseVariant::kCore, 4);
  auto run = RunChase(world.kb(), options);
  ASSERT_TRUE(run.ok());
  StaircaseWorld fresh;
  ChaseCheckpoint cp = MakeCheckpoint(fresh.kb(), options, *run);
  const std::string plain = SerializeCheckpoint(cp);
  const std::string sealed = SerializeCheckpointSealed(cp);

  // The sealed form is the plain body plus one footer line.
  ASSERT_GT(sealed.size(), plain.size());
  EXPECT_EQ(sealed.substr(0, plain.size()), plain);
  EXPECT_EQ(sealed.compare(plain.size(), 9, "checksum "), 0);

  auto parsed = ParseSealedCheckpoint(sealed);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeCheckpoint(*parsed), plain);

  // A single flipped bit anywhere in the body fails the CRC.
  for (size_t pos : {size_t{0}, plain.size() / 2, plain.size() - 2}) {
    std::string flipped = sealed;
    flipped[pos] ^= 0x40;
    EXPECT_FALSE(ParseSealedCheckpoint(flipped).ok()) << "flip at " << pos;
  }
  // Truncation (torn write), bytes after the footer, a doctored length,
  // and the plain unsealed text are all rejected.
  EXPECT_FALSE(ParseSealedCheckpoint(sealed.substr(0, sealed.size() / 2)).ok());
  EXPECT_FALSE(ParseSealedCheckpoint(sealed.substr(0, sealed.size() - 1)).ok());
  EXPECT_FALSE(ParseSealedCheckpoint(sealed + "x\n").ok());
  EXPECT_FALSE(ParseSealedCheckpoint(plain).ok());
  EXPECT_FALSE(ParseSealedCheckpoint("").ok());
}

TEST(ResumeChaseTest, RejectsMismatchedVariantAndOptions) {
  StaircaseWorld world;
  ChaseOptions options = RecordingOptions(ChaseVariant::kRestricted, 3);
  auto run = RunChase(world.kb(), options);
  ASSERT_TRUE(run.ok());
  StaircaseWorld fresh;
  ChaseCheckpoint cp = MakeCheckpoint(fresh.kb(), options, *run);

  {
    ChaseOptions wrong = options;
    wrong.variant = ChaseVariant::kCore;
    StaircaseWorld target;
    auto resumed = ResumeChase(target.kb(), wrong, cp);
    EXPECT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  }
  {
    ChaseOptions wrong = options;
    wrong.datalog_first = !wrong.datalog_first;
    StaircaseWorld target;
    auto resumed = ResumeChase(target.kb(), wrong, cp);
    EXPECT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(ResumeChaseTest, RejectsDifferentProgram) {
  StaircaseWorld world;
  ChaseOptions options = RecordingOptions(ChaseVariant::kRestricted, 3);
  auto run = RunChase(world.kb(), options);
  ASSERT_TRUE(run.ok());
  StaircaseWorld fresh;
  ChaseCheckpoint cp = MakeCheckpoint(fresh.kb(), options, *run);

  // The elevator program is not the staircase program.
  ElevatorWorld other;
  auto resumed = ResumeChase(other.kb(), options, cp);
  EXPECT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

// Regression: the fingerprint used to cover only the program (facts and
// rules), so a checkpoint recorded under --match-backend=columnar resumed
// silently under legacy (and vice versa), and a planned recording resumed
// unplanned. Both knobs are now folded into CheckpointFingerprint and
// mismatches are rejected up front.
TEST(ResumeChaseTest, RejectsMismatchedBackendAndPlanMode) {
  StaircaseWorld world;
  ChaseOptions options = RecordingOptions(ChaseVariant::kRestricted, 3);
  ChaseCheckpoint cp;
  {
    BackendGuard record_as(MatchBackend::kColumnar);
    auto run = RunChase(world.kb(), options);
    ASSERT_TRUE(run.ok());
    StaircaseWorld fresh;
    cp = MakeCheckpoint(fresh.kb(), options, *run);
  }
  {
    BackendGuard resume_as(MatchBackend::kLegacy);
    StaircaseWorld target;
    auto resumed = ResumeChase(target.kb(), options, cp);
    EXPECT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  }
  {
    ChaseOptions wrong = options;
    wrong.plan.enabled = !wrong.plan.enabled;
    StaircaseWorld target;
    auto resumed = ResumeChase(target.kb(), wrong, cp);
    EXPECT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  }
  {
    // Matching settings still resume.
    StaircaseWorld target;
    auto resumed = ResumeChase(target.kb(), options, cp);
    EXPECT_TRUE(resumed.ok()) << resumed.status().ToString();
  }
}

// Regression: a --variant=auto resolution (preflight verdict + picked
// variant) is part of the run's identity, folded into the fingerprint ONLY
// for auto runs. Explicit-variant fingerprints must stay byte-compatible
// with pre-preflight checkpoints, and an auto-checkpoint recorded under one
// classification must refuse to resume under another.
TEST(ResumeChaseTest, PreflightDecisionIsPinnedInTheFingerprint) {
  StaircaseWorld world;
  ChaseOptions explicit_options =
      RecordingOptions(ChaseVariant::kRestricted, 3);
  ChaseOptions auto_options = explicit_options;
  auto_options.preflight.auto_variant = true;
  auto_options.preflight.resolved = true;
  auto_options.preflight.verdict = 3;  // TerminationClass::kCoreBts

  // The fold is gated on auto_variant: an auto run hashes differently...
  EXPECT_NE(CheckpointFingerprint(world.kb(), auto_options),
            CheckpointFingerprint(world.kb(), explicit_options));
  // ...while stray preflight fields on an explicit run are invisible (the
  // pre-preflight fingerprint format is preserved bit for bit).
  ChaseOptions stray = explicit_options;
  stray.preflight.verdict = 2;
  EXPECT_EQ(CheckpointFingerprint(world.kb(), stray),
            CheckpointFingerprint(world.kb(), explicit_options));
  // Different verdicts (and different resolved variants) hash apart.
  ChaseOptions reclassified = auto_options;
  reclassified.preflight.verdict = 0;  // TerminationClass::kUnknown
  EXPECT_NE(CheckpointFingerprint(world.kb(), reclassified),
            CheckpointFingerprint(world.kb(), auto_options));

  auto run = RunChase(world.kb(), auto_options);
  ASSERT_TRUE(run.ok());
  StaircaseWorld fresh;
  ChaseCheckpoint cp = MakeCheckpoint(fresh.kb(), auto_options, *run);
  {
    // Re-classification changed since the recording: resume is rejected.
    StaircaseWorld target;
    auto resumed = ResumeChase(target.kb(), reclassified, cp);
    EXPECT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  }
  {
    // The same resolution still resumes.
    StaircaseWorld target;
    auto resumed = ResumeChase(target.kb(), auto_options, cp);
    EXPECT_TRUE(resumed.ok()) << resumed.status().ToString();
  }
}

TEST(ResumeChaseTest, RejectsConsumedVocabulary) {
  StaircaseWorld world;
  ChaseOptions options = RecordingOptions(ChaseVariant::kRestricted, 3);
  auto run = RunChase(world.kb(), options);
  ASSERT_TRUE(run.ok());
  ChaseCheckpoint cp = MakeCheckpoint(world.kb(), options, *run);
  // `world`'s vocabulary already minted the run's fresh nulls; resuming
  // against it would mint different ids than the recorded substitutions
  // refer to. (The fingerprint can't see this — the rules and facts are
  // unchanged — so it is a dedicated precondition.)
  auto resumed = ResumeChase(world.kb(), options, cp);
  EXPECT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ResumeChaseTest, StepBudgetInterruptThenResumeMatchesGolden) {
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted, ChaseVariant::kFrugal,
        ChaseVariant::kCore}) {
    SCOPED_TRACE(ChaseVariantName(variant));
    // Golden: 7 steps uninterrupted.
    ElevatorWorld golden_world;
    ChaseOptions golden_options;
    golden_options.variant = variant;
    golden_options.limits.max_steps = 7;
    auto golden = RunChase(golden_world.kb(), golden_options);
    ASSERT_TRUE(golden.ok());

    // Interrupted: stop at 3 via the step budget, checkpoint, resume to 7.
    ElevatorWorld short_world;
    ChaseOptions short_options = RecordingOptions(variant, 3);
    auto shortened = RunChase(short_world.kb(), short_options);
    ASSERT_TRUE(shortened.ok());
    EXPECT_EQ(shortened->stop_reason, StopReason::kStepBudget);

    ElevatorWorld fresh;
    ChaseCheckpoint cp = MakeCheckpoint(fresh.kb(), short_options, *shortened);
    auto parsed = ParseCheckpoint(SerializeCheckpoint(cp));
    ASSERT_TRUE(parsed.ok());

    ElevatorWorld target;
    ChaseOptions resume_options;
    resume_options.variant = variant;
    resume_options.limits.max_steps = 7;
    auto resumed = ResumeChase(target.kb(), resume_options, *parsed);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed->steps, golden->steps);
    EXPECT_EQ(resumed->rounds, golden->rounds);
    EXPECT_EQ(resumed->stop_reason, golden->stop_reason);
    EXPECT_EQ(resumed->derivation.Last().size(),
              golden->derivation.Last().size());
    EXPECT_EQ(resumed->derivation.Last().ContentHash(),
              golden->derivation.Last().ContentHash());
  }
}

TEST(ResumeChaseTest, ZeroDeadlineCheckpointResumesFromScratch) {
  // A run stopped before any work has an empty log; resuming it is simply
  // running from the start — still bit-identical to a direct run.
  ElevatorWorld world;
  ChaseOptions options = RecordingOptions(ChaseVariant::kRestricted, 5);
  options.limits.deadline_ms = 0;
  auto stopped = RunChase(world.kb(), options);
  ASSERT_TRUE(stopped.ok());
  EXPECT_EQ(stopped->stop_reason, StopReason::kDeadline);
  EXPECT_EQ(stopped->steps, 0u);

  ElevatorWorld fresh;
  ChaseCheckpoint cp = MakeCheckpoint(fresh.kb(), options, *stopped);
  auto parsed = ParseCheckpoint(SerializeCheckpoint(cp));
  ASSERT_TRUE(parsed.ok());

  ElevatorWorld target;
  ChaseOptions resume_options;
  resume_options.variant = ChaseVariant::kRestricted;
  resume_options.limits.max_steps = 5;
  auto resumed = ResumeChase(target.kb(), resume_options, *parsed);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  ElevatorWorld direct_world;
  ChaseOptions direct_options;
  direct_options.variant = ChaseVariant::kRestricted;
  direct_options.limits.max_steps = 5;
  auto direct = RunChase(direct_world.kb(), direct_options);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(resumed->steps, direct->steps);
  EXPECT_EQ(resumed->derivation.Last().ContentHash(),
            direct->derivation.Last().ContentHash());
}

TEST(ResumeChaseTest, ResumedRunCanBeCheckpointedAgain) {
  // Recording continues through replay, so a resumed run can itself be
  // checkpointed — chains of budget slices compose.
  ElevatorWorld w1;
  ChaseOptions first = RecordingOptions(ChaseVariant::kRestricted, 2);
  auto run1 = RunChase(w1.kb(), first);
  ASSERT_TRUE(run1.ok());
  ElevatorWorld f1;
  auto cp1 = ParseCheckpoint(
      SerializeCheckpoint(MakeCheckpoint(f1.kb(), first, *run1)));
  ASSERT_TRUE(cp1.ok());

  ElevatorWorld w2;
  ChaseOptions second = RecordingOptions(ChaseVariant::kRestricted, 4);
  auto run2 = ResumeChase(w2.kb(), second, *cp1);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  ElevatorWorld f2;
  auto cp2 = ParseCheckpoint(
      SerializeCheckpoint(MakeCheckpoint(f2.kb(), second, *run2)));
  ASSERT_TRUE(cp2.ok());

  ElevatorWorld w3;
  ChaseOptions third;
  third.variant = ChaseVariant::kRestricted;
  third.limits.max_steps = 6;
  auto run3 = ResumeChase(w3.kb(), third, *cp2);
  ASSERT_TRUE(run3.ok()) << run3.status().ToString();

  ElevatorWorld direct_world;
  ChaseOptions direct;
  direct.variant = ChaseVariant::kRestricted;
  direct.limits.max_steps = 6;
  auto golden = RunChase(direct_world.kb(), direct);
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(run3->steps, golden->steps);
  EXPECT_EQ(run3->derivation.Last().ContentHash(),
            golden->derivation.Last().ContentHash());
}

}  // namespace
}  // namespace twchase
