#include <gtest/gtest.h>

#include "hom/decomposed.h"
#include "hom/matcher.h"
#include "kb/examples.h"
#include "kb/generators.h"
#include "model/predicate.h"
#include "util/random.h"

namespace twchase {
namespace {

TEST(DecomposedMatchTest, SimplePathQuery) {
  Vocabulary vocab;
  AtomSet target = MakeGridInstance(&vocab, "h", "v", 3, 3);
  AtomSet query = MakePathInstance(&vocab, "h", 2);
  auto result = EntailsViaDecomposition(target, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->entailed);
  EXPECT_EQ(result->width, 1);
}

TEST(DecomposedMatchTest, UnsatisfiableQuery) {
  Vocabulary vocab;
  AtomSet target = MakePathInstance(&vocab, "e", 4);
  AtomSet query = MakeCycleInstance(&vocab, "e", 3);
  auto result = EntailsViaDecomposition(target, query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->entailed);
}

TEST(DecomposedMatchTest, ConstantsInQuery) {
  Vocabulary vocab;
  PredicateId e = vocab.MustPredicate("e", 2);
  Term a = vocab.Constant("a"), b = vocab.Constant("b");
  Term x = vocab.NamedVariable("X");
  AtomSet target;
  target.Insert(Atom(e, {a, b}));
  AtomSet yes;
  yes.Insert(Atom(e, {a, x}));
  AtomSet no;
  no.Insert(Atom(e, {b, x}));
  auto r1 = EntailsViaDecomposition(target, yes);
  auto r2 = EntailsViaDecomposition(target, no);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->entailed);
  EXPECT_FALSE(r2->entailed);
}

TEST(DecomposedMatchTest, EmptyQueryIsEntailed) {
  Vocabulary vocab;
  AtomSet target = MakePathInstance(&vocab, "e", 2);
  AtomSet query;
  auto result = EntailsViaDecomposition(target, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->entailed);
}

TEST(DecomposedMatchTest, GridQueryIntoGridTarget) {
  Vocabulary vocab;
  AtomSet target = MakeGridInstance(&vocab, "h", "v", 4, 4);
  AtomSet query22 = MakeGridInstance(&vocab, "h", "v", 2, 2);
  auto yes = EntailsViaDecomposition(target, query22);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->entailed);
  // Transposed-ish impossible query: a 1×6 h-path does not fit into 4 cols.
  AtomSet path6 = MakePathInstance(&vocab, "h", 6);
  auto no = EntailsViaDecomposition(target, path6);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->entailed);
}

TEST(DecomposedMatchTest, RowBudgetReported) {
  Vocabulary vocab;
  AtomSet target = MakeGridInstance(&vocab, "h", "v", 5, 5);
  AtomSet query = MakeGridInstance(&vocab, "h", "v", 2, 3);
  DecomposedMatchOptions options;
  options.max_rows_per_bag = 2;  // absurdly small: must trip
  auto result = EntailsViaDecomposition(target, query, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

class DecomposedAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecomposedAgreement, MatchesBacktrackingMatcher) {
  Rng rng(GetParam());
  Vocabulary vocab;
  AtomSet target = MakeRandomBinaryInstance(&vocab, "e", 8, 20, &rng);
  for (int trial = 0; trial < 8; ++trial) {
    // Random small query over fresh variables.
    Vocabulary qvocab;
    Rng qrng(GetParam() * 1000 + trial);
    AtomSet query = MakeRandomBinaryInstance(&qvocab, "e", 4, 4, &qrng);
    bool expected = ExistsHomomorphism(query, target);
    auto result = EntailsViaDecomposition(target, query);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->entailed, expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposedAgreement,
                         ::testing::Values(7, 11, 19, 23, 31, 43));

TEST(DecomposedMatchTest, StaircaseGridQueries) {
  // The grid queries of the paper's counterexample, answered over the
  // staircase's universal-model prefix by both engines.
  StaircaseWorld world;
  AtomSet target = world.UniversalModelPrefix(6);
  Vocabulary& vocab = *world.vocab();
  PredicateId h = vocab.FindPredicate("h").value();
  PredicateId v = vocab.FindPredicate("v").value();
  // 2×2 grid query in h/v.
  AtomSet query;
  Term q00 = vocab.NamedVariable("q00"), q01 = vocab.NamedVariable("q01");
  Term q10 = vocab.NamedVariable("q10"), q11 = vocab.NamedVariable("q11");
  query.Insert(Atom(h, {q00, q10}));
  query.Insert(Atom(h, {q01, q11}));
  query.Insert(Atom(v, {q00, q01}));
  query.Insert(Atom(v, {q10, q11}));
  auto result = EntailsViaDecomposition(target, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->entailed);
  EXPECT_EQ(result->entailed, ExistsHomomorphism(query, target));
}

}  // namespace
}  // namespace twchase
