// PackedBindings replaced the decimal-string trigger keys the chase engine
// sorted and deduplicated by. The golden derivation schedules are pinned
// under the *string* order, so these tests verify — by property testing
// against a faithful reconstruction of the legacy string builder — that the
// packed representation reproduces the old order and identity exactly.
#include "core/trigger_key.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "model/substitution.h"
#include "model/term.h"
#include "util/random.h"

namespace twchase {
namespace {

// The decimal-string sort key the chase used before packed keys.
std::string LegacyStringKey(const Substitution& match) {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (const auto& [var, term] : match.map()) {
    entries.emplace_back(var.raw(), term.raw());
  }
  std::sort(entries.begin(), entries.end());
  std::string key;
  for (const auto& [a, b] : entries) {
    key += std::to_string(a);
    key += ',';
    key += std::to_string(b);
    key += ';';
  }
  return key;
}

// Reconstruct a Term from the raw handle value the keys pack.
Term TermFromRaw(uint32_t raw) {
  return (raw & 0x80000000u) ? Term::Variable(raw & 0x7FFFFFFFu)
                             : Term::Constant(raw);
}

// A random variable/term raw value with digit-count variety: uniform draws
// over uint32 almost always have 10 digits, which never exercises the
// decimal-prefix corner the legacy order is famous for (9 sorting after 10).
uint32_t RandomRaw(Rng* rng, bool variable) {
  int digits = static_cast<int>(rng->Uniform(1, 9));
  uint32_t lo = 1;
  for (int i = 1; i < digits; ++i) lo *= 10;
  uint32_t value =
      static_cast<uint32_t>(rng->Uniform(lo == 1 ? 0 : lo, lo * 10 - 1));
  return variable ? (value | 0x80000000u) : value;
}

Substitution RandomMatch(Rng* rng, int max_bindings) {
  Substitution match;
  int n = static_cast<int>(rng->Uniform(0, max_bindings));
  for (int i = 0; i < n; ++i) {
    Term var = TermFromRaw(RandomRaw(rng, /*variable=*/true));
    Term image = TermFromRaw(RandomRaw(rng, rng->Bernoulli(0.5)));
    match.Bind(var, image);
  }
  return match;
}

TEST(TriggerKeyTest, LegacyDecimalLessMatchesStringOrder) {
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    uint32_t x = RandomRaw(&rng, rng.Bernoulli(0.5));
    uint32_t y = RandomRaw(&rng, rng.Bernoulli(0.5));
    std::string sx = std::to_string(x) + ';';
    std::string sy = std::to_string(y) + ';';
    EXPECT_EQ(LegacyDecimalLess(x, y), sx < sy)
        << "x=" << x << " y=" << y;
  }
}

TEST(TriggerKeyTest, LegacyDecimalLessPrefixCorners) {
  // "9;" > "10;" (digit '9' > '1'), "12;" > "123;" (';' > '3'),
  // "123;" < "13;" ('2' < '3').
  EXPECT_FALSE(LegacyDecimalLess(9, 10));
  EXPECT_TRUE(LegacyDecimalLess(10, 9));
  EXPECT_FALSE(LegacyDecimalLess(12, 123));
  EXPECT_TRUE(LegacyDecimalLess(123, 12));
  EXPECT_TRUE(LegacyDecimalLess(123, 13));
  EXPECT_FALSE(LegacyDecimalLess(5, 5));
}

TEST(TriggerKeyTest, LegacyLessMatchesStringOrderOnRandomMatches) {
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    Substitution a = RandomMatch(&rng, 4);
    Substitution b = RandomMatch(&rng, 4);
    PackedBindings ka = PackedBindings::FromMatch(a);
    PackedBindings kb = PackedBindings::FromMatch(b);
    std::string sa = LegacyStringKey(a);
    std::string sb = LegacyStringKey(b);
    EXPECT_EQ(PackedBindings::LegacyLess(ka, kb), sa < sb)
        << "a=" << sa << " b=" << sb;
    EXPECT_EQ(PackedBindings::LegacyLess(kb, ka), sb < sa)
        << "a=" << sa << " b=" << sb;
  }
}

TEST(TriggerKeyTest, LegacyLessSharedPrefixStress) {
  // Force matches sharing binding prefixes so the comparison has to walk
  // deep before deciding, including equal-variable different-term cases.
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    Substitution base = RandomMatch(&rng, 3);
    Substitution a = base;
    Substitution b = base;
    Term var = TermFromRaw(RandomRaw(&rng, /*variable=*/true));
    a.Bind(var, TermFromRaw(RandomRaw(&rng, rng.Bernoulli(0.5))));
    b.Bind(var, TermFromRaw(RandomRaw(&rng, rng.Bernoulli(0.5))));
    PackedBindings ka = PackedBindings::FromMatch(a);
    PackedBindings kb = PackedBindings::FromMatch(b);
    EXPECT_EQ(PackedBindings::LegacyLess(ka, kb),
              LegacyStringKey(a) < LegacyStringKey(b));
  }
}

TEST(TriggerKeyTest, IdentityMatchesStringIdentity) {
  // Same key ⇔ same legacy string: dedup behaviour is unchanged.
  Rng rng(17);
  std::unordered_set<PackedBindings, PackedBindingsHash> packed;
  std::unordered_set<std::string> strings;
  for (int i = 0; i < 3000; ++i) {
    Substitution m = RandomMatch(&rng, 3);
    packed.insert(PackedBindings::FromMatch(m));
    strings.insert(LegacyStringKey(m));
  }
  EXPECT_EQ(packed.size(), strings.size());
}

TEST(TriggerKeyTest, FromRestrictedProjectsThroughTheMatch) {
  Substitution match;
  Term x = TermFromRaw(0x80000001u);
  Term y = TermFromRaw(0x80000002u);
  Term a = TermFromRaw(5u);
  match.Bind(x, a);
  match.Bind(y, a);
  // Restricting to {x} keys only x's image; an unbound variable keys itself.
  PackedBindings restricted = PackedBindings::FromRestricted(match, {x});
  PackedBindings full = PackedBindings::FromMatch(match);
  EXPECT_FALSE(restricted == full);
  ASSERT_EQ(restricted.words().size(), 1u);
  EXPECT_EQ(restricted.words()[0],
            (static_cast<uint64_t>(x.raw()) << 32) | a.raw());
  Term unbound = TermFromRaw(0x80000003u);
  PackedBindings self = PackedBindings::FromRestricted(match, {unbound});
  ASSERT_EQ(self.words().size(), 1u);
  EXPECT_EQ(self.words()[0],
            (static_cast<uint64_t>(unbound.raw()) << 32) | unbound.raw());
}

TEST(TriggerKeyTest, BoundaryRawValuesPackWithoutBleeding) {
  // Regression for the packed-word construction at the 32-bit boundary: a
  // low half with its top bit set (any variable image — raw >= 0x80000000)
  // must not bleed into the high half when packed. An unmasked or
  // sign-extended `hi << 32 | lo` would corrupt the variable field and
  // conflate distinct bindings.
  Term max_var = TermFromRaw(0xFFFFFFFFu);        // largest variable raw
  Term max_const = TermFromRaw(0x7FFFFFFFu);      // largest constant raw
  Term min_var = TermFromRaw(0x80000000u);        // variable id 0

  Substitution match;
  match.Bind(max_var, max_const);
  PackedBindings key = PackedBindings::FromMatch(match);
  ASSERT_EQ(key.words().size(), 1u);
  EXPECT_EQ(key.words()[0], 0xFFFFFFFF7FFFFFFFull);

  // A variable image puts the top bit into the LOW half: the high half
  // must still read back as exactly the bound variable.
  Substitution var_image;
  var_image.Bind(min_var, max_var);
  PackedBindings low_top_bit = PackedBindings::FromMatch(var_image);
  ASSERT_EQ(low_top_bit.words().size(), 1u);
  EXPECT_EQ(low_top_bit.words()[0] >> 32, min_var.raw());
  EXPECT_EQ(static_cast<uint32_t>(low_top_bit.words()[0]), max_var.raw());

  // Same boundary through FromRestricted (projects images through the
  // match): x -> max_var keys (x, max_var) intact.
  PackedBindings restricted =
      PackedBindings::FromRestricted(var_image, {min_var});
  ASSERT_EQ(restricted.words().size(), 1u);
  EXPECT_EQ(restricted.words()[0] >> 32, min_var.raw());
  EXPECT_EQ(static_cast<uint32_t>(restricted.words()[0]), max_var.raw());

  // An unbound all-ones variable keys itself: both halves saturated.
  Substitution empty;
  PackedBindings self = PackedBindings::FromRestricted(empty, {max_var});
  ASSERT_EQ(self.words().size(), 1u);
  EXPECT_EQ(self.words()[0], 0xFFFFFFFFFFFFFFFFull);

  // Boundary keys keep their identity: distinct boundary bindings hash and
  // compare as distinct.
  EXPECT_FALSE(key == low_top_bit);
  EXPECT_TRUE(PackedBindings::LegacyLess(low_top_bit, key) !=
              PackedBindings::LegacyLess(key, low_top_bit));
}

TEST(TriggerKeyTest, EmptyKeyBehaviour) {
  Substitution empty;
  PackedBindings key = PackedBindings::FromMatch(empty);
  EXPECT_TRUE(key.empty());
  EXPECT_FALSE(PackedBindings::LegacyLess(key, key));
  PackedBindings nonempty = PackedBindings::FromRestricted(
      empty, {TermFromRaw(0x80000001u)});
  EXPECT_TRUE(PackedBindings::LegacyLess(key, nonempty));   // "" < anything
  EXPECT_FALSE(PackedBindings::LegacyLess(nonempty, key));
}

}  // namespace
}  // namespace twchase
