#include <gtest/gtest.h>

#include "kb/examples.h"
#include "kb/generators.h"
#include "model/predicate.h"
#include "tw/grid.h"

namespace twchase {
namespace {

TEST(GridDetectionTest, GridGraphContainsItselfAndSmaller) {
  Graph g = Graph::Grid(4, 4);
  EXPECT_TRUE(GraphContainsGrid(g, 1));
  EXPECT_TRUE(GraphContainsGrid(g, 2));
  EXPECT_TRUE(GraphContainsGrid(g, 3));
  EXPECT_TRUE(GraphContainsGrid(g, 4));
  EXPECT_FALSE(GraphContainsGrid(g, 5));
}

TEST(GridDetectionTest, PathContainsNoTwoGrid) {
  Graph path(6);
  for (int i = 0; i < 5; ++i) path.AddEdge(i, i + 1);
  EXPECT_TRUE(GraphContainsGrid(path, 1));
  EXPECT_FALSE(GraphContainsGrid(path, 2));
}

TEST(GridDetectionTest, CycleOfFourIsATwoGrid) {
  // C4 is exactly the 2×2 grid.
  EXPECT_TRUE(GraphContainsGrid(Graph::Cycle(4), 2));
  // C5 contains no 2×2 grid as a subgraph (it has no 4-cycle).
  EXPECT_FALSE(GraphContainsGrid(Graph::Cycle(5), 2));
}

TEST(GridDetectionTest, AtomSetGridViaGaifman) {
  Vocabulary vocab;
  AtomSet grid = MakeGridInstance(&vocab, "h", "v", 3, 3);
  EXPECT_TRUE(ContainsGrid(grid, 3));
  EXPECT_FALSE(ContainsGrid(grid, 4));
  EXPECT_EQ(GridLowerBound(grid, 6), 3);
}

TEST(GridDetectionTest, RectangularContainsMinSide) {
  Vocabulary vocab;
  AtomSet grid = MakeGridInstance(&vocab, "h", "v", 3, 6);
  EXPECT_TRUE(ContainsGrid(grid, 3));
  EXPECT_FALSE(ContainsGrid(grid, 4));
}

TEST(GridDetectionTest, StaircaseUniversalModelPrefixGrowsGrids) {
  // Proposition 5's engine: I^h contains n×n grids for every n; the prefix
  // P^h_k contains grids growing with k.
  StaircaseWorld world;
  AtomSet prefix = world.UniversalModelPrefix(6);
  EXPECT_TRUE(ContainsGrid(prefix, 2));
  EXPECT_TRUE(ContainsGrid(prefix, 3));
  AtomSet small_prefix = world.UniversalModelPrefix(2);
  EXPECT_FALSE(ContainsGrid(small_prefix, 3));
}

}  // namespace
}  // namespace twchase
