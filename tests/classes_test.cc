// Tests of the empirical class membership matrix behind Figure 1.
#include <gtest/gtest.h>

#include "core/classes.h"
#include "kb/examples.h"

namespace twchase {
namespace {

ClassificationOptions SmallBudget() {
  ClassificationOptions options;
  options.max_steps = 60;
  options.tail_window = 6;
  return options;
}

TEST(ClassesTest, TransitiveClosureIsFesAndBts) {
  auto report = ClassifyKb(MakeTransitiveClosure(4), SmallBudget());
  EXPECT_TRUE(report.core_chase_terminated);
  EXPECT_TRUE(report.restricted_terminated);
  // The closure of an n-path interconnects all nodes; treewidth is bounded
  // by the (fixed) instance, which is what fes ∩ bts requires.
  EXPECT_LE(report.restricted_tw.uniform_bound, 4);
  EXPECT_LE(report.core_tw.uniform_bound, 4);
}

TEST(ClassesTest, BtsNotFes) {
  auto report = ClassifyKb(MakeBtsNotFes(), SmallBudget());
  // Not fes: the core chase never terminates.
  EXPECT_FALSE(report.core_chase_terminated);
  // bts: the restricted chase sequence stays a path (treewidth 1).
  EXPECT_FALSE(report.restricted_terminated);
  EXPECT_LE(report.restricted_tw.uniform_bound, 1);
  // Also core-bts, trivially: the core chase keeps a single edge.
  EXPECT_LE(report.core_tw.uniform_bound, 1);
}

TEST(ClassesTest, FesNotBts) {
  auto report = ClassifyKb(MakeFesNotBts(), SmallBudget());
  // fes: the core chase terminates.
  EXPECT_TRUE(report.core_chase_terminated);
  // fes ⊆ core-bts (Proposition 13): finite run, finite bound.
  EXPECT_GE(report.core_tw.uniform_bound, 0);
}

TEST(ClassesTest, SteepeningStaircaseIsCoreBtsOnly) {
  StaircaseWorld world;
  ClassificationOptions options;
  options.max_steps = 50;
  auto report = ClassifyKb(world.kb(), options);
  EXPECT_FALSE(report.core_chase_terminated);
  // Core-chase sequence uniformly bounded by 2 (Proposition 4) — the
  // defining membership of core-bts for this KB.
  EXPECT_LE(report.core_tw.uniform_bound, 2);
  EXPECT_LE(report.core_tw.recurring_estimate, 2);
}

TEST(ClassesTest, InflatingElevatorIsNotCoreBts) {
  ElevatorWorld world;
  ClassificationOptions options;
  options.max_steps = 45;
  auto report = ClassifyKb(world.kb(), options);
  EXPECT_FALSE(report.core_chase_terminated);
  // Corollary 1: not even recurringly bounded — the tail stays above the
  // initial treewidth.
  EXPECT_GE(report.core_tw.uniform_bound, 3);
  EXPECT_GE(report.core_tw.recurring_estimate, 2);
}

TEST(ClassesTest, ReportRowFormatting) {
  auto report = ClassifyKb(MakeTransitiveClosure(2), SmallBudget());
  std::string row = report.ToTableRow("tc");
  EXPECT_NE(row.find("tc"), std::string::npos);
  EXPECT_NE(row.find("TERM"), std::string::npos);
}

}  // namespace
}  // namespace twchase
