// Deterministic fault injection and the consistency invariant (tentpole of
// the robustness PR): a fault injected at ANY governed boundary stops the
// run with a consistent, checkpointable prefix, and resuming that
// checkpoint reproduces the uninterrupted golden run bit-identically —
// same final instance, same derivation journal, same observer event
// stream — across all five chase variants on the staircase and elevator
// families.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/chase.h"
#include "core/checkpoint.h"
#include "kb/examples.h"
#include "obs/observer.h"
#include "obs/stock_observers.h"
#include "util/fault.h"

namespace twchase {
namespace {

const ChaseVariant kAllVariants[] = {
    ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
    ChaseVariant::kRestricted, ChaseVariant::kFrugal, ChaseVariant::kCore};

enum class Family { kStaircase, kElevator };

KnowledgeBase FreshKb(Family family) {
  // Each run gets a freshly constructed world so fresh-null minting starts
  // from the same vocabulary state; construction is deterministic, so two
  // fresh worlds have identical term-id assignment (and thus identical
  // ProgramFingerprint).
  if (family == Family::kStaircase) return StaircaseWorld().kb();
  return ElevatorWorld().kb();
}

struct RunOutput {
  ChaseResult result;
  std::string events;
};

RunOutput RunVariant(Family family, ChaseVariant variant, size_t max_steps,
              bool record_log, FaultInjector* injector) {
  KnowledgeBase kb = FreshKb(family);
  std::ostringstream events;
  EventLogObserver log(&events);
  ChaseOptions options;
  options.variant = variant;
  options.limits.max_steps = max_steps;
  options.resume.record_log = record_log;
  options.observer = &log;
  StatusOr<ChaseResult> run = Status::Internal("not run");
  if (injector != nullptr) {
    FaultInjectorScope scope(injector);
    run = RunChase(kb, options);
  } else {
    run = RunChase(kb, options);
  }
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return {std::move(run).value(), events.str()};
}

RunOutput Resume(Family family, ChaseVariant variant, size_t max_steps,
                 const ChaseCheckpoint& checkpoint) {
  KnowledgeBase kb = FreshKb(family);
  std::ostringstream events;
  EventLogObserver log(&events);
  ChaseOptions options;
  options.variant = variant;
  options.limits.max_steps = max_steps;
  options.observer = &log;
  auto run = ResumeChase(kb, options, checkpoint);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return {std::move(run).value(), events.str()};
}

// Step-by-step derivation journal equality: rule sequence, trigger
// matches, simplifications, added atoms and every instance snapshot.
void ExpectSameJournal(const Derivation& got, const Derivation& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(context + ", step " + std::to_string(i));
    const DerivationStep& g = got.step(i);
    const DerivationStep& w = want.step(i);
    EXPECT_EQ(g.rule_index, w.rule_index);
    EXPECT_EQ(g.rule_label, w.rule_label);
    EXPECT_EQ(g.match, w.match);
    EXPECT_EQ(g.simplification, w.simplification);
    EXPECT_EQ(g.added_atoms, w.added_atoms);
    EXPECT_EQ(g.instance_size, w.instance_size);
    EXPECT_EQ(g.instance.ContentHash(), w.instance.ContentHash());
  }
}

void ExpectBitIdentical(const RunOutput& resumed, const RunOutput& golden,
                        const std::string& context) {
  EXPECT_EQ(resumed.result.stop_reason, golden.result.stop_reason) << context;
  EXPECT_EQ(resumed.result.steps, golden.result.steps) << context;
  EXPECT_EQ(resumed.result.rounds, golden.result.rounds) << context;
  EXPECT_EQ(resumed.result.derivation.Last().size(),
            golden.result.derivation.Last().size())
      << context;
  EXPECT_EQ(resumed.result.derivation.Last().ContentHash(),
            golden.result.derivation.Last().ContentHash())
      << context;
  ExpectSameJournal(resumed.result.derivation, golden.result.derivation,
                    context);
  EXPECT_EQ(resumed.events, golden.events) << context;
}

// Interrupts a recording run with `injector`, checkpoints it through the
// serialized text format, resumes, and demands bit-identity with the
// uninterrupted golden run. Returns false when the fault never fired (the
// run finished first), so sweeps know to stop probing deeper visits.
bool CheckInterruptResumeRoundTrip(Family family, ChaseVariant variant,
                                   size_t max_steps, FaultInjector injector,
                                   const RunOutput& golden,
                                   const std::string& context) {
  RunOutput interrupted =
      RunVariant(family, variant, max_steps, /*record_log=*/true, &injector);
  if (injector.fired_count() == 0) {
    // Budget reached before the armed visit; nothing was injected.
    EXPECT_EQ(interrupted.result.stop_reason, golden.result.stop_reason)
        << context;
    return false;
  }
  EXPECT_TRUE(interrupted.result.stop_reason == StopReason::kCancelled ||
              interrupted.result.stop_reason == StopReason::kMemoryBudget)
      << context;
  EXPECT_FALSE(interrupted.result.terminated) << context;
  // Injected stops are observer-visible.
  EXPECT_NE(interrupted.events.find("\"event\": \"fault_injected\""),
            std::string::npos)
      << context;

  ChaseOptions recorded_options;
  recorded_options.variant = variant;
  recorded_options.limits.max_steps = max_steps;
  recorded_options.resume.record_log = true;
  KnowledgeBase kb = FreshKb(family);
  ChaseCheckpoint checkpoint =
      MakeCheckpoint(kb, recorded_options, interrupted.result);

  // Round-trip through the text format, as the CLI does.
  auto parsed = ParseCheckpoint(SerializeCheckpoint(checkpoint));
  EXPECT_TRUE(parsed.ok()) << context << ": " << parsed.status().ToString();
  if (!parsed.ok()) return true;

  RunOutput resumed = Resume(family, variant, max_steps, parsed.value());
  ExpectBitIdentical(resumed, golden, context);
  return true;
}

std::string Context(Family family, ChaseVariant variant,
                    const std::string& what) {
  return std::string(family == Family::kStaircase ? "staircase" : "elevator") +
         "/" + ChaseVariantName(variant) + "/" + what;
}

// Sweep every trigger boundary of a short prefix run: for visit v = 1, 2,
// ... arm a cancellation (odd v) or an allocation failure (even v) at the
// v-th trigger boundary and prove the stop is resumable.
void SweepTriggerBoundaries(Family family, size_t max_steps) {
  for (ChaseVariant variant : kAllVariants) {
    RunOutput golden =
        RunVariant(family, variant, max_steps, /*record_log=*/false, nullptr);
    int verified = 0;
    for (uint64_t visit = 1;; ++visit) {
      FaultInjector injector;
      injector.Arm(FaultSite::kTriggerBoundary, visit,
                   visit % 2 == 1 ? FaultAction::kCancel
                                  : FaultAction::kAllocationFailure);
      if (!CheckInterruptResumeRoundTrip(
              family, variant, max_steps, injector, golden,
              Context(family, variant,
                      "trigger-visit-" + std::to_string(visit)))) {
        break;
      }
      ++verified;
      if (::testing::Test::HasFatalFailure()) return;
    }
    // The sweep must not pass vacuously: a run with max_steps applications
    // crosses at least max_steps trigger boundaries.
    EXPECT_GE(verified, static_cast<int>(max_steps))
        << Context(family, variant, "sweep-coverage");
  }
}

TEST(FaultInjectionTest, EveryTriggerBoundaryIsResumableOnStaircase) {
  SweepTriggerBoundaries(Family::kStaircase, /*max_steps=*/6);
}

TEST(FaultInjectionTest, EveryTriggerBoundaryIsResumableOnElevator) {
  SweepTriggerBoundaries(Family::kElevator, /*max_steps=*/5);
}

TEST(FaultInjectionTest, RoundBoundaryStopsAreResumable) {
  for (ChaseVariant variant : kAllVariants) {
    for (Family family : {Family::kStaircase, Family::kElevator}) {
      const size_t max_steps = 6;
      RunOutput golden =
          RunVariant(family, variant, max_steps, /*record_log=*/false, nullptr);
      FaultInjector injector;
      injector.Arm(FaultSite::kRoundBoundary, 2, FaultAction::kCancel);
      CheckInterruptResumeRoundTrip(family, variant, max_steps, injector,
                                    golden,
                                    Context(family, variant, "round-2"));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(FaultInjectionTest, SeededSchedulesAreResumable) {
  // Seed-derived schedules hit arbitrary sites (hom search nodes, core
  // folds, ...), exercising the interrupted-search degradation paths; a
  // failing seed printed by gtest reproduces the schedule exactly.
  for (ChaseVariant variant :
       {ChaseVariant::kRestricted, ChaseVariant::kFrugal,
        ChaseVariant::kCore}) {
    const size_t max_steps = 5;
    RunOutput golden = RunVariant(Family::kElevator, variant, max_steps,
                           /*record_log=*/false, nullptr);
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      FaultInjector injector = FaultInjector::FromSeed(seed, /*max_visit=*/40);
      CheckInterruptResumeRoundTrip(
          Family::kElevator, variant, max_steps, injector, golden,
          Context(Family::kElevator, variant,
                  "seed-" + std::to_string(seed)));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(FaultInjectionTest, InjectorIsInertWithoutScope) {
  // An armed injector that is never installed must not perturb a run.
  FaultInjector injector;
  injector.Arm(FaultSite::kTriggerBoundary, 1, FaultAction::kCancel);
  RunOutput golden = RunVariant(Family::kStaircase, ChaseVariant::kRestricted, 4,
                         /*record_log=*/false, nullptr);
  // Note: injector deliberately NOT passed — no scope installed.
  RunOutput plain = RunVariant(Family::kStaircase, ChaseVariant::kRestricted, 4,
                        /*record_log=*/false, nullptr);
  EXPECT_EQ(injector.fired_count(), 0u);
  ExpectBitIdentical(plain, golden, "inert-injector");
}

TEST(FaultInjectionTest, SeedScheduleIsDeterministic) {
  for (uint64_t seed : {1ull, 7ull, 123456789ull}) {
    FaultInjector a = FaultInjector::FromSeed(seed, 10);
    FaultInjector b = FaultInjector::FromSeed(seed, 10);
    // Identical schedules fire at the same visit of the same site.
    for (size_t site = 0; site < kNumFaultSites; ++site) {
      for (uint64_t visit = 1; visit <= 10; ++visit) {
        FaultAction action_a;
        FaultAction action_b;
        bool fired_a = a.Poll(static_cast<FaultSite>(site), &action_a);
        bool fired_b = b.Poll(static_cast<FaultSite>(site), &action_b);
        ASSERT_EQ(fired_a, fired_b) << "seed " << seed;
        if (fired_a) {
          ASSERT_EQ(action_a, action_b) << "seed " << seed;
        }
      }
    }
  }
}

}  // namespace
}  // namespace twchase
