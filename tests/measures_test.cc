#include <gtest/gtest.h>

#include "core/chase.h"
#include "core/measures.h"
#include "kb/examples.h"

namespace twchase {
namespace {

TEST(MeasuresTest, SizeSeriesMatchesInstances) {
  auto kb = MakeTransitiveClosure(3);
  ChaseOptions options;
  auto run = RunChase(kb, options);
  ASSERT_TRUE(run.ok());
  std::vector<int> sizes = MeasureSeries(run->derivation, Measure::kSize);
  ASSERT_EQ(sizes.size(), run->derivation.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], static_cast<int>(run->derivation.Instance(i).size()));
  }
  // Monotone for a restricted chase.
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GE(sizes[i], sizes[i - 1]);
  }
}

TEST(MeasuresTest, TreewidthBoundsOrdered) {
  StaircaseWorld world;
  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = 15;
  auto run = RunChase(world.kb(), options);
  ASSERT_TRUE(run.ok());
  std::vector<int> ubs =
      MeasureSeries(run->derivation, Measure::kTreewidthUpper);
  std::vector<int> lbs =
      MeasureSeries(run->derivation, Measure::kTreewidthLower);
  ASSERT_EQ(ubs.size(), lbs.size());
  for (size_t i = 0; i < ubs.size(); ++i) {
    EXPECT_LE(lbs[i], ubs[i]) << "step " << i;
  }
}

TEST(MeasuresTest, BoundednessSummary) {
  std::vector<int> series = {1, 2, 3, 2, 1, 1, 2, 1};
  BoundednessSummary s = SummarizeBoundedness(series, 4);
  EXPECT_EQ(s.uniform_bound, 3);
  EXPECT_EQ(s.recurring_estimate, 1);  // min over last 4
  EXPECT_EQ(s.final_value, 1);
}

TEST(MeasuresTest, BoundednessSummaryEdgeCases) {
  EXPECT_EQ(SummarizeBoundedness({}, 3).uniform_bound, -1);
  BoundednessSummary one = SummarizeBoundedness({5}, 10);
  EXPECT_EQ(one.uniform_bound, 5);
  EXPECT_EQ(one.recurring_estimate, 5);
  // Window of zero is clamped to one.
  BoundednessSummary clamp = SummarizeBoundedness({1, 9}, 0);
  EXPECT_EQ(clamp.recurring_estimate, 9);
}

TEST(MeasuresTest, UniformImpliesRecurring) {
  // For any series, the recurring estimate never exceeds the uniform bound
  // (Section 5: uniform boundedness implies recurring boundedness).
  std::vector<int> series = {3, 1, 4, 1, 5, 2};
  for (size_t w = 1; w <= series.size(); ++w) {
    BoundednessSummary s = SummarizeBoundedness(series, w);
    EXPECT_LE(s.recurring_estimate, s.uniform_bound);
  }
}

}  // namespace
}  // namespace twchase
