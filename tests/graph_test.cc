#include <gtest/gtest.h>

#include "kb/generators.h"
#include "model/predicate.h"
#include "tw/graph.h"

namespace twchase {
namespace {

TEST(GraphTest, AddEdgeIsIdempotentAndSymmetric) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(GraphTest, SelfLoopsIgnored) {
  Graph g(2);
  g.AddEdge(0, 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, FactoryShapes) {
  Graph grid = Graph::Grid(3, 4);
  EXPECT_EQ(grid.num_vertices(), 12);
  EXPECT_EQ(grid.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  Graph k5 = Graph::Complete(5);
  EXPECT_EQ(k5.num_edges(), 10);
  Graph c7 = Graph::Cycle(7);
  EXPECT_EQ(c7.num_edges(), 7);
  for (int v = 0; v < 7; ++v) EXPECT_EQ(c7.Degree(v), 2);
}

TEST(GraphTest, GaifmanOfBinaryAtoms) {
  Vocabulary vocab;
  AtomSet path = MakePathInstance(&vocab, "e", 3);  // 4 terms, 3 edges
  std::vector<Term> terms;
  Graph g = Graph::GaifmanOf(path, &terms);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(terms.size(), 4u);
}

TEST(GraphTest, GaifmanCliquesFromWideAtoms) {
  Vocabulary vocab;
  PredicateId p = vocab.MustPredicate("p", 4);
  AtomSet s;
  s.Insert(Atom(p, {vocab.NamedVariable("A"), vocab.NamedVariable("B"),
                    vocab.NamedVariable("C"), vocab.NamedVariable("D")}));
  Graph g = Graph::GaifmanOf(s, nullptr);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 6);  // K4
}

TEST(GraphTest, GaifmanIgnoresSelfLoopsAndRepeats) {
  Vocabulary vocab;
  PredicateId e = vocab.MustPredicate("e", 2);
  Term x = vocab.NamedVariable("X");
  AtomSet s;
  s.Insert(Atom(e, {x, x}));
  Graph g = Graph::GaifmanOf(s, nullptr);
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.num_edges(), 0);
}

}  // namespace
}  // namespace twchase
