#include <gtest/gtest.h>

#include "kb/examples.h"
#include "kb/generators.h"
#include "model/predicate.h"
#include "parser/parser.h"
#include "tw/hypergraph.h"

namespace twchase {
namespace {

AtomSet Atoms(const std::string& facts) {
  auto program = ParseProgram(facts);
  TWCHASE_CHECK_MSG(program.ok(), program.status().ToString());
  return program->kb.facts;
}

TEST(HypergraphTest, BuildsDedupedEdges) {
  Hypergraph hg = Hypergraph::Of(Atoms("r(a, b, c). s(a, b, c). t(a)."));
  EXPECT_EQ(hg.vertices.size(), 3u);
  // r and s have the same scope {a,b,c}: one hyperedge; t adds {a}.
  EXPECT_EQ(hg.edges.size(), 2u);
}

TEST(AlphaAcyclicityTest, PathsAndStarsAreAcyclic) {
  EXPECT_TRUE(IsAlphaAcyclic(Atoms("e(a, b). e(b, c). e(c, d).")));
  EXPECT_TRUE(IsAlphaAcyclic(Atoms("e(m, a). e(m, b). e(m, c).")));
  Vocabulary vocab;
  EXPECT_TRUE(IsAlphaAcyclic(MakePathInstance(&vocab, "e", 6)));
}

TEST(AlphaAcyclicityTest, CyclesAreCyclic) {
  EXPECT_FALSE(IsAlphaAcyclic(Atoms("e(a, b). e(b, c). e(c, a).")));
  Vocabulary vocab;
  EXPECT_FALSE(IsAlphaAcyclic(MakeCycleInstance(&vocab, "e", 4)));
  EXPECT_FALSE(IsAlphaAcyclic(MakeGridInstance(&vocab, "h", "v", 2, 2)));
}

TEST(AlphaAcyclicityTest, TriangleCoveredByWideAtomIsAcyclic) {
  // α-acyclicity is not monotone: adding the covering 3-ary atom makes the
  // triangle acyclic (the classic example).
  AtomSet triangle = Atoms("e(a, b). e(b, c). e(c, a).");
  EXPECT_FALSE(IsAlphaAcyclic(triangle));
  AtomSet covered = Atoms("e(a, b). e(b, c). e(c, a). t3(a, b, c).");
  EXPECT_TRUE(IsAlphaAcyclic(covered));
}

TEST(JoinTreeTest, BuildsValidJoinTree) {
  AtomSet acyclic = Atoms("r(a, b). s(b, c). t(c, d). u(b, e).");
  auto tree = BuildJoinTree(acyclic);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->nodes.size(), 4u);
  EXPECT_EQ(tree->edges.size(), 3u);
  // Connectivity property: for every term, the nodes containing it induce a
  // connected subtree. Verify by union-find over term-sharing edges.
  for (Term t : acyclic.Terms()) {
    std::vector<int> holders;
    for (size_t i = 0; i < tree->nodes.size(); ++i) {
      auto distinct = tree->nodes[i].DistinctTerms();
      if (std::find(distinct.begin(), distinct.end(), t) != distinct.end()) {
        holders.push_back(static_cast<int>(i));
      }
    }
    if (holders.size() <= 1) continue;
    // BFS within holder-induced tree edges.
    std::vector<bool> is_holder(tree->nodes.size(), false);
    for (int h : holders) is_holder[h] = true;
    std::vector<int> reached{holders[0]};
    std::vector<bool> seen(tree->nodes.size(), false);
    seen[holders[0]] = true;
    for (size_t i = 0; i < reached.size(); ++i) {
      for (const auto& [a, b] : tree->edges) {
        int other = -1;
        if (a == reached[i]) other = b;
        if (b == reached[i]) other = a;
        if (other >= 0 && is_holder[other] && !seen[other]) {
          seen[other] = true;
          reached.push_back(other);
        }
      }
    }
    EXPECT_EQ(reached.size(), holders.size())
        << "term occurrences disconnected";
  }
}

TEST(JoinTreeTest, RefusesCyclicInput) {
  EXPECT_FALSE(BuildJoinTree(Atoms("e(a, b). e(b, c). e(c, a).")).has_value());
}

TEST(HypertreeWidthTest, AcyclicIsOne) {
  EXPECT_EQ(HypertreeWidthUpperBound(Atoms("r(a, b). s(b, c).")), 1);
  EXPECT_EQ(HypertreeWidthUpperBound(AtomSet()), 0);
}

TEST(HypertreeWidthTest, CyclesNeedTwo) {
  Vocabulary vocab;
  AtomSet c5 = MakeCycleInstance(&vocab, "e", 5);
  int width = HypertreeWidthUpperBound(c5);
  EXPECT_GE(width, 2);
  EXPECT_LE(width, 3);  // ghw(C5) = 2; greedy cover may lose a little
}

TEST(HypertreeWidthTest, StaircaseStepsSmall) {
  StaircaseWorld world;
  // Steps have treewidth 2 over binary atoms: hypertree width UB stays
  // small too (the measure-transfer remark of Section 5).
  EXPECT_LE(HypertreeWidthUpperBound(world.Step(4)), 3);
}

TEST(HypertreeWidthTest, GridGrows) {
  Vocabulary vocab;
  AtomSet g4 = MakeGridInstance(&vocab, "h", "v", 4, 4);
  EXPECT_GE(HypertreeWidthUpperBound(g4), 2);
}

}  // namespace
}  // namespace twchase
