// Storage-equivalence oracle for the columnar matching backend (tentpole of
// the columnar-storage PR): candidate generation over dictionary-encoded
// ColumnSegments must be BIT-IDENTICAL to the legacy posting-list walk —
// same final instance, same derivation journal, same observer event
// stream — for every chase variant, on both worked example families, at
// every thread count. The suite also unit-tests the two new model-layer
// pieces (TermDictionary, ColumnSegment) and the AtomSet fallbacks the
// matcher's join path relies on (mixed arity, compaction).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/chase.h"
#include "hom/matcher.h"
#include "kb/examples.h"
#include "model/atom_set.h"
#include "model/column_segment.h"
#include "model/term_dictionary.h"
#include "obs/observer.h"
#include "obs/stock_observers.h"

namespace twchase {
namespace {

// --------------------------------------------------------------------------
// Backend bit-identity oracle.

const ChaseVariant kAllVariants[] = {
    ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
    ChaseVariant::kRestricted, ChaseVariant::kFrugal, ChaseVariant::kCore};

enum class Family { kStaircase, kElevator };

KnowledgeBase FreshKb(Family family) {
  // Fresh world per run so fresh-null minting starts from the same
  // vocabulary state (construction is deterministic).
  if (family == Family::kStaircase) return StaircaseWorld().kb();
  return ElevatorWorld().kb();
}

std::string FamilyName(Family family) {
  return family == Family::kStaircase ? "staircase" : "elevator";
}

const char* BackendName(MatchBackend backend) {
  return backend == MatchBackend::kColumnar ? "columnar" : "legacy";
}

// Scoped backend switch: restores the previous backend even on test failure
// so a failing case cannot poison the rest of the binary.
struct BackendGuard {
  explicit BackendGuard(MatchBackend backend)
      : previous(CurrentMatchBackend()) {
    SetMatchBackend(backend);
  }
  ~BackendGuard() { SetMatchBackend(previous); }
  MatchBackend previous;
};

struct RunOutput {
  ChaseResult result;
  std::string events;
};

RunOutput RunVariant(Family family, ChaseVariant variant, size_t max_steps,
                     size_t threads, MatchBackend backend) {
  BackendGuard guard(backend);
  KnowledgeBase kb = FreshKb(family);
  std::ostringstream events;
  EventLogObserver log(&events);
  ChaseOptions options;
  options.variant = variant;
  options.limits.max_steps = max_steps;
  options.parallel.threads = threads;
  options.observer = &log;
  auto run = RunChase(kb, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return {std::move(run).value(), events.str()};
}

// Step-by-step derivation journal equality: rule sequence, trigger
// matches, simplifications, added atoms and every instance snapshot.
void ExpectSameJournal(const Derivation& got, const Derivation& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(context + ", step " + std::to_string(i));
    const DerivationStep& g = got.step(i);
    const DerivationStep& w = want.step(i);
    EXPECT_EQ(g.rule_index, w.rule_index);
    EXPECT_EQ(g.rule_label, w.rule_label);
    EXPECT_EQ(g.match, w.match);
    EXPECT_EQ(g.simplification, w.simplification);
    EXPECT_EQ(g.added_atoms, w.added_atoms);
    EXPECT_EQ(g.instance_size, w.instance_size);
    EXPECT_EQ(g.instance.ContentHash(), w.instance.ContentHash());
  }
}

void ExpectBitIdentical(const RunOutput& got, const RunOutput& golden,
                        const std::string& context) {
  EXPECT_EQ(got.result.stop_reason, golden.result.stop_reason) << context;
  EXPECT_EQ(got.result.steps, golden.result.steps) << context;
  EXPECT_EQ(got.result.rounds, golden.result.rounds) << context;
  EXPECT_EQ(got.result.derivation.Last().size(),
            golden.result.derivation.Last().size())
      << context;
  EXPECT_EQ(got.result.derivation.Last().ContentHash(),
            golden.result.derivation.Last().ContentHash())
      << context;
  ExpectSameJournal(got.result.derivation, golden.result.derivation, context);
  EXPECT_EQ(got.events, golden.events) << context;
}

void SweepFamily(Family family, size_t max_steps) {
  for (ChaseVariant variant : kAllVariants) {
    RunOutput golden = RunVariant(family, variant, max_steps, /*threads=*/1,
                                  MatchBackend::kLegacy);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (MatchBackend backend :
           {MatchBackend::kColumnar, MatchBackend::kLegacy}) {
        if (backend == MatchBackend::kLegacy && threads == 1) continue;
        RunOutput run = RunVariant(family, variant, max_steps, threads,
                                   backend);
        ExpectBitIdentical(
            run, golden,
            FamilyName(family) + "/" + ChaseVariantName(variant) + "/" +
                BackendName(backend) + "/threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(BackendBitIdentity, AllVariantsStaircase) {
  SweepFamily(Family::kStaircase, /*max_steps=*/16);
}

TEST(BackendBitIdentity, AllVariantsElevator) {
  SweepFamily(Family::kElevator, /*max_steps=*/12);
}

// --------------------------------------------------------------------------
// chase.match.* counters.

TEST(MatchCountersTest, ColumnarRunsPopulateCountersLegacyStaysZero) {
  RunOutput columnar =
      RunVariant(Family::kStaircase, ChaseVariant::kRestricted,
                 /*max_steps=*/16, /*threads=*/1, MatchBackend::kColumnar);
  EXPECT_GT(columnar.result.stats.match_index_probes +
                columnar.result.stats.match_column_scans,
            0u);
  EXPECT_GT(columnar.result.stats.match_index_builds, 0u);
  EXPECT_GT(columnar.result.stats.match_index_build_bytes, 0u);

  RunOutput legacy =
      RunVariant(Family::kStaircase, ChaseVariant::kRestricted,
                 /*max_steps=*/16, /*threads=*/1, MatchBackend::kLegacy);
  EXPECT_EQ(legacy.result.stats.match_index_probes, 0u);
  EXPECT_EQ(legacy.result.stats.match_column_scans, 0u);
  EXPECT_EQ(legacy.result.stats.match_join_fallbacks, 0u);
  EXPECT_EQ(legacy.result.stats.match_index_builds, 0u);
  EXPECT_EQ(legacy.result.stats.match_index_build_bytes, 0u);
}

TEST(MatchCountersTest, CountersAreDeterministicAcrossThreadCounts) {
  // Each counter is a per-search total and lazy index builds happen exactly
  // once per stale-to-ready transition, so the sums cannot depend on how
  // the searches were scheduled across workers.
  for (ChaseVariant variant : {ChaseVariant::kRestricted, ChaseVariant::kCore}) {
    RunOutput seq = RunVariant(Family::kStaircase, variant, /*max_steps=*/16,
                               /*threads=*/1, MatchBackend::kColumnar);
    RunOutput par = RunVariant(Family::kStaircase, variant, /*max_steps=*/16,
                               /*threads=*/4, MatchBackend::kColumnar);
    const ChaseStats& a = seq.result.stats;
    const ChaseStats& b = par.result.stats;
    std::string context = std::string(ChaseVariantName(variant));
    EXPECT_EQ(a.match_index_probes, b.match_index_probes) << context;
    EXPECT_EQ(a.match_column_scans, b.match_column_scans) << context;
    EXPECT_EQ(a.match_join_fallbacks, b.match_join_fallbacks) << context;
    EXPECT_EQ(a.match_index_builds, b.match_index_builds) << context;
    EXPECT_EQ(a.match_index_build_bytes, b.match_index_build_bytes) << context;
  }
}

TEST(MatchCountersTest, InjectiveSearchFallsBackToLegacyPath) {
  Vocabulary vocab;
  PredicateId p = vocab.MustPredicate("p", 2);
  Term a = vocab.Constant("a");
  Term b = vocab.Constant("b");
  Term x = vocab.NamedVariable("X");
  Term y = vocab.NamedVariable("Y");

  AtomSet target;
  target.Insert(Atom(p, {a, b}));
  AtomSet pattern;
  pattern.Insert(Atom(p, {x, y}));

  BackendGuard guard(MatchBackend::kColumnar);
  MatchCounters counters;
  MatchCountersScope scope(&counters);

  HomOptions plain;
  plain.limit = 0;
  EXPECT_EQ(FindAllHomomorphisms(pattern, target, plain).size(), 1u);
  EXPECT_EQ(counters.join_fallbacks.load(), 0u);

  HomOptions injective = plain;
  injective.injective = true;
  EXPECT_EQ(FindAllHomomorphisms(pattern, target, injective).size(), 1u);
  EXPECT_GT(counters.join_fallbacks.load(), 0u);
}

// --------------------------------------------------------------------------
// TermDictionary.

TEST(TermDictionaryTest, InterningIsStableAndDense) {
  TermDictionary dict;
  Term c0 = Term::Constant(0);
  Term c7 = Term::Constant(7);
  Term v3 = Term::Variable(3);

  EXPECT_EQ(dict.Intern(c0), 0u);
  EXPECT_EQ(dict.Intern(c7), 1u);
  EXPECT_EQ(dict.Intern(v3), 2u);
  // Re-interning returns the existing id.
  EXPECT_EQ(dict.Intern(c7), 1u);
  EXPECT_EQ(dict.size(), 3u);

  EXPECT_EQ(dict.Find(c0), 0u);
  EXPECT_EQ(dict.Find(v3), 2u);
  EXPECT_EQ(dict.Find(Term::Constant(3)), TermDictionary::kNoId);
  EXPECT_EQ(dict.Find(Term::Variable(7)), TermDictionary::kNoId);

  EXPECT_EQ(dict.term(0), c0);
  EXPECT_EQ(dict.term(1), c7);
  EXPECT_EQ(dict.term(2), v3);
}

TEST(TermDictionaryTest, SurvivesBlockBoundariesAndCopies) {
  TermDictionary dict;
  constexpr size_t kCount = 10000;  // > 2 reverse-map blocks of 4096
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(dict.Intern(Term::Variable(static_cast<uint32_t>(i))),
              static_cast<TermId>(i));
  }
  TermDictionary copy = dict;
  // Copies are independent: interning into one does not affect the other.
  EXPECT_EQ(copy.Intern(Term::Constant(5)), static_cast<TermId>(kCount));
  EXPECT_EQ(dict.Find(Term::Constant(5)), TermDictionary::kNoId);
  for (size_t i = 0; i < kCount; i += 977) {
    EXPECT_EQ(copy.term(static_cast<TermId>(i)),
              Term::Variable(static_cast<uint32_t>(i)));
    EXPECT_EQ(dict.Find(Term::Variable(static_cast<uint32_t>(i))),
              static_cast<TermId>(i));
  }
}

// --------------------------------------------------------------------------
// ColumnSegment.

// Resolves a probe the way the matcher does: the sorted range first, then a
// linear filter over the unmerged tail. The combined list is ascending.
std::vector<uint32_t> RowsOf(const ColumnSegment& seg, uint32_t col, TermId id,
                             IndexBuildStats* build) {
  ColumnSegment::ProbeResult range = seg.EqualRange(col, id, build);
  std::vector<uint32_t> out(range.begin, range.end);
  for (uint32_t row = range.tail_begin; row != range.tail_end; ++row) {
    if (seg.cell(row, col) == id) out.push_back(row);
  }
  return out;
}

TEST(ColumnSegmentTest, EqualRangeFindsDuplicatesInRowOrder) {
  ColumnSegment seg(/*arity=*/2);
  const TermId rows[][2] = {{5, 1}, {3, 2}, {5, 3}, {5, 1}, {3, 1}};
  for (uint32_t i = 0; i < 5; ++i) seg.Append(/*slot=*/i * 2, rows[i]);

  // Five rows sit comfortably inside the tail threshold: probes answer from
  // the linear tail scan without ever paying for a sort.
  IndexBuildStats build;
  EXPECT_EQ(RowsOf(seg, 0, 5, &build), (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_EQ(build.builds, 0u);
  EXPECT_EQ(seg.index_builds(), 0u);
  EXPECT_EQ(seg.IndexBytes(), 0u);
  EXPECT_EQ(RowsOf(seg, 0, 3, &build), (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(RowsOf(seg, 0, 4, &build).size(), 0u);
  EXPECT_EQ(RowsOf(seg, 1, 1, &build), (std::vector<uint32_t>{0, 3, 4}));

  // Rows preserve slots and cells.
  EXPECT_EQ(seg.slot(3), 6u);
  EXPECT_EQ(seg.cell(3, 0), 5u);
  EXPECT_EQ(seg.cell(3, 1), 1u);
}

TEST(ColumnSegmentTest, TailMergesOnlyPastThreshold) {
  ColumnSegment seg(/*arity=*/1);
  for (uint32_t i = 0; i < ColumnSegment::kTailMergeThreshold; ++i) {
    const TermId v = i % 3;
    seg.Append(i, &v);
  }
  // A threshold-sized tail is still scanned linearly: no build.
  IndexBuildStats build;
  std::vector<uint32_t> expect{0, 3, 6, 9, 12, 15};
  EXPECT_EQ(RowsOf(seg, 0, 0, &build), expect);
  EXPECT_EQ(build.builds, 0u);
  EXPECT_EQ(seg.index_builds(), 0u);

  // One more row pushes the tail over the threshold: the next probe merges
  // everything into the sorted index, and the tail comes back empty.
  const TermId zero = 0;
  seg.Append(16, &zero);
  expect.push_back(16);
  EXPECT_EQ(RowsOf(seg, 0, 0, &build), expect);
  EXPECT_EQ(seg.index_builds(), 1u);
  EXPECT_EQ(build.builds, 1u);
  EXPECT_GT(build.bytes, 0u);
  EXPECT_GT(seg.IndexBytes(), 0u);

  // A small batch of fresh appends rides in the tail without re-merging...
  seg.Append(17, &zero);
  expect.push_back(17);
  EXPECT_EQ(RowsOf(seg, 0, 0, &build), expect);
  EXPECT_EQ(seg.index_builds(), 1u);

  // ...until the tail outgrows the threshold again, forcing exactly one
  // incremental merge that absorbs the whole batch.
  for (uint32_t i = 18; i < 18 + ColumnSegment::kTailMergeThreshold + 1; ++i) {
    seg.Append(i, &zero);
    expect.push_back(i);
  }
  EXPECT_EQ(RowsOf(seg, 0, 0, &build), expect);
  EXPECT_EQ(seg.index_builds(), 2u);
}

TEST(ColumnSegmentTest, EmptySegmentProbesAreEmpty) {
  ColumnSegment seg(/*arity=*/3);
  EXPECT_EQ(seg.rows(), 0u);
  IndexBuildStats build;
  EXPECT_EQ(RowsOf(seg, 2, 0, &build).size(), 0u);
}

TEST(ColumnSegmentTest, CopiesDropIndexesButKeepRows) {
  ColumnSegment seg(/*arity=*/1);
  const size_t kRows = ColumnSegment::kTailMergeThreshold + 1;
  for (uint32_t i = 0; i < kRows; ++i) {
    const TermId v = 7;
    seg.Append(i, &v);
  }
  IndexBuildStats build;
  std::vector<uint32_t> expect;
  for (uint32_t i = 0; i < kRows; ++i) expect.push_back(i);
  EXPECT_EQ(RowsOf(seg, 0, 7, &build), expect);
  EXPECT_GT(seg.IndexBytes(), 0u);

  ColumnSegment copy(seg);
  EXPECT_EQ(copy.rows(), kRows);
  EXPECT_EQ(copy.IndexBytes(), 0u);  // rebuilt lazily on first probe
  EXPECT_EQ(RowsOf(copy, 0, 7, &build), expect);
  // Content-deterministic estimate: identical for original and copy even
  // though they hold different resident index state.
  EXPECT_EQ(copy.ApproxMemoryBytes(), seg.ApproxMemoryBytes());
}

// --------------------------------------------------------------------------
// AtomSet integration: segments, fallbacks, compaction.

class AtomSetSegmentTest : public ::testing::Test {
 protected:
  AtomSetSegmentTest() {
    p_ = vocab_.MustPredicate("p", 2);
    q_ = vocab_.MustPredicate("q", 1);
    a_ = vocab_.Constant("a");
    b_ = vocab_.Constant("b");
    c_ = vocab_.Constant("c");
  }

  Vocabulary vocab_;
  PredicateId p_, q_;
  Term a_, b_, c_;
};

TEST_F(AtomSetSegmentTest, SegmentTracksInsertionsByPredicate) {
  AtomSet s;
  EXPECT_EQ(s.SegmentFor(p_), nullptr);  // never inserted
  s.Insert(Atom(p_, {a_, b_}));
  s.Insert(Atom(p_, {b_, c_}));
  s.Insert(Atom(q_, {a_}));
  const ColumnSegment* seg = s.SegmentFor(p_);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->arity(), 2u);
  EXPECT_EQ(seg->rows(), 2u);
  const TermDictionary& dict = s.dictionary();
  EXPECT_EQ(seg->cell(0, 0), dict.Find(a_));
  EXPECT_EQ(seg->cell(1, 0), dict.Find(b_));
  EXPECT_EQ(seg->cell(1, 1), dict.Find(c_));
}

TEST_F(AtomSetSegmentTest, MixedArityPredicateOptsOutOfColumnarStorage) {
  // Atom does not enforce the declared arity, so a predicate can show up
  // with two widths; such predicates permanently fall back to the per-atom
  // path (SegmentFor == nullptr) rather than storing ragged rows.
  AtomSet s;
  s.Insert(Atom(p_, {a_, b_}));
  ASSERT_NE(s.SegmentFor(p_), nullptr);
  s.Insert(Atom(p_, {a_}));
  EXPECT_EQ(s.SegmentFor(p_), nullptr);

  // Matching still works through the fallback, counted as such.
  BackendGuard guard(MatchBackend::kColumnar);
  MatchCounters counters;
  MatchCountersScope scope(&counters);
  AtomSet pattern;
  Term x = vocab_.NamedVariable("X");
  Term y = vocab_.NamedVariable("Y");
  pattern.Insert(Atom(p_, {x, y}));
  HomOptions options;
  options.limit = 0;
  EXPECT_EQ(FindAllHomomorphisms(pattern, s, options).size(), 1u);
  EXPECT_GT(counters.join_fallbacks.load(), 0u);
}

TEST_F(AtomSetSegmentTest, EraseFiltersRowsAndCompactionRebuildsSegments) {
  AtomSet s;
  s.Insert(Atom(p_, {a_, b_}));
  s.Insert(Atom(p_, {a_, c_}));
  s.Insert(Atom(p_, {b_, c_}));
  s.Erase(Atom(p_, {a_, c_}));

  // Erased rows stay in the segment (liveness is filtered at read time by
  // the matcher), so joins must not resurrect them.
  AtomSet pattern;
  Term x = vocab_.NamedVariable("X");
  pattern.Insert(Atom(p_, {a_, x}));
  HomOptions options;
  options.limit = 0;
  BackendGuard guard(MatchBackend::kColumnar);
  EXPECT_EQ(FindAllHomomorphisms(pattern, s, options).size(), 1u);

  // Drive the tombstone ratio past the internal compaction threshold
  // (>= 64 dead and dead >= live); the segments are rebuilt from the live
  // slots and matching and content are unchanged.
  for (uint32_t i = 0; i < 70; ++i) {
    Atom filler(q_, {vocab_.Constant("f" + std::to_string(i))});
    s.Insert(filler);
    s.Erase(filler);
  }
  uint64_t hash = s.ContentHash();
  const ColumnSegment* seg = s.SegmentFor(p_);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->rows(), 2u);  // a_c tombstone dropped by the compaction
  EXPECT_EQ(s.ContentHash(), hash);
  EXPECT_EQ(FindAllHomomorphisms(pattern, s, options).size(), 1u);
}

TEST_F(AtomSetSegmentTest, CopiedSetsMatchIdenticallyAndReportSameBytes) {
  AtomSet s;
  s.Insert(Atom(p_, {a_, b_}));
  s.Insert(Atom(p_, {b_, c_}));
  AtomSet copy = s;
  EXPECT_EQ(copy.ContentHash(), s.ContentHash());
  EXPECT_EQ(copy.ApproxMemoryBytes(), s.ApproxMemoryBytes());

  AtomSet pattern;
  Term x = vocab_.NamedVariable("X");
  Term y = vocab_.NamedVariable("Y");
  pattern.Insert(Atom(p_, {x, y}));
  HomOptions options;
  options.limit = 0;
  BackendGuard guard(MatchBackend::kColumnar);
  EXPECT_EQ(FindAllHomomorphisms(pattern, copy, options),
            FindAllHomomorphisms(pattern, s, options));

  // Divergence after the copy stays local to each set.
  copy.Insert(Atom(p_, {c_, a_}));
  EXPECT_EQ(FindAllHomomorphisms(pattern, copy, options).size(), 3u);
  EXPECT_EQ(FindAllHomomorphisms(pattern, s, options).size(), 2u);
}

}  // namespace
}  // namespace twchase
