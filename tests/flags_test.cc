#include "tools/flags.h"

#include <gtest/gtest.h>

#include <string>

namespace twchase {
namespace {

using flags::ArgMatcher;
using flags::ParseSize;

TEST(ParseSizeTest, AcceptsPlainDecimals) {
  size_t value = 99;
  EXPECT_TRUE(ParseSize("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(ParseSize("1000", &value));
  EXPECT_EQ(value, 1000u);
  EXPECT_TRUE(ParseSize("18446744073709551615", &value));  // SIZE_MAX
  EXPECT_EQ(value, SIZE_MAX);
}

TEST(ParseSizeTest, RejectsEverythingElse) {
  size_t value = 7;
  EXPECT_FALSE(ParseSize("", &value));
  EXPECT_FALSE(ParseSize("abc", &value));
  EXPECT_FALSE(ParseSize("12x", &value));   // strtoul would yield 12
  EXPECT_FALSE(ParseSize("x12", &value));   // strtoul would yield 0
  EXPECT_FALSE(ParseSize("-3", &value));
  EXPECT_FALSE(ParseSize("+3", &value));
  EXPECT_FALSE(ParseSize(" 3", &value));
  EXPECT_FALSE(ParseSize("3 ", &value));
  EXPECT_FALSE(ParseSize("18446744073709551616", &value));  // SIZE_MAX + 1
  EXPECT_EQ(value, 7u) << "failed parses must not clobber the output";
}

TEST(ArgMatcherTest, BareFlag) {
  bool hit = false;
  std::string arg = "--measures";
  ArgMatcher m(arg);
  EXPECT_FALSE(m.Flag("--robust", &hit));
  EXPECT_FALSE(hit);
  EXPECT_TRUE(m.Flag("--measures", &hit));
  EXPECT_TRUE(hit);
  EXPECT_TRUE(m.ok());
}

TEST(ArgMatcherTest, ValueFlag) {
  std::string value;
  std::string arg = "--variant=core";
  ArgMatcher m(arg);
  EXPECT_FALSE(m.Value("--var", &value));  // prefix must match exactly
  EXPECT_TRUE(m.Value("--variant", &value));
  EXPECT_EQ(value, "core");

  std::string empty_arg = "--events-out=";
  ArgMatcher m2(empty_arg);
  EXPECT_TRUE(m2.Value("--events-out", &value));
  EXPECT_EQ(value, "");
}

TEST(ArgMatcherTest, SizeValueParsesStrictly) {
  size_t steps = 0;
  std::string arg = "--max-steps=250";
  ArgMatcher m(arg);
  EXPECT_TRUE(m.SizeValue("--max-steps", &steps));
  EXPECT_EQ(steps, 250u);
  EXPECT_TRUE(m.ok());
}

TEST(ArgMatcherTest, MalformedSizeIsConsumedWithError) {
  // The historical strtoul parser mapped "--max-steps=abc" silently to 0;
  // the matcher must consume the token (ending flag dispatch) but report.
  size_t steps = 42;
  std::string arg = "--max-steps=abc";
  ArgMatcher m(arg);
  EXPECT_TRUE(m.SizeValue("--max-steps", &steps));
  EXPECT_EQ(steps, 42u);
  EXPECT_FALSE(m.ok());
  EXPECT_NE(m.error().find("--max-steps"), std::string::npos);
  EXPECT_NE(m.error().find("'abc'"), std::string::npos);
}

TEST(ArgMatcherTest, DoesNotMatchUnrelatedTokens) {
  size_t steps = 0;
  bool hit = false;
  std::string value;
  std::string arg = "program.twc";
  ArgMatcher m(arg);
  EXPECT_FALSE(m.Flag("--trace", &hit));
  EXPECT_FALSE(m.Value("--variant", &value));
  EXPECT_FALSE(m.SizeValue("--max-steps", &steps));
  EXPECT_TRUE(m.ok());
}

}  // namespace
}  // namespace twchase
