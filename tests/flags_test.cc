#include "tools/flags.h"

#include <gtest/gtest.h>

#include <string>

#include "core/chase.h"
#include "util/status.h"

namespace twchase {
namespace {

using flags::ArgMatcher;
using flags::ParseOutcome;
using flags::ParseSize;
using flags::ParseSizeChecked;

TEST(ParseSizeTest, AcceptsPlainDecimals) {
  size_t value = 99;
  EXPECT_TRUE(ParseSize("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(ParseSize("1000", &value));
  EXPECT_EQ(value, 1000u);
  EXPECT_TRUE(ParseSize("18446744073709551615", &value));  // SIZE_MAX
  EXPECT_EQ(value, SIZE_MAX);
}

TEST(ParseSizeTest, RejectsEverythingElse) {
  size_t value = 7;
  EXPECT_FALSE(ParseSize("", &value));
  EXPECT_FALSE(ParseSize("abc", &value));
  EXPECT_FALSE(ParseSize("12x", &value));   // strtoul would yield 12
  EXPECT_FALSE(ParseSize("x12", &value));   // strtoul would yield 0
  EXPECT_FALSE(ParseSize("-3", &value));
  EXPECT_FALSE(ParseSize("+3", &value));
  EXPECT_FALSE(ParseSize(" 3", &value));
  EXPECT_FALSE(ParseSize("3 ", &value));
  EXPECT_FALSE(ParseSize("18446744073709551616", &value));  // SIZE_MAX + 1
  EXPECT_EQ(value, 7u) << "failed parses must not clobber the output";
}

TEST(ParseSizeTest, CheckedOutcomesAreSpecific) {
  // The distinct outcomes drive distinct user-facing errors; collapsing
  // them back into one generic "not an integer" is a regression.
  size_t value = 7;
  EXPECT_EQ(ParseSizeChecked("12", &value), ParseOutcome::kOk);
  EXPECT_EQ(value, 12u);
  EXPECT_EQ(ParseSizeChecked("", &value), ParseOutcome::kMalformed);
  EXPECT_EQ(ParseSizeChecked("abc", &value), ParseOutcome::kMalformed);
  EXPECT_EQ(ParseSizeChecked("-", &value), ParseOutcome::kMalformed);
  EXPECT_EQ(ParseSizeChecked("-x", &value), ParseOutcome::kMalformed);
  EXPECT_EQ(ParseSizeChecked("-1", &value), ParseOutcome::kNegative);
  EXPECT_EQ(ParseSizeChecked("-999999", &value), ParseOutcome::kNegative);
  EXPECT_EQ(ParseSizeChecked("99999999999999999999", &value),
            ParseOutcome::kOutOfRange);  // > SIZE_MAX: 20 nines
  EXPECT_EQ(ParseSizeChecked("18446744073709551616", &value),
            ParseOutcome::kOutOfRange);  // SIZE_MAX + 1 exactly
  EXPECT_EQ(value, 12u) << "failed parses must not clobber the output";
}

TEST(ArgMatcherTest, BareFlag) {
  bool hit = false;
  std::string arg = "--measures";
  ArgMatcher m(arg);
  EXPECT_FALSE(m.Flag("--robust", &hit));
  EXPECT_FALSE(hit);
  EXPECT_TRUE(m.Flag("--measures", &hit));
  EXPECT_TRUE(hit);
  EXPECT_TRUE(m.ok());
}

TEST(ArgMatcherTest, ValueFlag) {
  std::string value;
  std::string arg = "--variant=core";
  ArgMatcher m(arg);
  EXPECT_FALSE(m.Value("--var", &value));  // prefix must match exactly
  EXPECT_TRUE(m.Value("--variant", &value));
  EXPECT_EQ(value, "core");

  std::string empty_arg = "--events-out=";
  ArgMatcher m2(empty_arg);
  EXPECT_TRUE(m2.Value("--events-out", &value));
  EXPECT_EQ(value, "");
}

TEST(ArgMatcherTest, SizeValueParsesStrictly) {
  size_t steps = 0;
  std::string arg = "--max-steps=250";
  ArgMatcher m(arg);
  EXPECT_TRUE(m.SizeValue("--max-steps", &steps));
  EXPECT_EQ(steps, 250u);
  EXPECT_TRUE(m.ok());
}

TEST(ArgMatcherTest, MalformedSizeIsConsumedWithError) {
  // The historical strtoul parser mapped "--max-steps=abc" silently to 0;
  // the matcher must consume the token (ending flag dispatch) but report.
  size_t steps = 42;
  std::string arg = "--max-steps=abc";
  ArgMatcher m(arg);
  EXPECT_TRUE(m.SizeValue("--max-steps", &steps));
  EXPECT_EQ(steps, 42u);
  EXPECT_FALSE(m.ok());
  EXPECT_NE(m.error().find("--max-steps"), std::string::npos);
  EXPECT_NE(m.error().find("'abc'"), std::string::npos);
}

TEST(ArgMatcherTest, OverflowingSizeReportsOutOfRange) {
  // "--max-steps=99999999999999999999" must say the value overflows the
  // 64-bit target, not that it is "not an integer" — the user typed a
  // perfectly good integer.
  size_t steps = 42;
  std::string arg = "--max-steps=99999999999999999999";
  ArgMatcher m(arg);
  EXPECT_TRUE(m.SizeValue("--max-steps", &steps));
  EXPECT_EQ(steps, 42u);
  EXPECT_FALSE(m.ok());
  EXPECT_NE(m.error().find("--max-steps"), std::string::npos);
  EXPECT_NE(m.error().find("out of range: overflows the 64-bit target"),
            std::string::npos)
      << m.error();
}

TEST(ArgMatcherTest, NegativeSizeReportsNegative) {
  // "--deadline-ms=-1" must say negative values are not accepted (with
  // the malformed-input message reserved for genuine garbage).
  size_t deadline = 42;
  std::string arg = "--deadline-ms=-1";
  ArgMatcher m(arg);
  EXPECT_TRUE(m.SizeValue("--deadline-ms", &deadline));
  EXPECT_EQ(deadline, 42u);
  EXPECT_FALSE(m.ok());
  EXPECT_NE(m.error().find("--deadline-ms"), std::string::npos);
  EXPECT_NE(m.error().find("negative values are not accepted"),
            std::string::npos)
      << m.error();

  std::string garbage_arg = "--deadline-ms=-x";
  ArgMatcher m2(garbage_arg);
  EXPECT_TRUE(m2.SizeValue("--deadline-ms", &deadline));
  EXPECT_NE(m2.error().find("expected a non-negative integer"),
            std::string::npos)
      << m2.error();
}

TEST(ArgMatcherTest, BoundedSizeValueEnforcesRange) {
  size_t threads = 7;
  std::string ok_arg = "--threads=4";
  ArgMatcher m(ok_arg);
  EXPECT_TRUE(m.BoundedSizeValue("--threads", &threads, 1, 1024));
  EXPECT_EQ(threads, 4u);
  EXPECT_TRUE(m.ok());

  std::string zero_arg = "--threads=0";
  ArgMatcher m2(zero_arg);
  EXPECT_TRUE(m2.BoundedSizeValue("--threads", &threads, 1, 1024));
  EXPECT_EQ(threads, 4u) << "out-of-range must not clobber the output";
  EXPECT_FALSE(m2.ok());
  EXPECT_NE(m2.error().find("must be between 1 and 1024"), std::string::npos)
      << m2.error();

  std::string big_arg = "--threads=4096";
  ArgMatcher m3(big_arg);
  EXPECT_TRUE(m3.BoundedSizeValue("--threads", &threads, 1, 1024));
  EXPECT_FALSE(m3.ok());
}

TEST(ArgMatcherTest, ScaledSizeValueRejectsWrappingProducts) {
  // Regression: the CLI used to compute `mb * 1024 * 1024` unchecked, so
  // a huge --memory-budget-mb silently wrapped to a tiny byte budget and
  // the run stopped immediately with kMemoryBudget. The scaled matcher
  // must reject any product that does not fit 64 bits.
  constexpr size_t kMiB = size_t{1024} * 1024;
  size_t budget = 42;
  std::string ok_arg = "--memory-budget-mb=64";
  ArgMatcher m(ok_arg);
  EXPECT_TRUE(m.ScaledSizeValue("--memory-budget-mb", &budget, kMiB));
  EXPECT_EQ(budget, 64u * kMiB);
  EXPECT_TRUE(m.ok());

  // 2^44 MiB = 2^64 bytes: wraps to exactly 0 under the old arithmetic,
  // i.e. "unlimited" misread as "stop immediately" (or vice versa).
  std::string wrap_arg = "--memory-budget-mb=17592186044416";
  ArgMatcher m2(wrap_arg);
  EXPECT_TRUE(m2.ScaledSizeValue("--memory-budget-mb", &budget, kMiB));
  EXPECT_EQ(budget, 64u * kMiB) << "wrapping product must not clobber";
  EXPECT_FALSE(m2.ok());
  EXPECT_NE(m2.error().find("out of range"), std::string::npos) << m2.error();

  // Values that are themselves unparseable keep their specific messages.
  std::string neg_arg = "--memory-budget-mb=-5";
  ArgMatcher m3(neg_arg);
  EXPECT_TRUE(m3.ScaledSizeValue("--memory-budget-mb", &budget, kMiB));
  EXPECT_NE(m3.error().find("negative values are not accepted"),
            std::string::npos)
      << m3.error();
}

TEST(ChaseOptionsValidateTest, MessagesLeadWithNestedFieldPath) {
  // Regression: the HTTP surface (src/service/wire.cc) lifts the leading
  // dotted field path out of a Validate() message into its structured 400
  // payload ({"path": "options.core.core_every", ...}), so every message
  // must open with the full nested group path, not the bare field name.
  ChaseOptions zero_every;
  zero_every.core.core_every = 0;
  Status s = zero_every.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message().rfind("core.core_every ", 0), 0u) << s.message();

  ChaseOptions bad_incremental;
  bad_incremental.core.incremental_core = true;
  bad_incremental.core.core_at_round_end = true;
  s = bad_incremental.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message().rfind("core.incremental_core ", 0), 0u) << s.message();
  // The referenced fields inside the message carry their paths too.
  EXPECT_NE(s.message().find("core.core_every == 1"), std::string::npos);
  EXPECT_NE(s.message().find("core.core_at_round_end == false"),
            std::string::npos);

  ChaseOptions bad_resume;
  bad_resume.core.incremental_core = true;
  bad_resume.resume.record_log = true;
  s = bad_resume.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message().rfind("resume.record_log ", 0), 0u) << s.message();
  EXPECT_NE(s.message().find("core.incremental_core == false"),
            std::string::npos);

  ChaseOptions zero_threads;
  zero_threads.parallel.threads = 0;
  s = zero_threads.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message().rfind("parallel.threads ", 0), 0u) << s.message();
}

TEST(ArgMatcherTest, DoesNotMatchUnrelatedTokens) {
  size_t steps = 0;
  bool hit = false;
  std::string value;
  std::string arg = "program.twc";
  ArgMatcher m(arg);
  EXPECT_FALSE(m.Flag("--trace", &hit));
  EXPECT_FALSE(m.Value("--variant", &value));
  EXPECT_FALSE(m.SizeValue("--max-steps", &steps));
  EXPECT_TRUE(m.ok());
}

}  // namespace
}  // namespace twchase
