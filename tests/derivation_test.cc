#include <gtest/gtest.h>

#include "core/aggregation.h"
#include "core/chase.h"
#include "core/derivation.h"
#include "kb/examples.h"
#include "kb/knowledge_base.h"

namespace twchase {
namespace {

TEST(DerivationTest, SigmaCompositionTracesVariables) {
  Vocabulary vocab;
  PredicateId p = vocab.MustPredicate("p", 1);
  Term x = vocab.NamedVariable("X"), y = vocab.NamedVariable("Y"),
       z = vocab.NamedVariable("Z");
  Derivation d(true);
  AtomSet f0;
  f0.Insert(Atom(p, {x}));
  d.AddInitial(f0, Substitution());

  AtomSet f1;
  f1.Insert(Atom(p, {y}));
  Substitution s1;
  s1.Bind(x, y);
  d.AddStep(0, "r", Substitution(), s1, {Atom(p, {y})}, f1);

  AtomSet f2;
  f2.Insert(Atom(p, {z}));
  Substitution s2;
  s2.Bind(y, z);
  d.AddStep(0, "r", Substitution(), s2, {Atom(p, {z})}, f2);

  EXPECT_EQ(d.SigmaBetween(0, 0).Apply(x), x);
  EXPECT_EQ(d.SigmaBetween(0, 1).Apply(x), y);
  EXPECT_EQ(d.SigmaBetween(0, 2).Apply(x), z);
  EXPECT_EQ(d.SigmaBetween(1, 2).Apply(y), z);
}

TEST(DerivationTest, MonotonicityDetection) {
  auto kb = MakeTransitiveClosure(3);
  ChaseOptions options;
  options.variant = ChaseVariant::kRestricted;
  auto run = RunChase(kb, options);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->terminated);
  EXPECT_TRUE(run->derivation.IsMonotonic());
}

TEST(DerivationTest, NaturalAggregationOfMonotonicIsLast) {
  auto kb = MakeTransitiveClosure(3);
  ChaseOptions options;
  options.variant = ChaseVariant::kRestricted;
  auto run = RunChase(kb, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->derivation.NaturalAggregation(), run->derivation.Last());
}

TEST(DerivationTest, PreSimplificationReconstructsAlpha) {
  auto kb = MakeBtsNotFes();
  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = 5;
  auto run = RunChase(kb, options);
  ASSERT_TRUE(run.ok());
  ASSERT_GE(run->derivation.size(), 2u);
  for (size_t i = 1; i < run->derivation.size(); ++i) {
    AtomSet alpha = run->derivation.PreSimplification(i);
    // σ_i(A_i) = F_i.
    const Substitution& sigma = run->derivation.step(i).simplification;
    EXPECT_EQ(sigma.Apply(alpha), run->derivation.Instance(i)) << "step " << i;
    // A_i ⊇ F_{i-1}.
    EXPECT_TRUE(run->derivation.Instance(i - 1).IsSubsetOf(alpha));
  }
}

TEST(DerivationTest, ProvenanceCoversNaturalAggregation) {
  StaircaseWorld world;
  ChaseOptions options;
  options.variant = ChaseVariant::kCore;
  options.limits.max_steps = 20;
  auto run = RunChase(world.kb(), options);
  ASSERT_TRUE(run.ok());
  auto provenance = run->derivation.ProvenanceIndex();
  AtomSet natural = run->derivation.NaturalAggregation();
  natural.ForEach([&](const Atom& atom) {
    auto it = provenance.find(atom);
    ASSERT_NE(it, provenance.end());
    EXPECT_LT(it->second, run->derivation.size());
  });
  // Initial atoms carry provenance 0.
  run->derivation.Instance(0).ForEach([&](const Atom& atom) {
    EXPECT_EQ(provenance.at(atom), 0u);
  });
}

TEST(DerivationTest, InstanceSizesRecordedWithoutSnapshots) {
  auto kb = MakeTransitiveClosure(3);
  ChaseOptions options;
  options.keep_snapshots = false;
  auto run = RunChase(kb, options);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->derivation.keeps_snapshots());
  EXPECT_GT(run->derivation.size(), 1u);
  EXPECT_EQ(run->derivation.step(run->derivation.size() - 1).instance_size,
            run->derivation.Last().size());
}

}  // namespace
}  // namespace twchase
